//! Property-based tests for the graph substrate.

use pf_graph::{bfs, dsu::Dsu, indset, iso, subgraph, Graph, RootedTree};
use proptest::prelude::*;

/// Random connected graph: spanning-tree skeleton plus extra edges.
fn connected_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (2..=max_n).prop_flat_map(|n| {
        let parents = proptest::collection::vec(0u32..n, (n - 1) as usize);
        let extras = proptest::collection::vec((0u32..n, 0u32..n), 0..(3 * n) as usize);
        (Just(n), parents, extras).prop_map(|(n, parents, extras)| {
            let mut g = Graph::new(n);
            for (i, &p) in parents.iter().enumerate() {
                let v = i as u32 + 1;
                g.add_edge(v, p % v);
            }
            for (a, b) in extras {
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

/// Random (possibly disconnected) graph.
fn any_graph(max_n: u32) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0u32..n, 0u32..n), 0..(2 * n) as usize);
        (Just(n), edges).prop_map(|(n, edges)| {
            let mut g = Graph::new(n);
            for (a, b) in edges {
                if a != b && !g.has_edge(a, b) {
                    g.add_edge(a, b);
                }
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_tree_spans_connected_graphs(g in connected_graph(24), root in 0u32..24) {
        let root = root % g.num_vertices();
        let (dist, parents) = bfs::tree(&g, root);
        let t = RootedTree::from_parents(root, parents).unwrap();
        prop_assert!(t.validate_spanning(&g).is_ok());
        // BFS parents give shortest-path depths.
        for v in g.vertices() {
            prop_assert_eq!(t.depth_of(v) as u16, dist[v as usize]);
        }
        prop_assert_eq!(t.depth() as u16, bfs::eccentricity(&g, root).unwrap());
    }

    #[test]
    fn distances_satisfy_triangle_on_edges(g in connected_graph(20)) {
        let apd = bfs::all_pairs_distances(&g);
        for (_, u, v) in g.edges() {
            for w in g.vertices() {
                let (du, dv) = (apd[w as usize][u as usize], apd[w as usize][v as usize]);
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}), source {w}");
            }
        }
    }

    #[test]
    fn shortest_path_length_matches_distance(g in connected_graph(16), a in 0u32..16, b in 0u32..16) {
        let n = g.num_vertices();
        let (a, b) = (a % n, b % n);
        let d = bfs::distances(&g, a);
        let p = bfs::shortest_path(&g, a, b).unwrap();
        prop_assert_eq!(p.len() as u16 - 1, d[b as usize]);
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn random_maximal_indset_is_maximal(g in any_graph(24), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = indset::random_maximal(&g, &mut rng);
        prop_assert!(indset::is_maximal_independent(&g, &s));
    }

    #[test]
    fn exact_indset_at_least_as_good_as_random(g in any_graph(14), seed in 0u64..100) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let approx = indset::random_maximal(&g, &mut rng);
        let exact = indset::maximum(&g);
        prop_assert!(indset::is_independent(&g, &exact));
        prop_assert!(exact.len() >= approx.len());
    }

    #[test]
    fn dsu_agrees_with_bfs_connectivity(g in any_graph(20)) {
        let mut d = Dsu::new(g.num_vertices());
        for (_, u, v) in g.edges() {
            d.union(u, v);
        }
        for u in g.vertices() {
            let dist = bfs::distances(&g, u);
            for v in g.vertices() {
                let reachable = dist[v as usize] != bfs::UNREACHABLE;
                prop_assert_eq!(d.connected(u, v), reachable, "({},{})", u, v);
            }
        }
    }

    #[test]
    fn graph_isomorphic_to_relabeled_self(g in connected_graph(10), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = g.num_vertices();
        let mut perm: Vec<u32> = (0..n).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let mut h = Graph::new(n);
        for (_, u, v) in g.edges() {
            h.add_edge(perm[u as usize], perm[v as usize]);
        }
        let m = iso::find_isomorphism(&g, &h, None);
        prop_assert!(m.is_some());
        prop_assert!(iso::verify_isomorphism(&g, &h, &m.unwrap()));
    }

    #[test]
    fn tree_from_path_has_expected_depth(len in 2usize..20, root_idx in 0usize..20) {
        let path: Vec<u32> = (0..len as u32).collect();
        let root_idx = root_idx % len;
        let t = RootedTree::from_path(&path, root_idx).unwrap();
        prop_assert_eq!(t.depth() as usize, root_idx.max(len - 1 - root_idx));
        prop_assert_eq!(t.edges().count(), len - 1);
        prop_assert_eq!(t.leaves().len(), if root_idx == 0 || root_idx == len - 1 { 1 } else { 2 });
    }

    #[test]
    fn edge_deleted_maps_round_trip_on_survivors(g in any_graph(20), picks in proptest::collection::vec(0usize..64, 0..8)) {
        let removed: Vec<u32> = picks
            .iter()
            .filter(|_| g.num_edges() > 0)
            .map(|&p| (p % g.num_edges() as usize) as u32)
            .collect();
        let view = subgraph::edge_deleted(&g, &removed);
        // Forward then backward is the identity on every surviving new id…
        for (new, &old) in view.orig_edge.iter().enumerate() {
            prop_assert_eq!(view.new_edge[old as usize], Some(new as u32));
            prop_assert_eq!(view.graph.endpoints(new as u32), g.endpoints(old));
        }
        // …and backward then forward on every surviving original id.
        for (old, &new) in view.new_edge.iter().enumerate() {
            match new {
                Some(n) => prop_assert_eq!(view.orig_edge[n as usize], old as u32),
                None => prop_assert!(removed.contains(&(old as u32))),
            }
        }
        prop_assert_eq!(view.orig_edge.len(), view.graph.num_edges() as usize);
    }

    #[test]
    fn vertex_deleted_maps_round_trip_on_survivors(g in any_graph(20), picks in proptest::collection::vec(0usize..64, 0..6)) {
        let n = g.num_vertices();
        let removed: Vec<u32> = picks.iter().map(|&p| (p % n as usize) as u32).collect();
        // Keep at least one survivor so the view is non-degenerate.
        prop_assume!(removed.iter().collect::<std::collections::HashSet<_>>().len() < n as usize);
        let view = subgraph::vertex_deleted(&g, &removed);
        for (new, &old) in view.orig_vertex.iter().enumerate() {
            prop_assert_eq!(view.new_vertex[old as usize], Some(new as u32));
        }
        for (old, &new) in view.new_vertex.iter().enumerate() {
            match new {
                Some(nv) => prop_assert_eq!(view.orig_vertex[nv as usize], old as u32),
                None => prop_assert!(removed.contains(&(old as u32))),
            }
        }
        for (new, &old) in view.orig_edge.iter().enumerate() {
            prop_assert_eq!(view.new_edge[old as usize], Some(new as u32));
            // Endpoints are preserved under the vertex map.
            let (u, v) = g.endpoints(old);
            let (nu, nv) = view.graph.endpoints(new as u32);
            prop_assert_eq!(view.orig_vertex[nu as usize], u.min(v));
            prop_assert_eq!(view.orig_vertex[nv as usize], u.max(v));
        }
        for (old, &new) in view.new_edge.iter().enumerate() {
            if let Some(ne) = new {
                prop_assert_eq!(view.orig_edge[ne as usize], old as u32);
            }
        }
    }

    #[test]
    fn star_product_coordinates_and_counts(g in connected_graph(6), h in connected_graph(5), twisted in any::<bool>()) {
        let sp = if twisted {
            pf_graph::shifted_product(&g, &h)
        } else {
            pf_graph::cartesian_product(&g, &h)
        };
        let p = sp.graph();
        let (ng, nh) = (g.num_vertices(), h.num_vertices());
        prop_assert_eq!(p.num_vertices(), ng * nh);
        prop_assert_eq!(p.num_edges(), ng * h.num_edges() + g.num_edges() * nh);
        prop_assert!(bfs::is_connected(p));
        for gv in 0..ng {
            for hv in 0..nh {
                let v = sp.vertex(gv, hv);
                prop_assert_eq!((sp.supernode(v), sp.local(v)), (gv, hv));
            }
        }
        // Every inter-supernode product edge follows its G-edge bijection.
        for (e, u, v) in g.edges() {
            for x in 0..nh {
                let y = sp.across(e, u, x);
                prop_assert!(p.has_edge(sp.vertex(u, x), sp.vertex(v, y)));
                prop_assert_eq!(sp.across(e, v, y), x);
            }
        }
    }

    #[test]
    fn edge_ids_are_stable_and_complete(g in any_graph(20)) {
        for (e, u, v) in g.edges() {
            prop_assert_eq!(g.edge_id(u, v), Some(e));
            prop_assert_eq!(g.edge_id(v, u), Some(e));
            prop_assert_eq!(g.endpoints(e), (u.min(v), u.max(v)));
        }
        let degree_sum: u32 = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }
}
