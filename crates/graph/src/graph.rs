//! The core undirected graph type.

/// Dense vertex index.
pub type VertexId = u32;
/// Dense edge index, stable across the lifetime of the graph.
pub type EdgeId = u32;

/// A simple undirected graph: no self-loops, no parallel edges.
///
/// Vertices are `0..n`. Each edge gets a dense id in insertion order;
/// adjacency lists are kept sorted by neighbor for binary-search membership
/// tests, which the topology validators use heavily.
#[derive(Debug, Clone)]
pub struct Graph {
    n: u32,
    /// Endpoints per edge id, stored with `u < v`.
    edges: Vec<(VertexId, VertexId)>,
    /// Sorted adjacency: `(neighbor, edge id)` pairs per vertex.
    adj: Vec<Vec<(VertexId, EdgeId)>>,
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    ///
    /// ```
    /// use pf_graph::Graph;
    /// let mut g = Graph::new(3);
    /// let e = g.add_edge(0, 2);
    /// assert!(g.has_edge(2, 0));
    /// assert_eq!(g.endpoints(e), (0, 2));
    /// assert_eq!(g.degree(1), 0);
    /// ```
    pub fn new(n: u32) -> Self {
        Graph { n, edges: Vec::new(), adj: vec![Vec::new(); n as usize] }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> u32 {
        self.edges.len() as u32
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n
    }

    /// Adds the undirected edge `{u, v}` and returns its id.
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges —
    /// all of which indicate a construction bug in the caller.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> EdgeId {
        assert!(u != v, "self-loops are not representable (vertex {u})");
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range n={}", self.n);
        assert!(self.edge_id(u, v).is_none(), "duplicate edge ({u},{v})");
        let id = self.edges.len() as EdgeId;
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
        let pos_u = self.adj[u as usize].partition_point(|&(w, _)| w < v);
        self.adj[u as usize].insert(pos_u, (v, id));
        let pos_v = self.adj[v as usize].partition_point(|&(w, _)| w < u);
        self.adj[v as usize].insert(pos_v, (u, id));
        id
    }

    /// The id of edge `{u, v}`, if present.
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u >= self.n || v >= self.n {
            return None;
        }
        let a = &self.adj[u as usize];
        a.binary_search_by_key(&v, |&(w, _)| w).ok().map(|i| a[i].1)
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_id(u, v).is_some()
    }

    /// Endpoints of edge `e`, as `(min, max)`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.edges[e as usize]
    }

    /// Iterator over all edges as `(edge id, u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.edges.iter().enumerate().map(|(i, &(u, v))| (i as EdgeId, u, v))
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> u32 {
        self.adj[u as usize].len() as u32
    }

    /// Sorted neighbors of `u`.
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[u as usize].iter().map(|&(v, _)| v)
    }

    /// Sorted `(neighbor, edge id)` pairs of `u`.
    pub fn neighbors_with_edges(&self, u: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adj[u as usize]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> u32 {
        self.adj.iter().map(|a| a.len() as u32).max().unwrap_or(0)
    }

    /// Minimum degree over all vertices (0 for the empty graph).
    pub fn min_degree(&self) -> u32 {
        self.adj.iter().map(|a| a.len() as u32).min().unwrap_or(0)
    }

    /// Sorted degree sequence (an isomorphism invariant).
    pub fn degree_sequence(&self) -> Vec<u32> {
        let mut d: Vec<u32> = self.adj.iter().map(|a| a.len() as u32).collect();
        d.sort_unstable();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn basic_construction() {
        let mut g = Graph::new(4);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(2, 1);
        assert_eq!((e0, e1), (0, 1));
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.endpoints(e1), (1, 2));
        assert_eq!(g.edge_id(2, 1), Some(1));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(1).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        Graph::new(3).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_edge() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        Graph::new(3).add_edge(0, 3);
    }

    #[test]
    fn degree_stats() {
        let g = path_graph(5);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(g.degree_sequence(), vec![1, 1, 2, 2, 2]);
    }

    #[test]
    fn edges_iteration_order() {
        let mut g = Graph::new(4);
        g.add_edge(3, 0);
        g.add_edge(1, 2);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 0, 3), (1, 1, 2)]);
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::new(6);
        for v in [5, 2, 4, 1, 3] {
            g.add_edge(0, v);
        }
        assert_eq!(g.neighbors(0).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }
}
