//! Star products of graphs — the substrate family behind PolarStar and
//! Slim Fly-class topologies (*Edge-Disjoint Spanning Trees on Star-Product
//! Networks*, PAPERS.md).
//!
//! The star product `G ∗ H` has vertex set `V(G) × V(H)`. Every vertex of
//! `G` becomes a *supernode* carrying a copy of `H` (the intra-supernode
//! edges), and every edge `(u, v)` of `G` becomes a perfect matching
//! between the two copies, routed through a per-edge bijection
//! `f : V(H) → V(H)`: vertex `(u, x)` connects to `(v, f(x))`. Choosing
//! every bijection as the identity recovers the Cartesian product
//! `G □ H`; non-trivial bijections produce the twisted products the
//! star-product EDST construction (`pf_allreduce::starprod`) is designed
//! for.
//!
//! [`StarProduct`] keeps the factor graphs and the bijections alongside
//! the product graph so constructions can lift factor spanning trees into
//! the product without re-deriving the structure.

use crate::graph::{EdgeId, Graph, VertexId};

/// A star product `G ∗ H` with its factor structure retained.
///
/// Vertex `(gv, hv)` of the product is the dense id
/// `gv * |V(H)| + hv` — supernode-major, so each supernode's copy of `H`
/// occupies a contiguous id range.
#[derive(Debug, Clone)]
pub struct StarProduct {
    product: Graph,
    g: Graph,
    h: Graph,
    /// `bij[e][x]`: crossing G-edge `e` from its *lower* endpoint with
    /// local vertex `x` lands on local vertex `bij[e][x]` at the higher
    /// endpoint.
    bij: Vec<Vec<VertexId>>,
    /// Inverse of `bij` per edge (crossing from the higher endpoint).
    inv: Vec<Vec<VertexId>>,
}

impl StarProduct {
    /// The product graph.
    pub fn graph(&self) -> &Graph {
        &self.product
    }

    /// The factor graphs `(G, H)`.
    pub fn factors(&self) -> (&Graph, &Graph) {
        (&self.g, &self.h)
    }

    /// Product id of `(gv, hv)`.
    pub fn vertex(&self, gv: VertexId, hv: VertexId) -> VertexId {
        debug_assert!(gv < self.g.num_vertices() && hv < self.h.num_vertices());
        gv * self.h.num_vertices() + hv
    }

    /// The supernode (G-coordinate) of a product vertex.
    pub fn supernode(&self, v: VertexId) -> VertexId {
        v / self.h.num_vertices()
    }

    /// The local (H-coordinate) of a product vertex.
    pub fn local(&self, v: VertexId) -> VertexId {
        v % self.h.num_vertices()
    }

    /// Crossing G-edge `e` from supernode `from` with local vertex `x`:
    /// the local vertex reached at the other endpoint. `from` must be an
    /// endpoint of `e`.
    pub fn across(&self, e: EdgeId, from: VertexId, x: VertexId) -> VertexId {
        let (lo, hi) = self.g.endpoints(e);
        if from == lo {
            self.bij[e as usize][x as usize]
        } else {
            assert_eq!(from, hi, "supernode {from} is not an endpoint of G-edge {e}");
            self.inv[e as usize][x as usize]
        }
    }
}

/// Builds the star product `G ∗ H` from per-G-edge bijections.
///
/// `bijections[e]` maps the local vertex at the lower endpoint of G-edge
/// `e` to the local vertex at the higher endpoint; each must be a
/// permutation of `0..|V(H)|` (panics otherwise). Intra-supernode H-edges
/// are added first (supernode-major), then the inter-supernode matchings
/// in G-edge-id order — a deterministic edge-id layout.
pub fn star_product(g: &Graph, h: &Graph, bijections: &[Vec<VertexId>]) -> StarProduct {
    let (ng, nh) = (g.num_vertices(), h.num_vertices());
    assert!(nh > 0, "H must have at least one vertex");
    assert_eq!(
        bijections.len(),
        g.num_edges() as usize,
        "one bijection per G-edge"
    );
    let mut inv = Vec::with_capacity(bijections.len());
    for (e, f) in bijections.iter().enumerate() {
        assert_eq!(f.len(), nh as usize, "bijection for G-edge {e} has wrong length");
        let mut seen = vec![false; nh as usize];
        let mut fi = vec![0; nh as usize];
        for (x, &y) in f.iter().enumerate() {
            assert!((y as usize) < seen.len() && !seen[y as usize],
                "bijection for G-edge {e} is not a permutation");
            seen[y as usize] = true;
            fi[y as usize] = x as VertexId;
        }
        inv.push(fi);
    }

    let mut product = Graph::new(ng * nh);
    for gv in 0..ng {
        for (_, a, b) in h.edges() {
            product.add_edge(gv * nh + a, gv * nh + b);
        }
    }
    for (e, u, v) in g.edges() {
        for x in 0..nh {
            let y = bijections[e as usize][x as usize];
            product.add_edge(u * nh + x, v * nh + y);
        }
    }
    StarProduct { product, g: g.clone(), h: h.clone(), bij: bijections.to_vec(), inv }
}

/// The Cartesian product `G □ H`: the star product with every bijection
/// the identity.
pub fn cartesian_product(g: &Graph, h: &Graph) -> StarProduct {
    let id: Vec<VertexId> = (0..h.num_vertices()).collect();
    let bijections = vec![id; g.num_edges() as usize];
    star_product(g, h, &bijections)
}

/// A twisted star product: G-edge `e` carries the cyclic shift
/// `x ↦ (x + e + 1) mod |V(H)|`. Structurally a "real" star product —
/// distinct edges twist differently — while staying deterministic.
pub fn shifted_product(g: &Graph, h: &Graph) -> StarProduct {
    let nh = h.num_vertices();
    let bijections: Vec<Vec<VertexId>> = (0..g.num_edges())
        .map(|e| (0..nh).map(|x| (x + e + 1) % nh).collect())
        .collect();
    star_product(g, h, &bijections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;
    use crate::builders;

    #[test]
    fn cartesian_product_of_paths_is_a_grid() {
        let p3 = builders::path(3);
        let p2 = builders::path(2);
        let sp = cartesian_product(&p3, &p2);
        let g = sp.graph();
        assert_eq!(g.num_vertices(), 6);
        // 3 supernodes × 1 H-edge + 2 G-edges × 2 matchings.
        assert_eq!(g.num_edges(), 3 + 4);
        assert!(bfs::is_connected(g));
        // Grid degrees: corners 2, mid-edge 3.
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 2);
    }

    #[test]
    fn coordinates_round_trip() {
        let sp = cartesian_product(&builders::cycle(4), &builders::path(3));
        for gv in 0..4 {
            for hv in 0..3 {
                let v = sp.vertex(gv, hv);
                assert_eq!(sp.supernode(v), gv);
                assert_eq!(sp.local(v), hv);
            }
        }
    }

    #[test]
    fn across_follows_the_bijection_both_ways() {
        let g = builders::path(2);
        let h = builders::cycle(3);
        let f = vec![vec![1u32, 2, 0]]; // x ↦ x+1 mod 3 on the single G-edge
        let sp = star_product(&g, &h, &f);
        assert_eq!(sp.across(0, 0, 0), 1);
        assert_eq!(sp.across(0, 0, 2), 0);
        assert_eq!(sp.across(0, 1, 1), 0); // inverse direction
        // The product edge actually exists.
        assert!(sp.graph().has_edge(sp.vertex(0, 0), sp.vertex(1, 1)));
    }

    #[test]
    fn shifted_product_is_connected_and_regular_for_cycles() {
        let sp = shifted_product(&builders::cycle(4), &builders::cycle(4));
        let g = sp.graph();
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 4 * 4 + 4 * 4);
        assert!(bfs::is_connected(g));
        // 2 intra + 2 inter edges everywhere.
        assert_eq!(g.min_degree(), 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_non_permutation_bijection() {
        let g = builders::path(2);
        let h = builders::path(2);
        star_product(&g, &h, &[vec![0, 0]]);
    }

    #[test]
    #[should_panic(expected = "one bijection per G-edge")]
    fn rejects_wrong_bijection_count() {
        let g = builders::path(3);
        let h = builders::path(2);
        star_product(&g, &h, &[vec![0, 1]]);
    }
}
