//! Rooted spanning trees and their validation.
//!
//! The paper's allreduce embeddings are rooted spanning trees of the
//! physical topology: reduction traffic flows leaf→root, broadcast traffic
//! root→leaf. [`RootedTree`] is the shared representation used by the
//! low-depth construction (Algorithm 3), the Hamiltonian-path construction
//! (§7.2), the congestion model (Algorithm 1), and the simulator.

use crate::graph::{EdgeId, Graph, VertexId};

/// Validation failures for a would-be spanning tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// Wrong number of vertices relative to the host graph.
    WrongOrder { tree: usize, graph: usize },
    /// The root's parent entry must be `None`.
    RootHasParent(VertexId),
    /// A non-root vertex has no parent (tree not connected to the root).
    MissingParent(VertexId),
    /// Parent pointers contain a cycle through this vertex.
    Cycle(VertexId),
    /// A tree edge is not present in the host graph.
    EdgeNotInGraph(VertexId, VertexId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::WrongOrder { tree, graph } => {
                write!(f, "tree covers {tree} vertices but graph has {graph}")
            }
            TreeError::RootHasParent(r) => write!(f, "root {r} has a parent"),
            TreeError::MissingParent(v) => write!(f, "non-root vertex {v} has no parent"),
            TreeError::Cycle(v) => write!(f, "parent pointers cycle through {v}"),
            TreeError::EdgeNotInGraph(u, v) => {
                write!(f, "tree edge ({u},{v}) is not a graph edge")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted tree over vertices `0..n`, stored as parent pointers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    depth: Vec<u32>,
}

impl RootedTree {
    /// Builds a tree from parent pointers, checking structural soundness
    /// (single root, acyclic, fully connected to the root). Host-graph
    /// membership of the edges is checked separately by
    /// [`RootedTree::validate_spanning`].
    pub fn from_parents(
        root: VertexId,
        parent: Vec<Option<VertexId>>,
    ) -> Result<Self, TreeError> {
        let n = parent.len();
        if (root as usize) >= n {
            return Err(TreeError::MissingParent(root));
        }
        if parent[root as usize].is_some() {
            return Err(TreeError::RootHasParent(root));
        }
        // Resolve depths iteratively, detecting cycles and orphans.
        let mut depth = vec![u32::MAX; n];
        depth[root as usize] = 0;
        for v0 in 0..n as u32 {
            if depth[v0 as usize] != u32::MAX {
                continue;
            }
            // Walk up until a resolved vertex, recording the chain.
            let mut chain = Vec::new();
            let mut cur = v0;
            loop {
                if depth[cur as usize] != u32::MAX {
                    break;
                }
                if chain.contains(&cur) {
                    return Err(TreeError::Cycle(cur));
                }
                chain.push(cur);
                match parent[cur as usize] {
                    Some(p) => {
                        if (p as usize) >= n {
                            return Err(TreeError::MissingParent(cur));
                        }
                        cur = p;
                    }
                    None => return Err(TreeError::MissingParent(cur)),
                }
            }
            let mut d = depth[cur as usize];
            for &v in chain.iter().rev() {
                d += 1;
                depth[v as usize] = d;
            }
        }
        Ok(RootedTree { root, parent, depth })
    }

    /// Builds the tree induced by rooting a simple path at position
    /// `root_index` (paper Lemma 7.17 roots Hamiltonian paths at their
    /// midpoint to halve the depth).
    ///
    /// ```
    /// use pf_graph::RootedTree;
    /// let t = RootedTree::from_path(&[4, 1, 0, 2, 3], 2).unwrap();
    /// assert_eq!(t.root(), 0);
    /// assert_eq!(t.depth(), 2);
    /// ```
    pub fn from_path(path: &[VertexId], root_index: usize) -> Result<Self, TreeError> {
        assert!(root_index < path.len(), "root index out of path bounds");
        let n = path.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut parent = vec![None; n.max(path.len())];
        for i in (1..=root_index).rev() {
            parent[path[i - 1] as usize] = Some(path[i]);
        }
        for i in root_index..path.len() - 1 {
            parent[path[i + 1] as usize] = Some(path[i]);
        }
        RootedTree::from_parents(path[root_index], parent)
    }

    /// The root vertex.
    #[inline]
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// Number of vertices the tree covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` (`None` for the root).
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v as usize]
    }

    /// Depth of `v` (root = 0).
    #[inline]
    pub fn depth_of(&self, v: VertexId) -> u32 {
        self.depth[v as usize]
    }

    /// Height of the tree: maximum vertex depth.
    pub fn depth(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Iterator over tree edges as `(child, parent)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (v as VertexId, p)))
    }

    /// Children lists, indexable by vertex.
    pub fn children(&self) -> Vec<Vec<VertexId>> {
        let mut ch = vec![Vec::new(); self.parent.len()];
        for (v, p) in self.edges() {
            ch[p as usize].push(v);
        }
        ch
    }

    /// Leaves of the tree (vertices with no children). A single-vertex tree
    /// has its root as a leaf.
    pub fn leaves(&self) -> Vec<VertexId> {
        let mut has_child = vec![false; self.parent.len()];
        for (_, p) in self.edges() {
            has_child[p as usize] = true;
        }
        (0..self.parent.len() as u32).filter(|&v| !has_child[v as usize]).collect()
    }

    /// The root-ward vertex path from `v` (inclusive) to the root (inclusive).
    pub fn path_to_root(&self, v: VertexId) -> Vec<VertexId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Checks that this tree spans `g`: same vertex set, and every tree edge
    /// is a physical edge of `g`.
    pub fn validate_spanning(&self, g: &Graph) -> Result<(), TreeError> {
        if self.parent.len() != g.num_vertices() as usize {
            return Err(TreeError::WrongOrder {
                tree: self.parent.len(),
                graph: g.num_vertices() as usize,
            });
        }
        for (v, p) in self.edges() {
            if !g.has_edge(v, p) {
                return Err(TreeError::EdgeNotInGraph(v, p));
            }
        }
        Ok(())
    }

    /// The host-graph edge ids used by this tree, sorted. Panics if an edge
    /// is not in `g` (validate first).
    pub fn edge_ids(&self, g: &Graph) -> Vec<EdgeId> {
        let mut ids: Vec<EdgeId> = self
            .edges()
            .map(|(v, p)| g.edge_id(v, p).expect("tree edge missing from host graph"))
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// Returns `true` if the trees are pairwise edge-disjoint in `g`.
pub fn pairwise_edge_disjoint(trees: &[RootedTree], g: &Graph) -> bool {
    let mut used = vec![false; g.num_edges() as usize];
    for t in trees {
        for id in t.edge_ids(g) {
            if used[id as usize] {
                return false;
            }
            used[id as usize] = true;
        }
    }
    true
}

/// Per-edge congestion: the number of trees containing each physical edge
/// (paper §5.1: "congestion on a link is equal to the number of trees
/// containing the link").
pub fn edge_congestion(trees: &[RootedTree], g: &Graph) -> Vec<u32> {
    let mut c = vec![0u32; g.num_edges() as usize];
    for t in trees {
        for id in t.edge_ids(g) {
            c[id as usize] += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for v in 1..n {
            g.add_edge(0, v);
        }
        g
    }

    #[test]
    fn from_parents_valid() {
        let t = RootedTree::from_parents(0, vec![None, Some(0), Some(0), Some(1)]).unwrap();
        assert_eq!(t.root(), 0);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.depth_of(3), 2);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.edges().count(), 3);
        assert_eq!(t.leaves(), vec![2, 3]);
        assert_eq!(t.path_to_root(3), vec![3, 1, 0]);
    }

    #[test]
    fn detects_cycle() {
        let err = RootedTree::from_parents(0, vec![None, Some(2), Some(3), Some(1)]).unwrap_err();
        assert!(matches!(err, TreeError::Cycle(_)));
    }

    #[test]
    fn detects_root_with_parent() {
        let err = RootedTree::from_parents(0, vec![Some(1), None]).unwrap_err();
        assert_eq!(err, TreeError::RootHasParent(0));
    }

    #[test]
    fn detects_orphan() {
        // From 1, the chain hits vertex 2 whose parent is... none beyond root? craft:
        let err = RootedTree::from_parents(0, vec![None, Some(1)]).unwrap_err();
        assert!(matches!(err, TreeError::Cycle(1)));
        let err2 = RootedTree::from_parents(0, vec![None, Some(5)]).unwrap_err();
        assert!(matches!(err2, TreeError::MissingParent(_)));
    }

    #[test]
    fn validate_against_graph() {
        let g = star(4);
        let ok = RootedTree::from_parents(0, vec![None, Some(0), Some(0), Some(0)]).unwrap();
        assert!(ok.validate_spanning(&g).is_ok());
        let bad = RootedTree::from_parents(0, vec![None, Some(0), Some(1), Some(0)]).unwrap();
        assert_eq!(bad.validate_spanning(&g), Err(TreeError::EdgeNotInGraph(2, 1)));
        let small = RootedTree::from_parents(0, vec![None, Some(0)]).unwrap();
        assert!(matches!(small.validate_spanning(&g), Err(TreeError::WrongOrder { .. })));
    }

    #[test]
    fn from_path_midpoint_root() {
        // Path 3-1-4-0-2 rooted at index 2 (vertex 4): depth 2.
        let t = RootedTree::from_path(&[3, 1, 4, 0, 2], 2).unwrap();
        assert_eq!(t.root(), 4);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(1), Some(4));
        assert_eq!(t.parent(0), Some(4));
        assert_eq!(t.parent(2), Some(0));
    }

    #[test]
    fn from_path_end_root_depth() {
        let t = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        assert_eq!(t.depth(), 3);
        let t2 = RootedTree::from_path(&[0, 1, 2, 3], 3).unwrap();
        assert_eq!(t2.depth(), 3);
        assert_eq!(t2.root(), 3);
    }

    #[test]
    fn disjointness_and_congestion() {
        // Cycle of 4: two spanning trees sharing one edge.
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap();
        assert!(t1.validate_spanning(&g).is_ok());
        assert!(t2.validate_spanning(&g).is_ok());
        assert!(!pairwise_edge_disjoint(&[t1.clone(), t2.clone()], &g));
        let c = edge_congestion(&[t1, t2], &g);
        // Edges: 0:(0,1) 1:(1,2) 2:(2,3) 3:(0,3).
        // t1 uses {0,1,2}; t2 uses {(1,0),(0,3),(3,2)} = ids {0,3,2}.
        assert_eq!(c, vec![2, 1, 2, 1]);
    }

    #[test]
    fn children_lists() {
        let t = RootedTree::from_parents(2, vec![Some(2), Some(2), None, Some(0)]).unwrap();
        let ch = t.children();
        assert_eq!(ch[2], vec![0, 1]);
        assert_eq!(ch[0], vec![3]);
        assert!(ch[1].is_empty());
    }
}
