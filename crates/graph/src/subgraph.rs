//! Edge- and vertex-deleted subgraph views, for fault modeling.
//!
//! A link or router fault turns the healthy topology into a subgraph:
//! the same network minus the failed elements. Because [`Graph`] assigns
//! dense edge ids in insertion order, deleting elements renumbers the
//! surviving edges (and, for vertex deletion, the surviving vertices), so
//! each view carries explicit id maps in both directions. Recovery code
//! uses the forward maps to translate a healthy-network plan onto the
//! surviving fabric and the backward maps to report results in the
//! original labeling.

use crate::graph::{EdgeId, Graph, VertexId};

/// A subgraph formed by deleting a set of edges. Vertex ids are unchanged;
/// surviving edges are renumbered densely in original-id order.
///
/// The two maps are mutually inverse on survivors:
/// `new_edge[orig_edge[n]] == Some(n)` for every new id `n`, and
/// `orig_edge[new_edge[o].unwrap()] == o` for every surviving original id
/// `o` — the round-trip identity `pf-graph/tests/proptests.rs` pins.
#[derive(Debug, Clone)]
pub struct EdgeDeleted {
    /// The surviving topology.
    pub graph: Graph,
    /// `orig_edge[new_id] = old_id` for every surviving edge.
    pub orig_edge: Vec<EdgeId>,
    /// `new_edge[old_id] = Some(new_id)` for survivors, `None` for deleted
    /// edges.
    pub new_edge: Vec<Option<EdgeId>>,
}

/// Deletes `removed` (original edge ids; duplicates allowed) from `g`.
///
/// Panics if an id is out of range — that indicates a bookkeeping bug in
/// the caller, consistent with [`Graph::add_edge`]'s contract.
pub fn edge_deleted(g: &Graph, removed: &[EdgeId]) -> EdgeDeleted {
    let mut dead = vec![false; g.num_edges() as usize];
    for &e in removed {
        assert!((e as usize) < dead.len(), "edge id {e} out of range");
        dead[e as usize] = true;
    }
    let mut graph = Graph::new(g.num_vertices());
    let mut orig_edge = Vec::new();
    let mut new_edge = vec![None; g.num_edges() as usize];
    for (e, u, v) in g.edges() {
        if dead[e as usize] {
            continue;
        }
        let id = graph.add_edge(u, v);
        debug_assert_eq!(id as usize, orig_edge.len(), "dense renumbering in original-id order");
        new_edge[e as usize] = Some(id);
        orig_edge.push(e);
    }
    EdgeDeleted { graph, orig_edge, new_edge }
}

/// A subgraph formed by deleting a set of vertices (and every incident
/// edge). Survivors are renumbered densely, preserving relative order.
///
/// As with [`EdgeDeleted`], each forward/backward map pair composes to
/// the identity on survivors: `new_vertex[orig_vertex[n]] == Some(n)`,
/// `orig_vertex[new_vertex[o].unwrap()] == o`, and likewise for the edge
/// maps.
#[derive(Debug, Clone)]
pub struct VertexDeleted {
    /// The surviving topology.
    pub graph: Graph,
    /// `orig_vertex[new_id] = old_id` for every surviving vertex.
    pub orig_vertex: Vec<VertexId>,
    /// `new_vertex[old_id] = Some(new_id)` for survivors, `None` for
    /// deleted vertices.
    pub new_vertex: Vec<Option<VertexId>>,
    /// `orig_edge[new_id] = old_id` for every surviving edge.
    pub orig_edge: Vec<EdgeId>,
    /// `new_edge[old_id] = Some(new_id)` for survivors, `None` for edges
    /// that lost an endpoint.
    pub new_edge: Vec<Option<EdgeId>>,
}

/// Deletes `removed` (original vertex ids; duplicates allowed) from `g`.
///
/// Panics if an id is out of range.
pub fn vertex_deleted(g: &Graph, removed: &[VertexId]) -> VertexDeleted {
    let mut dead = vec![false; g.num_vertices() as usize];
    for &v in removed {
        assert!((v as usize) < dead.len(), "vertex id {v} out of range");
        dead[v as usize] = true;
    }
    let mut orig_vertex = Vec::new();
    let mut new_vertex = vec![None; g.num_vertices() as usize];
    for v in g.vertices() {
        if !dead[v as usize] {
            new_vertex[v as usize] = Some(orig_vertex.len() as VertexId);
            orig_vertex.push(v);
        }
    }
    let mut graph = Graph::new(orig_vertex.len() as u32);
    let mut orig_edge = Vec::new();
    let mut new_edge = vec![None; g.num_edges() as usize];
    for (e, u, v) in g.edges() {
        if let (Some(nu), Some(nv)) = (new_vertex[u as usize], new_vertex[v as usize]) {
            let id = graph.add_edge(nu, nv);
            debug_assert_eq!(id as usize, orig_edge.len(), "dense renumbering in original-id order");
            new_edge[e as usize] = Some(id);
            orig_edge.push(e);
        }
    }
    VertexDeleted { graph, orig_vertex, new_vertex, orig_edge, new_edge }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn edge_deletion_renumbers_and_maps() {
        let g = cycle(5); // edges 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4) 4:(0,4)
        let view = edge_deleted(&g, &[1, 3]);
        assert_eq!(view.graph.num_vertices(), 5);
        assert_eq!(view.graph.num_edges(), 3);
        assert_eq!(view.orig_edge, vec![0, 2, 4]);
        assert_eq!(view.new_edge, vec![Some(0), None, Some(1), None, Some(2)]);
        // Endpoints preserved under the map.
        for (new, &old) in view.orig_edge.iter().enumerate() {
            assert_eq!(view.graph.endpoints(new as u32), g.endpoints(old));
        }
    }

    #[test]
    fn edge_deletion_tolerates_duplicates_and_empty() {
        let g = cycle(4);
        let view = edge_deleted(&g, &[2, 2, 2]);
        assert_eq!(view.graph.num_edges(), 3);
        let full = edge_deleted(&g, &[]);
        assert_eq!(full.graph.num_edges(), 4);
        assert!(bfs::is_connected(&full.graph));
    }

    #[test]
    fn deleting_a_cut_edge_disconnects() {
        let mut g = Graph::new(4); // path 0-1-2-3
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        let view = edge_deleted(&g, &[1]);
        assert!(!bfs::is_connected(&view.graph));
        let (_, k) = bfs::connected_components(&view.graph);
        assert_eq!(k, 2);
        assert_eq!(bfs::diameter(&view.graph), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_deletion_rejects_bad_id() {
        edge_deleted(&cycle(3), &[7]);
    }

    #[test]
    fn vertex_deletion_renumbers_and_maps() {
        let g = cycle(5);
        let view = vertex_deleted(&g, &[2]);
        assert_eq!(view.graph.num_vertices(), 4);
        assert_eq!(view.orig_vertex, vec![0, 1, 3, 4]);
        assert_eq!(view.new_vertex, vec![Some(0), Some(1), None, Some(2), Some(3)]);
        // Edges (1,2) and (2,3) are gone; survivors keep their endpoints
        // under the vertex map.
        assert_eq!(view.graph.num_edges(), 3);
        for (new, &old) in view.orig_edge.iter().enumerate() {
            let (u, v) = g.endpoints(old);
            let (nu, nv) = view.graph.endpoints(new as u32);
            assert_eq!(view.orig_vertex[nu as usize], u);
            assert_eq!(view.orig_vertex[nv as usize], v);
        }
        // A cycle minus one vertex is a path: still connected.
        assert!(bfs::is_connected(&view.graph));
    }

    #[test]
    fn vertex_deletion_can_partition() {
        let mut g = Graph::new(5); // star around 0 plus a pendant path
        for v in 1..5 {
            g.add_edge(0, v);
        }
        let view = vertex_deleted(&g, &[0]);
        assert_eq!(view.graph.num_vertices(), 4);
        assert_eq!(view.graph.num_edges(), 0);
        assert!(!bfs::is_connected(&view.graph));
        assert_eq!(bfs::eccentricity(&view.graph, 0), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_deletion_rejects_bad_id() {
        vertex_deleted(&cycle(3), &[3]);
    }
}
