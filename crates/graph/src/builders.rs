//! Standard graph families, used by tests, benchmarks and baselines.

use crate::graph::Graph;

/// The path `0 - 1 - … - (n-1)`.
pub fn path(n: u32) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// The cycle `C_n` (requires `n >= 3`).
pub fn cycle(n: u32) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// The star with center 0 and `n - 1` leaves.
pub fn star(n: u32) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// The complete graph `K_n`.
pub fn complete(n: u32) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` vertices (edges between
/// ids differing in one bit).
pub fn hypercube(d: u32) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1u32 << d;
    let mut g = Graph::new(n);
    for v in 0..n {
        for b in 0..d {
            let u = v ^ (1 << b);
            if u > v {
                g.add_edge(v, u);
            }
        }
    }
    g
}

/// The `rows × cols` 2-D torus (wraparound grid; requires both dims ≥ 3 to
/// stay simple).
pub fn torus2d(rows: u32, cols: u32) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus dims must be >= 3 to avoid parallel edges");
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: u32, c: u32| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, (c + 1) % cols));
            g.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    g
}

/// The Petersen graph (3-regular, girth 5) — a classic test instance.
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5);
        g.add_edge(5 + i, 5 + (i + 2) % 5);
        g.add_edge(i, 5 + i);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs;

    #[test]
    fn family_sizes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(6).num_edges(), 6);
        assert_eq!(star(7).num_edges(), 6);
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(hypercube(4).num_edges(), 32);
        assert_eq!(torus2d(3, 4).num_edges(), 24);
        assert_eq!(petersen().num_edges(), 15);
    }

    #[test]
    fn regularity() {
        let q = hypercube(5);
        assert!(q.vertices().all(|v| q.degree(v) == 5));
        let t = torus2d(4, 5);
        assert!(t.vertices().all(|v| t.degree(v) == 4));
        let p = petersen();
        assert!(p.vertices().all(|v| p.degree(v) == 3));
    }

    #[test]
    fn diameters() {
        assert_eq!(bfs::diameter(&path(6)), Some(5));
        assert_eq!(bfs::diameter(&cycle(8)), Some(4));
        assert_eq!(bfs::diameter(&star(9)), Some(2));
        assert_eq!(bfs::diameter(&complete(5)), Some(1));
        assert_eq!(bfs::diameter(&hypercube(6)), Some(6));
        assert_eq!(bfs::diameter(&torus2d(4, 4)), Some(4));
        assert_eq!(bfs::diameter(&petersen()), Some(2));
    }

    #[test]
    fn all_connected() {
        for g in [path(4), cycle(5), star(6), complete(4), hypercube(3), torus2d(3, 3), petersen()]
        {
            assert!(bfs::is_connected(&g));
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_rejected() {
        cycle(2);
    }
}
