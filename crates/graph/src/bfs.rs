//! Breadth-first search, distances, and diameter.

use crate::graph::{Graph, VertexId};

/// Distance label for unreachable vertices.
pub const UNREACHABLE: u16 = u16::MAX;

/// Single-source BFS distances. Unreachable vertices get [`UNREACHABLE`].
pub fn distances(g: &Graph, src: VertexId) -> Vec<u16> {
    let mut dist = vec![UNREACHABLE; g.num_vertices() as usize];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Single-source BFS returning `(distances, parents)`; the parent of the
/// source (and of unreachable vertices) is `None`. Ties are broken toward
/// the smallest-id parent because neighbors are visited in sorted order.
pub fn tree(g: &Graph, src: VertexId) -> (Vec<u16>, Vec<Option<VertexId>>) {
    let n = g.num_vertices() as usize;
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src as usize] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for v in g.neighbors(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                parent[v as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (dist, parent)
}

/// `true` iff the graph is connected (vacuously true for `n <= 1`).
pub fn is_connected(g: &Graph) -> bool {
    if g.num_vertices() <= 1 {
        return true;
    }
    distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Connected-component labels (`0..k` in order of first appearance) and
/// the component count.
pub fn connected_components(g: &Graph) -> (Vec<u32>, u32) {
    let n = g.num_vertices() as usize;
    let mut label = vec![u32::MAX; n];
    let mut next = 0u32;
    for s in g.vertices() {
        if label[s as usize] != u32::MAX {
            continue;
        }
        let mut queue = std::collections::VecDeque::from([s]);
        label[s as usize] = next;
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if label[v as usize] == u32::MAX {
                    label[v as usize] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Eccentricity of `src`: the maximum finite BFS distance.
/// Returns `None` if some vertex is unreachable.
pub fn eccentricity(g: &Graph, src: VertexId) -> Option<u16> {
    let d = distances(g, src);
    if d.contains(&UNREACHABLE) {
        return None;
    }
    d.into_iter().max()
}

/// Graph diameter via all-sources BFS. `None` if disconnected.
pub fn diameter(g: &Graph) -> Option<u16> {
    let mut best = 0;
    for v in g.vertices() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// All-pairs shortest-path distances (`n` BFS passes).
pub fn all_pairs_distances(g: &Graph) -> Vec<Vec<u16>> {
    g.vertices().map(|v| distances(g, v)).collect()
}

/// A shortest path from `src` to `dst` as a vertex sequence (inclusive),
/// or `None` if unreachable. Deterministic (smallest-id tie-breaking).
pub fn shortest_path(g: &Graph, src: VertexId, dst: VertexId) -> Option<Vec<VertexId>> {
    let (dist, parent) = tree(g, src);
    if dist[dst as usize] == UNREACHABLE {
        return None;
    }
    let mut path = vec![dst];
    let mut cur = dst;
    while let Some(p) = parent[cur as usize] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Counts the paths of length exactly 2 between `u` and `v` (common
/// neighbors). The paper's Theorem 6.1 says this is at most 1 in `ER_q`
/// for distinct `u`, `v`.
pub fn count_two_paths(g: &Graph, u: VertexId, v: VertexId) -> usize {
    let (mut i, mut j) = (0, 0);
    let a = g.neighbors_with_edges(u);
    let b = g.neighbors_with_edges(v);
    let mut count = 0;
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn distances_on_cycle() {
        let g = cycle(6);
        let d = distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn connected_and_diameter() {
        let g = cycle(7);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(3));

        let mut h = Graph::new(4);
        h.add_edge(0, 1);
        assert!(!is_connected(&h));
        assert_eq!(diameter(&h), None);
        assert_eq!(eccentricity(&h, 0), None);
    }

    #[test]
    fn component_labels() {
        let mut g = Graph::new(7);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let (labels, k) = connected_components(&g);
        assert_eq!(k, 4);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[6]);
        // Labels are assigned in order of first appearance.
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 1);
        assert_eq!(labels[5], 2);
        assert_eq!(labels[6], 3);
        let (_, one) = connected_components(&cycle(5));
        assert_eq!(one, 1);
    }

    #[test]
    fn trivial_graphs_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert_eq!(diameter(&Graph::new(1)), Some(0));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = cycle(8);
        let p = shortest_path(&g, 0, 3).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&3));
        assert_eq!(p.len(), 4);
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert_eq!(shortest_path(&g, 2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn shortest_path_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        assert_eq!(shortest_path(&g, 0, 2), None);
    }

    #[test]
    fn two_path_counting() {
        // K4 minus one edge: u=0, v=1 non-adjacent, both adjacent to 2 and 3.
        let mut g = Graph::new(4);
        for (u, v) in [(0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            g.add_edge(u, v);
        }
        assert_eq!(count_two_paths(&g, 0, 1), 2);
        assert_eq!(count_two_paths(&g, 2, 3), 2);
        assert_eq!(count_two_paths(&g, 0, 2), 1); // via 3
    }

    #[test]
    fn bfs_tree_parents_consistent() {
        let g = cycle(9);
        let (dist, parent) = tree(&g, 4);
        for v in g.vertices() {
            if v == 4 {
                assert_eq!(parent[v as usize], None);
                continue;
            }
            let p = parent[v as usize].unwrap();
            assert!(g.has_edge(p, v));
            assert_eq!(dist[p as usize] + 1, dist[v as usize]);
        }
    }

    #[test]
    fn all_pairs_symmetry() {
        let g = cycle(5);
        let apd = all_pairs_distances(&g);
        for (u, row) in apd.iter().enumerate() {
            for (v, &d) in row.iter().enumerate() {
                assert_eq!(d, apd[v][u]);
            }
            assert_eq!(row[u], 0);
        }
    }
}
