//! Disjoint-set union (union-find) with path halving and union by size.

/// Union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: u32,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        Dsu { parent: (0..n).collect(), size: vec![1; n as usize], components: n }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> u32 {
        self.components
    }

    /// Size of `x`'s set.
    pub fn size_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut d = Dsu::new(6);
        assert_eq!(d.components(), 6);
        assert!(d.union(0, 1));
        assert!(d.union(2, 3));
        assert!(!d.union(1, 0));
        assert!(d.connected(0, 1));
        assert!(!d.connected(0, 2));
        assert_eq!(d.components(), 4);
        assert!(d.union(1, 2));
        assert!(d.connected(0, 3));
        assert_eq!(d.size_of(3), 4);
        assert_eq!(d.size_of(5), 1);
    }

    #[test]
    fn spanning_tree_needs_n_minus_1_unions() {
        let mut d = Dsu::new(10);
        let mut merges = 0;
        for i in 0..9 {
            if d.union(i, i + 1) {
                merges += 1;
            }
        }
        assert_eq!(merges, 9);
        assert_eq!(d.components(), 1);
    }

    #[test]
    fn redundant_unions_are_noops() {
        let mut d = Dsu::new(4);
        d.union(0, 1);
        d.union(1, 2);
        d.union(2, 3);
        for a in 0..4 {
            for b in 0..4 {
                assert!(!d.union(a, b));
            }
        }
        assert_eq!(d.components(), 1);
    }
}
