//! Independent-set heuristics and exact search.
//!
//! §7.3 of the paper reduces "maximum set of edge-disjoint Hamiltonian
//! paths" to a maximum independent set in a conflict graph `G_S` whose
//! vertices are difference-set element pairs. The authors "simply computed
//! random maximal independent sets … within 30 random instances"; we
//! reproduce that protocol ([`random_maximal`], [`best_of_random`]) and add
//! an exact branch-and-bound solver ([`maximum`]) as an ablation and
//! ground-truth check for small instances.

use crate::graph::{Graph, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A maximal independent set obtained by greedy insertion in a random
/// vertex order.
pub fn random_maximal<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.shuffle(rng);
    greedy_in_order(g, &order)
}

/// Greedy maximal independent set following the given vertex order.
pub fn greedy_in_order(g: &Graph, order: &[VertexId]) -> Vec<VertexId> {
    let mut blocked = vec![false; g.num_vertices() as usize];
    let mut set = Vec::new();
    for &v in order {
        if blocked[v as usize] {
            continue;
        }
        set.push(v);
        blocked[v as usize] = true;
        for u in g.neighbors(v) {
            blocked[u as usize] = true;
        }
    }
    set.sort_unstable();
    set
}

/// The best of `attempts` random maximal independent sets, stopping early
/// if `target` (when given) is reached. Returns `(set, attempts_used)`.
///
/// This mirrors the paper's experimental protocol: "We were able to find a
/// maximum independent set in `G_S` for all radixes within 30 random
/// instances."
pub fn best_of_random<R: Rng + ?Sized>(
    g: &Graph,
    attempts: usize,
    target: Option<usize>,
    rng: &mut R,
) -> (Vec<VertexId>, usize) {
    let mut best: Vec<VertexId> = Vec::new();
    for i in 1..=attempts.max(1) {
        let cand = random_maximal(g, rng);
        if cand.len() > best.len() {
            best = cand;
        }
        if let Some(t) = target {
            if best.len() >= t {
                return (best, i);
            }
        }
    }
    (best, attempts.max(1))
}

/// Exact maximum independent set by branch and bound with greedy-degree
/// branching. Exponential worst case — intended for the small conflict
/// graphs of this paper (at most a few thousand vertices would already be
/// too big; we use it for `q <= 31`-ish instances and tests).
pub fn maximum(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices() as usize;
    let mut best: Vec<VertexId> = Vec::new();
    let mut current: Vec<VertexId> = Vec::new();
    let mut alive: Vec<bool> = vec![true; n];
    branch(g, &mut alive, &mut current, &mut best);
    best.sort_unstable();
    best
}

fn branch(g: &Graph, alive: &mut [bool], current: &mut Vec<VertexId>, best: &mut Vec<VertexId>) {
    let remaining: Vec<VertexId> =
        (0..alive.len() as u32).filter(|&v| alive[v as usize]).collect();
    if current.len() + remaining.len() <= best.len() {
        return; // bound
    }
    if remaining.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    // Pick the alive vertex of maximum alive-degree; either it is in the
    // set (drop it and its neighbors) or it is not (drop it alone).
    let v = *remaining
        .iter()
        .max_by_key(|&&v| g.neighbors(v).filter(|&u| alive[u as usize]).count())
        .unwrap();
    // Degree-0/1 vertices can always be taken greedily (standard reduction);
    // handled implicitly by the branching below, so keep it simple.

    // Branch 1: take v.
    let mut removed = vec![v];
    alive[v as usize] = false;
    for u in g.neighbors(v) {
        if alive[u as usize] {
            alive[u as usize] = false;
            removed.push(u);
        }
    }
    current.push(v);
    branch(g, alive, current, best);
    current.pop();
    for &u in &removed {
        alive[u as usize] = true;
    }

    // Branch 2: exclude v (only worth exploring if v has alive neighbors;
    // otherwise taking v is always at least as good).
    if removed.len() > 1 {
        alive[v as usize] = false;
        branch(g, alive, current, best);
        alive[v as usize] = true;
    }
}

/// Verifies that `set` is independent in `g` (no two members adjacent).
pub fn is_independent(g: &Graph, set: &[VertexId]) -> bool {
    for (i, &u) in set.iter().enumerate() {
        for &v in &set[i + 1..] {
            if g.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

/// Verifies that `set` is a *maximal* independent set (independent, and no
/// vertex outside it can be added).
pub fn is_maximal_independent(g: &Graph, set: &[VertexId]) -> bool {
    if !is_independent(g, set) {
        return false;
    }
    let member = {
        let mut m = vec![false; g.num_vertices() as usize];
        for &v in set {
            m[v as usize] = true;
        }
        m
    };
    g.vertices().all(|v| member[v as usize] || g.neighbors(v).any(|u| member[u as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn random_maximal_is_maximal() {
        let g = cycle(11);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let s = random_maximal(&g, &mut rng);
            assert!(is_maximal_independent(&g, &s));
        }
    }

    #[test]
    fn exact_on_cycles() {
        // Max independent set of C_n is floor(n/2).
        for n in 3..12u32 {
            let g = cycle(n);
            let s = maximum(&g);
            assert!(is_independent(&g, &s));
            assert_eq!(s.len() as u32, n / 2, "C_{n}");
        }
    }

    #[test]
    fn exact_on_complete_graph() {
        let mut g = Graph::new(6);
        for u in 0..6 {
            for v in u + 1..6 {
                g.add_edge(u, v);
            }
        }
        assert_eq!(maximum(&g).len(), 1);
    }

    #[test]
    fn exact_on_edgeless_graph() {
        let g = Graph::new(5);
        assert_eq!(maximum(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn exact_on_petersen() {
        // Petersen graph: independence number 4.
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5); // outer cycle
            g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
            g.add_edge(i, 5 + i); // spokes
        }
        assert_eq!(maximum(&g).len(), 4);
    }

    #[test]
    fn best_of_random_reaches_target() {
        let g = cycle(20);
        let mut rng = StdRng::seed_from_u64(42);
        let (s, used) = best_of_random(&g, 200, Some(10), &mut rng);
        assert_eq!(s.len(), 10);
        assert!(used <= 200);
        assert!(is_independent(&g, &s));
    }

    #[test]
    fn best_of_random_without_target_uses_all_attempts() {
        let g = cycle(9);
        let mut rng = StdRng::seed_from_u64(1);
        let (_, used) = best_of_random(&g, 13, None, &mut rng);
        assert_eq!(used, 13);
    }

    #[test]
    fn greedy_in_order_deterministic() {
        let g = cycle(6);
        let order: Vec<u32> = (0..6).collect();
        assert_eq!(greedy_in_order(&g, &order), vec![0, 2, 4]);
    }

    #[test]
    fn independence_checkers() {
        let g = cycle(5);
        assert!(is_independent(&g, &[0, 2]));
        assert!(!is_independent(&g, &[0, 1]));
        assert!(is_maximal_independent(&g, &[0, 2]));
        assert!(!is_maximal_independent(&g, &[0])); // 2 or 3 could be added
    }
}
