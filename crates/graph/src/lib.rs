//! Minimal undirected-graph substrate for the PolarFly allreduce
//! reproduction.
//!
//! Everything downstream (topology construction, spanning-tree embedding,
//! congestion accounting, the network simulator) works in terms of the
//! [`Graph`] type defined here: vertices are dense `u32` indices, edges have
//! stable dense ids, and adjacency is kept sorted for `O(log d)` membership
//! tests.
//!
//! The crate also provides the generic algorithms the paper's constructions
//! lean on: BFS/shortest paths ([`bfs`]), rooted spanning trees with
//! validation ([`tree`]), random-maximal and exact maximum independent sets
//! ([`indset`], used for the edge-disjoint Hamiltonian set search of §7.3),
//! star products of factor graphs ([`product`], the PolarStar/Slim Fly-class
//! substrate family), and a backtracking isomorphism test ([`iso`], used to
//! verify `S_q ≅ ER_q`, Theorem 6.6).

pub mod bfs;
pub mod builders;
pub mod dsu;
pub mod graph;
pub mod indset;
pub mod iso;
pub mod product;
pub mod subgraph;
pub mod tree;

pub use graph::{EdgeId, Graph, VertexId};
pub use product::{cartesian_product, shifted_product, star_product, StarProduct};
pub use subgraph::{edge_deleted, vertex_deleted, EdgeDeleted, VertexDeleted};
pub use tree::RootedTree;
