//! Backtracking graph isomorphism with invariant pruning.
//!
//! Used to *verify* Theorem 6.6 of the paper (the Singer graph `S_q` is
//! isomorphic to the Erdős–Rényi polarity graph `ER_q`) on concrete
//! instances. The search orders vertices by a refinement signature
//! (degree + sorted neighbor degrees) and optionally respects a caller
//! supplied vertex coloring (e.g. quadric / V1 / V2 classes, which any
//! isomorphism must preserve because they are defined structurally).

use crate::graph::{Graph, VertexId};

/// Attempts to find an isomorphism `g -> h`, i.e. a bijection `f` with
/// `{u,v} ∈ E(g) ⇔ {f(u),f(v)} ∈ E(h)`. Returns the mapping as a vector
/// indexed by `g`-vertex, or `None` if the graphs are not isomorphic.
///
/// `colors`, when provided, gives `(color_g, color_h)` vertex classes that
/// the mapping must preserve; supplying structurally-forced classes
/// massively prunes the search.
pub fn find_isomorphism(
    g: &Graph,
    h: &Graph,
    colors: Option<(&[u32], &[u32])>,
) -> Option<Vec<VertexId>> {
    let n = g.num_vertices();
    if n != h.num_vertices() || g.num_edges() != h.num_edges() {
        return None;
    }
    if g.degree_sequence() != h.degree_sequence() {
        return None;
    }
    if let Some((cg, ch)) = colors {
        assert_eq!(cg.len(), n as usize);
        assert_eq!(ch.len(), n as usize);
        let mut sg = cg.to_vec();
        let mut sh = ch.to_vec();
        sg.sort_unstable();
        sh.sort_unstable();
        if sg != sh {
            return None;
        }
    }

    let sig_g = signatures(g, colors.map(|c| c.0));
    let sig_h = signatures(h, colors.map(|c| c.1));
    {
        let mut a = sig_g.clone();
        let mut b = sig_h.clone();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            return None;
        }
    }

    // Order g's vertices: rarest signature first, then by degree descending.
    let mut order: Vec<VertexId> = (0..n).collect();
    let mut sig_count = std::collections::HashMap::new();
    for s in &sig_g {
        *sig_count.entry(s.clone()).or_insert(0usize) += 1;
    }
    order.sort_by_key(|&v| (sig_count[&sig_g[v as usize]], std::cmp::Reverse(g.degree(v))));

    let mut mapping: Vec<Option<VertexId>> = vec![None; n as usize];
    let mut used: Vec<bool> = vec![false; n as usize];
    if assign(g, h, &sig_g, &sig_h, &order, 0, &mut mapping, &mut used) {
        Some(mapping.into_iter().map(Option::unwrap).collect())
    } else {
        None
    }
}

/// Checks that `mapping` is an isomorphism `g -> h`.
pub fn verify_isomorphism(g: &Graph, h: &Graph, mapping: &[VertexId]) -> bool {
    let n = g.num_vertices() as usize;
    if mapping.len() != n || h.num_vertices() as usize != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &m in mapping {
        if (m as usize) >= n || seen[m as usize] {
            return false;
        }
        seen[m as usize] = true;
    }
    if g.num_edges() != h.num_edges() {
        return false;
    }
    g.edges().all(|(_, u, v)| h.has_edge(mapping[u as usize], mapping[v as usize]))
}

type Sig = (u32, u32, Vec<u32>);

/// Per-vertex refinement signature: (color, degree, sorted neighbor degrees).
fn signatures(g: &Graph, colors: Option<&[u32]>) -> Vec<Sig> {
    g.vertices()
        .map(|v| {
            let mut nd: Vec<u32> = g.neighbors(v).map(|u| g.degree(u)).collect();
            nd.sort_unstable();
            (colors.map_or(0, |c| c[v as usize]), g.degree(v), nd)
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn assign(
    g: &Graph,
    h: &Graph,
    sig_g: &[Sig],
    sig_h: &[Sig],
    order: &[VertexId],
    idx: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
) -> bool {
    if idx == order.len() {
        return true;
    }
    let v = order[idx];
    'cand: for w in h.vertices() {
        if used[w as usize] || sig_g[v as usize] != sig_h[w as usize] {
            continue;
        }
        // Consistency with already-mapped neighbors and non-neighbors.
        for u in order[..idx].iter().copied() {
            let mu = mapping[u as usize].unwrap();
            if g.has_edge(v, u) != h.has_edge(w, mu) {
                continue 'cand;
            }
        }
        mapping[v as usize] = Some(w);
        used[w as usize] = true;
        if assign(g, h, sig_g, sig_h, order, idx + 1, mapping, used) {
            return true;
        }
        mapping[v as usize] = None;
        used[w as usize] = false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn relabeled_cycle(n: u32, mult: u32) -> Graph {
        // Cycle with vertices permuted by multiplication (mult coprime to n).
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge((i * mult) % n, ((i + 1) * mult) % n);
        }
        g
    }

    #[test]
    fn cycle_isomorphic_to_relabeling() {
        let g = cycle(7);
        let h = relabeled_cycle(7, 3);
        let m = find_isomorphism(&g, &h, None).expect("isomorphic");
        assert!(verify_isomorphism(&g, &h, &m));
    }

    #[test]
    fn cycle_not_isomorphic_to_path() {
        let g = cycle(5);
        let mut h = Graph::new(5);
        for i in 0..4 {
            h.add_edge(i, i + 1);
        }
        assert!(find_isomorphism(&g, &h, None).is_none());
    }

    #[test]
    fn different_sizes_rejected() {
        assert!(find_isomorphism(&cycle(5), &cycle(6), None).is_none());
    }

    #[test]
    fn same_degree_sequence_but_not_isomorphic() {
        // C6 vs two triangles: both 2-regular on 6 vertices.
        let g = cycle(6);
        let mut h = Graph::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            h.add_edge(u, v);
        }
        assert!(find_isomorphism(&g, &h, None).is_none());
    }

    #[test]
    fn colors_must_match() {
        let g = cycle(4);
        let h = cycle(4);
        let cg = [0u32, 1, 0, 1];
        let ch_ok = [1u32, 0, 1, 0];
        let ch_bad = [0u32, 0, 1, 1]; // adjacent same-colors differ structurally
        let m = find_isomorphism(&g, &h, Some((&cg, &ch_ok))).expect("rotated coloring works");
        assert!(verify_isomorphism(&g, &h, &m));
        for (v, &w) in m.iter().enumerate() {
            assert_eq!(cg[v], ch_ok[w as usize]);
        }
        assert!(find_isomorphism(&g, &h, Some((&cg, &ch_bad))).is_none());
    }

    #[test]
    fn petersen_self_isomorphism() {
        let mut g = Graph::new(10);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
            g.add_edge(5 + i, 5 + (i + 2) % 5);
            g.add_edge(i, 5 + i);
        }
        let m = find_isomorphism(&g, &g, None).unwrap();
        assert!(verify_isomorphism(&g, &g, &m));
    }

    #[test]
    fn verify_rejects_bad_mapping() {
        let g = cycle(4);
        assert!(!verify_isomorphism(&g, &g, &[0, 2, 1, 3])); // not edge-preserving
        assert!(!verify_isomorphism(&g, &g, &[0, 0, 1, 2])); // not a bijection
        assert!(!verify_isomorphism(&g, &g, &[0, 1, 2])); // wrong length
    }
}
