//! Property-based tests for the topology constructions.

use pf_graph::bfs;
use pf_topo::{classify, Layout, PolarFly, Singer};
use proptest::prelude::*;

fn small_prime_power() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![3u64, 4, 5, 7, 8, 9, 11, 13])
}

fn small_odd_prime_power() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![3u64, 5, 7, 9, 11, 13])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn er_structure_invariants(q in small_prime_power()) {
        let pf = PolarFly::new(q);
        let g = pf.graph();
        prop_assert_eq!(g.num_vertices() as u64, q * q + q + 1);
        prop_assert_eq!(g.num_edges() as u64, q * (q + 1) * (q + 1) / 2);
        prop_assert_eq!(bfs::diameter(g), Some(2));
        prop_assert_eq!(pf.quadrics().len() as u64, q + 1);
    }

    #[test]
    fn any_starter_gives_valid_layout(q in small_odd_prime_power(), pick in 0usize..16) {
        let pf = PolarFly::new(q);
        let quads = pf.quadrics();
        let starter = quads[pick % quads.len()];
        let layout = Layout::new(&pf, Some(starter)).unwrap();
        prop_assert!(layout.verify_property1(&pf).is_ok());
        prop_assert!(layout.verify_property2(&pf).is_ok());
        prop_assert!(layout.verify_property3(&pf).is_ok());
        prop_assert!(layout.verify_center_quadric_bijection().is_ok());
    }

    #[test]
    fn translated_and_negated_difference_sets_build_valid_graphs(q in small_prime_power(), shift in 0u64..300, negate in any::<bool>()) {
        // Difference sets are closed under translation and negation; the
        // resulting Singer graphs keep every structural invariant.
        let base = Singer::new(q);
        let n = base.n();
        let d: Vec<u64> = base
            .difference_set()
            .iter()
            .map(|&x| {
                let x = if negate { (n - x) % n } else { x };
                (x + shift) % n
            })
            .collect();
        let s = Singer::from_difference_set(q, d).unwrap();
        prop_assert_eq!(s.graph().num_edges(), base.graph().num_edges());
        prop_assert_eq!(s.reflection_points().len() as u64, q + 1);
        prop_assert_eq!(bfs::diameter(s.graph()), Some(2));
    }

    #[test]
    fn classification_independent_of_representation(q in small_prime_power()) {
        // Quadric/V1/V2 class sizes agree between ER and Singer forms.
        let pf = PolarFly::new(q);
        let s = Singer::new(q);
        let quad: Vec<bool> = pf.graph().vertices().map(|v| pf.is_quadric(v)).collect();
        let refl: Vec<bool> = s.graph().vertices().map(|v| s.is_reflection(v)).collect();
        let ce = classify(pf.graph(), &quad);
        let cs = classify(s.graph(), &refl);
        prop_assert_eq!(ce.counts(), cs.counts());
    }

    #[test]
    fn two_path_uniqueness_on_random_pairs(q in small_prime_power(), a in 0u32..200, b in 0u32..200) {
        let pf = PolarFly::new(q);
        let g = pf.graph();
        let n = g.num_vertices();
        let (a, b) = (a % n, b % n);
        if a != b {
            let paths = bfs::count_two_paths(g, a, b);
            prop_assert!(paths <= 1);
            if !g.has_edge(a, b) {
                prop_assert_eq!(paths, 1);
            }
        }
    }

    #[test]
    fn vertex_lookup_roundtrip(q in small_prime_power(), v in 0u32..200) {
        let pf = PolarFly::new(q);
        let v = v % pf.graph().num_vertices();
        prop_assert_eq!(pf.vertex_of(pf.point(v)), Some(v));
    }
}
