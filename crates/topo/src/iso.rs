//! Explicit verification of Theorem 6.6: `S_q ≅ ER_q`.
//!
//! The isomorphism must map reflection points to quadrics (both are the
//! structurally-defined "self-orthogonal" class), V1 to V1 and V2 to V2
//! (Corollaries 6.8/6.9), so the search is run with class colors, which
//! prunes it enough to be practical for the small instances the tests use.

use crate::classify::{classify, Classification};
use crate::er::PolarFly;
use crate::singer::Singer;
use pf_graph::iso::{find_isomorphism, verify_isomorphism};
use pf_graph::VertexId;

/// Classification of the Singer graph: reflection points play the role of
/// quadrics.
pub fn classify_singer(s: &Singer) -> Classification {
    let refl: Vec<bool> = s.graph().vertices().map(|v| s.is_reflection(v)).collect();
    classify(s.graph(), &refl)
}

/// Classification of the polarity graph from its quadric markers.
pub fn classify_er(pf: &PolarFly) -> Classification {
    let quad: Vec<bool> = pf.graph().vertices().map(|v| pf.is_quadric(v)).collect();
    classify(pf.graph(), &quad)
}

/// Searches for an explicit isomorphism `S_q -> ER_q`, respecting vertex
/// classes. Returns the vertex mapping if found.
///
/// Backtracking search: intended for small `q` (tests use `q <= 8`); the
/// structural invariants (order, size, degree profile, diameter, unique
/// 2-paths) are checked separately for large `q` by
/// [`structural_invariants_match`].
pub fn find_singer_er_isomorphism(s: &Singer, pf: &PolarFly) -> Option<Vec<VertexId>> {
    let cs = classify_singer(s).colors();
    let ce = classify_er(pf).colors();
    let m = find_isomorphism(s.graph(), pf.graph(), Some((&cs, &ce)))?;
    debug_assert!(verify_isomorphism(s.graph(), pf.graph(), &m));
    Some(m)
}

/// Cheap structural invariants both constructions must share for equal `q`:
/// order, size, degree sequence, quadric/reflection count, and the
/// friendship-like unique-2-path property on a vertex sample.
pub fn structural_invariants_match(s: &Singer, pf: &PolarFly) -> Result<(), String> {
    let (gs, ge) = (s.graph(), pf.graph());
    if gs.num_vertices() != ge.num_vertices() {
        return Err(format!("orders differ: {} vs {}", gs.num_vertices(), ge.num_vertices()));
    }
    if gs.num_edges() != ge.num_edges() {
        return Err(format!("sizes differ: {} vs {}", gs.num_edges(), ge.num_edges()));
    }
    if gs.degree_sequence() != ge.degree_sequence() {
        return Err("degree sequences differ".to_string());
    }
    let (rw, rv1, rv2) = classify_singer(s).counts();
    let (qw, qv1, qv2) = classify_er(pf).counts();
    if (rw, rv1, rv2) != (qw, qv1, qv2) {
        return Err(format!(
            "class counts differ: Singer ({rw},{rv1},{rv2}) vs ER ({qw},{qv1},{qv2})"
        ));
    }
    // Unique-2-path spot check on a deterministic vertex sample.
    let n = gs.num_vertices();
    let stride = (n / 16).max(1);
    for g in [gs, ge] {
        for u in (0..n).step_by(stride as usize) {
            for v in (u + 1..n).step_by(stride as usize) {
                if pf_graph::bfs::count_two_paths(g, u, v) > 1 {
                    return Err(format!("more than one 2-path between {u} and {v}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_isomorphism_small_q() {
        for q in [2u64, 3, 4, 5] {
            let s = Singer::new(q);
            let pf = PolarFly::new(q);
            let m = find_singer_er_isomorphism(&s, &pf)
                .unwrap_or_else(|| panic!("q={q}: no isomorphism found"));
            assert!(verify_isomorphism(s.graph(), pf.graph(), &m), "q={q}");
            // Class preservation: reflection points land on quadrics.
            for v in s.graph().vertices() {
                assert_eq!(
                    s.is_reflection(v),
                    pf.is_quadric(m[v as usize]),
                    "q={q} v={v}"
                );
            }
        }
    }

    #[test]
    fn structural_invariants_medium_q() {
        for q in [7u64, 8, 9, 11, 13, 16] {
            let s = Singer::new(q);
            let pf = PolarFly::new(q);
            structural_invariants_match(&s, &pf).unwrap_or_else(|e| panic!("q={q}: {e}"));
        }
    }

    #[test]
    fn mismatched_q_rejected() {
        let s = Singer::new(3);
        let pf = PolarFly::new(4);
        assert!(structural_invariants_match(&s, &pf).is_err());
    }

    #[test]
    fn singer_classification_counts() {
        for q in [3u64, 5, 7] {
            let s = Singer::new(q);
            let (w, v1, v2) = classify_singer(&s).counts();
            assert_eq!(w as u64, q + 1);
            assert_eq!(v1 as u64, q * (q + 1) / 2);
            assert_eq!(v2 as u64, q * (q - 1) / 2);
        }
    }
}
