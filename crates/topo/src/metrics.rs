//! Network-quality metrics for PolarFly (§1.3 of the paper leans on these:
//! diameter-2, path length, bisection-ish connectivity).

use pf_graph::{bfs, Graph};

/// Summary statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyMetrics {
    pub vertices: u64,
    pub edges: u64,
    pub min_degree: u32,
    pub max_degree: u32,
    pub diameter: u16,
    /// Average shortest-path length over ordered distinct pairs.
    pub avg_path_length: f64,
    /// Histogram of shortest-path lengths (index = hops, over unordered
    /// distinct pairs).
    pub path_length_histogram: Vec<u64>,
}

/// Computes metrics via all-pairs BFS. Panics on disconnected graphs.
pub fn topology_metrics(g: &Graph) -> TopologyMetrics {
    let n = g.num_vertices() as u64;
    let mut hist: Vec<u64> = Vec::new();
    let mut total = 0u128;
    for u in g.vertices() {
        let d = bfs::distances(g, u);
        for v in u + 1..g.num_vertices() {
            let x = d[v as usize];
            assert!(x != bfs::UNREACHABLE, "graph must be connected");
            if hist.len() <= x as usize {
                hist.resize(x as usize + 1, 0);
            }
            hist[x as usize] += 1;
            total += x as u128;
        }
    }
    let pairs = n * (n - 1) / 2;
    TopologyMetrics {
        vertices: n,
        edges: g.num_edges() as u64,
        min_degree: g.min_degree(),
        max_degree: g.max_degree(),
        diameter: (hist.len().saturating_sub(1)) as u16,
        avg_path_length: if pairs == 0 { 0.0 } else { total as f64 / pairs as f64 },
        path_length_histogram: hist,
    }
}

/// The fraction of vertex pairs at each distance — PolarFly's selling
/// point is that almost all pairs sit at distance 2 with no pair beyond.
pub fn path_length_fractions(m: &TopologyMetrics) -> Vec<f64> {
    let pairs: u64 = m.path_length_histogram.iter().sum();
    m.path_length_histogram
        .iter()
        .map(|&c| if pairs == 0 { 0.0 } else { c as f64 / pairs as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::PolarFly;

    #[test]
    fn polarfly_metrics() {
        for q in [3u64, 5, 7] {
            let pf = PolarFly::new(q);
            let m = topology_metrics(pf.graph());
            assert_eq!(m.vertices, q * q + q + 1);
            assert_eq!(m.edges, q * (q + 1) * (q + 1) / 2);
            assert_eq!(m.diameter, 2);
            assert_eq!(m.min_degree as u64, q);
            assert_eq!(m.max_degree as u64, q + 1);
            assert!(m.avg_path_length > 1.0 && m.avg_path_length < 2.0);
            // Histogram: [0 pairs at distance 0? no — distinct pairs only]
            assert_eq!(m.path_length_histogram[0], 0);
            assert_eq!(m.path_length_histogram[1], m.edges);
        }
    }

    #[test]
    fn fractions_sum_to_one() {
        let pf = PolarFly::new(5);
        let m = topology_metrics(pf.graph());
        let f = path_length_fractions(&m);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Most pairs at distance 2.
        assert!(f[2] > f[1]);
    }

    #[test]
    fn path_metrics_on_cycle() {
        let mut g = pf_graph::Graph::new(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        let m = topology_metrics(&g);
        assert_eq!(m.diameter, 3);
        assert_eq!(m.path_length_histogram, vec![0, 6, 6, 3]);
        assert!((m.avg_path_length - (6.0 + 12.0 + 9.0) / 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_rejected() {
        let g = pf_graph::Graph::new(3);
        topology_metrics(&g);
    }
}
