//! k-ary n-cube (torus) topologies — the comparison substrate for §1.2.
//!
//! The paper's introduction contrasts its in-network multi-tree allreduce
//! with "prior works on multiported Allreduce on direct tori networks"
//! ([25, 30, 53]): those exploit data parallelism with concurrent ring
//! collectives along each dimension/direction, at the cost of host-side
//! memory and many communication rounds. This module provides the torus
//! itself; the multiported ring schedule lives in
//! `pf_simnet::hostbased::multiported_torus_time`.

use pf_graph::{Graph, VertexId};

/// A torus with per-dimension extents `dims` (each ≥ 3 so the graph stays
/// simple — extent 2 would create parallel edges).
#[derive(Debug, Clone)]
pub struct Torus {
    dims: Vec<u32>,
    graph: Graph,
}

impl Torus {
    /// Builds the torus. Panics on empty `dims` or an extent < 3.
    pub fn new(dims: &[u32]) -> Self {
        assert!(!dims.is_empty(), "torus needs at least one dimension");
        assert!(dims.iter().all(|&k| k >= 3), "extents must be >= 3 to avoid parallel edges");
        let n: u64 = dims.iter().map(|&k| k as u64).product();
        assert!(n <= u32::MAX as u64, "torus too large");
        let mut graph = Graph::new(n as u32);
        for v in 0..n as u32 {
            let c = Self::coords_of(dims, v);
            for (d, &k) in dims.iter().enumerate() {
                let mut up = c.clone();
                up[d] = (c[d] + 1) % k;
                let u = Self::vertex_at(dims, &up);
                if u != v {
                    // Each undirected edge appears once (from its +1 side).
                    if !graph.has_edge(v, u) {
                        graph.add_edge(v, u);
                    }
                }
            }
        }
        Torus { dims: dims.to_vec(), graph }
    }

    fn coords_of(dims: &[u32], v: VertexId) -> Vec<u32> {
        let mut out = Vec::with_capacity(dims.len());
        let mut rest = v;
        for &k in dims {
            out.push(rest % k);
            rest /= k;
        }
        out
    }

    fn vertex_at(dims: &[u32], coords: &[u32]) -> VertexId {
        let mut v = 0u32;
        for (&k, &c) in dims.iter().zip(coords).rev() {
            v = v * k + c;
        }
        v
    }

    /// Per-dimension extents.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.graph.num_vertices()
    }

    /// Router radix `2n` (two directions per dimension).
    pub fn radix(&self) -> u32 {
        2 * self.dims.len() as u32
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Coordinates of a vertex.
    pub fn coords(&self, v: VertexId) -> Vec<u32> {
        Self::coords_of(&self.dims, v)
    }

    /// Vertex at given coordinates.
    pub fn vertex(&self, coords: &[u32]) -> VertexId {
        assert_eq!(coords.len(), self.dims.len());
        Self::vertex_at(&self.dims, coords)
    }

    /// The `+1` neighbor of `v` along dimension `d`.
    pub fn step(&self, v: VertexId, d: usize) -> VertexId {
        let mut c = self.coords(v);
        c[d] = (c[d] + 1) % self.dims[d];
        self.vertex(&c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn sizes_and_regularity() {
        let t = Torus::new(&[4, 5]);
        assert_eq!(t.num_nodes(), 20);
        assert_eq!(t.radix(), 4);
        assert_eq!(t.graph().num_edges(), 40); // 2 edges per node
        assert!(t.graph().vertices().all(|v| t.graph().degree(v) == 4));

        let t3 = Torus::new(&[3, 3, 3]);
        assert_eq!(t3.num_nodes(), 27);
        assert_eq!(t3.radix(), 6);
        // Extent-3 rings: each node's +1 and -1 neighbors are distinct.
        assert!(t3.graph().vertices().all(|v| t3.graph().degree(v) == 6));
    }

    #[test]
    fn diameter_is_sum_of_half_extents() {
        let t = Torus::new(&[4, 6]);
        assert_eq!(bfs::diameter(t.graph()), Some(2 + 3));
        let t3 = Torus::new(&[3, 3, 3]);
        assert_eq!(bfs::diameter(t3.graph()), Some(3));
    }

    #[test]
    fn coords_roundtrip() {
        let t = Torus::new(&[3, 4, 5]);
        for v in t.graph().vertices() {
            assert_eq!(t.vertex(&t.coords(v)), v);
        }
    }

    #[test]
    fn step_walks_rings() {
        let t = Torus::new(&[5, 3]);
        for v in t.graph().vertices() {
            for d in 0..2 {
                let mut cur = v;
                let k = t.dims()[d];
                for _ in 0..k {
                    let next = t.step(cur, d);
                    assert!(t.graph().has_edge(cur, next));
                    cur = next;
                }
                assert_eq!(cur, v, "ring closes after k steps");
            }
        }
    }

    #[test]
    #[should_panic(expected = ">= 3")]
    fn rejects_extent_two() {
        Torus::new(&[2, 4]);
    }
}
