//! Even-`q` quadric structure: the nucleus.
//!
//! The paper's layout and low-depth trees are stated for odd prime powers
//! (§6.1.1). In characteristic 2 the quadric polynomial degenerates —
//! `x² + y² + z² = (x + y + z)²` — so the quadrics are exactly the points
//! of the line `x + y + z = 0`, and all tangent lines pass through a
//! single point, the *nucleus* `[1, 1, 1]`. This module exposes and
//! verifies that structure; it is why Algorithm 2 does not transfer
//! unchanged (the nucleus is adjacent to *all* `q + 1` quadrics, where odd
//! `q` caps quadric-neighbor counts at 2 — compare Table 1), and it is the
//! starting point for the even-`q` layout the paper mentions but does not
//! construct.

use crate::er::PolarFly;
use pf_graph::VertexId;

/// The nucleus of an even-`q` PolarFly: the unique vertex adjacent to all
/// quadrics. Returns `None` for odd `q` (no such vertex exists there).
pub fn nucleus(pf: &PolarFly) -> Option<VertexId> {
    let quads = pf.quadrics();
    let mut found = None;
    for v in pf.graph().vertices() {
        if pf.is_quadric(v) {
            continue;
        }
        if quads.iter().all(|&w| pf.graph().has_edge(v, w)) {
            debug_assert!(found.is_none(), "nucleus must be unique");
            found = Some(v);
        }
    }
    found
}

/// Structural facts of the characteristic-2 quadric configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvenQStructure {
    pub nucleus: VertexId,
    pub quadrics: Vec<VertexId>,
    /// Count of quadric neighbors per non-quadric vertex (nucleus: `q+1`,
    /// everyone else: exactly 1).
    pub quadric_neighbor_histogram: Vec<(usize, usize)>,
}

/// Extracts and verifies the even-`q` structure. Errors on odd `q` or if
/// an expected invariant fails (which would indicate a construction bug).
pub fn even_q_structure(pf: &PolarFly) -> Result<EvenQStructure, String> {
    let q = pf.q();
    if q % 2 == 1 {
        return Err(format!("q = {q} is odd; the nucleus exists only in characteristic 2"));
    }
    let nucleus =
        nucleus(pf).ok_or_else(|| "no nucleus found in characteristic 2".to_string())?;
    if pf.point(nucleus) != [1, 1, 1] {
        return Err(format!("nucleus is {:?}, expected [1,1,1]", pf.point(nucleus)));
    }
    let quadrics = pf.quadrics();
    // Quadrics are pairwise non-adjacent even in characteristic 2 (the
    // line's points are self-orthogonal but not mutually orthogonal).
    for (i, &u) in quadrics.iter().enumerate() {
        for &v in &quadrics[i + 1..] {
            if pf.graph().has_edge(u, v) {
                return Err(format!("quadrics {u}, {v} adjacent"));
            }
        }
    }
    // Every non-quadric vertex except the nucleus touches exactly one
    // quadric (its unique tangent through the nucleus).
    let mut hist = std::collections::BTreeMap::new();
    for v in pf.graph().vertices() {
        if pf.is_quadric(v) {
            continue;
        }
        let k = pf.graph().neighbors(v).filter(|&u| pf.is_quadric(u)).count();
        *hist.entry(k).or_insert(0usize) += 1;
        let expect = if v == nucleus { q as usize + 1 } else { 1 };
        if k != expect {
            return Err(format!("vertex {v} touches {k} quadrics, expected {expect}"));
        }
    }
    Ok(EvenQStructure {
        nucleus,
        quadrics,
        quadric_neighbor_histogram: hist.into_iter().collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nucleus_exists_for_even_q() {
        for q in [2u64, 4, 8, 16] {
            let pf = PolarFly::new(q);
            let s = even_q_structure(&pf).unwrap_or_else(|e| panic!("q={q}: {e}"));
            assert_eq!(pf.point(s.nucleus), [1, 1, 1]);
            assert_eq!(s.quadrics.len() as u64, q + 1);
            // Histogram: one vertex (the nucleus) with q+1, q^2 - 1 with 1.
            assert_eq!(
                s.quadric_neighbor_histogram,
                vec![(1, (q * q - 1) as usize), (q as usize + 1, 1)]
            );
        }
    }

    #[test]
    fn no_nucleus_for_odd_q() {
        for q in [3u64, 5, 7, 9] {
            let pf = PolarFly::new(q);
            assert_eq!(nucleus(&pf), None, "q={q}");
            assert!(even_q_structure(&pf).is_err());
        }
    }

    #[test]
    fn quadrics_lie_on_the_all_ones_line() {
        // w quadric <=> w . [1,1,1] = 0 in characteristic 2.
        for q in [4u64, 8] {
            let pf = PolarFly::new(q);
            let gf = pf.field();
            for v in pf.graph().vertices() {
                let on_line = gf.dot3(pf.point(v), [1, 1, 1]) == 0;
                assert_eq!(on_line, pf.is_quadric(v), "q={q} v={v}");
            }
        }
    }
}
