//! Projective-geometry construction of the Erdős–Rényi polarity graph
//! `ER_q` (paper §6.1).
//!
//! Vertices are the left-normalized nonzero 3-vectors over `GF(q)`:
//!
//! ```text
//! { [1, y, z] : y, z ∈ F_q } ∪ { [0, 1, z] : z ∈ F_q } ∪ { [0, 0, 1] }
//! ```
//!
//! so `N = q^2 + q + 1`. An edge joins distinct vertices `u, v` iff their
//! dot product vanishes in `GF(q)`. Self-orthogonal vertices are the
//! *quadrics*; their conceptual self-loops are recorded but not added as
//! graph edges (PolarFly ignores them, §6.1).

use pf_galois::Gf;
use pf_graph::{Graph, VertexId};

/// The PolarFly topology for a prime-power `q`, carrying the field, the
/// point coordinates, the graph, and the quadric markers.
#[derive(Debug, Clone)]
pub struct PolarFly {
    q: u64,
    gf: Gf,
    points: Vec<[u16; 3]>,
    graph: Graph,
    quadric: Vec<bool>,
}

impl PolarFly {
    /// Builds `ER_q`. Panics if `q` is not a prime power (checked by the
    /// field constructor); use [`pf_galois::prime_power`] to pre-validate.
    ///
    /// ```
    /// use pf_topo::PolarFly;
    /// let pf = PolarFly::new(5);
    /// assert_eq!(pf.num_vertices(), 31);       // q^2 + q + 1
    /// assert_eq!(pf.graph().num_edges(), 90);  // q (q+1)^2 / 2
    /// assert_eq!(pf.quadrics().len(), 6);      // q + 1
    /// ```
    pub fn new(q: u64) -> Self {
        let gf = Gf::new(q).unwrap_or_else(|e| panic!("ER_q needs a prime power: {e}"));
        let points = enumerate_points(&gf);
        let n = points.len() as u32;
        debug_assert_eq!(n as u64, q * q + q + 1);

        let quadric: Vec<bool> = points.iter().map(|&p| gf.norm3(p) == 0).collect();
        let mut graph = Graph::new(n);
        for u in 0..n {
            for v in u + 1..n {
                if gf.dot3(points[u as usize], points[v as usize]) == 0 {
                    graph.add_edge(u, v);
                }
            }
        }
        PolarFly { q, gf, points, graph, quadric }
    }

    /// Field order `q` (network radix is `q + 1`).
    #[inline]
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Number of vertices `N = q^2 + q + 1`.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.q * self.q + self.q + 1
    }

    /// Network radix `q + 1` (max degree including the ignored self-loop).
    #[inline]
    pub fn radix(&self) -> u64 {
        self.q + 1
    }

    /// The underlying field.
    pub fn field(&self) -> &Gf {
        &self.gf
    }

    /// The underlying simple graph (no self-loops).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Projective coordinates of vertex `v`.
    pub fn point(&self, v: VertexId) -> [u16; 3] {
        self.points[v as usize]
    }

    /// Whether `v` is a quadric (self-orthogonal).
    #[inline]
    pub fn is_quadric(&self, v: VertexId) -> bool {
        self.quadric[v as usize]
    }

    /// All quadric vertices, sorted.
    pub fn quadrics(&self) -> Vec<VertexId> {
        (0..self.graph.num_vertices()).filter(|&v| self.quadric[v as usize]).collect()
    }

    /// Looks up the vertex id of a (not necessarily normalized) nonzero
    /// vector, normalizing it first. Returns `None` for the zero vector.
    pub fn vertex_of(&self, vec: [u16; 3]) -> Option<VertexId> {
        let norm = normalize(&self.gf, vec)?;
        self.points.iter().position(|&p| p == norm).map(|i| i as VertexId)
    }
}

/// Left-normalizes a vector (leading nonzero coordinate scaled to 1).
fn normalize(gf: &Gf, v: [u16; 3]) -> Option<[u16; 3]> {
    let lead = v.iter().position(|&c| c != 0)?;
    let inv = gf.inv(v[lead]);
    Some([gf.mul(v[0], inv), gf.mul(v[1], inv), gf.mul(v[2], inv)])
}

/// Enumerates the canonical point order: `[1,y,z]` (lexicographic in `y,z`
/// element labels), then `[0,1,z]`, then `[0,0,1]`.
fn enumerate_points(gf: &Gf) -> Vec<[u16; 3]> {
    let q = gf.order();
    let mut pts = Vec::with_capacity(q as usize * q as usize + q as usize + 1);
    for y in 0..q {
        for z in 0..q {
            pts.push([1, y, z]);
        }
    }
    for z in 0..q {
        pts.push([0, 1, z]);
    }
    pts.push([0, 0, 1]);
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn order_and_size() {
        for q in [3u64, 4, 5, 7, 8, 9] {
            let pf = PolarFly::new(q);
            let n = q * q + q + 1;
            assert_eq!(pf.graph().num_vertices() as u64, n, "q={q}");
            // |E| = q (q+1)^2 / 2 (Corollary 7.1's edge count).
            assert_eq!(pf.graph().num_edges() as u64, q * (q + 1) * (q + 1) / 2, "q={q}");
        }
    }

    #[test]
    fn degrees_match_table1() {
        // Quadrics have degree q (self-loop ignored); others q + 1.
        for q in [3u64, 4, 5, 7, 9] {
            let pf = PolarFly::new(q);
            for v in pf.graph().vertices() {
                let expect = if pf.is_quadric(v) { q } else { q + 1 };
                assert_eq!(pf.graph().degree(v) as u64, expect, "q={q} v={v}");
            }
        }
    }

    #[test]
    fn quadric_count() {
        for q in [3u64, 4, 5, 7, 8, 9, 11] {
            let pf = PolarFly::new(q);
            assert_eq!(pf.quadrics().len() as u64, q + 1, "q={q}");
        }
    }

    #[test]
    fn diameter_two_unique_midpoints() {
        // Theorem 6.1: diameter 2, and at most one 2-path between any pair.
        for q in [3u64, 4, 5, 7] {
            let pf = PolarFly::new(q);
            let g = pf.graph();
            assert_eq!(bfs::diameter(g), Some(2), "q={q}");
            for u in g.vertices() {
                for v in u + 1..g.num_vertices() {
                    let paths = bfs::count_two_paths(g, u, v);
                    assert!(paths <= 1, "q={q}: {paths} two-paths between {u},{v}");
                    if !g.has_edge(u, v) {
                        assert_eq!(paths, 1, "q={q}: non-adjacent {u},{v} need a 2-path");
                    }
                }
            }
        }
    }

    #[test]
    fn orthogonality_is_edge_predicate() {
        let pf = PolarFly::new(5);
        let g = pf.graph();
        let gf = pf.field();
        for u in g.vertices() {
            for v in u + 1..g.num_vertices() {
                let dot = gf.dot3(pf.point(u), pf.point(v));
                assert_eq!(g.has_edge(u, v), dot == 0);
            }
        }
    }

    #[test]
    fn points_are_left_normalized_and_distinct() {
        let pf = PolarFly::new(7);
        let mut seen = std::collections::HashSet::new();
        for v in pf.graph().vertices() {
            let p = pf.point(v);
            let lead = p.iter().find(|&&c| c != 0).copied();
            assert_eq!(lead, Some(1), "leading nonzero coordinate must be 1");
            assert!(seen.insert(p), "duplicate point {p:?}");
        }
    }

    #[test]
    fn vertex_lookup_handles_scaling() {
        let pf = PolarFly::new(5);
        let gf = pf.field();
        // [2, 4, 1] normalizes to [1, 2, 3] (multiply by inv(2) = 3).
        let direct = pf.vertex_of([1, 2, 3]).unwrap();
        let scaled = pf.vertex_of([2, 4, 1]).unwrap();
        assert_eq!(direct, scaled);
        assert_eq!(pf.vertex_of([0, 0, 0]), None);
        // Scaling by every nonzero constant maps to the same vertex.
        for c in 1..gf.order() {
            let v = [gf.mul(c, 1), gf.mul(c, 2), gf.mul(c, 3)];
            assert_eq!(pf.vertex_of(v), Some(direct));
        }
    }

    #[test]
    fn connectivity() {
        for q in [3u64, 4, 8, 9] {
            assert!(bfs::is_connected(PolarFly::new(q).graph()), "q={q}");
        }
    }

    #[test]
    fn even_q_also_constructs() {
        // Even prime powers build fine (layout is what's odd-only).
        let pf = PolarFly::new(8);
        assert_eq!(pf.num_vertices(), 73);
        assert_eq!(pf.quadrics().len(), 9);
    }

    #[test]
    #[should_panic(expected = "prime power")]
    fn rejects_non_prime_power() {
        PolarFly::new(6);
    }
}
