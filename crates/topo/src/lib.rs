//! PolarFly topology constructions (paper §6).
//!
//! Two independent constructions of the same diameter-2 topology:
//!
//! * [`er`]: the projective-geometry construction of the Erdős–Rényi
//!   polarity graph `ER_q` — vertices are left-normalized 3-vectors over
//!   `GF(q)`, edges join orthogonal vectors (§6.1),
//! * [`singer`]: the Singer difference-set construction `S_q` — vertices
//!   are `Z_N` residues (`N = q^2 + q + 1`), edges join `i, j` with
//!   `(i + j) mod N` in the difference set (§6.2).
//!
//! [`mod@classify`] implements the quadric / V1 / V2 vertex taxonomy (Table 1),
//! [`layout`] the modular cluster layout of Algorithm 2 with the Property
//! 1–3 validators, and [`iso`] the explicit isomorphism checks of §6.3
//! (Theorem 6.6, Corollaries 6.8/6.9).

pub mod classify;
pub mod er;
pub mod even;
pub mod iso;
pub mod layout;
pub mod metrics;
pub mod singer;
pub mod torus;

pub use classify::{classify, Classification, VertexClass};
pub use er::PolarFly;
pub use layout::Layout;
pub use singer::Singer;
