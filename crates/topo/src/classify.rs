//! Quadric / V1 / V2 vertex taxonomy and the Table 1 census.
//!
//! The quadrics (self-orthogonal vertices) induce a three-way partition of
//! `ER_q` (paper §6.1, Table 1):
//!
//! * `W(q)`: the `q + 1` quadrics,
//! * `V1(q)`: the `q(q+1)/2` vertices adjacent to a quadric,
//! * `V2(q)`: the `q(q-1)/2` vertices not adjacent to any quadric.
//!
//! The same classes can be read off the Singer construction (reflection
//! points and their neighbors, Corollaries 6.8/6.9), which is what makes
//! class-colored isomorphism checking possible in [`crate::iso`].

use pf_graph::{Graph, VertexId};

/// Vertex class in the quadric taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexClass {
    /// Self-orthogonal vertex (`W(q)`).
    Quadric,
    /// Adjacent to at least one quadric (`V1(q)`).
    V1,
    /// Not adjacent to any quadric (`V2(q)`).
    V2,
}

impl VertexClass {
    /// A stable small integer encoding (used as an isomorphism color).
    pub fn color(self) -> u32 {
        match self {
            VertexClass::Quadric => 0,
            VertexClass::V1 => 1,
            VertexClass::V2 => 2,
        }
    }
}

/// The classification of every vertex of a graph given its quadric set.
#[derive(Debug, Clone)]
pub struct Classification {
    classes: Vec<VertexClass>,
}

/// Classifies vertices of `g` given the quadric indicator. V1 = non-quadric
/// adjacent to a quadric; V2 = the rest.
pub fn classify(g: &Graph, is_quadric: &[bool]) -> Classification {
    assert_eq!(is_quadric.len(), g.num_vertices() as usize);
    let classes = g
        .vertices()
        .map(|v| {
            if is_quadric[v as usize] {
                VertexClass::Quadric
            } else if g.neighbors(v).any(|u| is_quadric[u as usize]) {
                VertexClass::V1
            } else {
                VertexClass::V2
            }
        })
        .collect();
    Classification { classes }
}

impl Classification {
    /// Class of vertex `v`.
    #[inline]
    pub fn class(&self, v: VertexId) -> VertexClass {
        self.classes[v as usize]
    }

    /// Per-vertex color vector (for isomorphism search).
    pub fn colors(&self) -> Vec<u32> {
        self.classes.iter().map(|c| c.color()).collect()
    }

    /// `(#W, #V1, #V2)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut w = 0;
        let mut v1 = 0;
        let mut v2 = 0;
        for c in &self.classes {
            match c {
                VertexClass::Quadric => w += 1,
                VertexClass::V1 => v1 += 1,
                VertexClass::V2 => v2 += 1,
            }
        }
        (w, v1, v2)
    }

    /// All vertices of a given class, sorted.
    pub fn of_class(&self, want: VertexClass) -> Vec<VertexId> {
        self.classes
            .iter()
            .enumerate()
            .filter_map(|(v, &c)| (c == want).then_some(v as VertexId))
            .collect()
    }

    /// Counts the neighbors of `v` in each class: `(#W, #V1, #V2)`.
    pub fn neighbor_counts(&self, g: &Graph, v: VertexId) -> (usize, usize, usize) {
        let mut w = 0;
        let mut v1 = 0;
        let mut v2 = 0;
        for u in g.neighbors(v) {
            match self.classes[u as usize] {
                VertexClass::Quadric => w += 1,
                VertexClass::V1 => v1 += 1,
                VertexClass::V2 => v2 += 1,
            }
        }
        (w, v1, v2)
    }
}

/// The full Table 1 census for an odd prime power `q`: global class counts
/// and the per-class neighborhood profile. Returns a human-readable error
/// naming the first violated entry.
pub fn verify_table1(g: &Graph, cls: &Classification, q: u64) -> Result<(), String> {
    if q.is_multiple_of(2) {
        return Err(format!("Table 1 neighborhood rows assume odd q (got q = {q})"));
    }
    let (w, v1, v2) = cls.counts();
    let expect = (
        (q + 1) as usize,
        (q * (q + 1) / 2) as usize,
        (q * (q - 1) / 2) as usize,
    );
    if (w, v1, v2) != expect {
        return Err(format!("class counts (W,V1,V2) = ({w},{v1},{v2}), expected {expect:?}"));
    }
    for v in g.vertices() {
        let got = cls.neighbor_counts(g, v);
        let want = match cls.class(v) {
            VertexClass::Quadric => (0, q as usize, 0),
            VertexClass::V1 => (2, ((q - 1) / 2) as usize, ((q - 1) / 2) as usize),
            VertexClass::V2 => (0, q.div_ceil(2) as usize, q.div_ceil(2) as usize),
        };
        if got != want {
            return Err(format!(
                "vertex {v} ({:?}) has neighbor profile {got:?}, expected {want:?}",
                cls.class(v)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::er::PolarFly;

    #[test]
    fn table1_counts_all_small_odd_q() {
        for q in [3u64, 5, 7, 9, 11, 13] {
            let pf = PolarFly::new(q);
            let quad: Vec<bool> =
                pf.graph().vertices().map(|v| pf.is_quadric(v)).collect();
            let cls = classify(pf.graph(), &quad);
            verify_table1(pf.graph(), &cls, q).unwrap_or_else(|e| panic!("q={q}: {e}"));
        }
    }

    #[test]
    fn even_q_counts_only() {
        // Global cardinalities hold for even q too; neighbor rows don't.
        for q in [4u64, 8, 16] {
            let pf = PolarFly::new(q);
            let quad: Vec<bool> =
                pf.graph().vertices().map(|v| pf.is_quadric(v)).collect();
            let cls = classify(pf.graph(), &quad);
            let (w, v1, v2) = cls.counts();
            assert_eq!(w as u64, q + 1, "q={q}");
            assert_eq!((w + v1 + v2) as u64, q * q + q + 1, "q={q}");
            assert!(verify_table1(pf.graph(), &cls, q).is_err());
        }
    }

    #[test]
    fn no_edges_between_quadrics_odd_q() {
        // Property 1.2 (also the W row of Table 1: quadrics have 0 quadric
        // neighbors) — odd q only; for even q the quadrics form a line.
        for q in [3u64, 5, 7, 9] {
            let pf = PolarFly::new(q);
            let quads = pf.quadrics();
            for (i, &u) in quads.iter().enumerate() {
                for &v in &quads[i + 1..] {
                    assert!(!pf.graph().has_edge(u, v), "q={q}: quadrics {u},{v} adjacent");
                }
            }
        }
    }

    #[test]
    fn of_class_partition() {
        let pf = PolarFly::new(5);
        let quad: Vec<bool> = pf.graph().vertices().map(|v| pf.is_quadric(v)).collect();
        let cls = classify(pf.graph(), &quad);
        let mut all: Vec<u32> = Vec::new();
        all.extend(cls.of_class(VertexClass::Quadric));
        all.extend(cls.of_class(VertexClass::V1));
        all.extend(cls.of_class(VertexClass::V2));
        all.sort_unstable();
        assert_eq!(all, pf.graph().vertices().collect::<Vec<_>>());
    }

    #[test]
    fn colors_encoding() {
        assert_eq!(VertexClass::Quadric.color(), 0);
        assert_eq!(VertexClass::V1.color(), 1);
        assert_eq!(VertexClass::V2.color(), 2);
    }
}
