//! Singer difference-set construction of PolarFly (paper §6.2).
//!
//! Vertices are residues of `Z_N`, `N = q^2 + q + 1`; `{i, j}` is an edge
//! iff `(i + j) mod N` lies in the Singer difference set `D`. Each edge
//! carries its *edge sum* (Definition 6.4) — an element of `D` acting as an
//! edge color; *reflection points* (`i` with `2i mod N ∈ D`, Definition
//! 6.5) carry self-loops and correspond to the quadrics of `ER_q`
//! (Corollary 6.8).

use pf_galois::{CubicExt, Gf};
use pf_graph::{EdgeId, Graph, VertexId};

/// The Singer graph `S_q` with its difference set and edge coloring.
#[derive(Debug, Clone)]
pub struct Singer {
    q: u64,
    n: u64,
    dset: Vec<u64>,
    graph: Graph,
    reflection: Vec<bool>,
    edge_sum: Vec<u64>,
}

impl Singer {
    /// Builds `S_q` from the canonical difference set (lexicographically
    /// smallest primitive cubic; see [`pf_galois::CubicExt`]). Panics if
    /// `q` is not a prime power.
    ///
    /// ```
    /// use pf_topo::Singer;
    /// let s = Singer::new(4);
    /// assert_eq!(s.difference_set(), &[0, 1, 4, 14, 16]); // paper Fig. 2b
    /// assert_eq!(s.reflection_points(), vec![0, 2, 7, 8, 11]);
    /// ```
    pub fn new(q: u64) -> Self {
        let gf = Gf::new(q).unwrap_or_else(|e| panic!("S_q needs a prime power: {e}"));
        let ext = CubicExt::new(gf);
        let dset = ext.singer_exponents();
        Self::from_difference_set(q, dset).expect("canonical Singer set is perfect")
    }

    /// Builds `S_q` from an explicit difference set, validating the perfect
    /// difference-set property first.
    pub fn from_difference_set(q: u64, mut dset: Vec<u64>) -> Result<Self, String> {
        let n = q * q + q + 1;
        dset.sort_unstable();
        dset.dedup();
        verify_difference_set(&dset, n)?;

        let in_d = {
            let mut v = vec![false; n as usize];
            for &d in &dset {
                v[d as usize] = true;
            }
            v
        };
        // O(N·|D|): each edge {i, (d - i) mod N} with i < partner.
        let mut graph = Graph::new(n as u32);
        let mut edge_sum = Vec::new();
        for i in 0..n {
            for &d in &dset {
                let j = (d + n - i % n) % n;
                if j > i {
                    let id = graph.add_edge(i as VertexId, j as VertexId);
                    debug_assert_eq!(id as usize, edge_sum.len());
                    debug_assert!(in_d[((i + j) % n) as usize]);
                    edge_sum.push(d);
                }
            }
        }
        let reflection: Vec<bool> =
            (0..n).map(|i| in_d[((2 * i) % n) as usize]).collect();
        Ok(Singer { q, n, dset, graph, reflection, edge_sum })
    }

    /// Field order `q`.
    #[inline]
    pub fn q(&self) -> u64 {
        self.q
    }

    /// Graph order `N = q^2 + q + 1`.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The sorted difference set `D`.
    pub fn difference_set(&self) -> &[u64] {
        &self.dset
    }

    /// The underlying simple graph (self-loops of reflection points are
    /// tracked separately, matching PolarFly's practice of ignoring them).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Whether `v` is a reflection point (`2v mod N ∈ D`).
    #[inline]
    pub fn is_reflection(&self, v: VertexId) -> bool {
        self.reflection[v as usize]
    }

    /// All reflection points, sorted. There are exactly `q + 1` — one per
    /// difference-set element (Corollary 6.8).
    pub fn reflection_points(&self) -> Vec<VertexId> {
        (0..self.n as VertexId).filter(|&v| self.reflection[v as usize]).collect()
    }

    /// The reflection point carrying the self-loop of color `d`:
    /// `2^{-1}·d mod N` (Corollary 6.8). Panics if `d ∉ D`.
    pub fn reflection_of(&self, d: u64) -> VertexId {
        assert!(self.dset.contains(&d), "{d} is not in the difference set");
        (pf_galois::zmod::half_mod(self.n) as u128 * d as u128 % self.n as u128) as VertexId
    }

    /// The edge sum (color) of edge `e` — an element of `D`.
    #[inline]
    pub fn edge_sum(&self, e: EdgeId) -> u64 {
        self.edge_sum[e as usize]
    }

    /// All edges of a given color `d ∈ D`, as edge ids.
    pub fn edges_of_color(&self, d: u64) -> Vec<EdgeId> {
        (0..self.graph.num_edges())
            .filter(|&e| self.edge_sum[e as usize] == d)
            .collect()
    }
}

/// Checks the perfect difference-set property (Definition 6.2): `|D| = q+1`
/// elements of `Z_N` whose pairwise ordered differences hit every nonzero
/// residue exactly once.
pub fn verify_difference_set(dset: &[u64], n: u64) -> Result<(), String> {
    let k = dset.len() as u64;
    if k * (k - 1) != n - 1 {
        return Err(format!(
            "|D| = {k} gives {} ordered differences; Z_{n} needs {}",
            k * (k - 1),
            n - 1
        ));
    }
    if let Some(&d) = dset.iter().find(|&&d| d >= n) {
        return Err(format!("element {d} out of Z_{n}"));
    }
    let mut seen = vec![false; n as usize];
    for &di in dset {
        for &dj in dset {
            if di == dj {
                continue;
            }
            let diff = ((di + n - dj) % n) as usize;
            if diff == 0 || seen[diff] {
                return Err(format!("difference {diff} repeated (from {di} - {dj})"));
            }
            seen[diff] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn q3_matches_paper_figure2a() {
        let s = Singer::new(3);
        assert_eq!(s.difference_set(), &[0, 1, 3, 9]);
        assert_eq!(s.reflection_points(), vec![0, 7, 8, 11]);
        assert_eq!(s.n(), 13);
    }

    #[test]
    fn q4_matches_paper_figure2b() {
        let s = Singer::new(4);
        assert_eq!(s.difference_set(), &[0, 1, 4, 14, 16]);
        assert_eq!(s.reflection_points(), vec![0, 2, 7, 8, 11]);
        assert_eq!(s.n(), 21);
    }

    #[test]
    fn structure_matches_er_counts() {
        for q in [3u64, 4, 5, 7, 8, 9] {
            let s = Singer::new(q);
            let n = q * q + q + 1;
            assert_eq!(s.graph().num_vertices() as u64, n);
            assert_eq!(s.graph().num_edges() as u64, q * (q + 1) * (q + 1) / 2, "q={q}");
            assert_eq!(s.reflection_points().len() as u64, q + 1, "q={q}");
            // Reflection points have degree q; the rest q + 1.
            for v in s.graph().vertices() {
                let expect = if s.is_reflection(v) { q } else { q + 1 };
                assert_eq!(s.graph().degree(v) as u64, expect, "q={q} v={v}");
            }
            assert_eq!(bfs::diameter(s.graph()), Some(2), "q={q}");
        }
    }

    #[test]
    fn reflection_of_matches_halving() {
        for q in [3u64, 4, 5, 7] {
            let s = Singer::new(q);
            let mut rps: Vec<VertexId> =
                s.difference_set().iter().map(|&d| s.reflection_of(d)).collect();
            rps.sort_unstable();
            assert_eq!(rps, s.reflection_points(), "q={q}");
        }
    }

    #[test]
    #[should_panic(expected = "not in the difference set")]
    fn reflection_of_rejects_non_member() {
        Singer::new(3).reflection_of(2);
    }

    #[test]
    fn edge_sums_partition_edges() {
        let s = Singer::new(4);
        let total: usize = s.difference_set().iter().map(|&d| s.edges_of_color(d).len()).sum();
        assert_eq!(total as u32, s.graph().num_edges());
        // Each color class: (N - 1) / 2 edges (pairs {i, d - i}), i.e. the
        // color's perfect matching minus the self-loop at the reflection point.
        for &d in s.difference_set() {
            assert_eq!(s.edges_of_color(d).len() as u64, (s.n() - 1) / 2, "color {d}");
        }
        // And colors agree with the definition.
        for (e, u, v) in s.graph().edges() {
            assert_eq!(s.edge_sum(e), (u as u64 + v as u64) % s.n());
        }
    }

    #[test]
    fn color_classes_are_matchings() {
        // Edges of one color pair up vertices {i, d-i}: no vertex repeats.
        let s = Singer::new(5);
        for &d in s.difference_set() {
            let mut seen = std::collections::HashSet::new();
            for e in s.edges_of_color(d) {
                let (u, v) = s.graph().endpoints(e);
                assert!(seen.insert(u), "color {d}: vertex {u} repeated");
                assert!(seen.insert(v), "color {d}: vertex {v} repeated");
            }
        }
    }

    #[test]
    fn from_difference_set_rejects_bad_sets() {
        assert!(Singer::from_difference_set(3, vec![0, 1, 2, 3]).is_err()); // not perfect
        assert!(Singer::from_difference_set(3, vec![0, 1, 3]).is_err()); // wrong size
        assert!(Singer::from_difference_set(3, vec![0, 1, 3, 13]).is_err()); // out of range
    }

    #[test]
    fn translated_difference_set_also_works() {
        // Difference sets are translation-invariant: D + c is also perfect.
        let base = Singer::new(3);
        let shifted: Vec<u64> =
            base.difference_set().iter().map(|&d| (d + 5) % 13).collect();
        let s = Singer::from_difference_set(3, shifted).unwrap();
        assert_eq!(s.graph().num_edges(), base.graph().num_edges());
    }
}
