//! The PolarFly modular layout — Algorithm 2 of the paper — and the
//! Property 1–3 validators the low-depth tree construction relies on.
//!
//! For an odd prime power `q`, pick a *starter quadric* `w`. Its `q`
//! neighbors become cluster *centers*; each cluster contains its center and
//! the center's non-quadric neighbors. Together with the quadric cluster
//! `W` this partitions all `N = q^2 + q + 1` vertices.

use crate::er::PolarFly;
use pf_graph::VertexId;

/// One non-quadric cluster `C_i`: its center and full member list
/// (center included, members sorted).
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The center `v_i`, adjacent to every other member (Property 1.3).
    pub center: VertexId,
    /// All members including the center, sorted by vertex id.
    pub members: Vec<VertexId>,
}

/// The computed layout: quadric cluster plus `q` non-quadric clusters.
#[derive(Debug, Clone)]
pub struct Layout {
    q: u64,
    starter: VertexId,
    quadrics: Vec<VertexId>,
    clusters: Vec<Cluster>,
    /// Cluster index per vertex; `None` for quadrics.
    cluster_of: Vec<Option<u32>>,
    /// Per cluster, the unique *non-starter* quadric adjacent to its center
    /// (Lemma 7.2 / Corollary 7.3).
    center_quadric: Vec<VertexId>,
}

impl Layout {
    /// Runs Algorithm 2 on `pf` with the given starter quadric (defaults to
    /// the smallest-id quadric). Fails for even `q` (the paper's layout is
    /// stated for odd prime powers) or if `starter` is not a quadric.
    pub fn new(pf: &PolarFly, starter: Option<VertexId>) -> Result<Self, String> {
        let q = pf.q();
        if q.is_multiple_of(2) {
            return Err(format!(
                "the PolarFly layout (Algorithm 2) is defined for odd prime powers; got q = {q}"
            ));
        }
        let g = pf.graph();
        let quadrics = pf.quadrics();
        let starter = match starter {
            Some(s) => {
                if !pf.is_quadric(s) {
                    return Err(format!("starter vertex {s} is not a quadric"));
                }
                s
            }
            None => quadrics[0],
        };

        let n = g.num_vertices() as usize;
        let mut cluster_of: Vec<Option<u32>> = vec![None; n];
        let mut clusters = Vec::with_capacity(q as usize);
        for center in g.neighbors(starter) {
            let idx = clusters.len() as u32;
            let mut members = vec![center];
            cluster_of[center as usize] = Some(idx);
            for u in g.neighbors(center) {
                if !pf.is_quadric(u) {
                    members.push(u);
                    if let Some(prev) = cluster_of[u as usize] {
                        return Err(format!(
                            "vertex {u} assigned to clusters {prev} and {idx}: layout is not a partition"
                        ));
                    }
                    cluster_of[u as usize] = Some(idx);
                }
            }
            members.sort_unstable();
            clusters.push(Cluster { center, members });
        }

        // Every non-quadric must be covered (Lakhotia et al. proved
        // Algorithm 2 adds each vertex to exactly one cluster).
        for v in g.vertices() {
            if !pf.is_quadric(v) && cluster_of[v as usize].is_none() {
                return Err(format!("non-quadric vertex {v} not covered by any cluster"));
            }
        }

        // w_i: the unique quadric neighbor of each center besides the starter.
        let mut center_quadric = Vec::with_capacity(clusters.len());
        for c in &clusters {
            let mut others =
                g.neighbors(c.center).filter(|&u| pf.is_quadric(u) && u != starter);
            let wi = others
                .next()
                .ok_or_else(|| format!("center {} has no non-starter quadric neighbor", c.center))?;
            if others.next().is_some() {
                return Err(format!("center {} has multiple non-starter quadric neighbors", c.center));
            }
            center_quadric.push(wi);
        }

        Ok(Layout { q, starter, quadrics, clusters, cluster_of, center_quadric })
    }

    /// Field order `q`.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The starter quadric `w`.
    pub fn starter(&self) -> VertexId {
        self.starter
    }

    /// The quadric cluster `W`, sorted.
    pub fn quadrics(&self) -> &[VertexId] {
        &self.quadrics
    }

    /// The `q` non-quadric clusters.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Cluster index of a non-quadric vertex (`None` for quadrics).
    pub fn cluster_of(&self, v: VertexId) -> Option<u32> {
        self.cluster_of[v as usize]
    }

    /// The unique non-starter quadric `w_i` adjacent to cluster `i`'s
    /// center (Corollary 7.3).
    pub fn center_quadric(&self, i: usize) -> VertexId {
        self.center_quadric[i]
    }

    /// Whether `v` is a cluster center.
    pub fn is_center(&self, v: VertexId) -> bool {
        self.cluster_of(v)
            .map(|i| self.clusters[i as usize].center == v)
            .unwrap_or(false)
    }

    /// Property 1: cluster contents. Sizes, no quadric–quadric edges,
    /// centers adjacent to all their members.
    pub fn verify_property1(&self, pf: &PolarFly) -> Result<(), String> {
        let q = self.q;
        let g = pf.graph();
        if self.quadrics.len() as u64 != q + 1 {
            return Err(format!("|W| = {}, expected q + 1 = {}", self.quadrics.len(), q + 1));
        }
        for (i, c) in self.clusters.iter().enumerate() {
            if c.members.len() as u64 != q {
                return Err(format!("|C_{i}| = {}, expected q = {q}", c.members.len()));
            }
            for &m in &c.members {
                if m != c.center && !g.has_edge(c.center, m) {
                    return Err(format!("center {} not adjacent to member {m} of C_{i}", c.center));
                }
            }
        }
        let total: usize = self.quadrics.len() + self.clusters.iter().map(|c| c.members.len()).sum::<usize>();
        if total as u64 != q * q + q + 1 {
            return Err(format!("clusters cover {total} vertices, expected N = {}", q * q + q + 1));
        }
        for (i, &u) in self.quadrics.iter().enumerate() {
            for &v in &self.quadrics[i + 1..] {
                if g.has_edge(u, v) {
                    return Err(format!("quadrics {u} and {v} are adjacent"));
                }
            }
        }
        Ok(())
    }

    /// Property 2: connectivity between `W` and each `C_i`.
    pub fn verify_property2(&self, pf: &PolarFly) -> Result<(), String> {
        let q = self.q;
        let g = pf.graph();
        for (i, c) in self.clusters.iter().enumerate() {
            let mut cross = 0u64;
            for &w in &self.quadrics {
                let adj: Vec<VertexId> =
                    c.members.iter().copied().filter(|&m| g.has_edge(w, m)).collect();
                if adj.len() != 1 {
                    return Err(format!(
                        "quadric {w} adjacent to {} vertices of C_{i}, expected exactly 1",
                        adj.len()
                    ));
                }
                cross += adj.len() as u64;
            }
            if cross != q + 1 {
                return Err(format!("{cross} edges between W and C_{i}, expected q + 1 = {}", q + 1));
            }
            for &m in &c.members {
                let quad_neighbors = g.neighbors(m).filter(|&u| pf.is_quadric(u)).count();
                let is_v1 = quad_neighbors > 0;
                if is_v1 && quad_neighbors != 2 {
                    return Err(format!(
                        "V1 vertex {m} in C_{i} adjacent to {quad_neighbors} quadrics, expected 2"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Property 3: connectivity between distinct non-quadric clusters.
    pub fn verify_property3(&self, pf: &PolarFly) -> Result<(), String> {
        let q = self.q;
        let g = pf.graph();
        for (i, ci) in self.clusters.iter().enumerate() {
            for (j, cj) in self.clusters.iter().enumerate() {
                if i == j {
                    continue;
                }
                let mut cross = 0u64;
                let mut unconnected: Vec<VertexId> = Vec::new();
                for &m in &cj.members {
                    let deg_to_ci =
                        ci.members.iter().filter(|&&u| g.has_edge(u, m)).count() as u64;
                    cross += deg_to_ci;
                    if deg_to_ci == 0 {
                        unconnected.push(m);
                    }
                }
                if cross != q - 2 {
                    return Err(format!(
                        "{cross} edges between C_{i} and C_{j}, expected q - 2 = {}",
                        q - 2
                    ));
                }
                // Exactly the center v_j and one non-center u are isolated from C_i.
                if unconnected.len() != 2 || !unconnected.contains(&cj.center) {
                    return Err(format!(
                        "C_{j} vertices without C_{i} edges: {unconnected:?} (expected center {} plus one non-center)",
                        cj.center
                    ));
                }
                let u = *unconnected.iter().find(|&&x| x != cj.center).unwrap();
                // A non-starter quadric w' adjacent to both u and v_i.
                let witness = self
                    .quadrics
                    .iter()
                    .any(|&w| w != self.starter && g.has_edge(w, u) && g.has_edge(w, ci.center));
                if !witness {
                    return Err(format!(
                        "no non-starter quadric adjacent to both {u} (in C_{j}) and center {} of C_{i}",
                        ci.center
                    ));
                }
            }
        }
        Ok(())
    }

    /// Lemma 7.2: the non-starter quadric neighbors of distinct centers are
    /// distinct, so `i -> w_i` is a bijection onto the non-starter quadrics
    /// (Corollary 7.3).
    pub fn verify_center_quadric_bijection(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for (i, &wi) in self.center_quadric.iter().enumerate() {
            if wi == self.starter {
                return Err(format!("w_{i} equals the starter quadric"));
            }
            if !seen.insert(wi) {
                return Err(format!("non-starter quadric {wi} serves two centers"));
            }
        }
        if seen.len() as u64 != self.q {
            return Err(format!("{} distinct w_i, expected q = {}", seen.len(), self.q));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(q: u64) -> (PolarFly, Layout) {
        let pf = PolarFly::new(q);
        let l = Layout::new(&pf, None).unwrap();
        (pf, l)
    }

    #[test]
    fn properties_hold_small_odd_q() {
        for q in [3u64, 5, 7, 9, 11, 13] {
            let (pf, l) = layout(q);
            l.verify_property1(&pf).unwrap_or_else(|e| panic!("q={q} P1: {e}"));
            l.verify_property2(&pf).unwrap_or_else(|e| panic!("q={q} P2: {e}"));
            l.verify_property3(&pf).unwrap_or_else(|e| panic!("q={q} P3: {e}"));
            l.verify_center_quadric_bijection().unwrap_or_else(|e| panic!("q={q}: {e}"));
        }
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let (pf, l) = layout(11);
        let n = pf.graph().num_vertices();
        let mut count = vec![0u32; n as usize];
        for &w in l.quadrics() {
            count[w as usize] += 1;
        }
        for c in l.clusters() {
            for &m in &c.members {
                count[m as usize] += 1;
            }
        }
        assert!(count.iter().all(|&c| c == 1), "every vertex in exactly one cluster");
    }

    #[test]
    fn cluster_of_agrees_with_membership() {
        let (pf, l) = layout(7);
        for (i, c) in l.clusters().iter().enumerate() {
            for &m in &c.members {
                assert_eq!(l.cluster_of(m), Some(i as u32));
            }
            assert!(l.is_center(c.center));
            for &m in &c.members {
                if m != c.center {
                    assert!(!l.is_center(m));
                }
            }
        }
        for &w in l.quadrics() {
            assert_eq!(l.cluster_of(w), None);
            assert!(!l.is_center(w));
        }
        assert_eq!(l.clusters().len() as u64, pf.q());
    }

    #[test]
    fn every_starter_choice_works() {
        let pf = PolarFly::new(5);
        for s in pf.quadrics() {
            let l = Layout::new(&pf, Some(s)).unwrap();
            assert_eq!(l.starter(), s);
            l.verify_property1(&pf).unwrap();
            l.verify_property2(&pf).unwrap();
            l.verify_property3(&pf).unwrap();
        }
    }

    #[test]
    fn rejects_even_q() {
        let pf = PolarFly::new(4);
        assert!(Layout::new(&pf, None).is_err());
    }

    #[test]
    fn rejects_non_quadric_starter() {
        let pf = PolarFly::new(3);
        let non_quad = pf.graph().vertices().find(|&v| !pf.is_quadric(v)).unwrap();
        assert!(Layout::new(&pf, Some(non_quad)).is_err());
    }

    #[test]
    fn center_quadrics_are_adjacent_to_centers() {
        let (pf, l) = layout(9);
        for (i, c) in l.clusters().iter().enumerate() {
            let wi = l.center_quadric(i);
            assert!(pf.is_quadric(wi));
            assert_ne!(wi, l.starter());
            assert!(pf.graph().has_edge(wi, c.center));
        }
    }
}
