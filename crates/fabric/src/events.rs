//! Seeded virtual-time event sources.
//!
//! The fabric manager is "async" only in shape: an mpsc-style front end
//! would feed it in production, but determinism comes from driving the
//! same event-loop API from a *seeded virtual-time source* — the same
//! seed and trace produce the same submit/fault/heal sequence, hence a
//! byte-identical fabric report. [`PoissonJobs`] is the workhorse: an
//! iterator of [`pf_sched::JobSpec`]s with exponential inter-arrival gaps
//! and mixed sizes/kinds/priorities, generated lazily so a 10^6-job soak
//! never materializes its stream.

use pf_sched::JobSpec;
use pf_simnet::ReduceKind;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// One event a trace can feed the manager, tagged with its virtual time.
#[derive(Debug, Clone)]
pub enum FabricEvent {
    /// A tenant submits a job at `spec.arrival`.
    Submit(JobSpec),
    /// Links die (healthy-graph edge ids); the manager repairs its plan.
    LinkFaults {
        /// Virtual cycle the outage is reported.
        at: u64,
        /// Failed links, healthy edge ids.
        edges: Vec<u32>,
    },
    /// The operator restores the fabric to full health.
    Heal {
        /// Virtual cycle the repair completes.
        at: u64,
    },
}

impl FabricEvent {
    /// The event's virtual time (traces must be fed in nondecreasing
    /// order of this).
    #[must_use]
    pub fn at(&self) -> u64 {
        match self {
            FabricEvent::Submit(s) => s.arrival,
            FabricEvent::LinkFaults { at, .. } | FabricEvent::Heal { at } => *at,
        }
    }
}

/// An endless seeded Poisson job stream (see module docs).
///
/// Inter-arrival gaps are exponential with mean `mean_gap` (inverse
/// transform over a 53-bit uniform; `f64::ln` is IEEE-deterministic on a
/// given platform, and the result is rounded to whole cycles so reports
/// carry only integers). Sizes are log-uniform-ish over
/// `[elems_lo, elems_hi]`, one job in four reduces `f64` gradients, and
/// priorities cycle 0..4 — the same mix as the scheduler sweep, so fabric
/// and batch benchmarks stress comparable streams.
pub struct PoissonJobs {
    rng: StdRng,
    mean_gap: f64,
    elems_lo: u64,
    elems_hi: u64,
    t: u64,
    next_id: u32,
}

impl PoissonJobs {
    /// A stream with the given seed, mean inter-arrival gap (cycles) and
    /// vector-size range.
    #[must_use]
    pub fn new(seed: u64, mean_gap: u64, elems_lo: u64, elems_hi: u64) -> Self {
        assert!(mean_gap >= 1 && elems_lo >= 1 && elems_lo <= elems_hi);
        PoissonJobs {
            rng: StdRng::seed_from_u64(seed),
            mean_gap: mean_gap as f64,
            elems_lo,
            elems_hi,
            t: 0,
            next_id: 0,
        }
    }

    /// Draws the next exponential gap, ≥ 1 cycle.
    fn gap(&mut self) -> u64 {
        // 53-bit uniform in (0, 1]: never 0, so ln is finite.
        let u = ((self.rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let g = -u.ln() * self.mean_gap;
        (g as u64).max(1)
    }
}

impl Iterator for PoissonJobs {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        self.t += self.gap();
        let id = self.next_id;
        self.next_id += 1;
        let elems = self.rng.random_range(self.elems_lo..=self.elems_hi);
        let kind = if self.rng.random_range(0u32..4) == 0 {
            ReduceKind::FloatF64
        } else {
            ReduceKind::WrappingU64
        };
        let priority = self.rng.random_range(0u32..4);
        Some(JobSpec { kind, priority, ..JobSpec::new(id, self.t, elems) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_seed_deterministic_and_monotone() {
        let a: Vec<JobSpec> = PoissonJobs::new(7, 500, 64, 256).take(200).collect();
        let b: Vec<JobSpec> = PoissonJobs::new(7, 500, 64, 256).take(200).collect();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, x.arrival, x.elems, x.kind, x.priority),
                       (y.id, y.arrival, y.elems, y.kind, y.priority));
        }
        for w in a.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "arrivals must be nondecreasing");
        }
        assert!(a.iter().all(|s| (64..=256).contains(&s.elems)));
    }

    #[test]
    fn mean_gap_is_roughly_honored() {
        let jobs: Vec<JobSpec> = PoissonJobs::new(11, 1000, 64, 64).take(2000).collect();
        let span = jobs.last().unwrap().arrival - jobs[0].arrival;
        let mean = span as f64 / (jobs.len() - 1) as f64;
        assert!((500.0..2000.0).contains(&mean), "mean gap {mean} far from 1000");
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<u64> = PoissonJobs::new(1, 500, 64, 256).take(50).map(|s| s.arrival).collect();
        let b: Vec<u64> = PoissonJobs::new(2, 500, 64, 256).take(50).map(|s| s.arrival).collect();
        assert_ne!(a, b);
    }
}
