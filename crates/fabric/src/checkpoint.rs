//! Checkpoint / restore for the fabric manager.
//!
//! Format `pf-fabric-ckpt-v1`: versioned, line-based ASCII, integers only
//! (the digest and fingerprints are decimal `u64`s) — like the bench JSON
//! files it is byte-deterministic, so a round trip through
//! [`FabricManager::checkpoint`] → [`FabricManager::restore`] →
//! [`FabricManager::checkpoint`] is byte-identical, and two managers fed
//! the same trace checkpoint identically.
//!
//! What is saved: the virtual clock, every aggregate counter, the latency
//! histogram, the rolling digest, the active fault set, and both job
//! queues (full specs, ingestion order). What is deliberately *not*
//! saved: the plan cache and the degraded plan. Both are pure functions
//! of `(healthy plan, fault set)` — restore re-derives the degraded plan
//! from the saved fault set (without counting a repair event; the saved
//! counters already account for it) and starts with a cold cache, whose
//! stats are the only report fields a restored manager may differ in.

use crate::manager::{FabricConfig, FabricManager, LATENCY_BUCKETS};
use pf_allreduce::recovery::rebuild_degraded;
use pf_allreduce::{AllreducePlan, FaultSet};
use pf_sched::{validate_spec, JobSpec};
use pf_simnet::{Collective, ReduceKind};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// The checkpoint format's magic first line.
pub const CHECKPOINT_MAGIC: &str = "pf-fabric-ckpt-v1";

/// Why a checkpoint could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The first line is not [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// The text ended before the `end` marker.
    Truncated,
    /// A line did not parse (1-based line number and what was expected).
    Malformed {
        /// 1-based line number in the checkpoint text.
        line: usize,
        /// What the parser expected there.
        expected: &'static str,
    },
    /// The saved fault set does not apply to the given plan (wrong plan,
    /// or it would partition the fabric).
    FaultMismatch,
    /// A saved job spec is invalid for the given plan.
    BadJob(u32),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => {
                write!(f, "checkpoint does not start with {CHECKPOINT_MAGIC}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint ends before the end marker"),
            CheckpointError::Malformed { line, expected } => {
                write!(f, "checkpoint line {line}: expected {expected}")
            }
            CheckpointError::FaultMismatch => {
                write!(f, "saved fault set does not apply to this plan")
            }
            CheckpointError::BadJob(id) => write!(f, "saved job {id} is invalid for this plan"),
        }
    }
}

impl std::error::Error for CheckpointError {}

fn push_job(out: &mut String, s: &JobSpec) {
    let kind = match s.kind {
        ReduceKind::WrappingU64 => "u64",
        ReduceKind::FloatF64 => "f64",
    };
    let participants = match &s.participants {
        None => "-".to_string(),
        Some(p) => {
            p.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
        }
    };
    writeln!(
        out,
        "job {} {} {} {kind} {} {} {participants}",
        s.id,
        s.arrival,
        s.elems,
        s.priority,
        s.collective.name()
    )
    .expect("writing to a String cannot fail");
}

impl FabricManager {
    /// Serializes the manager's resumable state (see module docs).
    #[must_use]
    pub fn checkpoint(&self) -> String {
        let mut out = String::new();
        let w = &mut out;
        writeln!(w, "{CHECKPOINT_MAGIC}").unwrap();
        writeln!(w, "now {} {}", self.now, self.last_event).unwrap();
        writeln!(
            w,
            "counters {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            self.submitted,
            self.accepted,
            self.deferred,
            self.rejected,
            self.invalid,
            self.completed,
            self.total_elems,
            self.epochs,
            self.waves,
            self.makespan,
            self.mismatches,
            self.max_comb,
            self.incremental_repairs,
            self.full_rebuilds,
            self.heals,
            self.fault_events
        )
        .unwrap();
        writeln!(
            w,
            "sums {} {} {} {}",
            self.latency_sum, self.queueing_sum, self.max_latency, self.digest
        )
        .unwrap();
        let hist =
            self.latency_hist.iter().map(u64::to_string).collect::<Vec<_>>().join(" ");
        writeln!(w, "hist {hist}").unwrap();
        let faults =
            self.faults.edges.iter().map(u32::to_string).collect::<Vec<_>>().join(" ");
        writeln!(w, "faults {}{}{faults}", self.faults.edges.len(), if faults.is_empty() { "" } else { " " }).unwrap();
        writeln!(w, "ready {}", self.ready.len()).unwrap();
        for s in &self.ready {
            push_job(w, s);
        }
        writeln!(w, "deferred {}", self.deferred_q.len()).unwrap();
        for s in &self.deferred_q {
            push_job(w, s);
        }
        writeln!(w, "end").unwrap();
        out
    }

    /// Reconstructs a manager from a checkpoint taken on the same healthy
    /// plan. The degraded plan is re-derived from the saved fault set;
    /// the cache starts cold (its stats are the only report fields that
    /// may differ from the checkpointed manager's).
    pub fn restore(
        plan: AllreducePlan,
        cfg: FabricConfig,
        text: &str,
    ) -> Result<FabricManager, CheckpointError> {
        let mut p = Parser { lines: text.lines().enumerate() };
        if p.next_line()?.1 != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let mut m = FabricManager::new(plan, cfg);

        let now = p.fields("now", 2)?;
        (m.now, m.last_event) = (now[0], now[1]);
        let c = p.fields("counters", 16)?;
        m.submitted = c[0];
        m.accepted = c[1];
        m.deferred = c[2];
        m.rejected = c[3];
        m.invalid = c[4];
        m.completed = c[5];
        m.total_elems = c[6];
        m.epochs = c[7];
        m.waves = c[8];
        m.makespan = c[9];
        m.mismatches = c[10];
        m.max_comb = u32::try_from(c[11])
            .map_err(|_| CheckpointError::Malformed { line: 3, expected: "u32 max_comb" })?;
        m.incremental_repairs = c[12];
        m.full_rebuilds = c[13];
        m.heals = c[14];
        m.fault_events = c[15];
        let s = p.fields("sums", 4)?;
        (m.latency_sum, m.queueing_sum, m.max_latency, m.digest) = (s[0], s[1], s[2], s[3]);
        let hist = p.fields("hist", LATENCY_BUCKETS)?;
        m.latency_hist.copy_from_slice(&hist);

        let (line, text) = p.next_line()?;
        let mut it = text.split_whitespace();
        if it.next() != Some("faults") {
            return Err(CheckpointError::Malformed { line, expected: "faults <n> <edges...>" });
        }
        let n: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(CheckpointError::Malformed { line, expected: "fault count" })?;
        let edges: Vec<u32> = it
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| CheckpointError::Malformed { line, expected: "u32 edge ids" })?;
        if edges.len() != n {
            return Err(CheckpointError::Malformed { line, expected: "matching fault count" });
        }
        if edges.iter().any(|&e| e >= m.healthy.graph.num_edges()) {
            return Err(CheckpointError::FaultMismatch);
        }
        if !edges.is_empty() {
            let faults = FaultSet::links(edges);
            let degraded = rebuild_degraded(&m.healthy, &faults)
                .map_err(|_| CheckpointError::FaultMismatch)?;
            m.current = Arc::new(degraded.to_plan(m.healthy.q));
            m.degraded = Some(degraded);
            m.fault_fp = faults.fingerprint();
            m.faults = faults;
        }

        m.ready = p.queue(&m.healthy)?;
        m.deferred_q = p.queue(&m.healthy)?;
        m.queued_ids = m.ready.iter().chain(&m.deferred_q).map(|s| s.id).collect();
        m.ready_elems = m.ready.iter().map(|s| s.elems).sum();
        if p.next_line()?.1 != "end" {
            return Err(CheckpointError::Truncated);
        }
        Ok(m)
    }
}

struct Parser<'t> {
    lines: std::iter::Enumerate<std::str::Lines<'t>>,
}

impl<'t> Parser<'t> {
    /// Current 1-based line number of the last line returned.
    fn next_line(&mut self) -> Result<(usize, &'t str), CheckpointError> {
        self.lines.next().map(|(i, l)| (i + 1, l)).ok_or(CheckpointError::Truncated)
    }

    /// `<tag> <u64>{count}` lines.
    fn fields(&mut self, tag: &'static str, count: usize) -> Result<Vec<u64>, CheckpointError> {
        let (line, text) = self.next_line()?;
        let mut it = text.split_whitespace();
        if it.next() != Some(tag) {
            return Err(CheckpointError::Malformed { line, expected: tag });
        }
        let vals: Vec<u64> = it
            .map(str::parse)
            .collect::<Result<_, _>>()
            .map_err(|_| CheckpointError::Malformed { line, expected: "u64 fields" })?;
        if vals.len() != count {
            return Err(CheckpointError::Malformed { line, expected: "exact field count" });
        }
        Ok(vals)
    }

    /// `ready <n>` / `deferred <n>` followed by n `job` lines.
    fn queue(&mut self, plan: &AllreducePlan) -> Result<VecDeque<JobSpec>, CheckpointError> {
        let (line, text) = self.next_line()?;
        let mut it = text.split_whitespace();
        let tag = it.next();
        if tag != Some("ready") && tag != Some("deferred") {
            return Err(CheckpointError::Malformed { line, expected: "ready/deferred header" });
        }
        let n: usize = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or(CheckpointError::Malformed { line, expected: "queue length" })?;
        let mut q = VecDeque::with_capacity(n);
        for _ in 0..n {
            let (line, text) = self.next_line()?;
            let spec = parse_job(text)
                .ok_or(CheckpointError::Malformed { line, expected: "job line" })?;
            validate_spec(&spec, plan).map_err(|_| CheckpointError::BadJob(spec.id))?;
            q.push_back(spec);
        }
        Ok(q)
    }
}

fn parse_job(text: &str) -> Option<JobSpec> {
    let mut it = text.split_whitespace();
    if it.next() != Some("job") {
        return None;
    }
    let id: u32 = it.next()?.parse().ok()?;
    let arrival: u64 = it.next()?.parse().ok()?;
    let elems: u64 = it.next()?.parse().ok()?;
    let kind = match it.next()? {
        "u64" => ReduceKind::WrappingU64,
        "f64" => ReduceKind::FloatF64,
        _ => return None,
    };
    let priority: u32 = it.next()?.parse().ok()?;
    let collective = Collective::from_name(it.next()?)?;
    let participants = match it.next()? {
        "-" => None,
        list => Some(
            list.split(',').map(str::parse).collect::<Result<Vec<u32>, _>>().ok()?,
        ),
    };
    if it.next().is_some() {
        return None;
    }
    Some(JobSpec { id, arrival, elems, kind, priority, participants, collective })
}
