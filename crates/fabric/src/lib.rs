//! `pf-fabric` — the always-on fabric-manager service.
//!
//! Everything below this crate answers "what does one allreduce / one
//! batch cost?"; this crate answers "what does *operating the fabric*
//! cost?". A [`FabricManager`] owns one PolarFly allreduce plan for the
//! life of the process and serves an open-ended stream of collective
//! jobs under admission control, amortizing plan construction in a
//! deterministic LRU [`PlanCache`] and absorbing link faults with
//! incremental degraded-plan repair — all in seeded virtual time, so the
//! same trace always produces a byte-identical [`FabricReport`].
//!
//! Module map:
//!
//! * [`manager`] — the event loop: bounded ingestion queues
//!   (accept / defer / reject), lazy epoch dispatch through
//!   [`pf_sched::Scheduler::run_epoch`], fault/heal handling, flat-memory
//!   aggregates (counters, log2 latency histogram, rolling digest).
//! * [`cache`] — the plan cache keyed by *(topology fingerprint,
//!   fault fingerprint, tree subset)* and the [`pf_sched::PlanProvider`]
//!   adapter that routes scheduler subset requests through it.
//! * [`events`] — seeded virtual-time event sources ([`PoissonJobs`])
//!   and the [`FabricEvent`] trace vocabulary.
//! * [`checkpoint`] — versioned `pf-fabric-ckpt-v1` checkpoint/restore;
//!   round trips are byte-identical.
//!
//! See `docs/FABRIC.md` for the service design and the
//! `experiments fabric-sweep` benchmark it feeds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod events;
pub mod manager;

pub use cache::{CacheKey, CacheStats, CachingProvider, PlanCache};
pub use checkpoint::{CheckpointError, CHECKPOINT_MAGIC};
pub use events::{FabricEvent, PoissonJobs};
pub use manager::{Admission, FabricConfig, FabricManager, FabricReport, LATENCY_BUCKETS};
