//! The plan cache: amortizing `tree_subset` / degraded-plan construction
//! across millions of jobs.
//!
//! Every wave needs a priced subset plan per admitted job, and every fault
//! epoch needs a rebuilt full plan. A streaming fabric sees the same
//! handful of subsets over and over — with `q` trees and `max_concurrent`
//! tenants the allocator can only hand out so many distinct partitions —
//! so the cache turns an Algorithm 1 re-pricing per job into a `BTreeMap`
//! lookup.
//!
//! Keys are *(topology fingerprint, fault-set fingerprint, tree subset)*:
//! the topology fingerprint pins the healthy substrate, the fault
//! fingerprint distinguishes degraded epochs (and lets entries from an
//! earlier epoch be re-hit when the fabric heals back into a previously
//! seen fault state), and the subset is the allocator's tree indices. An
//! empty subset keys the *full* current plan (the degraded rebuild
//! itself).
//!
//! Eviction is deterministic LRU: a logical tick stamps every access, and
//! when the cache exceeds capacity the smallest-stamp entry leaves. No
//! wall clock, no hasher randomness — two runs with the same stream make
//! identical cache decisions, which the byte-identical-report guarantee
//! depends on.

use pf_allreduce::AllreducePlan;
use pf_sched::PlanProvider;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A cache key (see module docs). `Ord` so the map iterates
/// deterministically.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    /// Fingerprint of the healthy topology (`pf_allreduce::fingerprint`).
    pub topology: u64,
    /// Fingerprint of the active fault set (`FaultSet::fingerprint`).
    pub faults: u64,
    /// Full-plan tree indices, sorted; empty = the full current plan.
    pub trees: Vec<u32>,
}

/// Hit/miss/eviction counters, surfaced in the fabric report next to the
/// engine's stats summaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to construct.
    pub misses: u64,
    /// Entries evicted by LRU pressure.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups (1.0 for an all-hit run, 0.0 when empty).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    plan: Arc<AllreducePlan>,
    last_used: u64,
}

/// Deterministic-LRU plan cache (see module docs).
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    map: BTreeMap<CacheKey, Entry>,
    stats: CacheStats,
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a zero-capacity cache cannot serve lookups");
        PlanCache { capacity, tick: 0, map: BTreeMap::new(), stats: CacheStats::default() }
    }

    /// Returns the cached plan for `key`, constructing it with `build` on
    /// a miss. The returned `Arc` is shared — callers must treat the plan
    /// as immutable (every user does; plans are construct-once values).
    pub fn get_or_insert_with(
        &mut self,
        key: CacheKey,
        build: impl FnOnce() -> Arc<AllreducePlan>,
    ) -> Arc<AllreducePlan> {
        self.tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            entry.last_used = self.tick;
            self.stats.hits += 1;
            return Arc::clone(&entry.plan);
        }
        self.stats.misses += 1;
        let plan = build();
        self.map.insert(key, Entry { plan: Arc::clone(&plan), last_used: self.tick });
        if self.map.len() > self.capacity {
            // Deterministic LRU: the tick is unique per access, so the
            // minimum is unique; ties cannot happen.
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("map is non-empty");
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
        plan
    }

    /// Current entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// A [`PlanProvider`] that routes the scheduler's subset requests through
/// the cache under a fixed *(topology, faults)* prefix — the manager
/// rebuilds one of these per epoch with the current fault fingerprint.
pub struct CachingProvider<'c> {
    /// The shared cache.
    pub cache: &'c mut PlanCache,
    /// Healthy-topology fingerprint.
    pub topology: u64,
    /// Active fault-set fingerprint.
    pub faults: u64,
}

impl PlanProvider for CachingProvider<'_> {
    fn subset(&mut self, plan: &AllreducePlan, indices: &[usize]) -> Arc<AllreducePlan> {
        let key = CacheKey {
            topology: self.topology,
            faults: self.faults,
            trees: indices.iter().map(|&i| i as u32).collect(),
        };
        self.cache.get_or_insert_with(key, || Arc::new(plan.tree_subset(indices)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_allreduce::plan_fingerprint;

    fn key(trees: &[u32]) -> CacheKey {
        CacheKey { topology: 1, faults: 2, trees: trees.to_vec() }
    }

    #[test]
    fn hits_and_misses_count() {
        let plan = AllreducePlan::low_depth(3).unwrap();
        let mut c = PlanCache::new(4);
        let a = c.get_or_insert_with(key(&[0]), || Arc::new(plan.tree_subset(&[0])));
        let b = c.get_or_insert_with(key(&[0]), || panic!("must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let plan = Arc::new(AllreducePlan::low_depth(3).unwrap());
        let mut c = PlanCache::new(2);
        for t in [0u32, 1, 2] {
            let p = Arc::clone(&plan);
            c.get_or_insert_with(key(&[t]), move || p);
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        // [0] was stalest; [1] and [2] must still hit.
        c.get_or_insert_with(key(&[1]), || panic!("must hit"));
        c.get_or_insert_with(key(&[2]), || panic!("must hit"));
        assert_eq!(c.stats().hits, 2);
    }

    #[test]
    fn provider_matches_cold_construction() {
        let plan = AllreducePlan::low_depth(5).unwrap();
        let mut cache = PlanCache::new(8);
        let mut p = CachingProvider { cache: &mut cache, topology: 7, faults: 0 };
        use pf_sched::PlanProvider as _;
        let cached = p.subset(&plan, &[1, 3]);
        let cold = plan.tree_subset(&[1, 3]);
        assert_eq!(plan_fingerprint(&cached), plan_fingerprint(&cold));
        assert_eq!(cached.bandwidths, cold.bandwidths);
        assert_eq!(cached.edge_congestion, cold.edge_congestion);
    }
}
