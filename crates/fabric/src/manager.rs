//! The always-on fabric manager: a virtual-time event loop over the wave
//! scheduler.
//!
//! [`FabricManager`] owns one fabric (an [`AllreducePlan`]) for the
//! lifetime of the process and serves an open-ended job stream:
//!
//! * **Ingestion and backpressure.** [`FabricManager::submit`] is the
//!   mpsc-style front door. A job is *accepted* into the bounded ready
//!   queue, *deferred* to a parking queue when the outstanding-work cap
//!   is exceeded (re-admitted at epoch boundaries, FIFO), or *rejected*
//!   outright when the queues are full — classic admission control, all
//!   thresholds in [`FabricConfig`].
//! * **Epoch dispatch.** Time is virtual and event-driven: queued jobs
//!   are dispatched lazily, in ingestion order, as *epochs* of at most
//!   [`FabricConfig::epoch_max_jobs`] through
//!   [`Scheduler::run_epoch`] whenever the clock must pass the
//!   work (an event arrives with a later timestamp, or the stream
//!   drains). An epoch occupies the fabric until its makespan; events
//!   timestamped inside a running epoch are ingested when it completes —
//!   faults and submissions quiesce at epoch boundaries.
//! * **Cached planning.** Subset plans come from the [`PlanCache`]
//!   through a [`CachingProvider`], keyed by *(topology fingerprint,
//!   fault fingerprint, tree subset)*, so Algorithm 1 re-pricing is
//!   amortized across the stream.
//! * **Incremental repair.** Link-fault events patch the degraded plan
//!   with [`extend_degraded`] — only trees the delta touches are
//!   recomputed — falling back to the full [`rebuild_degraded`] when the
//!   patch is unsound. The two are property-tested equivalent.
//! * **Flat memory.** The manager keeps aggregates only: counters, a
//!   64-bucket log2 latency histogram, and a rolling FNV digest folded
//!   with the scheduler's own [`fold_job_digest`] formula. Nothing grows
//!   with the number of jobs served, which the 10^6-job soak benchmark
//!   verifies with the counting allocator.
//!
//! Determinism: the manager holds no wall clock and no randomized
//! container. The same seed + event trace produces a byte-identical
//! [`FabricReport`] — and a stream fully ingested before its first wave
//! produces the *same digest* as handing the batch to
//! [`Scheduler::run`] directly (property-tested).

use crate::cache::{CacheKey, CacheStats, CachingProvider, PlanCache};
use crate::events::FabricEvent;
use pf_allreduce::fingerprint::FNV_OFFSET;
use pf_allreduce::recovery::{extend_degraded, rebuild_degraded, DegradedPlan, RebuildError};
use pf_allreduce::{plan_fingerprint, AllreducePlan, FaultSet};
use pf_sched::{fold_job_digest, validate_spec, JobSpec, SchedConfig, SchedError, Scheduler};
use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;

/// Fabric-manager knobs. The defaults suit the q=7..11 PolarFly fabrics
/// the benchmarks use; every limit is a hard bound on manager memory.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Scheduler knobs for every epoch.
    pub sched: SchedConfig,
    /// Ready-queue bound: submissions beyond this many queued jobs are
    /// rejected (and the deferral queue is bounded by the same value).
    pub queue_capacity: usize,
    /// Outstanding-work cap: a submission that would push the ready
    /// queue's total element count past this is deferred, not queued.
    pub max_outstanding_elems: u64,
    /// Most jobs dispatched into one scheduler epoch.
    pub epoch_max_jobs: usize,
    /// Plan-cache capacity (entries).
    pub cache_capacity: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            sched: SchedConfig::default(),
            queue_capacity: 4096,
            max_outstanding_elems: u64::MAX / 2,
            epoch_max_jobs: 64,
            cache_capacity: 128,
        }
    }
}

/// What happened to one submission at the front door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Queued for dispatch.
    Accepted,
    /// Parked: the outstanding-work cap is exceeded; the job re-enters
    /// the ready queue (FIFO) at an epoch boundary with room.
    Deferred,
    /// Dropped: the queues are full. The job will never run.
    Rejected,
    /// Dropped: the spec itself is unusable (the typed scheduler error
    /// says why) — bad specs are refused here so they can never fail a
    /// whole epoch.
    Invalid(SchedError),
}

/// Aggregate observations over everything the manager has served.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricReport {
    /// Submissions seen (accepted + deferred + rejected + invalid).
    pub submitted: u64,
    /// Jobs that entered the ready queue (directly or by promotion).
    pub accepted: u64,
    /// Deferral events (jobs parked at least once).
    pub deferred: u64,
    /// Jobs dropped by backpressure.
    pub rejected: u64,
    /// Jobs refused as invalid specs.
    pub invalid: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Elements reduced across all completed jobs.
    pub total_elems: u64,
    /// Scheduler epochs dispatched.
    pub epochs: u64,
    /// Waves executed across all epochs.
    pub waves: u64,
    /// Virtual cycle the last job finished (0 before any epoch).
    pub makespan: u64,
    /// Expected-value check failures across all jobs (must be 0).
    pub mismatches: u64,
    /// Peak combined per-edge congestion over every wave served.
    pub max_combined_congestion: u32,
    /// The healthy plan's Theorem 7.6 / 7.19 bound.
    pub congestion_bound: u32,
    /// Median arrival-to-finish latency (log2-bucket upper bound).
    pub p50_latency: u64,
    /// 99th-percentile latency (log2-bucket upper bound).
    pub p99_latency: u64,
    /// Exact maximum latency.
    pub max_latency: u64,
    /// Exact mean latency.
    pub mean_latency: f64,
    /// Mean cycles completed jobs spent queued before release.
    pub mean_queueing_delay: f64,
    /// Rolling FNV digest over per-job outcomes (same fold as
    /// [`pf_sched::SchedReport::digest`]).
    pub digest: u64,
    /// Plan-cache counters.
    pub cache: CacheStats,
    /// Fault events that patched the degraded plan incrementally.
    pub incremental_repairs: u64,
    /// Fault events that fell back to (or started with) a full rebuild.
    pub full_rebuilds: u64,
    /// Heal events.
    pub heals: u64,
    /// Link-fault events applied.
    pub fault_events: u64,
}

/// Number of log2 latency buckets (bucket 0 = zero cycles, bucket `k` =
/// latencies in `[2^(k-1), 2^k)`).
pub const LATENCY_BUCKETS: usize = 64;

/// The always-on fabric manager (see module docs).
pub struct FabricManager {
    pub(crate) cfg: FabricConfig,
    /// The healthy plan; the fabric's identity.
    pub(crate) healthy: Arc<AllreducePlan>,
    pub(crate) topology_fp: u64,
    /// The plan epochs currently run on (healthy, or the degraded plan
    /// promoted via `DegradedPlan::to_plan`).
    pub(crate) current: Arc<AllreducePlan>,
    /// Accumulated permanent link faults (healthy edge ids, sorted).
    pub(crate) faults: FaultSet,
    pub(crate) fault_fp: u64,
    /// The degraded-plan state `extend_degraded` patches.
    pub(crate) degraded: Option<DegradedPlan>,
    pub(crate) cache: PlanCache,

    /// Virtual now: the fabric is idle at `now` between calls.
    pub(crate) now: u64,
    /// Monotone-feed guard: the latest event time seen.
    pub(crate) last_event: u64,
    pub(crate) ready: VecDeque<JobSpec>,
    pub(crate) deferred_q: VecDeque<JobSpec>,
    /// Sum of `elems` over the ready queue (the outstanding-work gauge).
    pub(crate) ready_elems: u64,
    /// Ids currently queued (ready + deferred), for duplicate refusal.
    pub(crate) queued_ids: BTreeSet<u32>,

    // Aggregates (everything FabricReport derives from).
    pub(crate) submitted: u64,
    pub(crate) accepted: u64,
    pub(crate) deferred: u64,
    pub(crate) rejected: u64,
    pub(crate) invalid: u64,
    pub(crate) completed: u64,
    pub(crate) total_elems: u64,
    pub(crate) epochs: u64,
    pub(crate) waves: u64,
    pub(crate) makespan: u64,
    pub(crate) mismatches: u64,
    pub(crate) max_comb: u32,
    pub(crate) latency_hist: [u64; LATENCY_BUCKETS],
    pub(crate) latency_sum: u64,
    pub(crate) queueing_sum: u64,
    pub(crate) max_latency: u64,
    pub(crate) digest: u64,
    pub(crate) incremental_repairs: u64,
    pub(crate) full_rebuilds: u64,
    pub(crate) heals: u64,
    pub(crate) fault_events: u64,
}

impl std::fmt::Debug for FabricManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricManager")
            .field("now", &self.now)
            .field("queued", &(self.ready.len() + self.deferred_q.len()))
            .field("faults", &self.faults.edges)
            .field("completed", &self.completed)
            .finish_non_exhaustive()
    }
}

impl FabricManager {
    /// A manager serving `plan`'s fabric.
    #[must_use]
    pub fn new(plan: AllreducePlan, cfg: FabricConfig) -> Self {
        let healthy = Arc::new(plan);
        let topology_fp = plan_fingerprint(&healthy);
        FabricManager {
            current: Arc::clone(&healthy),
            topology_fp,
            fault_fp: FaultSet::none().fingerprint(),
            faults: FaultSet::none(),
            degraded: None,
            cache: PlanCache::new(cfg.cache_capacity),
            now: 0,
            last_event: 0,
            ready: VecDeque::new(),
            deferred_q: VecDeque::new(),
            ready_elems: 0,
            queued_ids: BTreeSet::new(),
            submitted: 0,
            accepted: 0,
            deferred: 0,
            rejected: 0,
            invalid: 0,
            completed: 0,
            total_elems: 0,
            epochs: 0,
            waves: 0,
            makespan: 0,
            mismatches: 0,
            max_comb: 0,
            latency_hist: [0; LATENCY_BUCKETS],
            latency_sum: 0,
            queueing_sum: 0,
            max_latency: 0,
            digest: FNV_OFFSET,
            incremental_repairs: 0,
            full_rebuilds: 0,
            heals: 0,
            fault_events: 0,
            healthy,
            cfg,
        }
    }

    /// The current virtual cycle.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Jobs currently queued (ready + deferred).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.ready.len() + self.deferred_q.len()
    }

    /// The active fault set (healthy edge ids).
    #[must_use]
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Submits one job at `spec.arrival`. Events must be fed in
    /// nondecreasing virtual time; the clock first advances to the
    /// arrival (dispatching any epochs that start before it), then
    /// admission control decides.
    pub fn submit(&mut self, spec: JobSpec) -> Admission {
        let at = spec.arrival;
        assert!(
            at >= self.last_event,
            "events must be fed in nondecreasing virtual time ({at} < {})",
            self.last_event
        );
        self.last_event = at;
        self.advance_to(at);
        self.submitted += 1;

        if let Err(e) = validate_spec(&spec, &self.healthy) {
            self.invalid += 1;
            return Admission::Invalid(e);
        }
        if self.queued_ids.contains(&spec.id) {
            self.invalid += 1;
            return Admission::Invalid(SchedError::DuplicateJobId(spec.id));
        }
        if self.ready.len() >= self.cfg.queue_capacity {
            self.rejected += 1;
            return Admission::Rejected;
        }
        if self.ready_elems + spec.elems > self.cfg.max_outstanding_elems {
            if self.deferred_q.len() >= self.cfg.queue_capacity {
                self.rejected += 1;
                return Admission::Rejected;
            }
            self.deferred += 1;
            self.queued_ids.insert(spec.id);
            self.deferred_q.push_back(spec);
            return Admission::Deferred;
        }
        self.accepted += 1;
        self.ready_elems += spec.elems;
        self.queued_ids.insert(spec.id);
        self.ready.push_back(spec);
        Admission::Accepted
    }

    /// Reports a batch of link outages (healthy edge ids) at virtual time
    /// `at`. The degraded plan is patched incrementally when sound, else
    /// fully rebuilt; epochs already dispatched are unaffected (faults
    /// quiesce at epoch boundaries — an in-flight wave's transient faults
    /// are the scheduler's own fault layer's concern).
    ///
    /// On `Err` (the combined faults would partition the fabric) the
    /// manager's state is unchanged — the event is refused, exactly like
    /// a fabric refusing to commit a plan it cannot serve.
    pub fn inject_link_faults(&mut self, at: u64, edges: &[u32]) -> Result<(), RebuildError> {
        assert!(at >= self.last_event, "events must be fed in nondecreasing virtual time");
        self.last_event = at;
        self.advance_to(at);

        let delta = FaultSet::links(
            edges
                .iter()
                .copied()
                .filter(|e| !self.faults.edges.contains(e))
                .collect(),
        );
        if delta.edges.is_empty() {
            return Ok(());
        }
        let combined = self.faults.union(&delta);
        let (next, incremental) = match &self.degraded {
            Some(prev) => match extend_degraded(&self.healthy, &self.faults, prev, &delta) {
                Some(d) => (d, true),
                None => (rebuild_degraded(&self.healthy, &combined)?, false),
            },
            None => (rebuild_degraded(&self.healthy, &combined)?, false),
        };
        if incremental {
            self.incremental_repairs += 1;
        } else {
            self.full_rebuilds += 1;
        }
        self.fault_events += 1;
        self.faults = combined;
        self.fault_fp = self.faults.fingerprint();
        self.degraded = Some(next);
        // The executable plan is cached under the empty subset, so
        // re-entering a previously seen fault state re-uses the pricing.
        let d = self.degraded.as_ref().expect("just set");
        let q = self.healthy.q;
        let key =
            CacheKey { topology: self.topology_fp, faults: self.fault_fp, trees: Vec::new() };
        self.current = self.cache.get_or_insert_with(key, || Arc::new(d.to_plan(q)));
        Ok(())
    }

    /// Restores the fabric to full health at virtual time `at` (all
    /// failed links repaired). Subsequent epochs run on the healthy plan;
    /// cache entries from earlier epochs under the same fingerprints hit
    /// again.
    pub fn heal(&mut self, at: u64) {
        assert!(at >= self.last_event, "events must be fed in nondecreasing virtual time");
        self.last_event = at;
        self.advance_to(at);
        if self.faults.is_empty() {
            return;
        }
        self.heals += 1;
        self.faults = FaultSet::none();
        self.fault_fp = self.faults.fingerprint();
        self.degraded = None;
        self.current = Arc::clone(&self.healthy);
    }

    /// Runs every queued job to completion and returns the report. The
    /// manager stays usable afterwards (the stream may continue).
    pub fn drain(&mut self) -> FabricReport {
        loop {
            self.promote_deferred();
            if self.ready.is_empty() {
                debug_assert!(
                    self.deferred_q.is_empty(),
                    "promotion forces progress when the fabric is idle"
                );
                break;
            }
            self.dispatch_epoch();
        }
        self.report()
    }

    /// Feeds a pre-built trace (events in nondecreasing time), drains,
    /// and reports. Convenience over [`FabricManager::submit`] /
    /// [`FabricManager::inject_link_faults`] / [`FabricManager::heal`] /
    /// [`FabricManager::drain`]; fault events the fabric refuses
    /// (partitioning) are skipped.
    pub fn play(&mut self, events: impl IntoIterator<Item = FabricEvent>) -> FabricReport {
        for ev in events {
            match ev {
                FabricEvent::Submit(spec) => {
                    self.submit(spec);
                }
                FabricEvent::LinkFaults { at, edges } => {
                    let _ = self.inject_link_faults(at, &edges);
                }
                FabricEvent::Heal { at } => self.heal(at),
            }
        }
        self.drain()
    }

    /// The aggregate report as of now (queued jobs are not in it until an
    /// epoch runs them).
    #[must_use]
    pub fn report(&self) -> FabricReport {
        let (p50, p99) = (self.latency_percentile(50), self.latency_percentile(99));
        FabricReport {
            submitted: self.submitted,
            accepted: self.accepted,
            deferred: self.deferred,
            rejected: self.rejected,
            invalid: self.invalid,
            completed: self.completed,
            total_elems: self.total_elems,
            epochs: self.epochs,
            waves: self.waves,
            makespan: self.makespan,
            mismatches: self.mismatches,
            max_combined_congestion: self.max_comb,
            congestion_bound: self.healthy.max_congestion,
            p50_latency: p50,
            p99_latency: p99,
            max_latency: self.max_latency,
            mean_latency: if self.completed == 0 {
                0.0
            } else {
                self.latency_sum as f64 / self.completed as f64
            },
            mean_queueing_delay: if self.completed == 0 {
                0.0
            } else {
                self.queueing_sum as f64 / self.completed as f64
            },
            digest: self.digest,
            cache: self.cache.stats(),
            incremental_repairs: self.incremental_repairs,
            full_rebuilds: self.full_rebuilds,
            heals: self.heals,
            fault_events: self.fault_events,
        }
    }

    /// Advances virtual time to `t`, dispatching epochs for queued work
    /// the clock would otherwise skip past.
    fn advance_to(&mut self, t: u64) {
        while self.now < t && !self.ready.is_empty() {
            self.dispatch_epoch();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Dispatches one epoch: up to `epoch_max_jobs` ready jobs, in
    /// ingestion order, through the scheduler at base `now`.
    fn dispatch_epoch(&mut self) {
        debug_assert!(!self.ready.is_empty());
        let take = self.ready.len().min(self.cfg.epoch_max_jobs);
        let specs: Vec<JobSpec> = self.ready.drain(..take).collect();
        for s in &specs {
            self.queued_ids.remove(&s.id);
            self.ready_elems -= s.elems;
        }
        let plan = Arc::clone(&self.current);
        let sched = Scheduler::new(&plan, self.cfg.sched);
        let mut provider = CachingProvider {
            cache: &mut self.cache,
            topology: self.topology_fp,
            faults: self.fault_fp,
        };
        let report = sched
            .run_epoch(&specs, self.now, None, &mut provider)
            .expect("specs are validated at submit time; a healthy epoch cannot fail");

        self.epochs += 1;
        self.waves += report.waves.len() as u64;
        self.completed += report.jobs.len() as u64;
        self.total_elems += report.total_elems;
        self.mismatches += report.mismatches;
        self.max_comb = self.max_comb.max(report.max_combined_congestion);
        self.makespan = self.makespan.max(report.makespan);
        for r in &report.jobs {
            let latency = r.finish - r.spec.arrival;
            self.latency_hist[Self::bucket(latency)] += 1;
            self.latency_sum += latency;
            self.queueing_sum += r.queueing_delay();
            self.max_latency = self.max_latency.max(latency);
            self.digest = fold_job_digest(self.digest, r);
        }
        self.now = self.now.max(report.makespan);
        self.promote_deferred();
    }

    /// Moves deferred jobs into the ready queue while the caps allow;
    /// when the fabric is idle (empty ready queue) the front job is
    /// promoted unconditionally so an over-cap job throttles concurrency
    /// but can never starve.
    fn promote_deferred(&mut self) {
        while let Some(front) = self.deferred_q.front() {
            let fits = self.ready.len() < self.cfg.queue_capacity
                && (self.ready_elems + front.elems <= self.cfg.max_outstanding_elems
                    || self.ready.is_empty());
            if !fits {
                break;
            }
            let s = self.deferred_q.pop_front().expect("front exists");
            self.accepted += 1;
            self.ready_elems += s.elems;
            self.ready.push_back(s);
        }
    }

    /// Log2 latency bucket (see [`LATENCY_BUCKETS`]).
    fn bucket(latency: u64) -> usize {
        match latency {
            0 => 0,
            l => (l.ilog2() as usize + 1).min(LATENCY_BUCKETS - 1),
        }
    }

    /// Nearest-rank percentile over the log2 histogram: the value
    /// reported is the containing bucket's inclusive upper bound, capped
    /// at the exact max — a ≤ 2× overestimate by construction, stable and
    /// allocation-free.
    fn latency_percentile(&self, p: u64) -> u64 {
        let total: u64 = self.latency_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (p * total).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.latency_hist.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max_latency);
            }
        }
        self.max_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sched::DirectPlans;

    fn plan() -> AllreducePlan {
        AllreducePlan::low_depth(3).unwrap()
    }

    #[test]
    fn one_job_matches_the_batch_scheduler() {
        let p = plan();
        let cfg = FabricConfig::default();
        let mut m = FabricManager::new(p.clone(), cfg.clone());
        assert_eq!(m.submit(JobSpec::new(0, 0, 64)), Admission::Accepted);
        let rep = m.drain();
        assert_eq!(rep.completed, 1);
        assert_eq!(rep.mismatches, 0);
        let batch = Scheduler::new(&p, cfg.sched).run(&[JobSpec::new(0, 0, 64)]).unwrap();
        assert_eq!(rep.digest, batch.digest());
        assert_eq!(rep.makespan, batch.makespan);
    }

    #[test]
    fn virtual_time_is_lazy_until_events_force_it() {
        let mut m = FabricManager::new(plan(), FabricConfig::default());
        m.submit(JobSpec::new(0, 100, 64));
        assert_eq!(m.now(), 100, "ingestion advances the clock, not dispatch");
        assert_eq!(m.queued(), 1);
        // A much later submission forces the queued epoch to run first.
        m.submit(JobSpec::new(1, 1_000_000, 64));
        assert!(m.now() >= 1_000_000);
        assert_eq!(m.report().completed, 1);
        let rep = m.drain();
        assert_eq!(rep.completed, 2);
        assert_eq!(rep.epochs, 2);
    }

    #[test]
    fn queue_capacity_rejects() {
        let cfg = FabricConfig { queue_capacity: 2, ..FabricConfig::default() };
        let mut m = FabricManager::new(plan(), cfg);
        assert_eq!(m.submit(JobSpec::new(0, 0, 8)), Admission::Accepted);
        assert_eq!(m.submit(JobSpec::new(1, 0, 8)), Admission::Accepted);
        assert_eq!(m.submit(JobSpec::new(2, 0, 8)), Admission::Rejected);
        let rep = m.drain();
        assert_eq!((rep.accepted, rep.rejected, rep.completed), (2, 1, 2));
    }

    #[test]
    fn outstanding_cap_defers_then_promotes() {
        let cfg = FabricConfig { max_outstanding_elems: 100, ..FabricConfig::default() };
        let mut m = FabricManager::new(plan(), cfg);
        assert_eq!(m.submit(JobSpec::new(0, 0, 80)), Admission::Accepted);
        assert_eq!(m.submit(JobSpec::new(1, 0, 80)), Admission::Deferred);
        let rep = m.drain();
        assert_eq!(rep.deferred, 1);
        assert_eq!(rep.completed, 2, "deferred jobs run at the next boundary");
        assert_eq!(rep.epochs, 2);
    }

    #[test]
    fn invalid_specs_are_refused_at_the_door() {
        let mut m = FabricManager::new(plan(), FabricConfig::default());
        assert!(matches!(
            m.submit(JobSpec::new(0, 0, 0)),
            Admission::Invalid(SchedError::EmptyVector(0))
        ));
        m.submit(JobSpec::new(1, 0, 8));
        assert!(matches!(
            m.submit(JobSpec::new(1, 0, 8)),
            Admission::Invalid(SchedError::DuplicateJobId(1))
        ));
        let rep = m.drain();
        assert_eq!((rep.invalid, rep.completed), (2, 1));
    }

    #[test]
    fn fault_heal_cycle_repairs_and_reuses_cache() {
        let p = AllreducePlan::low_depth(7).unwrap();
        let mut m = FabricManager::new(p, FabricConfig::default());
        m.submit(JobSpec::new(0, 0, 64));
        m.inject_link_faults(10, &[3]).unwrap();
        m.submit(JobSpec::new(1, 20, 64));
        m.inject_link_faults(30, &[9]).unwrap();
        m.submit(JobSpec::new(2, 40, 64));
        m.heal(50);
        m.submit(JobSpec::new(3, 60, 64));
        let rep = m.drain();
        assert_eq!(rep.completed, 4);
        assert_eq!(rep.mismatches, 0);
        assert_eq!(rep.fault_events, 2);
        assert_eq!(rep.full_rebuilds, 1, "first fault has no degraded state to extend");
        assert_eq!(rep.incremental_repairs, 1, "second fault patches incrementally");
        assert_eq!(rep.heals, 1);
    }

    #[test]
    fn partitioning_fault_is_refused_and_state_unchanged() {
        let p = AllreducePlan::single_tree(3).unwrap();
        let cut: Vec<u32> =
            p.graph.neighbors_with_edges(0).iter().map(|&(_, e)| e).collect();
        let mut m = FabricManager::new(p, FabricConfig::default());
        m.submit(JobSpec::new(0, 0, 32));
        assert!(m.inject_link_faults(5, &cut).is_err());
        assert!(m.faults().is_empty());
        let rep = m.drain();
        assert_eq!(rep.completed, 1);
        assert_eq!(rep.fault_events, 0);
    }

    #[test]
    fn report_digest_matches_direct_epoch_fold() {
        // Two managers fed identically agree byte for byte.
        let specs: Vec<JobSpec> = (0..10).map(|i| JobSpec::new(i, u64::from(i) * 50, 32)).collect();
        let mk = || {
            let mut m = FabricManager::new(plan(), FabricConfig::default());
            for s in &specs {
                m.submit(s.clone());
            }
            m.drain()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b);
        let _ = DirectPlans; // silence unused-import lint paranoia
    }
}
