//! Cache correctness: a cached plan must be byte-identical to cold
//! construction — under every key, including across fault epochs.
//!
//! The cache is only an amortization; if a stale or wrong-keyed entry
//! ever leaked into a wave, tenants would silently run on the wrong
//! trees. These properties pin (a) provider output ≡ `tree_subset` for
//! arbitrary subsets, (b) full-plan entries ≡ `rebuild_degraded` output
//! across fault/heal/refault cycles, and (c) that re-entering a
//! previously seen fault state *hits* instead of rebuilding.

use pf_allreduce::recovery::rebuild_degraded;
use pf_allreduce::{plan_fingerprint, AllreducePlan, FaultSet};
use pf_fabric::{CachingProvider, FabricConfig, FabricManager, PlanCache};
use pf_sched::{JobSpec, PlanProvider};
use proptest::prelude::*;

/// Field-level equality of two plans (fingerprint covers graph + trees;
/// the numeric fields cover Algorithm 1's pricing).
fn assert_plans_equal(a: &AllreducePlan, b: &AllreducePlan) {
    assert_eq!(plan_fingerprint(a), plan_fingerprint(b));
    assert_eq!(a.q, b.q);
    assert_eq!(a.bandwidths, b.bandwidths);
    assert_eq!(a.aggregate, b.aggregate);
    assert_eq!(a.depth, b.depth);
    assert_eq!(a.edge_congestion, b.edge_congestion);
    assert_eq!(a.max_congestion, b.max_congestion);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every subset served through the provider — in any lookup order,
    /// with repeats and cache pressure — equals cold `tree_subset`.
    #[test]
    fn provider_subsets_equal_cold_construction(
        q in prop::sample::select(vec![3u64, 7]),
        lookups in prop::collection::vec(prop::collection::vec(0usize..3, 1..4), 1..12),
        capacity in 1usize..5,
    ) {
        let plan = AllreducePlan::low_depth(q).expect("odd prime power");
        let trees = plan.trees.len();
        let mut cache = PlanCache::new(capacity);
        let mut provider = CachingProvider { cache: &mut cache, topology: 1, faults: 0 };
        for mut set in lookups {
            set.sort_unstable();
            set.dedup();
            let indices: Vec<usize> = set.into_iter().filter(|&i| i < trees).collect();
            if indices.is_empty() {
                continue;
            }
            let cached = provider.subset(&plan, &indices);
            assert_plans_equal(&cached, &plan.tree_subset(&indices));
        }
    }
}

/// Across fault epochs: the manager's full-plan cache entries equal a
/// cold `rebuild_degraded` + `to_plan` at every fault state, and healing
/// back into a previously seen state hits the cache with the identical
/// plan (byte-for-byte job outcomes prove it end to end).
#[test]
fn fault_epoch_entries_equal_cold_rebuild_and_rehit() {
    let healthy = AllreducePlan::low_depth(7).expect("q=7");
    let mut m = FabricManager::new(healthy.clone(), FabricConfig::default());

    // Epoch A: healthy. Epoch B: links {2,5} dead. Epoch C: healed.
    // Epoch D: the same links die again — every plan B used must re-hit.
    let mut t = 0;
    fn job(m: &mut FabricManager, t: &mut u64, id: u32) {
        *t += 1000;
        m.submit(JobSpec::new(id, *t, 64));
    }
    job(&mut m, &mut t, 0);
    t += 1000;
    m.inject_link_faults(t, &[2, 5]).expect("non-partitioning");
    job(&mut m, &mut t, 1);
    let misses_after_first_fault = {
        // Flush queued work so epoch B's lookups happen now.
        let r = m.drain();
        assert_eq!(r.mismatches, 0);
        r.cache.misses
    };

    t += 1000;
    m.heal(t);
    job(&mut m, &mut t, 2);
    t += 1000;
    m.inject_link_faults(t, &[2, 5]).expect("non-partitioning");
    job(&mut m, &mut t, 3);
    let rep = m.drain();
    assert_eq!(rep.mismatches, 0);
    assert_eq!(rep.completed, 4);
    assert_eq!(
        rep.cache.misses, misses_after_first_fault,
        "every lookup after healing and re-faulting hits: healthy entries \
         and fault entries are both still keyed live"
    );
    assert!(rep.cache.hits > 0);
}

/// Incremental repair vs cold rebuild, end to end: a fabric that lost
/// links {2} then {5} (incremental `extend_degraded` patch) serves jobs
/// with outcomes byte-identical to a fabric that lost {2,5} at once
/// (full `rebuild_degraded`) — the cached degraded plan is the same plan
/// either way, and a cold out-of-band rebuild agrees with both.
#[test]
fn incremental_fault_state_serves_same_outcomes_as_cold_rebuild() {
    let healthy = AllreducePlan::low_depth(7).expect("q=7");
    let job = JobSpec::new(7, 10, 96);

    let mut inc = FabricManager::new(healthy.clone(), FabricConfig::default());
    inc.inject_link_faults(0, &[2]).expect("non-partitioning");
    inc.inject_link_faults(1, &[5]).expect("non-partitioning");
    inc.submit(job.clone());
    let ri = inc.drain();
    assert_eq!((ri.incremental_repairs, ri.full_rebuilds), (1, 1));

    let mut cold = FabricManager::new(healthy.clone(), FabricConfig::default());
    cold.inject_link_faults(0, &[2, 5]).expect("non-partitioning");
    cold.submit(job);
    let rc = cold.drain();
    assert_eq!((rc.incremental_repairs, rc.full_rebuilds), (0, 1));

    assert_eq!(ri.digest, rc.digest, "identical job outcome on either path");
    assert_eq!(ri.makespan, rc.makespan);
    assert_eq!(ri.max_combined_congestion, rc.max_combined_congestion);
    assert_eq!((ri.mismatches, rc.mismatches), (0, 0));

    // And the plan both fabrics priced agrees with an out-of-band rebuild.
    let oob = rebuild_degraded(&healthy, &FaultSet::links(vec![2, 5]))
        .expect("non-partitioning")
        .to_plan(healthy.q);
    assert_plans_equal(&oob, &oob.tree_subset(&(0..oob.trees.len()).collect::<Vec<_>>()));
}

/// Determinism of eviction: two managers under identical pressure make
/// identical cache decisions (stats equal), so cache behavior can never
/// fork two same-seed runs.
#[test]
fn cache_decisions_are_deterministic_under_pressure() {
    let run = || {
        let plan = AllreducePlan::low_depth(7).expect("q=7");
        let cfg = FabricConfig { cache_capacity: 2, ..FabricConfig::default() };
        let mut m = FabricManager::new(plan, cfg);
        for i in 0..30u32 {
            m.submit(JobSpec::new(i, u64::from(i) * 500, 32 + u64::from(i % 5) * 16));
            if i % 10 == 9 {
                let at = u64::from(i) * 500 + 100;
                m.inject_link_faults(at, &[i % 3]).expect("non-partitioning");
            }
        }
        m.drain()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b);
    assert!(a.cache.evictions > 0, "capacity 2 must evict under this stream");
}
