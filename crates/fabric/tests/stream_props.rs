//! Streaming-vs-batch equivalence and admission-control invariants.
//!
//! The fabric manager is a *delivery mechanism* over the wave scheduler,
//! not a different scheduler: a stream that is fully ingested before the
//! first wave runs must produce exactly the digest the batch
//! [`Scheduler::run`] produces for the same specs. And the front door's
//! accounting must balance — after a drain every submission is exactly
//! one of completed / rejected / invalid.

use pf_allreduce::AllreducePlan;
use pf_fabric::{Admission, FabricConfig, FabricEvent, FabricManager, PoissonJobs};
use pf_sched::{JobSpec, SchedConfig, Scheduler};
use pf_simnet::ReduceKind;
use proptest::prelude::*;

fn fabric_cfg(sched: SchedConfig) -> FabricConfig {
    FabricConfig { sched, epoch_max_jobs: 1024, queue_capacity: 4096, ..FabricConfig::default() }
}

/// Random specs, ids 0..n, all arriving at cycle 0.
fn spec_strategy(n: usize) -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec((1u64..200, any::<bool>(), 0u32..4), 1..n + 1).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (elems, float, priority))| JobSpec {
                kind: if float { ReduceKind::FloatF64 } else { ReduceKind::WrappingU64 },
                priority,
                ..JobSpec::new(i as u32, 0, elems)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Stream fully ingested before the first wave ⇒ digest identical to
    /// the batch scheduler's, across fabric sizes, job mixes and
    /// concurrency settings.
    #[test]
    fn streamed_ingestion_matches_batch_run(
        q in prop::sample::select(vec![3u64, 7]),
        specs in spec_strategy(12),
        max_concurrent in 1usize..4,
    ) {
        let plan = AllreducePlan::low_depth(q).expect("odd prime power");
        let sched = SchedConfig { max_concurrent, ..SchedConfig::default() };
        let batch = Scheduler::new(&plan, sched).run(&specs).expect("valid stream");

        let mut m = FabricManager::new(plan, fabric_cfg(sched));
        for s in &specs {
            prop_assert_eq!(m.submit(s.clone()), Admission::Accepted);
        }
        let rep = m.drain();
        prop_assert_eq!(rep.digest, batch.digest());
        prop_assert_eq!(rep.makespan, batch.makespan);
        prop_assert_eq!(rep.completed, batch.jobs.len() as u64);
        prop_assert_eq!(rep.waves, batch.waves.len() as u64);
        prop_assert_eq!(rep.mismatches, 0);
        prop_assert_eq!(rep.max_combined_congestion, batch.max_combined_congestion);
    }

    /// The admission ledger balances: after a drain, every submission is
    /// exactly one of completed / rejected / invalid, the deferred queue
    /// is empty, and every accepted job completed.
    #[test]
    fn admission_accounting_balances(
        seed in 0u64..1000,
        queue_capacity in 1usize..6,
        max_outstanding in 64u64..512,
    ) {
        let plan = AllreducePlan::low_depth(3).expect("q=3");
        let cfg = FabricConfig {
            queue_capacity,
            max_outstanding_elems: max_outstanding,
            epoch_max_jobs: 4,
            ..FabricConfig::default()
        };
        let mut m = FabricManager::new(plan, cfg);
        for spec in PoissonJobs::new(seed, 40, 16, 128).take(60) {
            m.submit(spec);
        }
        let rep = m.drain();
        prop_assert_eq!(rep.submitted, 60);
        prop_assert_eq!(rep.completed + rep.rejected + rep.invalid, rep.submitted);
        prop_assert_eq!(rep.completed, rep.accepted, "everything accepted ran");
        prop_assert_eq!(m.queued(), 0);
        prop_assert_eq!(rep.mismatches, 0);
        prop_assert!(rep.max_combined_congestion <= rep.congestion_bound);
    }
}

/// Same seed + same trace ⇒ byte-identical reports, with faults and
/// heals mid-stream — the determinism guarantee the benchmark's
/// double-run `cmp` rests on.
#[test]
fn same_seed_same_trace_is_byte_identical() {
    let run = || {
        let plan = AllreducePlan::low_depth(7).expect("q=7");
        let mut m = FabricManager::new(plan, FabricConfig::default());
        let mut events: Vec<FabricEvent> =
            PoissonJobs::new(42, 300, 32, 256).take(120).map(FabricEvent::Submit).collect();
        // Interleave a fault burst and a heal at fixed virtual times
        // inside the stream's span.
        let mid = events[60].at();
        let late = events[100].at();
        events.insert(61, FabricEvent::LinkFaults { at: mid, edges: vec![2, 5] });
        events.insert(102, FabricEvent::Heal { at: late });
        m.play(events)
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "reports must agree byte for byte");
    assert_eq!(a.completed, 120);
    assert_eq!(a.mismatches, 0);
    assert_eq!(a.fault_events, 1);
    assert_eq!(a.heals, 1);
}

/// Epoch quiesce semantics: an event timestamped mid-epoch is ingested
/// after the epoch completes, and dispatch is lazy — queued work only
/// runs when the clock must pass it.
#[test]
fn events_quiesce_at_epoch_boundaries() {
    let plan = AllreducePlan::low_depth(3).expect("q=3");
    let mut m = FabricManager::new(plan, FabricConfig::default());
    m.submit(JobSpec::new(0, 10, 500));
    assert_eq!(m.report().epochs, 0, "nothing forced the clock yet");
    // This arrival lands inside job 0's execution window; the epoch runs
    // to completion first and the clock lands on its makespan.
    m.submit(JobSpec::new(1, 12, 8));
    let after_first = m.now();
    assert!(after_first > 12, "epoch ran to completion, past the arrival");
    let rep = m.drain();
    assert_eq!(rep.epochs, 2);
    assert_eq!(rep.completed, 2);
    // Job 1's start cannot precede the epoch boundary it waited for.
    assert!(rep.makespan > after_first);
}
