//! Checkpoint/restore: round trips are byte-identical and a restored
//! manager resumes exactly where the original left off.
//!
//! `pf-fabric-ckpt-v1` saves the clock, the aggregates, the fault set
//! and both queues; the degraded plan and the cache are re-derived /
//! cold on restore. So the contract is: `checkpoint(restore(c)) == c`
//! byte for byte, and feeding the *same remaining trace* to the original
//! and the restored manager yields reports equal in every field except
//! the cache counters.

use pf_allreduce::AllreducePlan;
use pf_fabric::{
    CacheStats, CheckpointError, FabricConfig, FabricEvent, FabricManager, PoissonJobs,
};
use pf_sched::JobSpec;
use proptest::prelude::*;

fn cfg() -> FabricConfig {
    FabricConfig {
        queue_capacity: 64,
        max_outstanding_elems: 2048,
        epoch_max_jobs: 8,
        ..FabricConfig::default()
    }
}

/// Builds a manager mid-stream: `n` Poisson jobs ingested, a fault burst
/// at the two-thirds mark, queues still loaded.
fn mid_stream(seed: u64, n: usize) -> (FabricManager, Vec<FabricEvent>) {
    let plan = AllreducePlan::low_depth(7).expect("q=7");
    let mut m = FabricManager::new(plan, cfg());
    let stream: Vec<JobSpec> = PoissonJobs::new(seed, 120, 16, 512).take(2 * n).collect();
    for s in &stream[..n] {
        m.submit(s.clone());
    }
    // Timestamp the fault at the last *event* time — the clock itself may
    // already be past it (epochs run to completion), which is fine.
    let fault_at = stream[n - 1].arrival;
    m.inject_link_faults(fault_at, &[1, 4]).expect("non-partitioning");
    let rest: Vec<FabricEvent> =
        stream[n..].iter().cloned().map(FabricEvent::Submit).collect();
    (m, rest)
}

/// Reports equal in every field but the cache counters.
fn assert_equal_modulo_cache(
    mut a: pf_fabric::FabricReport,
    mut b: pf_fabric::FabricReport,
) {
    a.cache = CacheStats::default();
    b.cache = CacheStats::default();
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// checkpoint → restore → checkpoint is byte-identical, mid-stream,
    /// with active faults and loaded queues.
    #[test]
    fn round_trip_is_byte_identical(seed in 0u64..500, n in 4usize..20) {
        let (m, _) = mid_stream(seed, n);
        let plan = AllreducePlan::low_depth(7).expect("q=7");
        let c1 = m.checkpoint();
        let restored = FabricManager::restore(plan, cfg(), &c1).expect("restores");
        prop_assert_eq!(restored.checkpoint(), c1);
        prop_assert_eq!(restored.now(), m.now());
        prop_assert_eq!(restored.queued(), m.queued());
        prop_assert_eq!(restored.faults(), m.faults());
    }

    /// Original and restored managers fed the same remaining trace agree
    /// on everything but cache counters — including the rolling digest,
    /// so every job outcome after the restore point is byte-identical.
    #[test]
    fn restored_manager_resumes_equivalently(seed in 0u64..500, n in 4usize..16) {
        let (mut orig, rest) = mid_stream(seed, n);
        let plan = AllreducePlan::low_depth(7).expect("q=7");
        let mut restored =
            FabricManager::restore(plan, cfg(), &orig.checkpoint()).expect("restores");
        let ra = orig.play(rest.clone());
        let rb = restored.play(rest);
        assert_equal_modulo_cache(ra, rb);
    }
}

/// A restored manager keeps absorbing faults: the re-derived degraded
/// state supports incremental extension exactly like the original's.
#[test]
fn restored_manager_extends_faults_incrementally() {
    let (mut orig, _) = mid_stream(11, 8);
    let plan = AllreducePlan::low_depth(7).expect("q=7");
    let mut restored =
        FabricManager::restore(plan, cfg(), &orig.checkpoint()).expect("restores");
    let at = orig.now() + 1;
    orig.inject_link_faults(at, &[9]).expect("non-partitioning");
    restored.inject_link_faults(at, &[9]).expect("non-partitioning");
    let (ra, rb) = (orig.drain(), restored.drain());
    assert_eq!(
        ra.incremental_repairs, rb.incremental_repairs,
        "the restored degraded plan is extendable, not a dead end"
    );
    assert_equal_modulo_cache(ra, rb);
}

/// Malformed checkpoints are refused with typed errors, never panics.
#[test]
fn malformed_checkpoints_are_refused() {
    let plan = || AllreducePlan::low_depth(3).expect("q=3");
    let m = FabricManager::new(plan(), cfg());
    let good = m.checkpoint();

    assert_eq!(
        FabricManager::restore(plan(), cfg(), "nonsense\n").unwrap_err(),
        CheckpointError::BadMagic
    );
    let truncated = &good[..good.len() - 5];
    assert!(matches!(
        FabricManager::restore(plan(), cfg(), truncated).unwrap_err(),
        CheckpointError::Truncated | CheckpointError::Malformed { .. }
    ));
    let mangled = good.replace("counters", "confetti");
    assert!(matches!(
        FabricManager::restore(plan(), cfg(), &mangled).unwrap_err(),
        CheckpointError::Malformed { .. }
    ));

    // A fault set that does not apply to the plan (a q=7 edge id far
    // beyond the q=3 fabric's edge range).
    let mut faulted = FabricManager::new(AllreducePlan::low_depth(7).expect("q=7"), cfg());
    faulted.inject_link_faults(0, &[200]).expect("non-partitioning");
    let foreign = faulted.checkpoint();
    assert_eq!(
        FabricManager::restore(plan(), cfg(), &foreign).unwrap_err(),
        CheckpointError::FaultMismatch
    );
}
