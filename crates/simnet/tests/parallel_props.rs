//! Determinism guard for the sharded parallel mode.
//!
//! `SimConfig::threads` must be a pure performance knob: for any workload,
//! collective, and thread count the engine must produce byte-identical
//! results — the sharded mode partitions channel-disjoint tree components
//! across workers and merges per-shard reports with integer arithmetic
//! only (`engine.rs run_sharded`), and configurations it cannot shard
//! (traces, faults, caps, single components) must fall back to the serial
//! path silently. These properties drive random segmented workloads and
//! every collective through threads ∈ {1..8} and require the `SimReport`
//! (and trace bytes, where tracing is on) to match the single-threaded
//! run exactly.

use pf_allreduce::AllreducePlan;
use pf_simnet::engine::Collective;
use pf_simnet::{
    JobSegment, MultiTreeEmbedding, ReduceKind, SimConfig, Simulator, TraceConfig, Workload,
};
use proptest::prelude::*;

/// One random workload segment: length, operator, and an optional
/// participant subset (non-participants contribute the identity).
fn segment(n: u32) -> impl Strategy<Value = JobSegment> {
    (
        1u64..2_000,
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(0..n, 1..n as usize),
    )
        .prop_map(|(elems, float, full, picks)| {
            let subset: std::collections::BTreeSet<u32> = picks.into_iter().collect();
            JobSegment {
                elems,
                kind: if float { ReduceKind::FloatF64 } else { ReduceKind::WrappingU64 },
                participants: (!full).then(|| subset.into_iter().collect()),
            }
        })
}

fn collective() -> impl Strategy<Value = Collective> {
    prop::sample::select(Collective::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Thread count never changes the report: every `threads` in 1..=8
    /// reproduces the single-threaded `SimReport` bit for bit, across
    /// random segmented workloads and all five collectives.
    #[test]
    fn thread_count_is_invisible_in_the_report(
        q in prop::sample::select(vec![5u64, 7, 11]),
        segs in prop::collection::vec(segment(24), 1..3),
        kind in collective(),
    ) {
        let plan = AllreducePlan::low_depth(q).expect("odd prime power");
        let n = plan.graph.num_vertices();
        let m: u64 = segs.iter().map(|s| s.elems).sum();
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::concat(n, &segs);
        let base = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .run_collective(&w, kind);
        prop_assert!(base.completed, "q={} {:?} did not complete", q, kind);
        for threads in 2usize..=8 {
            let cfg = SimConfig { threads, ..SimConfig::default() };
            let r = Simulator::new(&plan.graph, &emb, cfg).run_collective(&w, kind);
            prop_assert_eq!(
                &r, &base,
                "q={} {:?} threads={}: SimReport diverged", q, kind, threads
            );
        }
    }

    /// Tracing forces the serial path regardless of `threads`; the trace
    /// bytes (the full serialized JSON, covering every per-cycle row)
    /// must still be identical at every thread count.
    #[test]
    fn thread_count_is_invisible_in_trace_bytes(
        q in prop::sample::select(vec![5u64, 7]),
        segs in prop::collection::vec(segment(24), 1..3),
        kind in collective(),
    ) {
        let plan = AllreducePlan::low_depth(q).expect("odd prime power");
        let n = plan.graph.num_vertices();
        let m: u64 = segs.iter().map(|s| s.elems).sum();
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::concat(n, &segs);
        let run_traced = |threads: usize| {
            let cfg = SimConfig { threads, ..SimConfig::default() };
            let (r, trace) = Simulator::new(&plan.graph, &emb, cfg)
                .with_trace(TraceConfig::counters())
                .run_collective_traced(&w, kind);
            (r, trace.expect("trace requested").to_json())
        };
        let (base, base_bytes) = run_traced(1);
        for threads in [2usize, 5, 8] {
            let (r, bytes) = run_traced(threads);
            prop_assert_eq!(
                &r, &base,
                "q={} {:?} threads={}: traced SimReport diverged", q, kind, threads
            );
            prop_assert_eq!(
                &bytes, &base_bytes,
                "q={} {:?} threads={}: trace bytes diverged", q, kind, threads
            );
        }
    }
}

/// The deterministic floor, pinned without proptest shrinking: the exact
/// saturated configuration the perf snapshot measures, across the full
/// thread ladder.
#[test]
fn saturated_allreduce_matches_across_thread_ladder() {
    for q in [5u64, 7] {
        let plan = AllreducePlan::low_depth(q).expect("odd prime power");
        let m = 20_000;
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let base = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .run_collective(&w, Collective::Allreduce);
        assert!(base.completed && base.mismatches == 0);
        for threads in 2usize..=8 {
            let cfg = SimConfig { threads, ..SimConfig::default() };
            let r = Simulator::new(&plan.graph, &emb, cfg)
                .run_collective(&w, Collective::Allreduce);
            assert_eq!(r, base, "q={q} threads={threads}: SimReport diverged");
        }
    }
}
