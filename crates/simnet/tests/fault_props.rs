//! Property tests for the fault-injection layer.
//!
//! The tentpole invariants, mirroring `trace_props.rs`:
//!
//! 1. **Zero perturbation** — a fault layer with nothing to inject (empty
//!    schedule, or events that never fire) yields a byte-identical
//!    `SimReport` to the plain engine, for every collective and
//!    configuration.
//! 2. **Seed reproducibility** — the same schedule produces an identical
//!    `SimReport`, `FaultReport`, and trace JSON across independent runs.
//! 3. **Transients only delay** — any outage shorter than the detection
//!    horizon heals: the run completes with zero mismatches, at least as
//!    many cycles as the fault-free run.

use pf_simnet::engine::Collective;
use pf_simnet::faults::{DetectionConfig, FaultEvent, FaultKind, FaultSchedule, FaultTarget};
use pf_simnet::{MultiTreeEmbedding, SimConfig, Simulator, TraceConfig, Workload};
use proptest::prelude::*;

use pf_graph::{Graph, RootedTree};

fn cycle_graph(n: u32) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// Two overlapping path trees on a cycle graph — enough structure for
/// congestion, arbitration, and multi-stream channels.
fn build(n: u32, r1: u32, r2: u32, m: u64) -> (Graph, MultiTreeEmbedding, Workload) {
    let g = cycle_graph(n);
    let path: Vec<u32> = (0..n).collect();
    let t1 = RootedTree::from_path(&path, r1 as usize).unwrap();
    let t2 = RootedTree::from_path(&path, r2 as usize).unwrap();
    let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m - m / 2]);
    let w = Workload::new(n, m);
    (g, emb, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With zero faults injected, the report is byte-identical to the
    /// pre-fault engine (the ISSUE's acceptance property). Covers both the
    /// empty schedule and a schedule whose events never activate.
    #[test]
    fn quiet_fault_layer_never_perturbs_the_simulation(
        n in 4u32..9,
        roots in (0u32..9, 0u32..9),
        m in 0u64..260,
        latency in 1u32..5,
        vc_buffer in 1usize..7,
        kind in prop::sample::select(Collective::ALL.to_vec()),
        never in any::<bool>(),
    ) {
        let (r1, r2) = (roots.0 % n, roots.1 % n);
        let (g, emb, w) = build(n, r1, r2, m);
        let cfg = SimConfig { link_latency: latency, vc_buffer, ..Default::default() };

        let plain = Simulator::new(&g, &emb, cfg).run_collective(&w, kind);
        let schedule = if never {
            // Real events scheduled far past any completion cycle.
            FaultSchedule::permanent_links(&[0, g.num_edges() - 1], u64::MAX / 2)
        } else {
            FaultSchedule::none()
        };
        let faulted = Simulator::new(&g, &emb, cfg)
            .with_faults(&g, schedule)
            .run_collective_faulted(&w, kind);

        prop_assert_eq!(&plain, &faulted.report);
        prop_assert_eq!(faulted.faults.injected, 0);
        prop_assert!(faulted.faults.records.is_empty());
        prop_assert!(!faulted.faults.aborted);
    }

    /// Same seedable schedule, two runs: identical report, fault report,
    /// and trace JSON bytes.
    #[test]
    fn faulted_runs_are_reproducible(
        n in 4u32..9,
        roots in (0u32..9, 0u32..9),
        m in 40u64..300,
        edge_pick in 0u32..100,
        at in 1u64..120,
        transient in any::<bool>(),
        dur in 10u64..200,
    ) {
        let duration = transient.then_some(dur);
        let (r1, r2) = (roots.0 % n, roots.1 % n);
        let (g, emb, w) = build(n, r1, r2, m);
        let cfg = SimConfig::default();
        let schedule = FaultSchedule {
            events: vec![FaultEvent {
                cycle: at,
                target: FaultTarget::Link(edge_pick % g.num_edges()),
                kind: FaultKind::Down,
                duration,
            }],
            detection: DetectionConfig::default(),
        };

        let run = |schedule: FaultSchedule| {
            Simulator::new(&g, &emb, cfg)
                .with_trace(TraceConfig::with_timeline(64))
                .with_faults(&g, schedule)
                .run_faulted(&w)
        };
        let a = run(schedule.clone());
        let b = run(schedule);

        prop_assert_eq!(&a.report, &b.report);
        prop_assert_eq!(&a.faults, &b.faults);
        let (ta, tb) = (a.trace.unwrap(), b.trace.unwrap());
        prop_assert_eq!(ta.to_json().into_bytes(), tb.to_json().into_bytes());
    }

    /// A transient outage strictly shorter than one detection timeout can
    /// only delay the collective: it completes, correctly, in at least the
    /// fault-free cycle count, and nothing is declared dead.
    #[test]
    fn short_transients_only_delay(
        n in 4u32..9,
        roots in (0u32..9, 0u32..9),
        m in 40u64..300,
        edge_pick in 0u32..100,
        at in 1u64..200,
        duration in 1u64..30,
    ) {
        let (r1, r2) = (roots.0 % n, roots.1 % n);
        let (g, emb, w) = build(n, r1, r2, m);
        let cfg = SimConfig::default();
        let plain = Simulator::new(&g, &emb, cfg).run(&w);
        let schedule = FaultSchedule {
            events: vec![FaultEvent {
                cycle: at,
                target: FaultTarget::Link(edge_pick % g.num_edges()),
                kind: FaultKind::Down,
                duration: Some(duration), // < default timeout of 32
            }],
            detection: DetectionConfig::default(),
        };
        let run = Simulator::new(&g, &emb, cfg).with_faults(&g, schedule).run_faulted(&w);

        prop_assert!(run.report.completed);
        prop_assert_eq!(run.report.mismatches, 0);
        prop_assert!(run.report.cycles >= plain.cycles);
        prop_assert!(run.faults.failed_edges.is_empty());
        prop_assert!(run.faults.failed_routers.is_empty());
        prop_assert!(!run.faults.aborted);
    }

    /// Degraded (slow) links never trip detection and preserve
    /// correctness at any period.
    #[test]
    fn degraded_links_complete_correctly(
        n in 4u32..8,
        m in 40u64..200,
        edge_pick in 0u32..100,
        period in 2u32..8,
    ) {
        let (g, emb, w) = build(n, 0, n / 2, m);
        let cfg = SimConfig::default();
        let schedule = FaultSchedule {
            events: vec![FaultEvent {
                cycle: 1,
                target: FaultTarget::Link(edge_pick % g.num_edges()),
                kind: FaultKind::Degraded { period },
                duration: None,
            }],
            detection: DetectionConfig::default(),
        };
        let run = Simulator::new(&g, &emb, cfg).with_faults(&g, schedule).run_faulted(&w);
        prop_assert!(run.report.completed);
        prop_assert_eq!(run.report.mismatches, 0);
        prop_assert!(run.faults.failed_edges.is_empty());
    }
}
