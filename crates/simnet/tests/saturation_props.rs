//! Saturation guard for the latency–bandwidth-product fast path.
//!
//! The paper sizes in-network VC memory at `link_latency + 1` flits per
//! stream — exactly one latency–bandwidth product — and assumes a single
//! uncongested tree then streams at link rate. The active-set engine's
//! credit/wake bookkeeping must preserve that: a stream that transmits
//! every cycle keeps its source engine, its channel, and its receiver in
//! the active sets with no gaps, so any off-by-one in the wake rules or
//! the ring-buffer credit math shows up here as a throughput cliff.

use pf_allreduce::AllreducePlan;
use pf_simnet::{MultiTreeEmbedding, SimConfig, Simulator, Workload};
use proptest::prelude::*;

/// A single-tree run on the PolarFly of radix `q`: one stream per directed
/// channel, so the only throughput limiter is the flow-control window.
fn single_tree_bandwidth(q: u64, m: u64, link_latency: u32) -> f64 {
    let plan = AllreducePlan::single_tree(q).expect("odd prime power");
    let sizes = plan.split(m);
    let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
    let w = Workload::new(plan.graph.num_vertices(), m);
    let cfg = SimConfig {
        link_latency,
        // Exactly the latency-bandwidth product: the smallest buffer that
        // can sustain link rate.
        vc_buffer: link_latency as usize + 1,
        ..Default::default()
    };
    let r = Simulator::new(&plan.graph, &emb, cfg).run(&w);
    assert!(r.completed, "q={q} m={m} L={link_latency} did not complete");
    assert_eq!(r.mismatches, 0);
    r.measured_bandwidth
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With `vc_buffer = link_latency + 1`, one uncongested tree sustains
    /// ≥ 0.95 elements/cycle across radixes and link latencies — the
    /// minimal-buffer saturation claim, measured end to end through the
    /// optimized engine.
    #[test]
    fn minimal_buffer_sustains_link_rate(
        q in prop::sample::select(vec![3u64, 7, 11]),
        link_latency in 1u32..6,
    ) {
        let m = 4_000;
        let bw = single_tree_bandwidth(q, m, link_latency);
        prop_assert!(
            bw >= 0.95,
            "q={} L={}: measured {} el/cycle, expected >= 0.95",
            q, link_latency, bw
        );
    }
}

/// The deterministic floor the ISSUE asks for, pinned without proptest
/// shrinking so CI failures name the radix directly.
#[test]
fn minimal_buffer_sustains_link_rate_default_latency() {
    for q in [3u64, 7, 11] {
        let bw = single_tree_bandwidth(q, 4_000, SimConfig::default().link_latency);
        assert!(bw >= 0.95, "q={q}: measured {bw} el/cycle, expected >= 0.95");
    }
}
