//! Golden-trace fixtures: committed `pf-simnet-trace-v1` dumps that the
//! engine must reproduce byte for byte.
//!
//! The difftest layer proves the two engines agree with each other; this
//! layer pins them both to history. Any change to engine scheduling,
//! trace serialization, or the digest math shows up as a byte diff
//! against `tests/golden/*.json` — if the change is intentional,
//! regenerate the fixtures (and review the diff) with
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p pf-simnet --test golden_traces
//! ```
//!
//! The fixtures are deliberately small: the q = 3 low-depth plan
//! (13 nodes), a 40-element vector, and a 32-bucket timeline — one
//! allreduce and one reduce-scatter (the sharded-training half whose
//! trace differs most: no broadcast relays, one sink per tree). A second
//! pair pins the first off-PolarFly plan: the kary multitree construction
//! on a 4×4 torus, so generic-substrate embeddings are held to the same
//! byte-for-byte history as the paper's.

use pf_allreduce::{AllreducePlan, Budget, KaryMultitree};
use pf_simnet::engine::Collective;
use pf_simnet::{MultiTreeEmbedding, SimConfig, Simulator, TraceConfig, TraceReport, Workload};
use std::path::{Path, PathBuf};

const M: u64 = 40;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_trace(kind: Collective) -> TraceReport {
    let plan = AllreducePlan::low_depth(3).expect("q = 3");
    run_traced(&plan, kind)
}

fn golden_torus_trace(kind: Collective) -> TraceReport {
    let g = pf_topo::torus::Torus::new(&[4, 4]).graph().clone();
    let plan = AllreducePlan::construct(&g, &KaryMultitree { k: 3 }, &Budget::unlimited())
        .expect("kary plan on the 4x4 torus");
    run_traced(&plan, kind)
}

fn run_traced(plan: &AllreducePlan, kind: Collective) -> TraceReport {
    let sizes = plan.split(M);
    let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
    let w = Workload::new(plan.graph.num_vertices(), M);
    let (report, trace) = Simulator::new(&plan.graph, &emb, SimConfig::default())
        .with_trace(TraceConfig::with_timeline(32))
        .run_collective_traced(&w, kind);
    assert!(report.completed && report.mismatches == 0, "{}", kind.name());
    trace.expect("tracing was enabled")
}

fn check(kind: Collective, file: &str) {
    check_produced(golden_trace(kind), kind, file);
}

fn check_torus(kind: Collective, file: &str) {
    check_produced(golden_torus_trace(kind), kind, file);
}

fn check_produced(trace: TraceReport, kind: Collective, file: &str) {
    let path = golden_dir().join(file);
    let produced = trace.to_json();

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, &produced).expect("write golden fixture");
        return;
    }

    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {} ({e}); regenerate with GOLDEN_REGEN=1", path.display()));
    assert_eq!(
        produced.into_bytes(),
        committed.into_bytes(),
        "{} trace diverged from {}; if intentional, regenerate with GOLDEN_REGEN=1 and review the diff",
        kind.name(),
        path.display()
    );
}

#[test]
fn allreduce_trace_matches_the_golden_fixture() {
    check(Collective::Allreduce, "allreduce_q3.json");
}

#[test]
fn reduce_scatter_trace_matches_the_golden_fixture() {
    check(Collective::ReduceScatter, "reduce_scatter_q3.json");
}

#[test]
fn torus_allreduce_trace_matches_the_golden_fixture() {
    check_torus(Collective::Allreduce, "allreduce_torus4x4.json");
}

#[test]
fn torus_reduce_scatter_trace_matches_the_golden_fixture() {
    check_torus(Collective::ReduceScatter, "reduce_scatter_torus4x4.json");
}

/// The fixtures also pin the parser: a committed dump must round-trip
/// through `TraceReport::from_json` back to identical bytes.
#[test]
fn golden_fixtures_round_trip_through_the_parser() {
    for file in [
        "allreduce_q3.json",
        "reduce_scatter_q3.json",
        "allreduce_torus4x4.json",
        "reduce_scatter_torus4x4.json",
    ] {
        let path = golden_dir().join(file);
        let Ok(committed) = std::fs::read_to_string(&path) else {
            // First generation: the byte-compare tests report the miss.
            continue;
        };
        let parsed = TraceReport::from_json(&committed)
            .unwrap_or_else(|e| panic!("{file} does not parse: {e}"));
        assert_eq!(parsed.to_json(), committed, "{file} round-trip changed bytes");
    }
}
