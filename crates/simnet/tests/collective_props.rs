//! Property tests for the sharded-training collectives.
//!
//! The tentpole invariant is **composition**: a reduce-scatter followed
//! by an allgather is an allreduce. The engine encodes the hand-off
//! exactly — the reduce-scatter delivers each tree's reduced slice to
//! the tree's root (the shard owner), and the allgather's roots source
//! those same reduced slices back down — so the delivery multiset of the
//! allgather equals the allreduce's, and the order-independent
//! [`pf_simnet::delivery_digest_entry`] digest proves it without storing
//! any vectors.
//!
//! Digest equality is asserted bit-exactly for wrapping-`u64` segments.
//! `f64` segments reduce in tree order, so the allreduce's delivered sums
//! may differ in low bits from the canonical expectation the allgather
//! re-injects; there the tests fall back to completion, zero mismatches,
//! and reconstruction of each collective's digest from the workload.
//!
//! A second layer pins the collectives to the Theorem 5.1 / Algorithm 1
//! phase model: the fill-before-drain prediction is an upper bound on
//! the measured cycles, and each single-phase half is strictly cheaper
//! than the two-phase allreduce.
//!
//! Quick configurations (q ∈ {3, 5}) run everywhere; the full radix
//! sweep (q ∈ {3, 5, 7, 11}) is `#[ignore]`d and runs in the nightly
//! `--include-ignored` job.

use pf_allreduce::AllreducePlan;
use pf_simnet::engine::Collective;
use pf_simnet::{
    delivery_digest_entry, JobSegment, MultiTreeEmbedding, ReduceKind, SimConfig, SimReport,
    Simulator, Workload,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn run(plan: &AllreducePlan, w: &Workload, kind: Collective) -> SimReport {
    let sizes = plan.split(w.len());
    let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
    Simulator::new(&plan.graph, &emb, SimConfig::default()).run_collective(w, kind)
}

/// The digest of a full broadcast-style delivery of the expected vector:
/// every node receives every element.
fn allgather_digest(n: u32, w: &Workload) -> u64 {
    let mut d = 0u64;
    for node in 0..u64::from(n) {
        for elem in 0..w.len() {
            d = d.wrapping_add(delivery_digest_entry(node, elem, w.expected(elem)));
        }
    }
    d
}

/// The digest of the reduce-scatter's delivery set: each tree's root
/// owns the slice the Algorithm 1 split assigned to that tree.
fn reduce_scatter_digest(plan: &AllreducePlan, w: &Workload) -> u64 {
    let sizes = plan.split(w.len());
    let mut d = 0u64;
    let mut off = 0u64;
    for (tree, &len) in plan.trees.iter().zip(&sizes) {
        for elem in off..off + len {
            d = d.wrapping_add(delivery_digest_entry(
                u64::from(tree.root()),
                elem,
                w.expected(elem),
            ));
        }
        off += len;
    }
    d
}

/// One random workload segment: length, operator, and an optional
/// participant subset (non-participants contribute the identity).
fn segment(n: u32) -> impl Strategy<Value = JobSegment> {
    (
        1u64..260,
        any::<bool>(),
        any::<bool>(),
        prop::collection::vec(0..n, 1..n as usize),
    )
        .prop_map(|(elems, float, full, picks)| {
            let subset: std::collections::BTreeSet<u32> = picks.into_iter().collect();
            JobSegment {
                elems,
                kind: if float { ReduceKind::FloatF64 } else { ReduceKind::WrappingU64 },
                participants: (!full).then(|| subset.into_iter().collect()),
            }
        })
}

fn composition_case(q: u64, segs: &[JobSegment]) -> Result<(), TestCaseError> {
    let plan = AllreducePlan::low_depth(q).expect("odd prime power");
    let n = plan.graph.num_vertices();
    let w = Workload::concat(n, segs);
    let exact = segs.iter().all(|s| matches!(s.kind, ReduceKind::WrappingU64));

    let rs = run(&plan, &w, Collective::ReduceScatter);
    let ag = run(&plan, &w, Collective::Allgather);
    let ar = run(&plan, &w, Collective::Allreduce);
    for (name, r) in [("reduce_scatter", &rs), ("allgather", &ag), ("allreduce", &ar)] {
        prop_assert!(r.completed, "{} did not complete", name);
        prop_assert_eq!(r.mismatches, 0, "{} mismatched", name);
    }

    // The allgather re-injects the canonical expected values (the
    // reduce-scatter's outputs), so its digest reconstructs from the
    // workload for every operator.
    prop_assert_eq!(ag.value_digest, allgather_digest(n, &w));

    if exact {
        // Wrapping addition is order-independent, so the reduce-scatter's
        // delivered roots carry exactly the expected slices, and the
        // composed pair reproduces the allreduce's delivery multiset.
        prop_assert_eq!(rs.value_digest, reduce_scatter_digest(&plan, &w));
        prop_assert_eq!(
            ag.value_digest,
            ar.value_digest,
            "rs ∘ ag must equal the allreduce per-node values"
        );
    }
    Ok(())
}

fn conformance_case(q: u64, m: u64) -> Result<(), TestCaseError> {
    let plan = AllreducePlan::low_depth(q).expect("odd prime power");
    let w = Workload::new(plan.graph.num_vertices(), m);
    let hop = SimConfig::default().link_latency as u64;

    let ar = run(&plan, &w, Collective::Allreduce);
    let rs = run(&plan, &w, Collective::ReduceScatter);
    let ag = run(&plan, &w, Collective::Allgather);
    prop_assert!(ar.completed && rs.completed && ag.completed);

    // The model charges the full pipeline fill before any drain; real
    // pipelines overlap them, so prediction bounds measurement.
    prop_assert!(ar.cycles <= plan.predicted_cycles(m, hop));
    prop_assert!(rs.cycles <= plan.predicted_reduce_scatter_cycles(m, hop));
    prop_assert!(ag.cycles <= plan.predicted_allgather_cycles(m, hop));
    // The mirrored halves cost the same, and each strictly less than the
    // two-phase allreduce.
    prop_assert_eq!(rs.cycles, ag.cycles);
    prop_assert!(rs.cycles < ar.cycles);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Quick composition sweep: q ∈ {3, 5}, random segmented workloads
    /// with mixed operators and participant subsets.
    #[test]
    fn reduce_scatter_then_allgather_is_an_allreduce(
        q in prop::sample::select(vec![3u64, 5]),
        segs in prop::collection::vec(segment(13), 1..4),
    ) {
        // Participant ids are drawn against the smallest fabric (q = 3,
        // 13 nodes) so every subset is valid at both radixes.
        composition_case(q, &segs)?;
    }

    /// Quick conformance sweep: measured cycles respect the phase model.
    #[test]
    fn collectives_respect_the_phase_model(
        q in prop::sample::select(vec![3u64, 5]),
        m in 1u64..1500,
    ) {
        conformance_case(q, m)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full composition sweep over the paper's radixes — nightly only
    /// (`cargo test -- --include-ignored`).
    #[test]
    #[ignore = "full radix sweep; run under --include-ignored"]
    fn reduce_scatter_then_allgather_is_an_allreduce_full(
        q in prop::sample::select(vec![3u64, 5, 7, 11]),
        segs in prop::collection::vec(segment(13), 1..5),
    ) {
        composition_case(q, &segs)?;
    }

    /// Full conformance sweep over the paper's radixes — nightly only.
    #[test]
    #[ignore = "full radix sweep; run under --include-ignored"]
    fn collectives_respect_the_phase_model_full(
        q in prop::sample::select(vec![3u64, 5, 7, 11]),
        m in 1u64..4000,
    ) {
        conformance_case(q, m)?;
    }
}

/// The zero-length corner deterministically: every collective completes
/// in zero cycles with an empty digest.
#[test]
fn empty_vectors_digest_to_zero() {
    let plan = AllreducePlan::low_depth(3).unwrap();
    let w = Workload::new(plan.graph.num_vertices(), 0);
    for kind in Collective::ALL {
        let r = run(&plan, &w, kind);
        assert!(r.completed, "{}", kind.name());
        assert_eq!(r.value_digest, 0, "{}", kind.name());
    }
}
