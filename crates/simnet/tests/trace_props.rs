//! Property tests for the observability layer: tracing must never perturb
//! the simulation, and the exported counters must be internally consistent
//! with the untraced report.

use pf_simnet::engine::Collective;
use pf_simnet::{MultiTreeEmbedding, SimConfig, Simulator, TraceConfig, Workload};
use proptest::prelude::*;

use pf_graph::{Graph, RootedTree};

fn cycle_graph(n: u32) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(i, (i + 1) % n);
    }
    g
}

/// Two overlapping path trees on a cycle graph, rooted at the given nodes —
/// enough structure to exercise congestion, arbitration and credit stalls.
fn build(n: u32, r1: u32, r2: u32, m: u64) -> (Graph, MultiTreeEmbedding, Workload) {
    let g = cycle_graph(n);
    let path: Vec<u32> = (0..n).collect();
    let t1 = RootedTree::from_path(&path, r1 as usize).unwrap();
    let t2 = RootedTree::from_path(&path, r2 as usize).unwrap();
    let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m - m / 2]);
    let w = Workload::new(n, m);
    (g, emb, w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: attaching a tracer yields a bit-identical
    /// `SimReport` for every collective and configuration.
    #[test]
    fn tracing_never_perturbs_the_simulation(
        n in 4u32..9,
        roots in (0u32..9, 0u32..9),
        m in 0u64..260,
        latency in 1u32..5,
        vc_buffer in 1usize..7,
        kind in prop::sample::select(Collective::ALL.to_vec()),
    ) {
        let (r1, r2) = (roots.0 % n, roots.1 % n);
        let (g, emb, w) = build(n, r1, r2, m);
        let cfg = SimConfig { link_latency: latency, vc_buffer, ..Default::default() };

        let plain = Simulator::new(&g, &emb, cfg).run_collective(&w, kind);
        let (traced, trace) = Simulator::new(&g, &emb, cfg)
            .with_trace(TraceConfig::with_timeline(64))
            .run_collective_traced(&w, kind);

        prop_assert_eq!(&plain, &traced);
        prop_assert!(plain.completed);
        prop_assert_eq!(plain.mismatches, 0);

        // The trace must agree with the untraced report wherever they
        // overlap, and be internally consistent.
        let trace = trace.expect("tracer was attached");
        prop_assert_eq!(trace.cycles, plain.cycles);
        let flits: u64 = plain.channel_flits.iter().sum();
        prop_assert_eq!(trace.total_flits, flits);
        for (c, ct) in trace.channels.iter().enumerate() {
            prop_assert_eq!(ct.flits, plain.channel_flits[c]);
            prop_assert_eq!(ct.busy_cycles, ct.flits);
            prop_assert_eq!(
                ct.busy_cycles + ct.credit_stall_cycles + ct.idle_cycles,
                trace.cycles
            );
            prop_assert!(ct.active_streams <= ct.streams);
        }
        for st in &trace.streams {
            prop_assert!(st.max_vc_occupancy as usize <= vc_buffer);
            // A stream's cycles are partitioned, so its stall + arb-loss +
            // flit cycles can't exceed the run length.
            prop_assert!(
                st.flits + st.credit_stall_cycles + st.arb_loss_cycles <= trace.cycles
            );
        }
        let reductions: u64 = trace.routers.iter().map(|r| r.reductions).sum();
        let relays: u64 = trace.routers.iter().map(|r| r.relays).sum();
        // Every (tree, node) of a reducing collective reduces its slice
        // exactly once.
        if kind.reduces() {
            prop_assert_eq!(reductions, m * n as u64);
        } else {
            prop_assert_eq!(reductions, 0);
        }
        match kind {
            Collective::Reduce | Collective::ReduceScatter => prop_assert_eq!(relays, 0),
            // Non-root nodes relay each element of each tree's slice (the
            // allreduce root's turnaround is counted as a reduction).
            Collective::Allreduce => prop_assert_eq!(relays, m * (n as u64 - 1)),
            // Broadcast-down-only collectives also count the root's source
            // firings.
            Collective::Broadcast | Collective::Allgather => {
                prop_assert_eq!(relays, m * n as u64);
            }
        }
        if let Some(last) = trace.timeline.last() {
            prop_assert_eq!(last.cycle, trace.cycles);
            prop_assert_eq!(last.flits, trace.total_flits);
        }
    }

    /// The JSON export round-trips every trace the simulator produces.
    #[test]
    fn real_traces_round_trip_through_json(
        n in 4u32..8,
        m in 1u64..120,
    ) {
        let (g, emb, w) = build(n, 0, n / 2, m);
        let (_, trace) = Simulator::new(&g, &emb, SimConfig::default())
            .with_trace(TraceConfig::with_timeline(32))
            .run_traced(&w);
        let trace = trace.unwrap();
        let parsed = pf_simnet::TraceReport::from_json(&trace.to_json()).unwrap();
        prop_assert_eq!(parsed, trace);
    }
}

/// `TraceConfig::off` must not allocate a tracer at all.
#[test]
fn off_config_returns_no_trace() {
    let (g, emb, w) = build(5, 0, 2, 40);
    let (report, trace) = Simulator::new(&g, &emb, SimConfig::default())
        .with_trace(TraceConfig::off())
        .run_traced(&w);
    assert!(report.completed);
    assert!(trace.is_none());
}

/// Counter-only tracing (no timeline) leaves the timeline empty.
#[test]
fn counters_config_has_empty_timeline() {
    let (g, emb, w) = build(5, 0, 2, 40);
    let (_, trace) = Simulator::new(&g, &emb, SimConfig::default())
        .with_trace(TraceConfig::counters())
        .run_traced(&w);
    let trace = trace.unwrap();
    assert!(trace.timeline.is_empty());
    assert!(trace.total_flits > 0);
}
