//! The cycle-driven simulation engine.
//!
//! Each cycle has three sub-steps, in an order that prevents same-cycle
//! pass-through (a flit needs at least one cycle per hop):
//!
//! 1. **Arrivals** — in-flight flits whose latency elapsed enter the
//!    destination's virtual-channel buffer.
//! 2. **Compute** — every router advances each tree's reduction engine (one
//!    element per tree per cycle: combine all child heads with the local
//!    contribution, emit to the parent or, at the root, eject and fan out
//!    the broadcast) and each tree's broadcast relay.
//! 3. **Transmit** — every directed channel moves at most one flit,
//!    selected by work-conserving round-robin among its resident streams
//!    with both data and downstream credit. This is where congestion turns
//!    into bandwidth sharing.
//!
//! Credits are implicit: a stream may transmit only while
//! `receiver-buffer occupancy + in-flight < vc_buffer`, which is exactly
//! credit-based flow control with `vc_buffer` credits.
//!
//! # Execution strategy
//!
//! The model above is what the simulator *computes*; it is not how the hot
//! loop *iterates*. A naive stepper re-scans every (tree, node) engine,
//! every stream and every directed channel on every cycle, which makes
//! large-radix sweeps compute-bound on scan overhead rather than on the
//! modeled fabric. This engine instead keeps incremental **active sets**
//! (see `docs/PERFORMANCE.md`):
//!
//! * a per-tree bitset of engines whose inputs, credits or budgets may have
//!   changed since they last stalled — only those are re-evaluated,
//! * a bitset of channels with at least one staged flit — only those
//!   arbitrate,
//! * a bitset of streams with flits on the wire — only those are polled for
//!   arrivals,
//! * and when a cycle makes no progress at all, the clock **skips** directly
//!   to the earliest in-flight arrival or fault-schedule transition instead
//!   of ticking idly (latency tails, drain phases, fault-frozen fabrics).
//!
//! All queue state lives in flat, pre-sized ring-buffer arenas — the steady
//! state allocates nothing. The pre-optimization stepper is retained as
//! [`mod@reference`] (behind `cfg(test)` / the `reference-engine` feature) and a
//! differential suite (`src/difftest.rs`) asserts byte-identical
//! [`SimReport`]s, trace bytes and [`FaultReport`]s across collectives,
//! radixes, caps, tracing and fault schedules. Tracing pins per-cycle
//! stepping (no skip, full scans) so observed stall attribution is identical
//! to the reference stepper's.

use crate::embedding::{MultiTreeEmbedding, Phase};
use crate::faults::{FaultReport, FaultSchedule, FaultState};
use crate::trace::{EngineStall, TraceConfig, TraceReport, Tracer};
use crate::workload::Workload;
use pf_graph::Graph;

#[cfg(any(test, feature = "reference-engine"))]
pub mod reference;

/// Simulator knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Pipeline latency of every physical hop, in cycles (≥ 1).
    pub link_latency: u32,
    /// Virtual-channel buffer capacity per stream at the receiver, in
    /// flits. Full throughput needs `link_latency + 1` or more (the
    /// latency–bandwidth product).
    pub vc_buffer: usize,
    /// Sender-side staging queue per stream, in flits.
    pub source_queue: usize,
    /// Hard cycle cap: the run aborts (with `completed = false`) if
    /// exceeded — a deadlock/livelock backstop.
    pub max_cycles: u64,
    /// Reduction-engine capacity per router per cycle, across all trees
    /// (`None` = unbounded, the paper's "multiple reductions at link rate"
    /// assumption; small values model compute-bound routers — the engine
    /// ablation).
    pub max_reductions_per_router: Option<u32>,
    /// Local-port injection capacity per node per cycle, across all trees
    /// (`None` = unbounded — §4.1's assumption that a node drives all its
    /// links at once; multi-tree allreduce needs ~aggregate-bandwidth
    /// injection per node, which this knob makes explicit).
    pub max_injections_per_node: Option<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency: 4,
            vc_buffer: 6,
            source_queue: 2,
            max_cycles: 50_000_000,
            max_reductions_per_router: None,
            max_injections_per_node: None,
        }
    }
}

/// Which collective the engines execute over the embedded trees.
///
/// The sharded-training pair decomposes an allreduce the way ZeRO/FSDP
/// decomposes a training step: [`Collective::ReduceScatter`] runs the
/// reduce-up phase and leaves each tree's reduced slice with its owner
/// shard (the tree root), [`Collective::Allgather`] broadcasts each
/// shard's already-reduced slice back down to every node. Composing the
/// two delivers exactly what one [`Collective::Allreduce`] delivers
/// (property-tested via [`SimReport::value_digest`] in
/// `tests/collective_props.rs`; semantics in `docs/COLLECTIVES.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Reduce up + broadcast down: every node gets the global reduction.
    Allreduce,
    /// Reduce up only: the tree roots get the global reduction.
    Reduce,
    /// Broadcast down only: the roots' own slices reach every node.
    Broadcast,
    /// Reduce up only, sharded delivery: each tree's slice of the global
    /// reduction ends at that tree's root — the shard that owns it. Same
    /// dataflow as [`Collective::Reduce`]; a distinct collective because
    /// it is priced, traced and scheduled as half of a sharded allreduce.
    ReduceScatter,
    /// Broadcast down of per-shard *reduced* contributions: each root
    /// injects its slice of the global reduction (the state a preceding
    /// reduce-scatter left it with) and every node receives it.
    Allgather,
}

impl Collective {
    /// Every collective the engines implement, in a stable order.
    pub const ALL: [Collective; 5] = [
        Collective::Allreduce,
        Collective::Reduce,
        Collective::Broadcast,
        Collective::ReduceScatter,
        Collective::Allgather,
    ];

    /// Does this collective run the reduce-up phase (reduction engines
    /// fire, child streams are combined toward the root)?
    #[must_use]
    pub fn reduces(self) -> bool {
        matches!(self, Collective::Allreduce | Collective::Reduce | Collective::ReduceScatter)
    }

    /// Does this collective run the broadcast-down phase (relays forward
    /// values from parent to children)?
    #[must_use]
    pub fn broadcasts(self) -> bool {
        matches!(self, Collective::Allreduce | Collective::Broadcast | Collective::Allgather)
    }

    /// Does the tree root *originate* the down phase from local state
    /// (rather than turning the reduction around, as allreduce does)?
    #[must_use]
    pub fn root_sources_broadcast(self) -> bool {
        matches!(self, Collective::Broadcast | Collective::Allgather)
    }

    /// How many sinks each tree's slice is delivered to: every node, or
    /// only the root shard.
    #[must_use]
    pub fn sinks_per_tree(self, n: u64) -> u64 {
        if self.broadcasts() {
            n
        } else {
            1
        }
    }

    /// The stable snake_case name used by the `pf-simnet-trace-v1` schema
    /// (`collective` fields) and the bench tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Collective::Allreduce => "allreduce",
            Collective::Reduce => "reduce",
            Collective::Broadcast => "broadcast",
            Collective::ReduceScatter => "reduce_scatter",
            Collective::Allgather => "allgather",
        }
    }

    /// Inverse of [`Collective::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Collective> {
        Collective::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Result of one simulated collective (allreduce by default; see
/// [`Collective`] for the full set).
///
/// `PartialEq` is derived so tests can assert that enabling tracing leaves
/// the simulation bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total cycles until the last element was delivered everywhere.
    pub cycles: u64,
    /// Total vector length reduced.
    pub total_elems: u64,
    /// `true` iff every node received every element before `max_cycles`.
    pub completed: bool,
    /// Elements whose delivered value disagreed with the expected
    /// reduction (must be 0).
    pub mismatches: u64,
    /// Order-independent digest of every `(sink node, global element,
    /// delivered value)` triple — the wrapping sum of
    /// [`delivery_digest_entry`] over all deliveries. Two collectives
    /// delivering the same values to the same sinks produce the same
    /// digest regardless of timing, which is how the composition suite
    /// proves reduce-scatter∘allgather ≡ allreduce.
    pub value_digest: u64,
    /// Aggregate goodput in elements/cycle: `total_elems / cycles`.
    pub measured_bandwidth: f64,
    /// Completion cycle per tree (last delivery of its slice).
    pub tree_completion: Vec<u64>,
    /// Cycle by which every sink had received its *first* element — the
    /// collective's latency, dominated by tree depth (Figure 5b's
    /// quantity, measured on the executing system).
    pub first_element_latency: u64,
    /// Flits carried per directed channel.
    pub channel_flits: Vec<u64>,
    /// Maximum observed channel utilization (flits / cycles).
    pub max_channel_utilization: f64,
    /// High-water mark of receiver VC occupancy (buffered + in flight)
    /// over all streams — never exceeds `vc_buffer`, and saturated runs
    /// sit at the latency-bandwidth product.
    pub max_vc_occupancy: usize,
}

/// One tenant's slice of a multi-job run ([`Simulator::run_jobs`]): which
/// contiguous range of the embedding's trees it owns and when it is
/// released into the fabric.
#[derive(Debug, Clone)]
pub struct JobBinding {
    /// The half-open range of embedded tree indices this job owns. The
    /// bindings of one run must partition `0..emb.trees.len()`
    /// contiguously and in order.
    pub trees: std::ops::Range<usize>,
    /// First cycle at which this job's engines may fire (`0` = from the
    /// start). Models staggered arrivals inside one scheduling wave.
    pub release: u64,
}

/// Per-job results of a multi-job run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Cycle of this job's first delivered element (0 if none).
    pub first_delivery: u64,
    /// Cycle of this job's last delivered element (0 if incomplete).
    pub completion: u64,
    /// Elements delivered to sinks for this job (`elems * n` when done).
    pub deliveries: u64,
    /// The job's vector length (sum of its trees' slice lengths).
    pub elems: u64,
    /// Order-independent digest of the root-reduced values, keyed by
    /// global element id. Two runs reducing the same elements over the
    /// same trees produce the same digest — the scheduler's
    /// concurrent-vs-sequential equivalence check.
    pub value_hash: u64,
    /// Expected-value check failures attributed to this job (must be 0).
    pub mismatches: u64,
}

/// Result of [`Simulator::run_jobs`]: the fabric-wide report plus one
/// [`JobOutcome`] per binding.
#[derive(Debug, Clone)]
pub struct JobsRun {
    /// The ordinary fabric-wide simulation report.
    pub report: SimReport,
    /// The trace, when one was enabled via [`Simulator::with_trace`].
    pub trace: Option<TraceReport>,
    /// What the fault layer injected and detected (quiet when no layer
    /// was attached).
    pub faults: FaultReport,
    /// Per-job outcomes, in binding order.
    pub jobs: Vec<JobOutcome>,
}

/// Result of a run with a fault layer attached
/// ([`Simulator::with_faults`]).
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// The ordinary simulation report. `completed` is `false` when
    /// detection aborted the run.
    pub report: SimReport,
    /// The trace, when one was also enabled via [`Simulator::with_trace`].
    pub trace: Option<TraceReport>,
    /// What the fault layer injected and detected.
    pub faults: FaultReport,
}

/// The cycle-level simulator. Construct once per embedding, then
/// [`Simulator::run`].
pub struct Simulator<'a> {
    emb: &'a MultiTreeEmbedding,
    cfg: SimConfig,
    tracer: Option<Tracer>,
    faults: Option<FaultState>,
}

impl<'a> Simulator<'a> {
    /// Wires up the engines for an embedding. `g` must be the graph the
    /// embedding was built from (used only for assertions).
    pub fn new(g: &Graph, emb: &'a MultiTreeEmbedding, cfg: SimConfig) -> Self {
        assert!(cfg.link_latency >= 1, "links need at least one cycle of latency");
        assert!(cfg.vc_buffer >= 1 && cfg.source_queue >= 1, "queues must hold at least one flit");
        assert_eq!(g.num_vertices(), emb.num_nodes);
        Simulator { emb, cfg, tracer: None, faults: None }
    }

    /// Enables observability per `tcfg` (see [`crate::trace`]). With
    /// [`TraceConfig::off`] (the default) no tracer is allocated and the
    /// run is exactly the untraced one. A traced run steps every cycle
    /// (no idle-cycle skipping) so stall attribution is exact.
    pub fn with_trace(mut self, tcfg: TraceConfig) -> Self {
        self.tracer = tcfg.enabled.then(|| {
            Tracer::new(
                self.emb.streams.len(),
                self.emb.channel_streams.len(),
                self.emb.num_nodes as usize,
                tcfg,
            )
        });
        self
    }

    /// Attaches a fault-injection layer executing `schedule` (see
    /// [`crate::faults`]). `g` must be the graph the embedding was built
    /// from. With an empty schedule the layer stays attached but every
    /// decision is identical to a run without it (property-tested, like
    /// tracing).
    pub fn with_faults(mut self, g: &Graph, schedule: FaultSchedule) -> Self {
        assert_eq!(g.num_vertices(), self.emb.num_nodes);
        self.faults = Some(FaultState::new(g, self.emb, &schedule));
        self
    }

    /// Runs the allreduce of `w` (which must match the embedding's node
    /// count and total length) to completion and reports.
    pub fn run(self, w: &Workload) -> SimReport {
        self.run_collective(w, Collective::Allreduce)
    }

    /// Runs an arbitrary tree collective of `w` to completion and reports.
    pub fn run_collective(self, w: &Workload, kind: Collective) -> SimReport {
        self.run_collective_traced(w, kind).0
    }

    /// Like [`Simulator::run`], additionally returning the trace when one
    /// was enabled via [`Simulator::with_trace`].
    pub fn run_traced(self, w: &Workload) -> (SimReport, Option<TraceReport>) {
        self.run_collective_traced(w, Collective::Allreduce)
    }

    /// Like [`Simulator::run_collective`], additionally returning the
    /// trace when one was enabled via [`Simulator::with_trace`].
    ///
    /// Tracing is purely observational: the `SimReport` is identical
    /// whether or not a tracer is attached.
    pub fn run_collective_traced(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>) {
        let (report, trace, _) = self.run_inner(w, kind);
        (report, trace)
    }

    /// Runs the allreduce of `w` under the attached fault layer (or a
    /// quiet one) and reports the fault layer's observations alongside.
    pub fn run_faulted(self, w: &Workload) -> FaultedRun {
        self.run_collective_faulted(w, Collective::Allreduce)
    }

    /// Like [`Simulator::run_faulted`] for an arbitrary collective.
    pub fn run_collective_faulted(self, w: &Workload, kind: Collective) -> FaultedRun {
        let (report, trace, faults) = self.run_inner(w, kind);
        FaultedRun { report, trace, faults: faults.unwrap_or_else(FaultReport::quiet) }
    }

    /// Runs several independent allreduce jobs concurrently on one fabric.
    ///
    /// Each [`JobBinding`] owns a contiguous range of the embedding's
    /// trees (the bindings must partition `0..emb.trees.len()` in order)
    /// and an optional release cycle. The jobs contend for the shared
    /// directed channels exactly like the streams of a single collective
    /// — the active-set engine arbitrates them with no scheduler in the
    /// loop — while reductions, validation and completion are tracked per
    /// job. The workload must cover every tree slice's global element
    /// range (build it with [`Workload::concat`] so each job owns a
    /// distinct segment; `w.len() >= emb.elem_end()`).
    ///
    /// With a single binding released at 0 this is exactly
    /// [`Simulator::run`] plus per-job accounting: same `SimReport`,
    /// byte-identical engine decisions.
    pub fn run_jobs(self, w: &Workload, bindings: &[JobBinding]) -> JobsRun {
        self.run_jobs_collective(w, bindings, Collective::Allreduce)
    }

    /// Like [`Simulator::run_jobs`] for an arbitrary collective: every job
    /// in the wave executes the same `kind` over its own tree range (the
    /// scheduler groups admissions so a wave is homogeneous).
    pub fn run_jobs_collective(
        self,
        w: &Workload,
        bindings: &[JobBinding],
        kind: Collective,
    ) -> JobsRun {
        assert!(!bindings.is_empty(), "at least one job binding");
        let ntrees = self.emb.trees.len();
        let mut next = 0usize;
        for b in bindings {
            assert!(
                b.trees.start == next && b.trees.end > b.trees.start && b.trees.end <= ntrees,
                "job bindings must partition the embedding's trees contiguously"
            );
            next = b.trees.end;
        }
        assert_eq!(next, ntrees, "job bindings must cover every embedded tree");
        let (report, trace, faults, jobs) = self.run_inner_jobs(w, kind, Some(bindings));
        JobsRun { report, trace, faults: faults.unwrap_or_else(FaultReport::quiet), jobs }
    }

    /// Runs `w` on the retained pre-optimization stepper (see
    /// [`mod@reference`]). Kept solely so differential tests and the
    /// `experiments perf-snapshot` harness can compare the optimized
    /// engine against it — new code should call [`Simulator::run`].
    #[cfg(any(test, feature = "reference-engine"))]
    pub fn run_reference(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        reference::run(self, w, kind)
    }

    /// The optimized engine's raw `(report, trace, faults)` triple — the
    /// exact counterpart of [`Simulator::run_reference`], exposed with the
    /// same gating so differential harnesses compare like with like.
    #[cfg(any(test, feature = "reference-engine"))]
    pub fn run_optimized(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        self.run_inner(w, kind)
    }

    fn run_inner(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        let (report, trace, faults, _) = self.run_inner_jobs(w, kind, None);
        (report, trace, faults)
    }

    fn run_inner_jobs(
        self,
        w: &Workload,
        kind: Collective,
        bindings: Option<&[JobBinding]>,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>, Vec<JobOutcome>) {
        assert_eq!(w.nodes(), self.emb.num_nodes);
        assert!(
            w.len() >= self.emb.elem_end(),
            "workload must cover every tree slice's global element range"
        );

        let Simulator { emb, cfg, mut tracer, mut faults } = self;
        let mut st = RunState::new(emb, cfg, kind, bindings);

        let traced = tracer.is_some();
        let mut cycle = 0u64;
        while st.deliveries < st.total_deliveries
            && cycle < cfg.max_cycles
            && !faults.as_ref().is_some_and(|f| f.should_abort())
        {
            cycle += 1;
            if let Some(fs) = faults.as_mut() {
                fs.begin_cycle(cycle);
            }
            st.progress = false;

            st.step_arrivals(cycle, &faults);
            st.step_compute(cycle, w, &mut tracer, &faults);
            st.step_transmit(cycle, traced, &mut tracer, &mut faults);

            if let Some(tr) = tracer.as_mut() {
                if tr.timeline_due(cycle) {
                    tr.sample_timeline(cycle, st.deliveries);
                }
            }

            // Time skip: if this cycle made no progress at all, nothing can
            // change until the next in-flight arrival (or the next fault
            // activation / heal). Jump there instead of ticking idly.
            // Tracing pins per-cycle stepping; an actively faulted fabric
            // (downed or degraded channels) needs per-cycle stall/degrade
            // accounting, so skipping pauses until it is quiet again.
            if !st.progress && !traced && st.deliveries < st.total_deliveries {
                let fault_ok = faults.as_ref().is_none_or(|f| f.skip_safe());
                if fault_ok {
                    let mut target = cfg.max_cycles;
                    if let Some(next) = st.next_arrival() {
                        target = target.min(next - 1);
                    }
                    if let Some(next) = faults.as_ref().and_then(|f| f.next_transition()) {
                        target = target.min(next - 1);
                    }
                    if let Some(next) = st.next_release(cycle) {
                        target = target.min(next - 1);
                    }
                    cycle = cycle.max(target.min(cfg.max_cycles));
                }
            }
        }

        let completed = st.deliveries == st.total_deliveries;
        let max_util = st
            .channel_flits
            .iter()
            .map(|&f| f as f64 / cycle.max(1) as f64)
            .fold(0.0, f64::max);
        let fault_report = faults.map(|f| f.finish(completed));
        let mut trace = tracer.map(|mut tr| {
            tr.sample_timeline(cycle, st.deliveries); // final sample (timeline runs only)
            tr.finish(emb, cycle)
        });
        if let Some(t) = trace.as_mut() {
            t.collective = kind.name().to_string();
        }
        if let (Some(t), Some(fr)) = (trace.as_mut(), fault_report.as_ref()) {
            t.faults = fr.records.clone();
        }
        let report = SimReport {
            cycles: cycle,
            total_elems: emb.total_len,
            completed,
            mismatches: st.mismatches,
            value_digest: st.value_digest,
            measured_bandwidth: emb.total_len as f64 / cycle.max(1) as f64,
            tree_completion: st.tree_completion,
            first_element_latency: st.first_element_latency,
            channel_flits: st.channel_flits,
            max_channel_utilization: max_util,
            max_vc_occupancy: st.max_vc_occupancy,
        };
        let jobs = (0..st.njobs)
            .map(|j| JobOutcome {
                first_delivery: st.job_first[j],
                completion: st.job_completion[j],
                deliveries: st.job_deliveries[j],
                elems: st.job_elems[j],
                value_hash: st.job_hash[j],
                mismatches: st.job_mismatches[j],
            })
            .collect();
        (report, trace, fault_report, jobs)
    }
}

/// Order-independent digest entry for one root-reduced element: a
/// SplitMix64-style finalizer over `(global element id, reduced value)`.
/// Job digests are the wrapping sum of these entries, so arbitrary
/// interleaving of element completions leaves the digest unchanged.
#[inline]
fn hash_entry(elem: u64, val: u64) -> u64 {
    let mut z = elem.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ val;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The digest entry one delivery contributes to
/// [`SimReport::value_digest`]: a nested `hash_entry` over the sink
/// node, the global element id, and the delivered value (raw `u64`
/// payload — float workloads contribute their bit patterns).
///
/// Exposed so tests can reconstruct the digest a collective *should*
/// produce (e.g. a reduce-scatter delivers `(root(t), offset+e,
/// expected(offset+e))` for every tree `t` and slice element `e`) and
/// compare it against the engine's.
#[inline]
#[must_use]
pub fn delivery_digest_entry(node: u64, elem: u64, val: u64) -> u64 {
    hash_entry(node, hash_entry(elem, val))
}

/// Sentinel for "no stream wired here" in the flat dataflow arrays.
const NONE: u32 = u32::MAX;

/// All mutable state of one optimized run: flat arenas, active sets, and
/// the progress counters folded into the final [`SimReport`].
///
/// Engines are addressed by *pair* index `p = tree * n + node`; stream
/// queues live in pre-sized ring-buffer arenas (`sendq` at the sender,
/// a combined wire/VC ring at the receiver). The steady-state loop
/// performs no heap allocation.
struct RunState {
    cfg: SimConfig,
    kind: Collective,
    n: usize,
    ntrees: usize,

    // Per-tree metadata (flattened from the embedding).
    tree_root: Vec<u32>,
    tree_len: Vec<u64>,
    tree_off: Vec<u64>,

    // Multi-job bookkeeping (all-zero / inert for single-job runs).
    track_jobs: bool,
    njobs: usize,
    tree_release: Vec<u64>,
    tree_job: Vec<u32>,
    job_first: Vec<u64>,
    job_completion: Vec<u64>,
    job_deliveries: Vec<u64>,
    job_total: Vec<u64>,
    job_elems: Vec<u64>,
    job_hash: Vec<u64>,
    job_mismatches: Vec<u64>,

    // Per-pair dataflow wiring: CSR slices into the id arenas.
    reduce_in_off: Vec<u32>,
    bcast_out_off: Vec<u32>,
    in_ids: Vec<u32>,
    out_ids: Vec<u32>,
    reduce_out: Vec<u32>,
    bcast_in: Vec<u32>,
    reduced: Vec<u64>,
    delivered: Vec<u64>,

    // Stream queues: sender staging ring + combined wire/VC ring. Rings
    // are strided at the next power of two so slot arithmetic is a mask
    // and a shift, never a division; the logical capacity stays the
    // configured value (enforced by the credit/space comparisons).
    sq_cap: u32,
    sq_mask: u32,
    sq_shift: u32,
    vc_cap: u32,
    vc_mask: u32,
    vc_shift: u32,
    sendq_val: Vec<u64>,
    sendq_head: Vec<u32>,
    sendq_len: Vec<u32>,
    vc_arr: Vec<u64>,
    vc_val: Vec<u64>,
    vc_head: Vec<u32>,
    vc_arrived: Vec<u32>,
    vc_inflight: Vec<u32>,

    // Stream -> owning channel (for channel activation on staging).
    stream_chan: Vec<u32>,
    // Precomputed wake targets: the absolute `pair_active` word index and
    // bit mask of each stream's endpoint engines, so a flit event re-arms
    // an engine with a single indexed OR (no division on the hot path).
    wake_src_word: Vec<u32>,
    wake_src_mask: Vec<u64>,
    wake_dst_word: Vec<u32>,
    wake_dst_mask: Vec<u64>,
    // Reduction-input readiness: per-pair count of reduce-input streams
    // with at least one arrived flit, plus a per-stream back-pointer to
    // the pair whose count the stream feeds (`NONE` for broadcast
    // streams). Makes `inputs_ready` O(1) instead of a CSR gather per
    // engine evaluation.
    ready_in: Vec<u32>,
    ready_slot: Vec<u32>,

    // CSR-flattened channel -> member streams map.
    chan_off: Vec<u32>,
    chan_members: Vec<u32>,
    rr: Vec<u32>,

    // Active sets (bitset words).
    words_per_tree: usize,
    pair_active: Vec<u64>,
    chan_active: Vec<u64>,
    wire_active: Vec<u64>,

    // Lazily refilled per-node budgets (epoch-stamped; see docs).
    engine_budget: Vec<u32>,
    engine_epoch: Vec<u64>,
    inject_budget: Vec<u32>,
    inject_epoch: Vec<u64>,

    // Progress bookkeeping.
    per_tree_sinks: u64,
    total_deliveries: u64,
    live_pairs: u64,
    first_done_pairs: u64,
    first_element_latency: u64,
    deliveries: u64,
    mismatches: u64,
    value_digest: u64,
    tree_completion: Vec<u64>,
    tree_deliveries: Vec<u64>,
    channel_flits: Vec<u64>,
    max_vc_occupancy: usize,
    progress: bool,
}

impl RunState {
    fn new(
        emb: &MultiTreeEmbedding,
        cfg: SimConfig,
        kind: Collective,
        bindings: Option<&[JobBinding]>,
    ) -> Self {
        let n = emb.num_nodes as usize;
        let ntrees = emb.trees.len();
        let pairs = ntrees * n;
        let nstreams = emb.streams.len();
        let nchans = emb.channel_streams.len();

        // Wire the per-pair dataflow (two passes: counts, then fill).
        let mut in_cnt = vec![0u32; pairs];
        let mut out_cnt = vec![0u32; pairs];
        let mut reduce_out = vec![NONE; pairs];
        let mut bcast_in = vec![NONE; pairs];
        let mut src_pair = vec![0u32; nstreams];
        let mut dst_pair = vec![0u32; nstreams];
        for (si, s) in emb.streams.iter().enumerate() {
            let sp = s.tree as usize * n + s.src as usize;
            let dp = s.tree as usize * n + s.dst as usize;
            src_pair[si] = sp as u32;
            dst_pair[si] = dp as u32;
            match s.phase {
                Phase::Reduce => {
                    in_cnt[dp] += 1;
                    reduce_out[sp] = si as u32;
                }
                Phase::Broadcast => {
                    out_cnt[sp] += 1;
                    bcast_in[dp] = si as u32;
                }
            }
        }
        let mut reduce_in_off = vec![0u32; pairs + 1];
        let mut bcast_out_off = vec![0u32; pairs + 1];
        for p in 0..pairs {
            reduce_in_off[p + 1] = reduce_in_off[p] + in_cnt[p];
            bcast_out_off[p + 1] = bcast_out_off[p] + out_cnt[p];
        }
        let mut in_ids = vec![0u32; reduce_in_off[pairs] as usize];
        let mut out_ids = vec![0u32; bcast_out_off[pairs] as usize];
        let mut in_fill = reduce_in_off.clone();
        let mut out_fill = bcast_out_off.clone();
        for (si, s) in emb.streams.iter().enumerate() {
            match s.phase {
                Phase::Reduce => {
                    let dp = dst_pair[si] as usize;
                    in_ids[in_fill[dp] as usize] = si as u32;
                    in_fill[dp] += 1;
                }
                Phase::Broadcast => {
                    let sp = src_pair[si] as usize;
                    out_ids[out_fill[sp] as usize] = si as u32;
                    out_fill[sp] += 1;
                }
            }
        }

        // CSR-flatten the channel -> streams map.
        let mut chan_off = vec![0u32; nchans + 1];
        for (c, members) in emb.channel_streams.iter().enumerate() {
            chan_off[c + 1] = chan_off[c] + members.len() as u32;
        }
        let mut chan_members = vec![0u32; chan_off[nchans] as usize];
        let mut stream_chan = vec![NONE; nstreams];
        for (c, members) in emb.channel_streams.iter().enumerate() {
            let base = chan_off[c] as usize;
            chan_members[base..base + members.len()].copy_from_slice(members);
            for &s in members {
                stream_chan[s as usize] = c as u32;
            }
        }

        let per_tree_sinks = kind.sinks_per_tree(emb.num_nodes as u64);
        let total_deliveries: u64 = emb.trees.iter().map(|t| t.len * per_tree_sinks).sum();
        let live_pairs: u64 = emb
            .trees
            .iter()
            .map(|t| if t.len > 0 { per_tree_sinks } else { 0 })
            .sum();

        let words_per_tree = n.div_ceil(64);
        let sq_shift = (cfg.source_queue as u32).next_power_of_two().trailing_zeros();
        let vc_shift = (cfg.vc_buffer as u32).next_power_of_two().trailing_zeros();

        // Precompute each stream's wake word/mask and ready-count slot.
        let mut wake_src_word = vec![0u32; nstreams];
        let mut wake_src_mask = vec![0u64; nstreams];
        let mut wake_dst_word = vec![0u32; nstreams];
        let mut wake_dst_mask = vec![0u64; nstreams];
        let mut ready_slot = vec![NONE; nstreams];
        for (si, s) in emb.streams.iter().enumerate() {
            let base = s.tree as usize * words_per_tree;
            wake_src_word[si] = (base + s.src as usize / 64) as u32;
            wake_src_mask[si] = 1u64 << (s.src as usize % 64);
            wake_dst_word[si] = (base + s.dst as usize / 64) as u32;
            wake_dst_mask[si] = 1u64 << (s.dst as usize % 64);
            if matches!(s.phase, Phase::Reduce) {
                ready_slot[si] = dst_pair[si];
            }
        }

        // Per-job wiring: which job each tree belongs to, when it is
        // released, and how many deliveries complete each job.
        let njobs = bindings.map_or(0, <[JobBinding]>::len);
        let mut tree_release = vec![0u64; ntrees];
        let mut tree_job = vec![0u32; ntrees];
        let mut job_total = vec![0u64; njobs];
        let mut job_elems = vec![0u64; njobs];
        if let Some(bs) = bindings {
            for (j, b) in bs.iter().enumerate() {
                for ti in b.trees.clone() {
                    tree_release[ti] = b.release;
                    tree_job[ti] = j as u32;
                    job_total[j] += emb.trees[ti].len * per_tree_sinks;
                    job_elems[j] += emb.trees[ti].len;
                }
            }
        }

        // Every engine of a non-empty tree starts active: leaves can fire
        // on cycle 1, everything else stalls once and deactivates.
        let mut pair_active = vec![0u64; ntrees * words_per_tree];
        for (ti, t) in emb.trees.iter().enumerate() {
            if t.len == 0 {
                continue;
            }
            let base = ti * words_per_tree;
            for wi in 0..words_per_tree {
                let lo = wi * 64;
                let bits = (n - lo).min(64);
                pair_active[base + wi] = if bits == 64 { !0u64 } else { (1u64 << bits) - 1 };
            }
        }

        RunState {
            cfg,
            kind,
            n,
            ntrees,
            tree_root: emb.trees.iter().map(|t| t.root).collect(),
            tree_len: emb.trees.iter().map(|t| t.len).collect(),
            tree_off: emb.trees.iter().map(|t| t.offset).collect(),
            track_jobs: bindings.is_some(),
            njobs,
            tree_release,
            tree_job,
            job_first: vec![0; njobs],
            job_completion: vec![0; njobs],
            job_deliveries: vec![0; njobs],
            job_total,
            job_elems,
            job_hash: vec![0; njobs],
            job_mismatches: vec![0; njobs],
            reduce_in_off,
            bcast_out_off,
            in_ids,
            out_ids,
            reduce_out,
            bcast_in,
            reduced: vec![0; pairs],
            delivered: vec![0; pairs],
            sq_cap: cfg.source_queue as u32,
            sq_mask: (1u32 << sq_shift) - 1,
            sq_shift,
            vc_cap: cfg.vc_buffer as u32,
            vc_mask: (1u32 << vc_shift) - 1,
            vc_shift,
            sendq_val: vec![0; nstreams << sq_shift],
            sendq_head: vec![0; nstreams],
            sendq_len: vec![0; nstreams],
            vc_arr: vec![0; nstreams << vc_shift],
            vc_val: vec![0; nstreams << vc_shift],
            vc_head: vec![0; nstreams],
            vc_arrived: vec![0; nstreams],
            vc_inflight: vec![0; nstreams],
            stream_chan,
            wake_src_word,
            wake_src_mask,
            wake_dst_word,
            wake_dst_mask,
            ready_in: vec![0; pairs],
            ready_slot,
            chan_off,
            chan_members,
            rr: vec![0; nchans],
            words_per_tree,
            pair_active,
            chan_active: vec![0u64; nchans.div_ceil(64)],
            wire_active: vec![0u64; nstreams.div_ceil(64)],
            engine_budget: vec![0; n],
            engine_epoch: vec![0; n],
            inject_budget: vec![0; n],
            inject_epoch: vec![0; n],
            per_tree_sinks,
            total_deliveries,
            live_pairs,
            first_done_pairs: 0,
            first_element_latency: 0,
            deliveries: 0,
            mismatches: 0,
            value_digest: 0,
            tree_completion: vec![0; ntrees],
            tree_deliveries: vec![0; ntrees],
            channel_flits: vec![0; nchans],
            max_vc_occupancy: 0,
            progress: false,
        }
    }

    // -- queue primitives ---------------------------------------------------

    #[inline]
    fn sendq_push(&mut self, s: usize, v: u64) {
        let slot = (self.sendq_head[s] + self.sendq_len[s]) & self.sq_mask;
        self.sendq_val[(s << self.sq_shift) + slot as usize] = v;
        self.sendq_len[s] += 1;
        let c = self.stream_chan[s] as usize;
        self.chan_active[c / 64] |= 1u64 << (c % 64);
    }

    #[inline]
    fn sendq_pop(&mut self, s: usize) -> u64 {
        let head = self.sendq_head[s];
        let v = self.sendq_val[(s << self.sq_shift) + head as usize];
        self.sendq_head[s] = (head + 1) & self.sq_mask;
        self.sendq_len[s] -= 1;
        v
    }

    #[inline]
    fn recvq_pop(&mut self, s: usize) -> u64 {
        let head = self.vc_head[s];
        let v = self.vc_val[(s << self.vc_shift) + head as usize];
        self.vc_head[s] = (head + 1) & self.vc_mask;
        self.vc_arrived[s] -= 1;
        if self.vc_arrived[s] == 0 {
            let slot = self.ready_slot[s];
            if slot != NONE {
                self.ready_in[slot as usize] -= 1;
            }
        }
        v
    }

    #[inline]
    fn wire_push(&mut self, s: usize, arrival: u64, v: u64) {
        let slot = (self.vc_head[s] + self.vc_arrived[s] + self.vc_inflight[s]) & self.vc_mask;
        let base = s << self.vc_shift;
        self.vc_arr[base + slot as usize] = arrival;
        self.vc_val[base + slot as usize] = v;
        self.vc_inflight[s] += 1;
        self.wire_active[s / 64] |= 1u64 << (s % 64);
    }

    #[inline]
    fn occupancy(&self, s: usize) -> u32 {
        self.vc_arrived[s] + self.vc_inflight[s]
    }

    // -- cycle sub-steps ----------------------------------------------------

    /// Step 1: deliver in-flight flits whose latency elapsed. Flits on a
    /// dead channel are stuck on the wire: they arrive only after the
    /// fault heals (transient outages delay, they never drop data).
    fn step_arrivals(&mut self, cycle: u64, faults: &Option<FaultState>) {
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            if word == 0 {
                continue;
            }
            let mut keep = word;
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if faults.as_ref().is_some_and(|f| f.arrivals_frozen(s)) {
                    continue;
                }
                let base = s << self.vc_shift;
                let was_empty = self.vc_arrived[s] == 0;
                let mut advanced = false;
                while self.vc_inflight[s] > 0 {
                    let idx = ((self.vc_head[s] + self.vc_arrived[s]) & self.vc_mask) as usize;
                    if self.vc_arr[base + idx] > cycle {
                        break;
                    }
                    self.vc_arrived[s] += 1;
                    self.vc_inflight[s] -= 1;
                    advanced = true;
                }
                if advanced {
                    self.progress = true;
                    self.pair_active[self.wake_dst_word[s] as usize] |= self.wake_dst_mask[s];
                    if was_empty {
                        let slot = self.ready_slot[s];
                        if slot != NONE {
                            self.ready_in[slot as usize] += 1;
                        }
                    }
                }
                if self.vc_inflight[s] == 0 {
                    keep &= !(1u64 << (s % 64));
                }
            }
            self.wire_active[wi] = keep;
        }
    }

    /// Step 2: advance reduction engines and broadcast relays. Trees are
    /// visited in an order rotated per cycle so shared per-node budgets
    /// (engine/injection caps) are served max-min fairly instead of
    /// starving high-index trees; within a tree, nodes ascend.
    fn step_compute(
        &mut self,
        cycle: u64,
        w: &Workload,
        tracer: &mut Option<Tracer>,
        faults: &Option<FaultState>,
    ) {
        let ntrees = self.ntrees;
        for ti in (0..ntrees).map(|i| (i + cycle as usize) % ntrees.max(1)) {
            // An unreleased tree keeps its engines armed but dormant: its
            // active bits survive untouched, so it wakes whole at release.
            if self.tree_len[ti] == 0 || cycle < self.tree_release[ti] {
                continue;
            }
            if tracer.is_some() {
                // Tracing pins full scans: every engine with work remaining
                // is observed every cycle, exactly like the reference
                // stepper, so stall attribution is identical.
                for v in 0..self.n {
                    self.process_pair(ti, v, cycle, w, tracer, faults);
                }
            } else {
                let base = ti * self.words_per_tree;
                for wi in 0..self.words_per_tree {
                    let mut word = self.pair_active[base + wi];
                    if word == 0 {
                        continue;
                    }
                    self.pair_active[base + wi] = 0;
                    // Rearms accumulate in a register; nothing else writes
                    // this word while its members are being evaluated
                    // (wakes only happen in the arrival/transmit steps).
                    let mut rearmed = 0u64;
                    while word != 0 {
                        let v = wi * 64 + word.trailing_zeros() as usize;
                        let bit = word & word.wrapping_neg();
                        word &= word - 1;
                        if self.process_pair(ti, v, cycle, w, tracer, faults) {
                            rearmed |= bit;
                        }
                    }
                    self.pair_active[base + wi] |= rearmed;
                }
            }
        }
    }

    /// Evaluates one (tree, node) engine exactly as the reference stepper
    /// does. Returns `true` when the pair must be re-examined next cycle
    /// even without an external wake (it fired, or it stalled on a per-node
    /// budget that refills next cycle).
    fn process_pair(
        &mut self,
        ti: usize,
        v: usize,
        cycle: u64,
        w: &Workload,
        tracer: &mut Option<Tracer>,
        faults: &Option<FaultState>,
    ) -> bool {
        // A dead router's engines and relays are halted.
        if faults.as_ref().is_some_and(|f| f.router_is_down(v)) {
            return false;
        }
        let p = ti * self.n + v;
        let len = self.tree_len[ti];
        let offset = self.tree_off[ti];
        let root = self.tree_root[ti] as usize;
        let is_root = root == v;
        let kind = self.kind;
        let mut rearm = false;

        // -- Reduction engine (allreduce / reduce / reduce-scatter) --
        if kind.reduces() && self.reduced[p] < len {
            let engine_free = match self.cfg.max_reductions_per_router {
                None => true,
                Some(cap) => {
                    if self.engine_epoch[v] != cycle {
                        self.engine_epoch[v] = cycle;
                        self.engine_budget[v] = cap;
                    }
                    self.engine_budget[v] > 0
                }
            };
            let inject_free = match self.cfg.max_injections_per_node {
                None => true,
                Some(cap) => {
                    if self.inject_epoch[v] != cycle {
                        self.inject_epoch[v] = cycle;
                        self.inject_budget[v] = cap;
                    }
                    self.inject_budget[v] > 0
                }
            };
            let in_lo = self.reduce_in_off[p] as usize;
            let in_hi = self.reduce_in_off[p + 1] as usize;
            let inputs_ready = self.ready_in[p] as usize == in_hi - in_lo;
            let out_ok = match self.reduce_out[p] {
                NONE => true,
                s => self.sendq_len[s as usize] < self.sq_cap,
            };
            let out_lo = self.bcast_out_off[p] as usize;
            let out_hi = self.bcast_out_off[p + 1] as usize;
            // An allreduce root turns the result straight into the
            // broadcast, so it needs space on every down stream.
            let bcast_ok = !(is_root && kind == Collective::Allreduce)
                || (out_lo..out_hi)
                    .all(|i| self.sendq_len[self.out_ids[i] as usize] < self.sq_cap);
            let fires = engine_free && inject_free && inputs_ready && out_ok && bcast_ok;
            if let Some(tr) = tracer.as_mut() {
                if !fires {
                    // Attribute the stall: missing inputs first (most
                    // fundamental), then budget, then a blocked output path.
                    let why = if !inputs_ready {
                        EngineStall::InputStarved
                    } else if !engine_free || !inject_free {
                        EngineStall::Budget
                    } else {
                        EngineStall::OutputBlocked
                    };
                    tr.engine_stalled(v, why);
                } else {
                    tr.reduction_fired(v);
                }
            }
            if fires {
                if self.cfg.max_reductions_per_router.is_some() {
                    self.engine_budget[v] -= 1;
                }
                if self.cfg.max_injections_per_node.is_some() {
                    self.inject_budget[v] -= 1;
                }
                let elem = self.reduced[p];
                self.reduced[p] += 1;
                let mut acc = w.input(v as u32, offset + elem);
                for i in in_lo..in_hi {
                    let s = self.in_ids[i] as usize;
                    let x = self.recvq_pop(s);
                    acc = w.combine_at(offset + elem, acc, x);
                }
                if is_root {
                    if !w.value_close_at(offset + elem, acc, w.expected(offset + elem)) {
                        self.mismatches += 1;
                        if self.track_jobs {
                            self.job_mismatches[self.tree_job[ti] as usize] += 1;
                        }
                    }
                    if self.track_jobs {
                        let j = self.tree_job[ti] as usize;
                        self.job_hash[j] =
                            self.job_hash[j].wrapping_add(hash_entry(offset + elem, acc));
                    }
                    if kind == Collective::Allreduce {
                        for i in out_lo..out_hi {
                            let s = self.out_ids[i] as usize;
                            self.sendq_push(s, acc);
                        }
                    }
                    self.deliver(ti, p, cycle, acc);
                } else {
                    let s = self.reduce_out[p] as usize;
                    self.sendq_push(s, acc);
                }
                self.progress = true;
                rearm = true;
            } else if !engine_free || !inject_free {
                // Budgets refill next cycle without any queue event.
                rearm = true;
            }
        }

        // -- Broadcast source (broadcast / allgather root) --
        if kind.root_sources_broadcast() && is_root && self.delivered[p] < len {
            let out_lo = self.bcast_out_off[p] as usize;
            let out_hi = self.bcast_out_off[p + 1] as usize;
            let space = (out_lo..out_hi)
                .all(|i| self.sendq_len[self.out_ids[i] as usize] < self.sq_cap);
            if let Some(tr) = tracer.as_mut() {
                if space {
                    tr.relay_fired(v);
                } else {
                    tr.engine_stalled(v, EngineStall::OutputBlocked);
                }
            }
            if space {
                let elem = self.delivered[p];
                // A broadcast root sends its own contribution; an allgather
                // root sends its slice of the global reduction — the state a
                // preceding reduce-scatter left it with.
                let val = match kind {
                    Collective::Broadcast => w.input(v as u32, offset + elem),
                    _ => w.expected(offset + elem),
                };
                if self.track_jobs {
                    let j = self.tree_job[ti] as usize;
                    self.job_hash[j] =
                        self.job_hash[j].wrapping_add(hash_entry(offset + elem, val));
                }
                for i in out_lo..out_hi {
                    let s = self.out_ids[i] as usize;
                    self.sendq_push(s, val);
                }
                self.deliver(ti, p, cycle, val);
                self.progress = true;
                rearm = true;
            }
        }

        // -- Broadcast relay (allreduce / broadcast / allgather) --
        if kind.broadcasts() {
            let bin = self.bcast_in[p];
            if bin != NONE {
                let bin = bin as usize;
                let input_ready = self.vc_arrived[bin] > 0;
                let out_lo = self.bcast_out_off[p] as usize;
                let out_hi = self.bcast_out_off[p + 1] as usize;
                let out_ok = (out_lo..out_hi)
                    .all(|i| self.sendq_len[self.out_ids[i] as usize] < self.sq_cap);
                if self.delivered[p] < len {
                    if let Some(tr) = tracer.as_mut() {
                        if input_ready && out_ok {
                            tr.relay_fired(v);
                        } else {
                            tr.engine_stalled(
                                v,
                                if !input_ready {
                                    EngineStall::InputStarved
                                } else {
                                    EngineStall::OutputBlocked
                                },
                            );
                        }
                    }
                }
                if self.delivered[p] < len && input_ready && out_ok {
                    let val = self.recvq_pop(bin);
                    let elem = self.delivered[p];
                    let expected = match kind {
                        Collective::Broadcast => w.input(root as u32, offset + elem),
                        _ => w.expected(offset + elem),
                    };
                    if !w.value_close_at(offset + elem, val, expected) {
                        self.mismatches += 1;
                        if self.track_jobs {
                            self.job_mismatches[self.tree_job[ti] as usize] += 1;
                        }
                    }
                    for i in out_lo..out_hi {
                        let s = self.out_ids[i] as usize;
                        self.sendq_push(s, val);
                    }
                    self.deliver(ti, p, cycle, val);
                    self.progress = true;
                    rearm = true;
                }
            }
        }

        rearm
    }

    /// Records one element (carrying `val`) delivered at pair `p` of tree
    /// `ti`.
    #[inline]
    fn deliver(&mut self, ti: usize, p: usize, cycle: u64, val: u64) {
        let node = (p - ti * self.n) as u64;
        let elem = self.tree_off[ti] + self.delivered[p];
        self.value_digest =
            self.value_digest.wrapping_add(delivery_digest_entry(node, elem, val));
        self.delivered[p] += 1;
        if self.delivered[p] == 1 {
            self.first_done_pairs += 1;
            if self.first_done_pairs == self.live_pairs {
                self.first_element_latency = cycle;
            }
        }
        self.deliveries += 1;
        self.tree_deliveries[ti] += 1;
        if self.tree_deliveries[ti] == self.tree_len[ti] * self.per_tree_sinks {
            self.tree_completion[ti] = cycle;
        }
        if self.track_jobs {
            let j = self.tree_job[ti] as usize;
            self.job_deliveries[j] += 1;
            if self.job_deliveries[j] == 1 {
                self.job_first[j] = cycle;
            }
            if self.job_deliveries[j] == self.job_total[j] {
                self.job_completion[j] = cycle;
            }
        }
    }

    /// Step 3: one flit per directed channel per cycle. The winner — first
    /// resident stream in round-robin order with both data and downstream
    /// credit — is found first and the flit moved after, so the tracer can
    /// observe every member without changing arbitration (with tracing off
    /// the scan stops at the winner, which is the identical decision).
    fn step_transmit(
        &mut self,
        cycle: u64,
        traced: bool,
        tracer: &mut Option<Tracer>,
        faults: &mut Option<FaultState>,
    ) {
        if traced {
            for c in 0..self.rr.len() {
                self.process_channel(c, cycle, tracer, faults);
            }
        } else {
            for wi in 0..self.chan_active.len() {
                let mut word = self.chan_active[wi];
                if word == 0 {
                    continue;
                }
                let mut keep = word;
                while word != 0 {
                    let c = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if !self.process_channel(c, cycle, tracer, faults) {
                        keep &= !(1u64 << (c % 64));
                    }
                }
                self.chan_active[wi] = keep;
            }
        }
    }

    /// Arbitrates one channel. Returns `true` while the channel must stay
    /// in the active set (a resident stream still has staged data, or a
    /// fault is holding the channel and its state cannot be inspected).
    fn process_channel(
        &mut self,
        c: usize,
        cycle: u64,
        tracer: &mut Option<Tracer>,
        faults: &mut Option<FaultState>,
    ) -> bool {
        let lo = self.chan_off[c] as usize;
        let hi = self.chan_off[c + 1] as usize;
        let k = hi - lo;
        if k == 0 {
            return false;
        }
        // A faulted channel transmits nothing this cycle. Full outages
        // additionally charge a stall to every resident stream with staged
        // data — the timeout/retry detector. (Tracer channel/stream hooks
        // are skipped: the channel is physically dead, not arbitrating.)
        if let Some(fs) = faults.as_mut() {
            if fs.channel_blocked(c, cycle) {
                if fs.channel_down(c) {
                    let members = &self.chan_members[lo..hi];
                    let sendq_len = &self.sendq_len;
                    fs.observe_outage(c, members, |s| sendq_len[s] > 0, cycle);
                }
                return true;
            }
        }
        let start = self.rr[c] as usize;
        let mut winner: Option<(usize, usize)> = None; // (member offset, stream)
        let mut any_data = false;
        if let Some(tr) = tracer.as_mut() {
            let mut idx = start;
            for _ in 0..k {
                let s = self.chan_members[lo + idx] as usize;
                let occupancy = self.occupancy(s) as usize;
                let has_data = self.sendq_len[s] > 0;
                let has_credit = occupancy < self.cfg.vc_buffer;
                if winner.is_none() && has_data && has_credit {
                    winner = Some((idx, s));
                }
                any_data |= has_data;
                let won = winner.is_some_and(|(_, w)| w == s);
                tr.observe_stream(
                    s,
                    self.sendq_len[s] as u64,
                    (occupancy + won as usize) as u64,
                    has_data,
                    has_credit,
                    won,
                );
                idx += 1;
                if idx == k {
                    idx = 0;
                }
            }
            tr.observe_channel(c, winner.is_some(), any_data);
        } else {
            let mut idx = start;
            for _ in 0..k {
                let s = self.chan_members[lo + idx] as usize;
                let has_data = self.sendq_len[s] > 0;
                any_data |= has_data;
                if has_data && self.occupancy(s) < self.vc_cap {
                    winner = Some((idx, s));
                    break;
                }
                idx += 1;
                if idx == k {
                    idx = 0;
                }
            }
        }
        if let Some((idx, s)) = winner {
            let occupancy = self.occupancy(s) as usize;
            let v = self.sendq_pop(s);
            self.wire_push(s, cycle + self.cfg.link_latency as u64, v);
            self.channel_flits[c] += 1;
            self.max_vc_occupancy = self.max_vc_occupancy.max(occupancy + 1);
            self.rr[c] = (if idx + 1 == k { 0 } else { idx + 1 }) as u32;
            if let Some(fs) = faults.as_mut() {
                fs.note_progress(s);
            }
            self.pair_active[self.wake_src_word[s] as usize] |= self.wake_src_mask[s];
            self.progress = true;
            // The popped stream may still hold data, and arbitration losers
            // keep theirs: stay active, re-check next cycle.
            return true;
        }
        any_data
    }

    /// Earliest in-flight arrival cycle across all streams, if any.
    fn next_arrival(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.vc_inflight[s] == 0 {
                    continue;
                }
                let idx = ((self.vc_head[s] + self.vc_arrived[s]) & self.vc_mask) as usize;
                let arr = self.vc_arr[(s << self.vc_shift) + idx];
                next = Some(next.map_or(arr, |n| n.min(arr)));
            }
        }
        next
    }

    /// Earliest tree-release cycle still in the future, if any.
    fn next_release(&self, cycle: u64) -> Option<u64> {
        self.tree_release.iter().copied().filter(|&r| r > cycle).min()
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::{Graph, RootedTree};

    fn cycle_graph(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn run_single_tree(n: u32, m: u64, cfg: SimConfig) -> SimReport {
        let g = cycle_graph(n);
        let path: Vec<u32> = (0..n).collect();
        let t = RootedTree::from_path(&path, (n / 2) as usize).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(n, m);
        Simulator::new(&g, &emb, cfg).run(&w)
    }

    #[test]
    fn correct_and_complete_single_tree() {
        let r = run_single_tree(6, 200, SimConfig::default());
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.total_elems, 200);
        assert!(r.cycles > 0);
    }

    #[test]
    fn single_tree_approaches_link_rate() {
        // One uncongested tree streams at ~1 element/cycle for large m.
        let r = run_single_tree(6, 5000, SimConfig::default());
        assert!(r.completed);
        assert!(
            r.measured_bandwidth > 0.95,
            "measured {} el/cy, expected ~1",
            r.measured_bandwidth
        );
    }

    #[test]
    fn small_buffer_throttles_throughput() {
        // With vc_buffer = 1 and latency 4, at most one flit per
        // round-trip-ish window: bandwidth well below saturation. This is
        // the latency-bandwidth-product memory footprint the paper cites.
        let starved = SimConfig { link_latency: 4, vc_buffer: 1, ..Default::default() };
        let r = run_single_tree(6, 2000, starved);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert!(
            r.measured_bandwidth < 0.5,
            "measured {} el/cy with 1-flit buffers",
            r.measured_bandwidth
        );
    }

    #[test]
    fn congested_trees_share_bandwidth() {
        // Two fully-overlapping path trees with opposite roots: reduce
        // streams flow in opposite directions, but each channel still
        // carries one reduce + one broadcast stream -> per-tree rate 1/2.
        let g = {
            let mut g = Graph::new(5);
            for i in 0..4 {
                g.add_edge(i, i + 1);
            }
            g
        };
        let path = [0u32, 1, 2, 3, 4];
        let t1 = RootedTree::from_path(&path, 0).unwrap();
        let t2 = RootedTree::from_path(&path, 4).unwrap();
        let m = 4000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(5, m);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        // Aggregate ~1 element/cycle (2 trees x 1/2 each).
        assert!(
            (r.measured_bandwidth - 1.0).abs() < 0.1,
            "measured {}",
            r.measured_bandwidth
        );
    }

    #[test]
    fn utilization_bounded_by_one() {
        let r = run_single_tree(5, 1000, SimConfig::default());
        assert!(r.max_channel_utilization <= 1.0 + 1e-9);
        assert!(r.max_channel_utilization > 0.5);
    }

    #[test]
    fn deadlock_backstop_reports_incomplete() {
        let cfg = SimConfig { max_cycles: 10, ..Default::default() };
        let r = run_single_tree(6, 10_000, cfg);
        assert!(!r.completed);
        assert_eq!(r.cycles, 10);
    }

    #[test]
    fn empty_vector_finishes_immediately() {
        let r = run_single_tree(4, 0, SimConfig::default());
        assert!(r.completed);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.total_elems, 0);
    }

    #[test]
    fn reduce_only_collective() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 2).unwrap();
        let m = 500;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let full = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let reduce =
            Simulator::new(&g, &emb, SimConfig::default()).run_collective(&w, Collective::Reduce);
        assert!(reduce.completed);
        assert_eq!(reduce.mismatches, 0);
        // No broadcast phase: strictly faster than the full allreduce.
        assert!(reduce.cycles < full.cycles);
    }

    #[test]
    fn broadcast_only_collective() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 0).unwrap();
        let m = 500;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let r = Simulator::new(&g, &emb, SimConfig::default())
            .run_collective(&w, Collective::Broadcast);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        // Streams at link rate like the reduce direction.
        assert!(r.measured_bandwidth > 0.8, "measured {}", r.measured_bandwidth);
    }

    #[test]
    fn engine_cap_throttles_multi_tree_routers() {
        // Two edge-disjoint trees both stream at link rate, so routers
        // need two reductions per cycle; capping the engine at 1 halves
        // throughput. (Overlapping congestion-2 trees only need ~1
        // reduction per router per cycle on average, and the fair rotation
        // covers that — which is itself the Lemma 7.8 engine story.)
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let t2 = RootedTree::from_path(&[2, 0, 3, 1], 1).unwrap();
        let m = 2000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(4, m);
        let free = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let capped = Simulator::new(
            &g,
            &emb,
            SimConfig { max_reductions_per_router: Some(1), ..Default::default() },
        )
        .run(&w);
        assert!(free.completed && capped.completed);
        assert_eq!(capped.mismatches, 0);
        assert!(
            free.measured_bandwidth > 1.8,
            "uncapped streams both trees: {}",
            free.measured_bandwidth
        );
        assert!(
            capped.measured_bandwidth < 1.2,
            "engine cap 1 halves throughput: {}",
            capped.measured_bandwidth
        );
    }

    #[test]
    fn first_element_latency_scales_with_depth() {
        let shallow = {
            let g = cycle_graph(8);
            let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 4).unwrap();
            let emb = MultiTreeEmbedding::new(&g, &[t], &[64]);
            let w = Workload::new(8, 64);
            Simulator::new(&g, &emb, SimConfig::default()).run(&w)
        };
        let deep = {
            let g = cycle_graph(8);
            let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 0).unwrap();
            let emb = MultiTreeEmbedding::new(&g, &[t], &[64]);
            let w = Workload::new(8, 64);
            Simulator::new(&g, &emb, SimConfig::default()).run(&w)
        };
        assert!(shallow.first_element_latency > 0);
        assert!(
            deep.first_element_latency > shallow.first_element_latency,
            "deep {} vs shallow {}",
            deep.first_element_latency,
            shallow.first_element_latency
        );
        assert!(shallow.first_element_latency <= shallow.cycles);
    }

    #[test]
    fn collective_latency_formulas() {
        // Pure broadcast and pure reduce each traverse `depth` hops once:
        // first-element latency = depth·L + 1 (the +1 is the source's
        // compute/inject cycle). Allreduce chains both: 2·depth·L + 1.
        let g = cycle_graph(8);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 0).unwrap(); // depth 7
        let m = 64;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(8, m);
        let cfg = SimConfig::default(); // L = 4
        let bc = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Broadcast);
        let rd = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Reduce);
        let ar = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Allreduce);
        assert_eq!(bc.first_element_latency, 7 * 4 + 1);
        assert_eq!(rd.first_element_latency, 7 * 4 + 1);
        assert_eq!(ar.first_element_latency, 2 * 7 * 4 + 1);
        for r in [&bc, &rd, &ar] {
            assert!(r.completed && r.mismatches == 0);
        }
    }

    #[test]
    fn vc_occupancy_tracks_latency_bandwidth_product() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 0).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t], &[4000]);
        let w = Workload::new(6, 4000);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        // Occupancy never exceeds the configured buffer...
        assert!(r.max_vc_occupancy <= 6);
        // ...and a saturated stream keeps at least the latency in flight.
        assert!(r.max_vc_occupancy >= 4, "occupancy {}", r.max_vc_occupancy);
    }

    #[test]
    fn injection_cap_throttles_aggregate_bandwidth() {
        // Two overlapping trees want 2 local injections per node per
        // cycle in steady state... here both run at 1/2 each, so a cap of
        // 1 is harmless but a cap that starves (per-cycle 0 impossible;
        // use two disjoint paths where each tree streams at full rate and
        // needs 1 injection each -> cap 1 halves the aggregate).
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        // Edge-disjoint spanning trees of K4: the Hamiltonian path
        // 0-1-2-3 and its complement path 2-0-3-1.
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let t2 = RootedTree::from_path(&[2, 0, 3, 1], 1).unwrap();
        let m = 2000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(4, m);
        let free = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let capped = Simulator::new(
            &g,
            &emb,
            SimConfig { max_injections_per_node: Some(1), ..Default::default() },
        )
        .run(&w);
        assert!(free.completed && capped.completed);
        assert_eq!(capped.mismatches, 0);
        assert!(
            free.measured_bandwidth > 1.8,
            "uncapped should stream both trees: {}",
            free.measured_bandwidth
        );
        assert!(
            capped.measured_bandwidth < 1.2,
            "injection cap 1 should halve throughput: {}",
            capped.measured_bandwidth
        );
    }

    #[test]
    fn float_gradient_allreduce_validates() {
        // The ML case: f64 gradients, tree association order != reference
        // order, tolerance-based validation must still pass with zero
        // mismatches.
        let g = cycle_graph(8);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 3).unwrap();
        let t2 = RootedTree::from_path(&[1, 2, 3, 4, 5, 6, 7, 0], 4).unwrap();
        let m = 1000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new_float(8, m);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
    }

    #[test]
    fn zero_length_tree_slice_allowed() {
        let g = cycle_graph(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[50, 0]);
        let w = Workload::new(4, 50);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.tree_completion[1], 0);
    }

    fn two_tenant_setup(m1: u64, m2: u64) -> (Graph, Vec<RootedTree>, Workload) {
        let g = cycle_graph(6);
        let path: Vec<u32> = (0..6).collect();
        let t1 = RootedTree::from_path(&path, 0).unwrap();
        let t2 = RootedTree::from_path(&path, 5).unwrap();
        let w = Workload::concat(
            6,
            &[
                crate::workload::JobSegment::full(m1, crate::workload::ReduceKind::WrappingU64),
                crate::workload::JobSegment::full(m2, crate::workload::ReduceKind::WrappingU64),
            ],
        );
        (g, vec![t1, t2], w)
    }

    #[test]
    fn run_jobs_single_binding_matches_plain_run() {
        // One binding released at 0 is exactly run() plus job accounting.
        let g = cycle_graph(6);
        let path: Vec<u32> = (0..6).collect();
        let t = RootedTree::from_path(&path, 3).unwrap();
        let m = 300;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let plain = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let jr = Simulator::new(&g, &emb, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 0..1, release: 0 }]);
        assert_eq!(jr.report, plain);
        assert_eq!(jr.jobs.len(), 1);
        assert_eq!(jr.jobs[0].elems, m);
        assert_eq!(jr.jobs[0].deliveries, m * 6);
        assert_eq!(jr.jobs[0].completion, plain.cycles);
        assert_eq!(jr.jobs[0].mismatches, 0);
    }

    #[test]
    fn concurrent_jobs_track_separate_completions() {
        let (m1, m2) = (400u64, 100u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb =
            MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let jr = Simulator::new(&g, &emb, SimConfig::default()).run_jobs(
            &w,
            &[
                JobBinding { trees: 0..1, release: 0 },
                JobBinding { trees: 1..2, release: 0 },
            ],
        );
        assert!(jr.report.completed);
        assert_eq!(jr.report.mismatches, 0);
        for j in &jr.jobs {
            assert_eq!(j.mismatches, 0);
            assert!(j.completion > 0);
            assert!(j.first_delivery > 0 && j.first_delivery <= j.completion);
        }
        // The shorter job finishes first under fair channel sharing.
        assert!(jr.jobs[1].completion < jr.jobs[0].completion);
        assert_eq!(jr.jobs[0].deliveries, m1 * 6);
        assert_eq!(jr.jobs[1].deliveries, m2 * 6);
    }

    #[test]
    fn job_value_hash_is_schedule_invariant() {
        // The same job reduced solo, on the same trees and global element
        // offsets, yields the identical digest as in the concurrent run.
        let (m1, m2) = (250u64, 130u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb = MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let both = Simulator::new(&g, &emb, SimConfig::default()).run_jobs(
            &w,
            &[
                JobBinding { trees: 0..1, release: 0 },
                JobBinding { trees: 1..2, release: 0 },
            ],
        );
        let solo1 = MultiTreeEmbedding::with_offsets(&g, &trees[..1], &[m1], &[0]);
        let solo2 = MultiTreeEmbedding::with_offsets(&g, &trees[1..], &[m2], &[m1]);
        let r1 = Simulator::new(&g, &solo1, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 0..1, release: 0 }]);
        let r2 = Simulator::new(&g, &solo2, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 0..1, release: 0 }]);
        assert_eq!(both.jobs[0].value_hash, r1.jobs[0].value_hash);
        assert_eq!(both.jobs[1].value_hash, r2.jobs[0].value_hash);
        assert_ne!(both.jobs[0].value_hash, both.jobs[1].value_hash);
        assert_eq!(both.report.mismatches, 0);
    }

    #[test]
    fn release_cycle_delays_a_job() {
        let (m1, m2) = (200u64, 200u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb = MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let release = 5000u64; // far after job 0 would finish alone
        let jr = Simulator::new(&g, &emb, SimConfig::default()).run_jobs(
            &w,
            &[
                JobBinding { trees: 0..1, release: 0 },
                JobBinding { trees: 1..2, release },
            ],
        );
        assert!(jr.report.completed);
        assert_eq!(jr.report.mismatches, 0);
        assert!(jr.jobs[0].completion < release);
        assert!(jr.jobs[1].first_delivery >= release);
        // The engine must skip the idle gap, not tick through it: the
        // delayed job still finishes promptly after its release.
        assert!(jr.jobs[1].completion < release + 2 * jr.jobs[0].completion + 100);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn run_jobs_rejects_gapped_bindings() {
        let (m1, m2) = (50u64, 50u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb = MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let _ = Simulator::new(&g, &emb, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 1..2, release: 0 }]);
    }
}
