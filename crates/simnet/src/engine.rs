//! The cycle-driven simulation engine.
//!
//! Each cycle has three sub-steps, in an order that prevents same-cycle
//! pass-through (a flit needs at least one cycle per hop):
//!
//! 1. **Arrivals** — in-flight flits whose latency elapsed enter the
//!    destination's virtual-channel buffer.
//! 2. **Compute** — every router advances each tree's reduction engine (one
//!    element per tree per cycle: combine all child heads with the local
//!    contribution, emit to the parent or, at the root, eject and fan out
//!    the broadcast) and each tree's broadcast relay.
//! 3. **Transmit** — every directed channel moves at most one flit,
//!    selected by work-conserving round-robin among its resident streams
//!    with both data and downstream credit. This is where congestion turns
//!    into bandwidth sharing.
//!
//! Credits are implicit: a stream may transmit only while
//! `receiver-buffer occupancy + in-flight < vc_buffer`, which is exactly
//! credit-based flow control with `vc_buffer` credits.
//!
//! # Execution strategy
//!
//! The model above is what the simulator *computes*; it is not how the hot
//! loop *iterates*. A naive stepper re-scans every (tree, node) engine,
//! every stream and every directed channel on every cycle, which makes
//! large-radix sweeps compute-bound on scan overhead rather than on the
//! modeled fabric. This engine instead keeps incremental **active sets**
//! (see `docs/PERFORMANCE.md`):
//!
//! * a per-tree bitset of engines whose inputs, credits or budgets may have
//!   changed since they last stalled — only those are re-evaluated,
//! * a bitset of channels with at least one staged flit — only those
//!   arbitrate,
//! * a bitset of streams with flits on the wire — only those are polled for
//!   arrivals,
//! * and when a cycle makes no progress at all, the clock **skips** directly
//!   to the earliest in-flight arrival or fault-schedule transition instead
//!   of ticking idly (latency tails, drain phases, fault-frozen fabrics).
//!
//! Two further layers sit on top of the active sets (both introduced for
//! the saturated/contention regimes, where every cycle makes progress and
//! idle-skip never fires — see `docs/PERFORMANCE.md` for the derivations):
//!
//! * **Batch spans** — when the run is in steady state, consecutive cycles
//!   repeat the same fire/drain/arrival pattern exactly. The engine arms a
//!   full *shape* snapshot (queue lengths, active sets, round-robin
//!   cursors, relative in-flight arrival offsets), detects the period `P`
//!   at which the shape recurs, bounds the largest whole number of periods
//!   `j` containing no event boundary (no slice end, fault transition, job
//!   release or cycle cap), and replays all `j·P` cycles in closed form:
//!   ring heads advance by `j·rate`, arrival stamps are re-based, counters
//!   get bulk adds, and delivered values (digests, validation, surviving
//!   queue contents) are recomputed per element with the reduction combine
//!   vectorized over contiguous element runs. This extends idle-skip from
//!   "skip when nothing happens" to "skip when the same thing happens
//!   every cycle".
//! * **Deterministic sharding** ([`SimConfig::threads`]) — trees that share
//!   no directed channel have fully independent state, so connected
//!   components of the tree/channel sharing graph are simulated on worker
//!   threads and their reports merged in a fixed order; every digest is an
//!   order-independent wrapping sum, so the merge is byte-identical to the
//!   single-threaded run.
//!
//! All queue state lives in flat, pre-sized ring-buffer arenas — the steady
//! state allocates nothing. The pre-optimization stepper is retained as
//! [`mod@reference`] (behind `cfg(test)` / the `reference-engine` feature) and a
//! differential suite (`src/difftest.rs`) asserts byte-identical
//! [`SimReport`]s, trace bytes and [`FaultReport`]s across collectives,
//! radixes, caps, tracing and fault schedules. Tracing pins per-cycle
//! stepping (no skip, full scans) so observed stall attribution is identical
//! to the reference stepper's.

use crate::embedding::{MultiTreeEmbedding, Phase};
use crate::faults::{FaultReport, FaultSchedule, FaultState};
use crate::trace::{EngineStall, TraceConfig, TraceReport, Tracer};
use crate::workload::Workload;
use pf_graph::Graph;

#[cfg(any(test, feature = "reference-engine"))]
pub mod reference;

/// Simulator knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Pipeline latency of every physical hop, in cycles (≥ 1).
    pub link_latency: u32,
    /// Virtual-channel buffer capacity per stream at the receiver, in
    /// flits. Full throughput needs `link_latency + 1` or more (the
    /// latency–bandwidth product).
    pub vc_buffer: usize,
    /// Sender-side staging queue per stream, in flits.
    pub source_queue: usize,
    /// Hard cycle cap: the run aborts (with `completed = false`) if
    /// exceeded — a deadlock/livelock backstop.
    pub max_cycles: u64,
    /// Reduction-engine capacity per router per cycle, across all trees
    /// (`None` = unbounded, the paper's "multiple reductions at link rate"
    /// assumption; small values model compute-bound routers — the engine
    /// ablation).
    pub max_reductions_per_router: Option<u32>,
    /// Local-port injection capacity per node per cycle, across all trees
    /// (`None` = unbounded — §4.1's assumption that a node drives all its
    /// links at once; multi-tree allreduce needs ~aggregate-bandwidth
    /// injection per node, which this knob makes explicit).
    pub max_injections_per_node: Option<u32>,
    /// Worker threads for the deterministic sharded mode (`<= 1` =
    /// single-threaded). When the embedded trees split into two or more
    /// channel-disjoint components and nothing couples them (no tracer, no
    /// fault layer, no per-node caps), the components are simulated
    /// concurrently and merged deterministically: reports, digests and
    /// per-job outcomes are byte-identical to the single-threaded run
    /// (difftested and property-tested). When sharding does not apply, the
    /// run silently falls back to one thread.
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency: 4,
            vc_buffer: 6,
            source_queue: 2,
            max_cycles: 50_000_000,
            max_reductions_per_router: None,
            max_injections_per_node: None,
            threads: 1,
        }
    }
}

/// Which collective the engines execute over the embedded trees.
///
/// The sharded-training pair decomposes an allreduce the way ZeRO/FSDP
/// decomposes a training step: [`Collective::ReduceScatter`] runs the
/// reduce-up phase and leaves each tree's reduced slice with its owner
/// shard (the tree root), [`Collective::Allgather`] broadcasts each
/// shard's already-reduced slice back down to every node. Composing the
/// two delivers exactly what one [`Collective::Allreduce`] delivers
/// (property-tested via [`SimReport::value_digest`] in
/// `tests/collective_props.rs`; semantics in `docs/COLLECTIVES.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Reduce up + broadcast down: every node gets the global reduction.
    Allreduce,
    /// Reduce up only: the tree roots get the global reduction.
    Reduce,
    /// Broadcast down only: the roots' own slices reach every node.
    Broadcast,
    /// Reduce up only, sharded delivery: each tree's slice of the global
    /// reduction ends at that tree's root — the shard that owns it. Same
    /// dataflow as [`Collective::Reduce`]; a distinct collective because
    /// it is priced, traced and scheduled as half of a sharded allreduce.
    ReduceScatter,
    /// Broadcast down of per-shard *reduced* contributions: each root
    /// injects its slice of the global reduction (the state a preceding
    /// reduce-scatter left it with) and every node receives it.
    Allgather,
}

impl Collective {
    /// Every collective the engines implement, in a stable order.
    pub const ALL: [Collective; 5] = [
        Collective::Allreduce,
        Collective::Reduce,
        Collective::Broadcast,
        Collective::ReduceScatter,
        Collective::Allgather,
    ];

    /// Does this collective run the reduce-up phase (reduction engines
    /// fire, child streams are combined toward the root)?
    #[must_use]
    pub fn reduces(self) -> bool {
        matches!(self, Collective::Allreduce | Collective::Reduce | Collective::ReduceScatter)
    }

    /// Does this collective run the broadcast-down phase (relays forward
    /// values from parent to children)?
    #[must_use]
    pub fn broadcasts(self) -> bool {
        matches!(self, Collective::Allreduce | Collective::Broadcast | Collective::Allgather)
    }

    /// Does the tree root *originate* the down phase from local state
    /// (rather than turning the reduction around, as allreduce does)?
    #[must_use]
    pub fn root_sources_broadcast(self) -> bool {
        matches!(self, Collective::Broadcast | Collective::Allgather)
    }

    /// How many sinks each tree's slice is delivered to: every node, or
    /// only the root shard.
    #[must_use]
    pub fn sinks_per_tree(self, n: u64) -> u64 {
        if self.broadcasts() {
            n
        } else {
            1
        }
    }

    /// The stable snake_case name used by the `pf-simnet-trace-v1` schema
    /// (`collective` fields) and the bench tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Collective::Allreduce => "allreduce",
            Collective::Reduce => "reduce",
            Collective::Broadcast => "broadcast",
            Collective::ReduceScatter => "reduce_scatter",
            Collective::Allgather => "allgather",
        }
    }

    /// Inverse of [`Collective::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Collective> {
        Collective::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// Result of one simulated collective (allreduce by default; see
/// [`Collective`] for the full set).
///
/// `PartialEq` is derived so tests can assert that enabling tracing leaves
/// the simulation bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total cycles until the last element was delivered everywhere.
    pub cycles: u64,
    /// Total vector length reduced.
    pub total_elems: u64,
    /// `true` iff every node received every element before `max_cycles`.
    pub completed: bool,
    /// Elements whose delivered value disagreed with the expected
    /// reduction (must be 0).
    pub mismatches: u64,
    /// Order-independent digest of every `(sink node, global element,
    /// delivered value)` triple — the wrapping sum of
    /// [`delivery_digest_entry`] over all deliveries. Two collectives
    /// delivering the same values to the same sinks produce the same
    /// digest regardless of timing, which is how the composition suite
    /// proves reduce-scatter∘allgather ≡ allreduce.
    pub value_digest: u64,
    /// Aggregate goodput in elements/cycle: `total_elems / cycles`.
    pub measured_bandwidth: f64,
    /// Completion cycle per tree (last delivery of its slice).
    pub tree_completion: Vec<u64>,
    /// Cycle by which every sink had received its *first* element — the
    /// collective's latency, dominated by tree depth (Figure 5b's
    /// quantity, measured on the executing system).
    pub first_element_latency: u64,
    /// Flits carried per directed channel.
    pub channel_flits: Vec<u64>,
    /// Maximum observed channel utilization (flits / cycles).
    pub max_channel_utilization: f64,
    /// High-water mark of receiver VC occupancy (buffered + in flight)
    /// over all streams — never exceeds `vc_buffer`, and saturated runs
    /// sit at the latency-bandwidth product.
    pub max_vc_occupancy: usize,
}

/// One tenant's slice of a multi-job run ([`Simulator::run_jobs`]): which
/// contiguous range of the embedding's trees it owns and when it is
/// released into the fabric.
#[derive(Debug, Clone)]
pub struct JobBinding {
    /// The half-open range of embedded tree indices this job owns. The
    /// bindings of one run must partition `0..emb.trees.len()`
    /// contiguously and in order.
    pub trees: std::ops::Range<usize>,
    /// First cycle at which this job's engines may fire (`0` = from the
    /// start). Models staggered arrivals inside one scheduling wave.
    pub release: u64,
}

/// Per-job results of a multi-job run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Cycle of this job's first delivered element (0 if none).
    pub first_delivery: u64,
    /// Cycle of this job's last delivered element (0 if incomplete).
    pub completion: u64,
    /// Elements delivered to sinks for this job (`elems * n` when done).
    pub deliveries: u64,
    /// The job's vector length (sum of its trees' slice lengths).
    pub elems: u64,
    /// Order-independent digest of the root-reduced values, keyed by
    /// global element id. Two runs reducing the same elements over the
    /// same trees produce the same digest — the scheduler's
    /// concurrent-vs-sequential equivalence check.
    pub value_hash: u64,
    /// Expected-value check failures attributed to this job (must be 0).
    pub mismatches: u64,
}

/// Result of [`Simulator::run_jobs`]: the fabric-wide report plus one
/// [`JobOutcome`] per binding.
#[derive(Debug, Clone)]
pub struct JobsRun {
    /// The ordinary fabric-wide simulation report.
    pub report: SimReport,
    /// The trace, when one was enabled via [`Simulator::with_trace`].
    pub trace: Option<TraceReport>,
    /// What the fault layer injected and detected (quiet when no layer
    /// was attached).
    pub faults: FaultReport,
    /// Per-job outcomes, in binding order.
    pub jobs: Vec<JobOutcome>,
}

/// Result of a run with a fault layer attached
/// ([`Simulator::with_faults`]).
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// The ordinary simulation report. `completed` is `false` when
    /// detection aborted the run.
    pub report: SimReport,
    /// The trace, when one was also enabled via [`Simulator::with_trace`].
    pub trace: Option<TraceReport>,
    /// What the fault layer injected and detected.
    pub faults: FaultReport,
}

/// The cycle-level simulator. Construct once per embedding, then
/// [`Simulator::run`].
pub struct Simulator<'a> {
    emb: &'a MultiTreeEmbedding,
    cfg: SimConfig,
    tracer: Option<Tracer>,
    faults: Option<FaultState>,
}

impl<'a> Simulator<'a> {
    /// Wires up the engines for an embedding. `g` must be the graph the
    /// embedding was built from (used only for assertions).
    pub fn new(g: &Graph, emb: &'a MultiTreeEmbedding, cfg: SimConfig) -> Self {
        assert!(cfg.link_latency >= 1, "links need at least one cycle of latency");
        assert!(cfg.vc_buffer >= 1 && cfg.source_queue >= 1, "queues must hold at least one flit");
        assert_eq!(g.num_vertices(), emb.num_nodes);
        Simulator { emb, cfg, tracer: None, faults: None }
    }

    /// Enables observability per `tcfg` (see [`crate::trace`]). With
    /// [`TraceConfig::off`] (the default) no tracer is allocated and the
    /// run is exactly the untraced one. A traced run steps every cycle
    /// (no idle-cycle skipping) so stall attribution is exact.
    pub fn with_trace(mut self, tcfg: TraceConfig) -> Self {
        self.tracer = tcfg.enabled.then(|| {
            Tracer::new(
                self.emb.streams.len(),
                self.emb.channel_streams.len(),
                self.emb.num_nodes as usize,
                tcfg,
            )
        });
        self
    }

    /// Attaches a fault-injection layer executing `schedule` (see
    /// [`crate::faults`]). `g` must be the graph the embedding was built
    /// from. With an empty schedule the layer stays attached but every
    /// decision is identical to a run without it (property-tested, like
    /// tracing).
    pub fn with_faults(mut self, g: &Graph, schedule: FaultSchedule) -> Self {
        assert_eq!(g.num_vertices(), self.emb.num_nodes);
        self.faults = Some(FaultState::new(g, self.emb, &schedule));
        self
    }

    /// Runs the allreduce of `w` (which must match the embedding's node
    /// count and total length) to completion and reports.
    pub fn run(self, w: &Workload) -> SimReport {
        self.run_collective(w, Collective::Allreduce)
    }

    /// Runs an arbitrary tree collective of `w` to completion and reports.
    pub fn run_collective(self, w: &Workload, kind: Collective) -> SimReport {
        self.run_collective_traced(w, kind).0
    }

    /// Like [`Simulator::run`], additionally returning the trace when one
    /// was enabled via [`Simulator::with_trace`].
    pub fn run_traced(self, w: &Workload) -> (SimReport, Option<TraceReport>) {
        self.run_collective_traced(w, Collective::Allreduce)
    }

    /// Like [`Simulator::run_collective`], additionally returning the
    /// trace when one was enabled via [`Simulator::with_trace`].
    ///
    /// Tracing is purely observational: the `SimReport` is identical
    /// whether or not a tracer is attached.
    pub fn run_collective_traced(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>) {
        let (report, trace, _) = self.run_inner(w, kind);
        (report, trace)
    }

    /// Runs the allreduce of `w` under the attached fault layer (or a
    /// quiet one) and reports the fault layer's observations alongside.
    pub fn run_faulted(self, w: &Workload) -> FaultedRun {
        self.run_collective_faulted(w, Collective::Allreduce)
    }

    /// Like [`Simulator::run_faulted`] for an arbitrary collective.
    pub fn run_collective_faulted(self, w: &Workload, kind: Collective) -> FaultedRun {
        let (report, trace, faults) = self.run_inner(w, kind);
        FaultedRun { report, trace, faults: faults.unwrap_or_else(FaultReport::quiet) }
    }

    /// Runs several independent allreduce jobs concurrently on one fabric.
    ///
    /// Each [`JobBinding`] owns a contiguous range of the embedding's
    /// trees (the bindings must partition `0..emb.trees.len()` in order)
    /// and an optional release cycle. The jobs contend for the shared
    /// directed channels exactly like the streams of a single collective
    /// — the active-set engine arbitrates them with no scheduler in the
    /// loop — while reductions, validation and completion are tracked per
    /// job. The workload must cover every tree slice's global element
    /// range (build it with [`Workload::concat`] so each job owns a
    /// distinct segment; `w.len() >= emb.elem_end()`).
    ///
    /// With a single binding released at 0 this is exactly
    /// [`Simulator::run`] plus per-job accounting: same `SimReport`,
    /// byte-identical engine decisions.
    pub fn run_jobs(self, w: &Workload, bindings: &[JobBinding]) -> JobsRun {
        self.run_jobs_collective(w, bindings, Collective::Allreduce)
    }

    /// Like [`Simulator::run_jobs`] for an arbitrary collective: every job
    /// in the wave executes the same `kind` over its own tree range (the
    /// scheduler groups admissions so a wave is homogeneous).
    pub fn run_jobs_collective(
        self,
        w: &Workload,
        bindings: &[JobBinding],
        kind: Collective,
    ) -> JobsRun {
        assert!(!bindings.is_empty(), "at least one job binding");
        let ntrees = self.emb.trees.len();
        let mut next = 0usize;
        for b in bindings {
            assert!(
                b.trees.start == next && b.trees.end > b.trees.start && b.trees.end <= ntrees,
                "job bindings must partition the embedding's trees contiguously"
            );
            next = b.trees.end;
        }
        assert_eq!(next, ntrees, "job bindings must cover every embedded tree");
        let (report, trace, faults, jobs) = self.run_inner_jobs(w, kind, Some(bindings));
        JobsRun { report, trace, faults: faults.unwrap_or_else(FaultReport::quiet), jobs }
    }

    /// Runs `w` on the retained pre-optimization stepper (see
    /// [`mod@reference`]). Kept solely so differential tests and the
    /// `experiments perf-snapshot` harness can compare the optimized
    /// engine against it — new code should call [`Simulator::run`].
    #[cfg(any(test, feature = "reference-engine"))]
    pub fn run_reference(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        reference::run(self, w, kind)
    }

    /// The optimized engine's raw `(report, trace, faults)` triple — the
    /// exact counterpart of [`Simulator::run_reference`], exposed with the
    /// same gating so differential harnesses compare like with like.
    #[cfg(any(test, feature = "reference-engine"))]
    pub fn run_optimized(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        self.run_inner(w, kind)
    }

    fn run_inner(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        let (report, trace, faults, _) = self.run_inner_jobs(w, kind, None);
        (report, trace, faults)
    }

    fn run_inner_jobs(
        self,
        w: &Workload,
        kind: Collective,
        bindings: Option<&[JobBinding]>,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>, Vec<JobOutcome>) {
        assert_eq!(w.nodes(), self.emb.num_nodes);
        assert!(
            w.len() >= self.emb.elem_end(),
            "workload must cover every tree slice's global element range"
        );

        let Simulator { emb, cfg, tracer, faults } = self;
        // Deterministic sharded mode: channel-disjoint tree components have
        // fully independent state, so they can be simulated concurrently
        // and merged. Anything that couples components — a tracer (global
        // timeline), a fault layer (global detector clock), or per-node
        // caps (budgets shared across trees) — forces the single run.
        if cfg.threads > 1
            && tracer.is_none()
            && faults.is_none()
            && cfg.max_reductions_per_router.is_none()
            && cfg.max_injections_per_node.is_none()
        {
            if let Some(masks) = shard_masks(emb, cfg.threads) {
                return run_sharded(emb, cfg, w, kind, bindings, &masks);
            }
        }
        let single = run_single(emb, cfg, tracer, faults, w, kind, bindings, None);
        (single.report, single.trace, single.faults, single.jobs)
    }
}

/// Result of one [`run_single`] invocation (one shard of a sharded run, or
/// the whole fabric).
struct SingleRun {
    report: SimReport,
    trace: Option<TraceReport>,
    faults: Option<FaultReport>,
    jobs: Vec<JobOutcome>,
    /// Pairs that must deliver a first element in this shard's mask — the
    /// merge needs it to reconstruct `first_element_latency` (a shard that
    /// owns no live pairs reports 0 without meaning "incomplete").
    live_pairs: u64,
}

/// The simulation loop proper: one `RunState`, stepped to completion.
/// `tree_mask` (sharded mode) deactivates the trees a shard does not own —
/// masked trees behave exactly like `len == 0` trees, contributing nothing
/// to any counter.
#[allow(clippy::too_many_arguments)]
fn run_single(
    emb: &MultiTreeEmbedding,
    cfg: SimConfig,
    mut tracer: Option<Tracer>,
    mut faults: Option<FaultState>,
    w: &Workload,
    kind: Collective,
    bindings: Option<&[JobBinding]>,
    tree_mask: Option<&[bool]>,
) -> SingleRun {
    let mut st = RunState::new(emb, cfg, kind, bindings, tree_mask);

    let traced = tracer.is_some();
    // `fast` fuses transmit and wire advancement into one pass: the flits
    // staged at cycle `c` are advanced toward (and into) the arrival state
    // for `c + 1` immediately, so the next iteration starts with zero
    // wire-scan work. A tracer or fault layer needs the classic split
    // stepping (per-cycle freeze checks and stall attribution).
    let fast = !traced && faults.is_none();
    // Batch spans additionally require uncapped budgets (a per-node budget
    // is consumed *within* a cycle; replaying j·P cycles in closed form
    // would need per-cycle budget accounting). A quiet attached fault
    // layer is fine — spans are bounded by its next transition.
    let batchable = !traced
        && cfg.max_reductions_per_router.is_none()
        && cfg.max_injections_per_node.is_none();
    let mut cycle = 0u64;
    while st.deliveries < st.total_deliveries
        && cycle < cfg.max_cycles
        && !faults.as_ref().is_some_and(|f| f.should_abort())
    {
        cycle += 1;
        if let Some(fs) = faults.as_mut() {
            fs.begin_cycle(cycle);
        }
        st.progress = st.pending_arrivals;
        st.pending_arrivals = false;

        if !fast {
            st.step_arrivals(cycle, &faults);
        } else if cycle > st.arrivals_done {
            // Catch-up after a skip (or on the first cycle): arrivals due
            // by `cycle` that the fused pass could not know about yet.
            st.step_arrivals_fast(cycle, false);
        }
        st.step_compute(cycle, w, &mut tracer, &faults);
        st.step_transmit(cycle, traced, &mut tracer, &mut faults);
        if fast {
            // Fused wire advancement: complete next cycle's arrivals in
            // the same pass over the active words (a flit stamped
            // `cycle + 1`, i.e. link latency 1, arrives here instead of
            // via a second full scan at the top of the next iteration).
            st.step_arrivals_fast(cycle + 1, true);
            st.arrivals_done = cycle + 1;
        }

        if let Some(tr) = tracer.as_mut() {
            if tr.timeline_due(cycle) {
                tr.sample_timeline(cycle, st.deliveries);
            }
        }

        if batchable && st.deliveries < st.total_deliveries {
            st.batch_step(&mut cycle, w, &mut faults);
        }

        // Time skip: if this cycle made no progress at all, nothing can
        // change until the next in-flight arrival (or the next fault
        // activation / heal). Jump there instead of ticking idly.
        // Tracing pins per-cycle stepping; an actively faulted fabric
        // (downed or degraded channels) needs per-cycle stall/degrade
        // accounting, so skipping pauses until it is quiet again.
        if !st.progress
            && !st.pending_arrivals
            && !traced
            && st.deliveries < st.total_deliveries
        {
            let fault_ok = faults.as_ref().is_none_or(|f| f.skip_safe());
            if fault_ok {
                let mut target = cfg.max_cycles;
                if let Some(next) = st.next_arrival() {
                    target = target.min(next - 1);
                }
                if let Some(next) = faults.as_ref().and_then(|f| f.next_transition()) {
                    target = target.min(next - 1);
                }
                if let Some(next) = st.next_release(cycle) {
                    target = target.min(next - 1);
                }
                cycle = cycle.max(target.min(cfg.max_cycles));
            }
        }
    }

    let completed = st.deliveries == st.total_deliveries;
    let max_util = st
        .channel_flits
        .iter()
        .map(|&f| f as f64 / cycle.max(1) as f64)
        .fold(0.0, f64::max);
    let fault_report = faults.map(|f| f.finish(completed));
    let mut trace = tracer.map(|mut tr| {
        tr.sample_timeline(cycle, st.deliveries); // final sample (timeline runs only)
        tr.finish(emb, cycle)
    });
    if let Some(t) = trace.as_mut() {
        t.collective = kind.name().to_string();
    }
    if let (Some(t), Some(fr)) = (trace.as_mut(), fault_report.as_ref()) {
        t.faults = fr.records.clone();
    }
    let report = SimReport {
        cycles: cycle,
        total_elems: emb.total_len,
        completed,
        mismatches: st.mismatches,
        value_digest: st.value_digest,
        measured_bandwidth: emb.total_len as f64 / cycle.max(1) as f64,
        tree_completion: st.tree_completion,
        first_element_latency: st.first_element_latency,
        channel_flits: st.channel_flits,
        max_channel_utilization: max_util,
        max_vc_occupancy: st.max_vc_occupancy,
    };
    let jobs = (0..st.njobs)
        .map(|j| JobOutcome {
            first_delivery: st.job_first[j],
            completion: st.job_completion[j],
            deliveries: st.job_deliveries[j],
            elems: st.job_elems[j],
            value_hash: st.job_hash[j],
            mismatches: st.job_mismatches[j],
        })
        .collect();
    SingleRun { report, trace, faults: fault_report, jobs, live_pairs: st.live_pairs }
}

/// Partitions the embedding's live trees into channel-disjoint components
/// and packs the components into at most `threads` shard masks (longest
/// processing time first, by total slice length). Returns `None` when the
/// fabric does not decompose (fewer than two components) — the caller
/// falls back to the single-threaded run.
fn shard_masks(emb: &MultiTreeEmbedding, threads: usize) -> Option<Vec<Vec<bool>>> {
    let ntrees = emb.trees.len();
    if ntrees < 2 {
        return None;
    }
    // Union-find over trees: two trees sharing any directed channel are
    // coupled (their streams contend for its bandwidth).
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut parent: Vec<u32> = (0..ntrees as u32).collect();
    for members in &emb.channel_streams {
        let mut first: Option<u32> = None;
        for &s in members {
            let t = emb.streams[s as usize].tree;
            match first {
                None => first = Some(find(&mut parent, t)),
                Some(f) => {
                    let r = find(&mut parent, t);
                    if r != f {
                        parent[r as usize] = f;
                    }
                }
            }
        }
    }
    // Components over live trees only (an empty tree has no state at all).
    let mut comp_idx = vec![usize::MAX; ntrees];
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    for (ti, t) in emb.trees.iter().enumerate() {
        if t.len == 0 {
            continue;
        }
        let root = find(&mut parent, ti as u32) as usize;
        let ci = if comp_idx[root] == usize::MAX {
            comp_idx[root] = components.len();
            components.push(Vec::new());
            weights.push(0);
            comp_idx[root]
        } else {
            comp_idx[root]
        };
        components[ci].push(ti);
        weights[ci] += t.len;
    }
    if components.len() < 2 {
        return None;
    }
    // LPT bin packing: heaviest component into the lightest bucket. The
    // sort is stable and ties break on the lowest bucket index, so the
    // assignment — and therefore the merge order — is deterministic.
    let buckets = threads.min(components.len());
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut loads = vec![0u64; buckets];
    let mut masks = vec![vec![false; ntrees]; buckets];
    for &i in &order {
        let b = (0..buckets).min_by_key(|&b| loads[b]).unwrap();
        loads[b] += weights[i];
        for &ti in &components[i] {
            masks[b][ti] = true;
        }
    }
    Some(masks)
}

/// Runs one shard per mask on the worker pool and merges the shard
/// reports into exactly what the single-threaded run would have produced.
/// Every cross-shard aggregate is either a wrapping sum of
/// order-independent digest entries, an elementwise sum/max over disjoint
/// supports, or recomputed from merged integers — so the merge is
/// byte-identical regardless of scheduling.
fn run_sharded(
    emb: &MultiTreeEmbedding,
    cfg: SimConfig,
    w: &Workload,
    kind: Collective,
    bindings: Option<&[JobBinding]>,
    masks: &[Vec<bool>],
) -> (SimReport, Option<TraceReport>, Option<FaultReport>, Vec<JobOutcome>) {
    let shards = crate::par::parallel_map_workers(masks.len(), masks, |mask| {
        run_single(emb, cfg, None, None, w, kind, bindings, Some(mask))
    });

    let ntrees = emb.trees.len();
    let nchans = emb.channel_streams.len();
    let mut cycles = 0u64;
    let mut completed = true;
    let mut mismatches = 0u64;
    let mut value_digest = 0u64;
    let mut tree_completion = vec![0u64; ntrees];
    let mut channel_flits = vec![0u64; nchans];
    let mut max_vc_occupancy = 0usize;
    let mut fel = 0u64;
    let mut fel_all = true;
    for sh in &shards {
        cycles = cycles.max(sh.report.cycles);
        completed &= sh.report.completed;
        mismatches += sh.report.mismatches;
        value_digest = value_digest.wrapping_add(sh.report.value_digest);
        for (tc, &shc) in tree_completion.iter_mut().zip(&sh.report.tree_completion) {
            *tc = (*tc).max(shc);
        }
        for (cf, &shf) in channel_flits.iter_mut().zip(&sh.report.channel_flits) {
            *cf += shf;
        }
        max_vc_occupancy = max_vc_occupancy.max(sh.report.max_vc_occupancy);
        if sh.live_pairs > 0 {
            if sh.report.first_element_latency == 0 {
                fel_all = false;
            } else {
                fel = fel.max(sh.report.first_element_latency);
            }
        }
    }
    let max_util =
        channel_flits.iter().map(|&f| f as f64 / cycles.max(1) as f64).fold(0.0, f64::max);
    let report = SimReport {
        cycles,
        total_elems: emb.total_len,
        completed,
        mismatches,
        value_digest,
        measured_bandwidth: emb.total_len as f64 / cycles.max(1) as f64,
        tree_completion,
        first_element_latency: if fel_all { fel } else { 0 },
        channel_flits,
        max_channel_utilization: max_util,
        max_vc_occupancy,
    };

    // Per-job merge. A job's deliveries/elems/hash/mismatches are plain
    // sums over the shards that own its trees; first delivery is the
    // earliest nonzero; completion is the latest shard completion, and
    // only counts once the *merged* deliveries reach the full job total
    // (a shard completing its portion is not the job completing).
    let njobs = bindings.map_or(0, <[JobBinding]>::len);
    let per_tree_sinks = kind.sinks_per_tree(emb.num_nodes as u64);
    let mut job_total = vec![0u64; njobs];
    if let Some(bs) = bindings {
        for (j, b) in bs.iter().enumerate() {
            for ti in b.trees.clone() {
                job_total[j] += emb.trees[ti].len * per_tree_sinks;
            }
        }
    }
    let mut jobs = vec![
        JobOutcome {
            first_delivery: 0,
            completion: 0,
            deliveries: 0,
            elems: 0,
            value_hash: 0,
            mismatches: 0,
        };
        njobs
    ];
    for sh in &shards {
        for (j, o) in sh.jobs.iter().enumerate() {
            jobs[j].deliveries += o.deliveries;
            jobs[j].elems += o.elems;
            jobs[j].value_hash = jobs[j].value_hash.wrapping_add(o.value_hash);
            jobs[j].mismatches += o.mismatches;
            if o.first_delivery > 0 {
                jobs[j].first_delivery = if jobs[j].first_delivery == 0 {
                    o.first_delivery
                } else {
                    jobs[j].first_delivery.min(o.first_delivery)
                };
            }
        }
    }
    for j in 0..njobs {
        if job_total[j] > 0 && jobs[j].deliveries == job_total[j] {
            jobs[j].completion =
                shards.iter().map(|sh| sh.jobs[j].completion).max().unwrap_or(0);
        }
    }
    (report, None, None, jobs)
}

/// Order-independent digest entry for one root-reduced element: a
/// SplitMix64-style finalizer over `(global element id, reduced value)`.
/// Job digests are the wrapping sum of these entries, so arbitrary
/// interleaving of element completions leaves the digest unchanged.
#[inline]
fn hash_entry(elem: u64, val: u64) -> u64 {
    let mut z = elem.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ val;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The digest entry one delivery contributes to
/// [`SimReport::value_digest`]: a nested `hash_entry` over the sink
/// node, the global element id, and the delivered value (raw `u64`
/// payload — float workloads contribute their bit patterns).
///
/// Exposed so tests can reconstruct the digest a collective *should*
/// produce (e.g. a reduce-scatter delivers `(root(t), offset+e,
/// expected(offset+e))` for every tree `t` and slice element `e`) and
/// compare it against the engine's.
#[inline]
#[must_use]
pub fn delivery_digest_entry(node: u64, elem: u64, val: u64) -> u64 {
    hash_entry(node, hash_entry(elem, val))
}

/// Sentinel for "no stream wired here" in the flat dataflow arrays.
const NONE: u32 = u32::MAX;

/// Longest shape period the batch detector tolerates before dropping an
/// armed snapshot. Periods are LCMs of the round-robin rotation lengths of
/// the congested channels, so they grow fast with member-count diversity;
/// 1024 covers every period observed across the bench regimes with room
/// to spare while bounding the worst-case compare cost.
const BATCH_PMAX: u64 = 1024;
/// Consecutive progress cycles required before arming a snapshot. Runs
/// that never saturate (latency tails, fault-frozen stretches) never pay
/// for the detector at all.
const BATCH_STREAK: u32 = 32;
/// Element block width of the bulk value-recomputation pass: one scratch
/// row per node, `BATCH_BLOCK` contiguous elements per pass, sized to keep
/// the whole working set (n rows) in cache while leaving the inner combine
/// loops long enough to vectorize.
const BATCH_BLOCK: usize = 64;
/// Re-arm backoff after a failed match/window (doubles up to the cap): a
/// run that is *not* periodic stops paying the snapshot cost quickly.
const BATCH_BACKOFF0: u64 = 64;
const BATCH_BACKOFF_MAX: u64 = 8192;

/// Controller for the batch-span fast-forward: arms a full shape snapshot
/// after a streak of progress cycles, compares every subsequent cycle
/// against it, and on a recurrence replays `j` whole periods in closed
/// form (see `docs/PERFORMANCE.md` for the invariance argument).
struct BatchCtl {
    /// A snapshot is armed and being compared against.
    armed: bool,
    /// Cycle the armed snapshot was taken at.
    c0: u64,
    /// Earliest cycle at which a new snapshot may be armed (backoff).
    next_try: u64,
    backoff: u64,
    /// Consecutive progress cycles ending at the current one.
    streak: u32,
    snap: BatchSnap,
}

/// Everything that must recur for two cycles to be *shape-equal* — i.e.
/// for the fire/drain/arrival pattern between them to replay verbatim —
/// plus the progress counters whose per-period deltas become the bulk
/// rates. Value arrays are deliberately absent: values are pure functions
/// of the element index (the engine combines deterministic workload
/// inputs in a deterministic order), so the bulk pass recomputes them.
struct BatchSnap {
    sendq_len: Vec<u32>,
    vc_arrived: Vec<u32>,
    vc_inflight: Vec<u32>,
    rr: Vec<u32>,
    pair_active: Vec<u64>,
    chan_active: Vec<u64>,
    wire_active: Vec<u64>,
    /// Per in-flight slot: arrival stamp minus the snapshot cycle, in FIFO
    /// order per stream (`stream << vc_shift | position`). Occupancy alone
    /// does not pin the arrival pattern; the relative stamps must recur.
    inflight_off: Vec<u64>,
    pending_arrivals: bool,
    // Progress counters (not part of the shape): their deltas over one
    // period are the per-pair fire/delivery rates of the bulk replay.
    reduced: Vec<u64>,
    delivered: Vec<u64>,
    deliveries: u64,
    tree_deliveries: Vec<u64>,
    job_deliveries: Vec<u64>,
    channel_flits: Vec<u64>,
}

impl BatchSnap {
    fn new(pairs: usize, nstreams: usize, nchans: usize, ntrees: usize, njobs: usize, vc_shift: u32, words_per_tree: usize) -> Self {
        BatchSnap {
            sendq_len: vec![0; nstreams],
            vc_arrived: vec![0; nstreams],
            vc_inflight: vec![0; nstreams],
            rr: vec![0; nchans],
            pair_active: vec![0; ntrees * words_per_tree],
            chan_active: vec![0; nchans.div_ceil(64)],
            wire_active: vec![0; nstreams.div_ceil(64)],
            inflight_off: vec![0; nstreams << vc_shift],
            pending_arrivals: false,
            reduced: vec![0; pairs],
            delivered: vec![0; pairs],
            deliveries: 0,
            tree_deliveries: vec![0; ntrees],
            job_deliveries: vec![0; njobs],
            channel_flits: vec![0; nchans],
        }
    }
}

/// One stream's queue-rewrite rectangle for the bulk replay: which element
/// ranges of the post-window send queue and receive ring must be filled
/// with recomputed values, and the element id sitting at each ring's head
/// after the window (`*_first`) so element → slot is a single offset.
#[derive(Clone, Copy)]
struct QRect {
    stream: u32,
    vc_first: u64,
    vc_lo: u64,
    vc_hi: u64,
    sq_first: u64,
    sq_lo: u64,
    sq_hi: u64,
}

const QRECT_NONE: QRect =
    QRect { stream: NONE, vc_first: 0, vc_lo: 0, vc_hi: 0, sq_first: 0, sq_lo: 0, sq_hi: 0 };

/// Splits two distinct `BATCH_BLOCK`-strided rows out of the scratch
/// matrix: the row being combined into (mutable) and the child row being
/// read. Free function so the borrows stay field-local at the call site.
#[inline]
fn two_rows(buf: &mut [u64], a: usize, b: usize, bw: usize) -> (&mut [u64], &[u64]) {
    debug_assert_ne!(a, b);
    if a < b {
        let (lo, hi) = buf.split_at_mut(b * BATCH_BLOCK);
        (&mut lo[a * BATCH_BLOCK..a * BATCH_BLOCK + bw], &hi[..bw])
    } else {
        let (lo, hi) = buf.split_at_mut(a * BATCH_BLOCK);
        (&mut hi[..bw], &lo[b * BATCH_BLOCK..b * BATCH_BLOCK + bw])
    }
}

/// All mutable state of one optimized run: flat arenas, active sets, and
/// the progress counters folded into the final [`SimReport`].
///
/// Engines are addressed by *pair* index `p = tree * n + node`; stream
/// queues live in pre-sized ring-buffer arenas (`sendq` at the sender,
/// a combined wire/VC ring at the receiver). The steady-state loop
/// performs no heap allocation.
struct RunState {
    cfg: SimConfig,
    kind: Collective,
    n: usize,
    ntrees: usize,

    // Per-tree metadata (flattened from the embedding).
    tree_root: Vec<u32>,
    tree_len: Vec<u64>,
    tree_off: Vec<u64>,

    // Multi-job bookkeeping (all-zero / inert for single-job runs).
    track_jobs: bool,
    njobs: usize,
    tree_release: Vec<u64>,
    tree_job: Vec<u32>,
    job_first: Vec<u64>,
    job_completion: Vec<u64>,
    job_deliveries: Vec<u64>,
    job_total: Vec<u64>,
    job_elems: Vec<u64>,
    job_hash: Vec<u64>,
    job_mismatches: Vec<u64>,

    // Per-pair dataflow wiring: CSR slices into the id arenas.
    reduce_in_off: Vec<u32>,
    bcast_out_off: Vec<u32>,
    in_ids: Vec<u32>,
    out_ids: Vec<u32>,
    reduce_out: Vec<u32>,
    bcast_in: Vec<u32>,
    reduced: Vec<u64>,
    delivered: Vec<u64>,

    // Stream queues: sender staging ring + combined wire/VC ring. Rings
    // are strided at the next power of two so slot arithmetic is a mask
    // and a shift, never a division; the logical capacity stays the
    // configured value (enforced by the credit/space comparisons).
    sq_cap: u32,
    sq_mask: u32,
    sq_shift: u32,
    vc_cap: u32,
    vc_mask: u32,
    vc_shift: u32,
    sendq_val: Vec<u64>,
    sendq_head: Vec<u32>,
    sendq_len: Vec<u32>,
    vc_arr: Vec<u64>,
    vc_val: Vec<u64>,
    vc_head: Vec<u32>,
    vc_arrived: Vec<u32>,
    vc_inflight: Vec<u32>,

    // Stream -> owning channel (for channel activation on staging).
    stream_chan: Vec<u32>,
    // Stream endpoint metadata for the bulk replay: source node and the
    // (tree·n + node) pair ids of both endpoints.
    stream_src_node: Vec<u32>,
    stream_src_pair: Vec<u32>,
    stream_dst_pair: Vec<u32>,
    // Per-tree children-first topological order (CSR): the bulk value
    // pass combines each node after all of its children.
    topo_off: Vec<u32>,
    topo_nodes: Vec<u32>,
    // Precomputed wake targets: the absolute `pair_active` word index and
    // bit mask of each stream's endpoint engines, so a flit event re-arms
    // an engine with a single indexed OR (no division on the hot path).
    wake_src_word: Vec<u32>,
    wake_src_mask: Vec<u64>,
    wake_dst_word: Vec<u32>,
    wake_dst_mask: Vec<u64>,
    // Reduction-input readiness: per-pair count of reduce-input streams
    // with at least one arrived flit, plus a per-stream back-pointer to
    // the pair whose count the stream feeds (`NONE` for broadcast
    // streams). Makes `inputs_ready` O(1) instead of a CSR gather per
    // engine evaluation.
    ready_in: Vec<u32>,
    ready_slot: Vec<u32>,

    // CSR-flattened channel -> member streams map.
    chan_off: Vec<u32>,
    chan_members: Vec<u32>,
    rr: Vec<u32>,

    // Active sets (bitset words).
    words_per_tree: usize,
    pair_active: Vec<u64>,
    chan_active: Vec<u64>,
    wire_active: Vec<u64>,

    // Lazily refilled per-node budgets (epoch-stamped; see docs).
    engine_budget: Vec<u32>,
    engine_epoch: Vec<u64>,
    inject_budget: Vec<u32>,
    inject_epoch: Vec<u64>,

    // Progress bookkeeping.
    per_tree_sinks: u64,
    total_deliveries: u64,
    live_pairs: u64,
    first_done_pairs: u64,
    first_element_latency: u64,
    deliveries: u64,
    mismatches: u64,
    value_digest: u64,
    tree_completion: Vec<u64>,
    tree_deliveries: Vec<u64>,
    channel_flits: Vec<u64>,
    max_vc_occupancy: usize,
    progress: bool,

    // Fused transmit/arrival bookkeeping (fast path only): arrivals have
    // been completed through this cycle, and the fused pass advanced at
    // least one flit into the arrived state for the *next* cycle.
    arrivals_done: u64,
    pending_arrivals: bool,

    // Batch-span machinery (see the module doc and `BatchCtl`).
    bat: BatchCtl,
    // Scratch for the bulk value pass: one row of `BATCH_BLOCK` element
    // values per node.
    rblock: Vec<u64>,
    // Scratch: per-node queue-rewrite rectangles for the tree being bulked
    // (reduce-out stream / broadcast-in stream of each node).
    rect_r: Vec<QRect>,
    rect_b: Vec<QRect>,
}

impl RunState {
    fn new(
        emb: &MultiTreeEmbedding,
        cfg: SimConfig,
        kind: Collective,
        bindings: Option<&[JobBinding]>,
        tree_mask: Option<&[bool]>,
    ) -> Self {
        let n = emb.num_nodes as usize;
        let ntrees = emb.trees.len();
        let pairs = ntrees * n;
        let nstreams = emb.streams.len();
        let nchans = emb.channel_streams.len();

        // A masked-out tree (sharded mode: some other shard owns it) is
        // treated exactly like an empty tree — length 0 everywhere, so its
        // engines never arm, its streams never carry and its deliveries
        // never count.
        let tree_len_eff: Vec<u64> = emb
            .trees
            .iter()
            .enumerate()
            .map(|(ti, t)| if tree_mask.is_none_or(|m| m[ti]) { t.len } else { 0 })
            .collect();

        // Wire the per-pair dataflow (two passes: counts, then fill).
        let mut in_cnt = vec![0u32; pairs];
        let mut out_cnt = vec![0u32; pairs];
        let mut reduce_out = vec![NONE; pairs];
        let mut bcast_in = vec![NONE; pairs];
        let mut src_pair = vec![0u32; nstreams];
        let mut dst_pair = vec![0u32; nstreams];
        for (si, s) in emb.streams.iter().enumerate() {
            let sp = s.tree as usize * n + s.src as usize;
            let dp = s.tree as usize * n + s.dst as usize;
            src_pair[si] = sp as u32;
            dst_pair[si] = dp as u32;
            match s.phase {
                Phase::Reduce => {
                    in_cnt[dp] += 1;
                    reduce_out[sp] = si as u32;
                }
                Phase::Broadcast => {
                    out_cnt[sp] += 1;
                    bcast_in[dp] = si as u32;
                }
            }
        }
        let mut reduce_in_off = vec![0u32; pairs + 1];
        let mut bcast_out_off = vec![0u32; pairs + 1];
        for p in 0..pairs {
            reduce_in_off[p + 1] = reduce_in_off[p] + in_cnt[p];
            bcast_out_off[p + 1] = bcast_out_off[p] + out_cnt[p];
        }
        let mut in_ids = vec![0u32; reduce_in_off[pairs] as usize];
        let mut out_ids = vec![0u32; bcast_out_off[pairs] as usize];
        let mut in_fill = reduce_in_off.clone();
        let mut out_fill = bcast_out_off.clone();
        for (si, s) in emb.streams.iter().enumerate() {
            match s.phase {
                Phase::Reduce => {
                    let dp = dst_pair[si] as usize;
                    in_ids[in_fill[dp] as usize] = si as u32;
                    in_fill[dp] += 1;
                }
                Phase::Broadcast => {
                    let sp = src_pair[si] as usize;
                    out_ids[out_fill[sp] as usize] = si as u32;
                    out_fill[sp] += 1;
                }
            }
        }

        // CSR-flatten the channel -> streams map.
        let mut chan_off = vec![0u32; nchans + 1];
        for (c, members) in emb.channel_streams.iter().enumerate() {
            chan_off[c + 1] = chan_off[c] + members.len() as u32;
        }
        let mut chan_members = vec![0u32; chan_off[nchans] as usize];
        let mut stream_chan = vec![NONE; nstreams];
        for (c, members) in emb.channel_streams.iter().enumerate() {
            let base = chan_off[c] as usize;
            chan_members[base..base + members.len()].copy_from_slice(members);
            for &s in members {
                stream_chan[s as usize] = c as u32;
            }
        }

        let per_tree_sinks = kind.sinks_per_tree(emb.num_nodes as u64);
        let total_deliveries: u64 = tree_len_eff.iter().map(|&l| l * per_tree_sinks).sum();
        let live_pairs: u64 =
            tree_len_eff.iter().map(|&l| if l > 0 { per_tree_sinks } else { 0 }).sum();

        let words_per_tree = n.div_ceil(64);
        let sq_shift = (cfg.source_queue as u32).next_power_of_two().trailing_zeros();
        let vc_shift = (cfg.vc_buffer as u32).next_power_of_two().trailing_zeros();

        // Precompute each stream's wake word/mask and ready-count slot.
        let mut wake_src_word = vec![0u32; nstreams];
        let mut wake_src_mask = vec![0u64; nstreams];
        let mut wake_dst_word = vec![0u32; nstreams];
        let mut wake_dst_mask = vec![0u64; nstreams];
        let mut ready_slot = vec![NONE; nstreams];
        for (si, s) in emb.streams.iter().enumerate() {
            let base = s.tree as usize * words_per_tree;
            wake_src_word[si] = (base + s.src as usize / 64) as u32;
            wake_src_mask[si] = 1u64 << (s.src as usize % 64);
            wake_dst_word[si] = (base + s.dst as usize / 64) as u32;
            wake_dst_mask[si] = 1u64 << (s.dst as usize % 64);
            if matches!(s.phase, Phase::Reduce) {
                ready_slot[si] = dst_pair[si];
            }
        }

        // Per-job wiring: which job each tree belongs to, when it is
        // released, and how many deliveries complete each job.
        let njobs = bindings.map_or(0, <[JobBinding]>::len);
        let mut tree_release = vec![0u64; ntrees];
        let mut tree_job = vec![0u32; ntrees];
        let mut job_total = vec![0u64; njobs];
        let mut job_elems = vec![0u64; njobs];
        if let Some(bs) = bindings {
            for (j, b) in bs.iter().enumerate() {
                for ti in b.trees.clone() {
                    tree_release[ti] = b.release;
                    tree_job[ti] = j as u32;
                    job_total[j] += tree_len_eff[ti] * per_tree_sinks;
                    job_elems[j] += tree_len_eff[ti];
                }
            }
        }

        // Per-tree children-first topological order for the bulk value
        // pass (a preorder DFS from the root, reversed). Only live trees
        // get an order; an empty/masked tree's slice stays empty.
        let mut topo_off = vec![0u32; ntrees + 1];
        let mut topo_nodes: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = Vec::new();
        for (ti, t) in emb.trees.iter().enumerate() {
            if tree_len_eff[ti] > 0 {
                let before = topo_nodes.len();
                stack.push(t.root);
                while let Some(v) = stack.pop() {
                    topo_nodes.push(v);
                    stack.extend_from_slice(&t.children[v as usize]);
                }
                topo_nodes[before..].reverse();
            }
            topo_off[ti + 1] = topo_nodes.len() as u32;
        }

        // Every engine of a non-empty tree starts active: leaves can fire
        // on cycle 1, everything else stalls once and deactivates.
        let mut pair_active = vec![0u64; ntrees * words_per_tree];
        for (ti, &len_eff) in tree_len_eff.iter().enumerate() {
            if len_eff == 0 {
                continue;
            }
            let base = ti * words_per_tree;
            for wi in 0..words_per_tree {
                let lo = wi * 64;
                let bits = (n - lo).min(64);
                pair_active[base + wi] = if bits == 64 { !0u64 } else { (1u64 << bits) - 1 };
            }
        }

        RunState {
            cfg,
            kind,
            n,
            ntrees,
            tree_root: emb.trees.iter().map(|t| t.root).collect(),
            tree_len: tree_len_eff,
            tree_off: emb.trees.iter().map(|t| t.offset).collect(),
            track_jobs: bindings.is_some(),
            njobs,
            tree_release,
            tree_job,
            job_first: vec![0; njobs],
            job_completion: vec![0; njobs],
            job_deliveries: vec![0; njobs],
            job_total,
            job_elems,
            job_hash: vec![0; njobs],
            job_mismatches: vec![0; njobs],
            reduce_in_off,
            bcast_out_off,
            in_ids,
            out_ids,
            reduce_out,
            bcast_in,
            reduced: vec![0; pairs],
            delivered: vec![0; pairs],
            sq_cap: cfg.source_queue as u32,
            sq_mask: (1u32 << sq_shift) - 1,
            sq_shift,
            vc_cap: cfg.vc_buffer as u32,
            vc_mask: (1u32 << vc_shift) - 1,
            vc_shift,
            sendq_val: vec![0; nstreams << sq_shift],
            sendq_head: vec![0; nstreams],
            sendq_len: vec![0; nstreams],
            vc_arr: vec![0; nstreams << vc_shift],
            vc_val: vec![0; nstreams << vc_shift],
            vc_head: vec![0; nstreams],
            vc_arrived: vec![0; nstreams],
            vc_inflight: vec![0; nstreams],
            stream_chan,
            stream_src_node: emb.streams.iter().map(|s| s.src).collect(),
            stream_src_pair: src_pair,
            stream_dst_pair: dst_pair,
            topo_off,
            topo_nodes,
            wake_src_word,
            wake_src_mask,
            wake_dst_word,
            wake_dst_mask,
            ready_in: vec![0; pairs],
            ready_slot,
            chan_off,
            chan_members,
            rr: vec![0; nchans],
            words_per_tree,
            pair_active,
            chan_active: vec![0u64; nchans.div_ceil(64)],
            wire_active: vec![0u64; nstreams.div_ceil(64)],
            engine_budget: vec![0; n],
            engine_epoch: vec![0; n],
            inject_budget: vec![0; n],
            inject_epoch: vec![0; n],
            per_tree_sinks,
            total_deliveries,
            live_pairs,
            first_done_pairs: 0,
            first_element_latency: 0,
            deliveries: 0,
            mismatches: 0,
            value_digest: 0,
            tree_completion: vec![0; ntrees],
            tree_deliveries: vec![0; ntrees],
            channel_flits: vec![0; nchans],
            max_vc_occupancy: 0,
            progress: false,
            arrivals_done: 0,
            pending_arrivals: false,
            bat: BatchCtl {
                armed: false,
                c0: 0,
                next_try: 0,
                backoff: BATCH_BACKOFF0,
                streak: 0,
                snap: BatchSnap::new(
                    pairs,
                    nstreams,
                    nchans,
                    ntrees,
                    njobs,
                    vc_shift,
                    words_per_tree,
                ),
            },
            rblock: vec![0; n * BATCH_BLOCK],
            rect_r: vec![QRECT_NONE; n],
            rect_b: vec![QRECT_NONE; n],
        }
    }

    // -- queue primitives ---------------------------------------------------

    #[inline]
    fn sendq_push(&mut self, s: usize, v: u64) {
        let slot = (self.sendq_head[s] + self.sendq_len[s]) & self.sq_mask;
        self.sendq_val[(s << self.sq_shift) + slot as usize] = v;
        self.sendq_len[s] += 1;
        let c = self.stream_chan[s] as usize;
        self.chan_active[c / 64] |= 1u64 << (c % 64);
    }

    #[inline]
    fn sendq_pop(&mut self, s: usize) -> u64 {
        let head = self.sendq_head[s];
        let v = self.sendq_val[(s << self.sq_shift) + head as usize];
        self.sendq_head[s] = (head + 1) & self.sq_mask;
        self.sendq_len[s] -= 1;
        v
    }

    #[inline]
    fn recvq_pop(&mut self, s: usize) -> u64 {
        let head = self.vc_head[s];
        let v = self.vc_val[(s << self.vc_shift) + head as usize];
        self.vc_head[s] = (head + 1) & self.vc_mask;
        self.vc_arrived[s] -= 1;
        if self.vc_arrived[s] == 0 {
            let slot = self.ready_slot[s];
            if slot != NONE {
                self.ready_in[slot as usize] -= 1;
            }
        }
        v
    }

    #[inline]
    fn wire_push(&mut self, s: usize, arrival: u64, v: u64) {
        let slot = (self.vc_head[s] + self.vc_arrived[s] + self.vc_inflight[s]) & self.vc_mask;
        let base = s << self.vc_shift;
        self.vc_arr[base + slot as usize] = arrival;
        self.vc_val[base + slot as usize] = v;
        self.vc_inflight[s] += 1;
        self.wire_active[s / 64] |= 1u64 << (s % 64);
    }

    #[inline]
    fn occupancy(&self, s: usize) -> u32 {
        self.vc_arrived[s] + self.vc_inflight[s]
    }

    // -- cycle sub-steps ----------------------------------------------------

    /// Step 1: deliver in-flight flits whose latency elapsed. Flits on a
    /// dead channel are stuck on the wire: they arrive only after the
    /// fault heals (transient outages delay, they never drop data).
    fn step_arrivals(&mut self, cycle: u64, faults: &Option<FaultState>) {
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            if word == 0 {
                continue;
            }
            let mut keep = word;
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if faults.as_ref().is_some_and(|f| f.arrivals_frozen(s)) {
                    continue;
                }
                let base = s << self.vc_shift;
                let was_empty = self.vc_arrived[s] == 0;
                let mut advanced = false;
                while self.vc_inflight[s] > 0 {
                    let idx = ((self.vc_head[s] + self.vc_arrived[s]) & self.vc_mask) as usize;
                    if self.vc_arr[base + idx] > cycle {
                        break;
                    }
                    self.vc_arrived[s] += 1;
                    self.vc_inflight[s] -= 1;
                    advanced = true;
                }
                if advanced {
                    self.progress = true;
                    self.pair_active[self.wake_dst_word[s] as usize] |= self.wake_dst_mask[s];
                    if was_empty {
                        let slot = self.ready_slot[s];
                        if slot != NONE {
                            self.ready_in[slot as usize] += 1;
                        }
                    }
                }
                if self.vc_inflight[s] == 0 {
                    keep &= !(1u64 << (s % 64));
                }
            }
            self.wire_active[wi] = keep;
        }
    }

    /// [`RunState::step_arrivals`] minus the per-stream fault checks, for
    /// the fused fast path (no fault layer attached). With `pending` the
    /// call is the fused end-of-cycle pass completing *next* cycle's
    /// arrivals: advancement is recorded in `pending_arrivals` (consumed
    /// as next cycle's initial progress) instead of `progress`.
    fn step_arrivals_fast(&mut self, cycle: u64, pending: bool) {
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            if word == 0 {
                continue;
            }
            let mut keep = word;
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let base = s << self.vc_shift;
                let was_empty = self.vc_arrived[s] == 0;
                let mut advanced = false;
                while self.vc_inflight[s] > 0 {
                    let idx = ((self.vc_head[s] + self.vc_arrived[s]) & self.vc_mask) as usize;
                    if self.vc_arr[base + idx] > cycle {
                        break;
                    }
                    self.vc_arrived[s] += 1;
                    self.vc_inflight[s] -= 1;
                    advanced = true;
                }
                if advanced {
                    if pending {
                        self.pending_arrivals = true;
                    } else {
                        self.progress = true;
                    }
                    self.pair_active[self.wake_dst_word[s] as usize] |= self.wake_dst_mask[s];
                    if was_empty {
                        let slot = self.ready_slot[s];
                        if slot != NONE {
                            self.ready_in[slot as usize] += 1;
                        }
                    }
                }
                if self.vc_inflight[s] == 0 {
                    keep &= !(1u64 << (s % 64));
                }
            }
            self.wire_active[wi] = keep;
        }
    }

    /// Step 2: advance reduction engines and broadcast relays. Trees are
    /// visited in an order rotated per cycle so shared per-node budgets
    /// (engine/injection caps) are served max-min fairly instead of
    /// starving high-index trees; within a tree, nodes ascend.
    fn step_compute(
        &mut self,
        cycle: u64,
        w: &Workload,
        tracer: &mut Option<Tracer>,
        faults: &Option<FaultState>,
    ) {
        let ntrees = self.ntrees;
        for ti in (0..ntrees).map(|i| (i + cycle as usize) % ntrees.max(1)) {
            // An unreleased tree keeps its engines armed but dormant: its
            // active bits survive untouched, so it wakes whole at release.
            if self.tree_len[ti] == 0 || cycle < self.tree_release[ti] {
                continue;
            }
            if tracer.is_some() {
                // Tracing pins full scans: every engine with work remaining
                // is observed every cycle, exactly like the reference
                // stepper, so stall attribution is identical.
                for v in 0..self.n {
                    self.process_pair(ti, v, cycle, w, tracer, faults);
                }
            } else {
                let base = ti * self.words_per_tree;
                for wi in 0..self.words_per_tree {
                    let mut word = self.pair_active[base + wi];
                    if word == 0 {
                        continue;
                    }
                    self.pair_active[base + wi] = 0;
                    // Rearms accumulate in a register; nothing else writes
                    // this word while its members are being evaluated
                    // (wakes only happen in the arrival/transmit steps).
                    let mut rearmed = 0u64;
                    while word != 0 {
                        let v = wi * 64 + word.trailing_zeros() as usize;
                        let bit = word & word.wrapping_neg();
                        word &= word - 1;
                        if self.process_pair(ti, v, cycle, w, tracer, faults) {
                            rearmed |= bit;
                        }
                    }
                    self.pair_active[base + wi] |= rearmed;
                }
            }
        }
    }

    /// Evaluates one (tree, node) engine exactly as the reference stepper
    /// does. Returns `true` when the pair must be re-examined next cycle
    /// even without an external wake (it fired, or it stalled on a per-node
    /// budget that refills next cycle).
    fn process_pair(
        &mut self,
        ti: usize,
        v: usize,
        cycle: u64,
        w: &Workload,
        tracer: &mut Option<Tracer>,
        faults: &Option<FaultState>,
    ) -> bool {
        // A dead router's engines and relays are halted.
        if faults.as_ref().is_some_and(|f| f.router_is_down(v)) {
            return false;
        }
        let p = ti * self.n + v;
        let len = self.tree_len[ti];
        let offset = self.tree_off[ti];
        let root = self.tree_root[ti] as usize;
        let is_root = root == v;
        let kind = self.kind;
        let mut rearm = false;

        // -- Reduction engine (allreduce / reduce / reduce-scatter) --
        if kind.reduces() && self.reduced[p] < len {
            let engine_free = match self.cfg.max_reductions_per_router {
                None => true,
                Some(cap) => {
                    if self.engine_epoch[v] != cycle {
                        self.engine_epoch[v] = cycle;
                        self.engine_budget[v] = cap;
                    }
                    self.engine_budget[v] > 0
                }
            };
            let inject_free = match self.cfg.max_injections_per_node {
                None => true,
                Some(cap) => {
                    if self.inject_epoch[v] != cycle {
                        self.inject_epoch[v] = cycle;
                        self.inject_budget[v] = cap;
                    }
                    self.inject_budget[v] > 0
                }
            };
            let in_lo = self.reduce_in_off[p] as usize;
            let in_hi = self.reduce_in_off[p + 1] as usize;
            let inputs_ready = self.ready_in[p] as usize == in_hi - in_lo;
            let out_ok = match self.reduce_out[p] {
                NONE => true,
                s => self.sendq_len[s as usize] < self.sq_cap,
            };
            let out_lo = self.bcast_out_off[p] as usize;
            let out_hi = self.bcast_out_off[p + 1] as usize;
            // An allreduce root turns the result straight into the
            // broadcast, so it needs space on every down stream.
            let bcast_ok = !(is_root && kind == Collective::Allreduce)
                || (out_lo..out_hi)
                    .all(|i| self.sendq_len[self.out_ids[i] as usize] < self.sq_cap);
            let fires = engine_free && inject_free && inputs_ready && out_ok && bcast_ok;
            if let Some(tr) = tracer.as_mut() {
                if !fires {
                    // Attribute the stall: missing inputs first (most
                    // fundamental), then budget, then a blocked output path.
                    let why = if !inputs_ready {
                        EngineStall::InputStarved
                    } else if !engine_free || !inject_free {
                        EngineStall::Budget
                    } else {
                        EngineStall::OutputBlocked
                    };
                    tr.engine_stalled(v, why);
                } else {
                    tr.reduction_fired(v);
                }
            }
            if fires {
                if self.cfg.max_reductions_per_router.is_some() {
                    self.engine_budget[v] -= 1;
                }
                if self.cfg.max_injections_per_node.is_some() {
                    self.inject_budget[v] -= 1;
                }
                let elem = self.reduced[p];
                self.reduced[p] += 1;
                let mut acc = w.input(v as u32, offset + elem);
                for i in in_lo..in_hi {
                    let s = self.in_ids[i] as usize;
                    let x = self.recvq_pop(s);
                    acc = w.combine_at(offset + elem, acc, x);
                }
                if is_root {
                    if !w.value_close_at(offset + elem, acc, w.expected(offset + elem)) {
                        self.mismatches += 1;
                        if self.track_jobs {
                            self.job_mismatches[self.tree_job[ti] as usize] += 1;
                        }
                    }
                    if self.track_jobs {
                        let j = self.tree_job[ti] as usize;
                        self.job_hash[j] =
                            self.job_hash[j].wrapping_add(hash_entry(offset + elem, acc));
                    }
                    if kind == Collective::Allreduce {
                        for i in out_lo..out_hi {
                            let s = self.out_ids[i] as usize;
                            self.sendq_push(s, acc);
                        }
                    }
                    self.deliver(ti, p, cycle, acc);
                } else {
                    let s = self.reduce_out[p] as usize;
                    self.sendq_push(s, acc);
                }
                self.progress = true;
                rearm = true;
            } else if !engine_free || !inject_free {
                // Budgets refill next cycle without any queue event.
                rearm = true;
            }
        }

        // -- Broadcast source (broadcast / allgather root) --
        if kind.root_sources_broadcast() && is_root && self.delivered[p] < len {
            let out_lo = self.bcast_out_off[p] as usize;
            let out_hi = self.bcast_out_off[p + 1] as usize;
            let space = (out_lo..out_hi)
                .all(|i| self.sendq_len[self.out_ids[i] as usize] < self.sq_cap);
            if let Some(tr) = tracer.as_mut() {
                if space {
                    tr.relay_fired(v);
                } else {
                    tr.engine_stalled(v, EngineStall::OutputBlocked);
                }
            }
            if space {
                let elem = self.delivered[p];
                // A broadcast root sends its own contribution; an allgather
                // root sends its slice of the global reduction — the state a
                // preceding reduce-scatter left it with.
                let val = match kind {
                    Collective::Broadcast => w.input(v as u32, offset + elem),
                    _ => w.expected(offset + elem),
                };
                if self.track_jobs {
                    let j = self.tree_job[ti] as usize;
                    self.job_hash[j] =
                        self.job_hash[j].wrapping_add(hash_entry(offset + elem, val));
                }
                for i in out_lo..out_hi {
                    let s = self.out_ids[i] as usize;
                    self.sendq_push(s, val);
                }
                self.deliver(ti, p, cycle, val);
                self.progress = true;
                rearm = true;
            }
        }

        // -- Broadcast relay (allreduce / broadcast / allgather) --
        if kind.broadcasts() {
            let bin = self.bcast_in[p];
            if bin != NONE {
                let bin = bin as usize;
                let input_ready = self.vc_arrived[bin] > 0;
                let out_lo = self.bcast_out_off[p] as usize;
                let out_hi = self.bcast_out_off[p + 1] as usize;
                let out_ok = (out_lo..out_hi)
                    .all(|i| self.sendq_len[self.out_ids[i] as usize] < self.sq_cap);
                if self.delivered[p] < len {
                    if let Some(tr) = tracer.as_mut() {
                        if input_ready && out_ok {
                            tr.relay_fired(v);
                        } else {
                            tr.engine_stalled(
                                v,
                                if !input_ready {
                                    EngineStall::InputStarved
                                } else {
                                    EngineStall::OutputBlocked
                                },
                            );
                        }
                    }
                }
                if self.delivered[p] < len && input_ready && out_ok {
                    let val = self.recvq_pop(bin);
                    let elem = self.delivered[p];
                    let expected = match kind {
                        Collective::Broadcast => w.input(root as u32, offset + elem),
                        _ => w.expected(offset + elem),
                    };
                    if !w.value_close_at(offset + elem, val, expected) {
                        self.mismatches += 1;
                        if self.track_jobs {
                            self.job_mismatches[self.tree_job[ti] as usize] += 1;
                        }
                    }
                    for i in out_lo..out_hi {
                        let s = self.out_ids[i] as usize;
                        self.sendq_push(s, val);
                    }
                    self.deliver(ti, p, cycle, val);
                    self.progress = true;
                    rearm = true;
                }
            }
        }

        rearm
    }

    /// Records one element (carrying `val`) delivered at pair `p` of tree
    /// `ti`.
    #[inline]
    fn deliver(&mut self, ti: usize, p: usize, cycle: u64, val: u64) {
        let node = (p - ti * self.n) as u64;
        let elem = self.tree_off[ti] + self.delivered[p];
        self.value_digest =
            self.value_digest.wrapping_add(delivery_digest_entry(node, elem, val));
        self.delivered[p] += 1;
        if self.delivered[p] == 1 {
            self.first_done_pairs += 1;
            if self.first_done_pairs == self.live_pairs {
                self.first_element_latency = cycle;
            }
        }
        self.deliveries += 1;
        self.tree_deliveries[ti] += 1;
        if self.tree_deliveries[ti] == self.tree_len[ti] * self.per_tree_sinks {
            self.tree_completion[ti] = cycle;
        }
        if self.track_jobs {
            let j = self.tree_job[ti] as usize;
            self.job_deliveries[j] += 1;
            if self.job_deliveries[j] == 1 {
                self.job_first[j] = cycle;
            }
            if self.job_deliveries[j] == self.job_total[j] {
                self.job_completion[j] = cycle;
            }
        }
    }

    /// Step 3: one flit per directed channel per cycle. The winner — first
    /// resident stream in round-robin order with both data and downstream
    /// credit — is found first and the flit moved after, so the tracer can
    /// observe every member without changing arbitration (with tracing off
    /// the scan stops at the winner, which is the identical decision).
    fn step_transmit(
        &mut self,
        cycle: u64,
        traced: bool,
        tracer: &mut Option<Tracer>,
        faults: &mut Option<FaultState>,
    ) {
        if traced {
            for c in 0..self.rr.len() {
                self.process_channel(c, cycle, tracer, faults);
            }
        } else {
            for wi in 0..self.chan_active.len() {
                let mut word = self.chan_active[wi];
                if word == 0 {
                    continue;
                }
                let mut keep = word;
                while word != 0 {
                    let c = wi * 64 + word.trailing_zeros() as usize;
                    word &= word - 1;
                    if !self.process_channel(c, cycle, tracer, faults) {
                        keep &= !(1u64 << (c % 64));
                    }
                }
                self.chan_active[wi] = keep;
            }
        }
    }

    /// Arbitrates one channel. Returns `true` while the channel must stay
    /// in the active set (a resident stream still has staged data, or a
    /// fault is holding the channel and its state cannot be inspected).
    fn process_channel(
        &mut self,
        c: usize,
        cycle: u64,
        tracer: &mut Option<Tracer>,
        faults: &mut Option<FaultState>,
    ) -> bool {
        let lo = self.chan_off[c] as usize;
        let hi = self.chan_off[c + 1] as usize;
        let k = hi - lo;
        if k == 0 {
            return false;
        }
        // A faulted channel transmits nothing this cycle. Full outages
        // additionally charge a stall to every resident stream with staged
        // data — the timeout/retry detector. (Tracer channel/stream hooks
        // are skipped: the channel is physically dead, not arbitrating.)
        if let Some(fs) = faults.as_mut() {
            if fs.channel_blocked(c, cycle) {
                if fs.channel_down(c) {
                    let members = &self.chan_members[lo..hi];
                    let sendq_len = &self.sendq_len;
                    fs.observe_outage(c, members, |s| sendq_len[s] > 0, cycle);
                }
                return true;
            }
        }
        let start = self.rr[c] as usize;
        let mut winner: Option<(usize, usize)> = None; // (member offset, stream)
        let mut any_data = false;
        if let Some(tr) = tracer.as_mut() {
            let mut idx = start;
            for _ in 0..k {
                let s = self.chan_members[lo + idx] as usize;
                let occupancy = self.occupancy(s) as usize;
                let has_data = self.sendq_len[s] > 0;
                let has_credit = occupancy < self.cfg.vc_buffer;
                if winner.is_none() && has_data && has_credit {
                    winner = Some((idx, s));
                }
                any_data |= has_data;
                let won = winner.is_some_and(|(_, w)| w == s);
                tr.observe_stream(
                    s,
                    self.sendq_len[s] as u64,
                    (occupancy + won as usize) as u64,
                    has_data,
                    has_credit,
                    won,
                );
                idx += 1;
                if idx == k {
                    idx = 0;
                }
            }
            tr.observe_channel(c, winner.is_some(), any_data);
        } else {
            let mut idx = start;
            for _ in 0..k {
                let s = self.chan_members[lo + idx] as usize;
                let has_data = self.sendq_len[s] > 0;
                any_data |= has_data;
                if has_data && self.occupancy(s) < self.vc_cap {
                    winner = Some((idx, s));
                    break;
                }
                idx += 1;
                if idx == k {
                    idx = 0;
                }
            }
        }
        if let Some((idx, s)) = winner {
            let occupancy = self.occupancy(s) as usize;
            let v = self.sendq_pop(s);
            self.wire_push(s, cycle + self.cfg.link_latency as u64, v);
            self.channel_flits[c] += 1;
            self.max_vc_occupancy = self.max_vc_occupancy.max(occupancy + 1);
            self.rr[c] = (if idx + 1 == k { 0 } else { idx + 1 }) as u32;
            if let Some(fs) = faults.as_mut() {
                fs.note_progress(s);
            }
            self.pair_active[self.wake_src_word[s] as usize] |= self.wake_src_mask[s];
            self.progress = true;
            // The popped stream may still hold data, and arbitration losers
            // keep theirs: stay active, re-check next cycle.
            return true;
        }
        any_data
    }

    /// Earliest in-flight arrival cycle across all streams, if any.
    fn next_arrival(&self) -> Option<u64> {
        let mut next: Option<u64> = None;
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                if self.vc_inflight[s] == 0 {
                    continue;
                }
                let idx = ((self.vc_head[s] + self.vc_arrived[s]) & self.vc_mask) as usize;
                let arr = self.vc_arr[(s << self.vc_shift) + idx];
                next = Some(next.map_or(arr, |n| n.min(arr)));
            }
        }
        next
    }

    /// Earliest tree-release cycle still in the future, if any.
    fn next_release(&self, cycle: u64) -> Option<u64> {
        self.tree_release.iter().copied().filter(|&r| r > cycle).min()
    }

    // -- batch-span fast-forward --------------------------------------------
    //
    // The saturated counterpart of the idle skip: once the run makes
    // progress every cycle, consecutive cycles tend to repeat the same
    // fire/drain/arrival pattern with some short period P (the LCM of the
    // congested channels' round-robin rotations). The controller snapshots
    // the *shape* of the run (everything arbitration depends on), waits for
    // it to recur, and then replays as many whole periods as provably
    // contain no event boundary in closed form. Values are recomputed, not
    // snapshotted: every value the engine moves is a pure function of its
    // element index (deterministic workload inputs combined in CSR order),
    // so the bulk pass rebuilds exactly the bits the per-cycle path would
    // have produced.

    /// Per-cycle driver: maintains the progress streak, arms/compares the
    /// snapshot, and on a match fast-forwards `cycle`.
    fn batch_step(&mut self, cycle: &mut u64, w: &Workload, faults: &mut Option<FaultState>) {
        // Only a saturated steady state can recur; a cycle without
        // progress (or with a fault actively shaping behavior) resets the
        // streak and drops any armed snapshot.
        let quiet = faults.as_ref().is_none_or(FaultState::skip_safe);
        if !self.progress || !quiet {
            self.bat.streak = 0;
            self.bat.armed = false;
            return;
        }
        self.bat.streak = self.bat.streak.saturating_add(1);
        if self.bat.armed {
            if self.shape_matches(*cycle) {
                let period = *cycle - self.bat.c0;
                self.bat.armed = false;
                match self.bulk_apply(*cycle, period, w, faults) {
                    Some(c_end) => {
                        *cycle = c_end;
                        self.progress = true;
                        self.bat.next_try = c_end;
                        self.bat.backoff = BATCH_BACKOFF0;
                    }
                    None => {
                        self.bat.next_try = *cycle + self.bat.backoff;
                        self.bat.backoff = (self.bat.backoff * 2).min(BATCH_BACKOFF_MAX);
                    }
                }
            } else if *cycle - self.bat.c0 >= BATCH_PMAX {
                // No recurrence within the tolerated period: stop paying
                // the per-cycle compare for a while.
                self.bat.armed = false;
                self.bat.next_try = *cycle + self.bat.backoff;
                self.bat.backoff = (self.bat.backoff * 2).min(BATCH_BACKOFF_MAX);
            }
            return;
        }
        // Arm only once every live pair has delivered its first element:
        // the replay must not need to set any `first_*` latch.
        if self.bat.streak >= BATCH_STREAK
            && *cycle >= self.bat.next_try
            && self.first_done_pairs == self.live_pairs
        {
            self.capture_shape(*cycle);
            self.bat.c0 = *cycle;
            self.bat.armed = true;
        }
    }

    /// Copies everything shape-relevant (and the progress counters whose
    /// deltas become rates) into the armed snapshot.
    fn capture_shape(&mut self, cycle: u64) {
        let snap = &mut self.bat.snap;
        snap.sendq_len.copy_from_slice(&self.sendq_len);
        snap.vc_arrived.copy_from_slice(&self.vc_arrived);
        snap.vc_inflight.copy_from_slice(&self.vc_inflight);
        snap.rr.copy_from_slice(&self.rr);
        snap.pair_active.copy_from_slice(&self.pair_active);
        snap.chan_active.copy_from_slice(&self.chan_active);
        snap.wire_active.copy_from_slice(&self.wire_active);
        snap.pending_arrivals = self.pending_arrivals;
        snap.reduced.copy_from_slice(&self.reduced);
        snap.delivered.copy_from_slice(&self.delivered);
        snap.deliveries = self.deliveries;
        snap.tree_deliveries.copy_from_slice(&self.tree_deliveries);
        snap.job_deliveries.copy_from_slice(&self.job_deliveries);
        snap.channel_flits.copy_from_slice(&self.channel_flits);
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let base = s << self.vc_shift;
                for idx in 0..self.vc_inflight[s] as u64 {
                    let slot =
                        ((self.vc_head[s] + self.vc_arrived[s] + idx as u32) & self.vc_mask) as usize;
                    snap.inflight_off[(s << self.vc_shift) + idx as usize] =
                        self.vc_arr[base + slot] - cycle;
                }
            }
        }
    }

    /// Does the current cycle's shape equal the armed snapshot? Cheapest
    /// comparisons first; the in-flight offset walk runs only when every
    /// aggregate vector already matches.
    fn shape_matches(&self, cycle: u64) -> bool {
        let snap = &self.bat.snap;
        if self.pending_arrivals != snap.pending_arrivals
            || self.wire_active != snap.wire_active
            || self.chan_active != snap.chan_active
            || self.pair_active != snap.pair_active
            || self.sendq_len != snap.sendq_len
            || self.vc_arrived != snap.vc_arrived
            || self.vc_inflight != snap.vc_inflight
            || self.rr != snap.rr
        {
            return false;
        }
        for wi in 0..self.wire_active.len() {
            let mut word = self.wire_active[wi];
            while word != 0 {
                let s = wi * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let base = s << self.vc_shift;
                for idx in 0..self.vc_inflight[s] as u64 {
                    let slot =
                        ((self.vc_head[s] + self.vc_arrived[s] + idx as u32) & self.vc_mask) as usize;
                    if self.vc_arr[base + slot] - cycle
                        != snap.inflight_off[(s << self.vc_shift) + idx as usize]
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The shape at `c1` recurred with period `period`: replay the largest
    /// safe number of whole periods in closed form. Returns the new cycle,
    /// or `None` when not even one period fits inside every margin.
    fn bulk_apply(
        &mut self,
        c1: u64,
        period: u64,
        w: &Workload,
        faults: &mut Option<FaultState>,
    ) -> Option<u64> {
        debug_assert!(period >= 1);
        if self.deliveries == self.bat.snap.deliveries {
            // A period that delivers nothing can recur forever (pure
            // in-flight rotation); fast-forwarding it would never
            // terminate the run. Leave it to the ordinary stepper.
            return None;
        }
        // Largest j such that cycles (c1, c1 + j·period] contain no event
        // boundary: no cycle-cap crossing, no fault transition, no job
        // release, and no pair reaching its slice end (so no completion
        // latch, gate flip or root-turnaround change can occur inside the
        // window — the margins keep every counter strictly below its
        // terminal value).
        let mut j = (self.cfg.max_cycles - c1) / period;
        if let Some(t) = faults.as_ref().and_then(|f| f.next_transition()) {
            debug_assert!(t > c1);
            j = j.min((t - 1 - c1) / period);
        }
        if let Some(r) = self.next_release(c1) {
            j = j.min((r - 1 - c1) / period);
        }
        for ti in 0..self.ntrees {
            let len = self.tree_len[ti];
            if len == 0 {
                continue;
            }
            for v in 0..self.n {
                let p = ti * self.n + v;
                let fr = self.reduced[p] - self.bat.snap.reduced[p];
                if let Some(head) = (len - 1).saturating_sub(self.reduced[p]).checked_div(fr) {
                    j = j.min(head);
                }
                let dl = self.delivered[p] - self.bat.snap.delivered[p];
                if let Some(head) = (len - 1).saturating_sub(self.delivered[p]).checked_div(dl) {
                    j = j.min(head);
                }
            }
        }
        if j == 0 {
            return None;
        }
        let c_end = c1 + j * period;
        self.bulk_streams(j, c_end, faults);
        for ti in 0..self.ntrees {
            self.bulk_tree(ti, j, w);
        }
        self.bulk_counters(j, c_end);
        Some(c_end)
    }

    /// Advances every flowing stream's ring heads by `j` periods, restamps
    /// the surviving in-flight entries relative to the window end, and
    /// replays the per-transmit fault-detector reset.
    fn bulk_streams(&mut self, j: u64, c_end: u64, faults: &mut Option<FaultState>) {
        let snap = &self.bat.snap;
        for s in 0..self.stream_chan.len() {
            // Per-period transmit rate: for a reduce stream every fire of
            // the destination pair pops exactly one flit from it, and for
            // a broadcast stream every relay/turnaround delivery of the
            // destination does — in steady shape, pushes = transmissions =
            // pops per period (queue lengths and occupancies recur).
            let dp = self.stream_dst_pair[s] as usize;
            let sp = self.stream_src_pair[s] as usize;
            let (dp_c1, sp_c1, dp_c0) = if self.ready_slot[s] != NONE {
                (self.reduced[dp], self.reduced[sp], snap.reduced[dp])
            } else {
                (self.delivered[dp], self.delivered[sp], snap.delivered[dp])
            };
            let r = dp_c1 - dp_c0;
            if r == 0 {
                continue;
            }
            let adv = j * r;
            // Flits staged in the source queue at the window start that the
            // replayed transmits move into the VC ring — and that are still
            // unconsumed at the window end — must carry their values across
            // the array boundary, exactly as the per-cycle transmit does.
            // (Flits produced *during* the window are rewritten later by the
            // rectangle pass; this covers only pre-window stragglers.)
            let dp_end = dp_c1 + adv;
            let sq = self.sendq_len[s] as u64;
            for e in (sp_c1 - sq).max(dp_end)..sp_c1 {
                let sq_slot = ((self.sendq_head[s] as u64 + (e - (sp_c1 - sq)))
                    & self.sq_mask as u64) as usize;
                let vc_slot = ((self.vc_head[s] as u64 + adv + (e - dp_end))
                    & self.vc_mask as u64) as usize;
                self.vc_val[(s << self.vc_shift) + vc_slot] =
                    self.sendq_val[(s << self.sq_shift) + sq_slot];
            }
            self.sendq_head[s] = (self.sendq_head[s].wrapping_add(adv as u32)) & self.sq_mask;
            self.vc_head[s] = (self.vc_head[s].wrapping_add(adv as u32)) & self.vc_mask;
            let base = s << self.vc_shift;
            for idx in 0..self.vc_inflight[s] as u64 {
                let slot =
                    ((self.vc_head[s] + self.vc_arrived[s] + idx as u32) & self.vc_mask) as usize;
                self.vc_arr[base + slot] =
                    c_end + snap.inflight_off[(s << self.vc_shift) + idx as usize];
            }
            if let Some(fs) = faults.as_mut() {
                // The per-cycle path resets the stream's stall/retry
                // bookkeeping on every transmit; a stream that flows in
                // the window must end it reset.
                fs.note_progress(s);
            }
        }
    }

    /// Replays the value-carrying side effects of tree `ti` over `j`
    /// periods: root digests/validation, delivery digests, and the values
    /// of elements still queued at the window end — all recomputed per
    /// element in `BATCH_BLOCK`-wide passes with the combine vectorized
    /// over contiguous runs.
    fn bulk_tree(&mut self, ti: usize, j: u64, w: &Workload) {
        let len = self.tree_len[ti];
        if len == 0 {
            return;
        }
        let n = self.n;
        let kind = self.kind;
        // Element bounds of the window: every fire and delivery range.
        // Queue rewrites fall inside (only elements produced during the
        // window can still be queued at its end — conservation).
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        {
            let snap = &self.bat.snap;
            for v in 0..n {
                let p = ti * n + v;
                let fr = self.reduced[p] - snap.reduced[p];
                if fr > 0 {
                    lo = lo.min(self.reduced[p]);
                    hi = hi.max(self.reduced[p] + j * fr);
                }
                let dl = self.delivered[p] - snap.delivered[p];
                if dl > 0 {
                    lo = lo.min(self.delivered[p]);
                    hi = hi.max(self.delivered[p] + j * dl);
                }
            }
        }
        if lo >= hi {
            return;
        }

        // Queue-rewrite rectangles per node: which element ranges of each
        // stream's post-window rings need recomputed values. Surviving
        // pre-window elements keep their slots and bits (heads advance by
        // exactly the pop count), so only elements *produced during the
        // window* and still resident are written — `[produced-start,
        // ring-end)` clipped per ring by conservation:
        // `consumed-end + occupancy + staged = produced-end`.
        for v in 0..n {
            self.rect_r[v] = QRECT_NONE;
            self.rect_b[v] = QRECT_NONE;
            let p = ti * n + v;
            if kind.reduces() {
                let s = self.reduce_out[p];
                if s != NONE {
                    let s = s as usize;
                    let dp = self.stream_dst_pair[s] as usize;
                    let r = self.reduced[dp] - self.bat.snap.reduced[dp];
                    if r > 0 {
                        debug_assert_eq!(r, self.reduced[p] - self.bat.snap.reduced[p]);
                        let jr = j * r;
                        let sp_end = self.reduced[p] + jr;
                        let dp_end = self.reduced[dp] + jr;
                        let occ = (self.vc_arrived[s] + self.vc_inflight[s]) as u64;
                        let sq = self.sendq_len[s] as u64;
                        debug_assert_eq!(dp_end + occ + sq, sp_end);
                        self.rect_r[v] = QRect {
                            stream: s as u32,
                            vc_first: dp_end,
                            vc_lo: dp_end.max(self.reduced[p]),
                            vc_hi: dp_end + occ,
                            sq_first: sp_end - sq,
                            sq_lo: (sp_end - sq).max(self.reduced[p]),
                            sq_hi: sp_end,
                        };
                    }
                }
            }
            if kind.broadcasts() {
                let s = self.bcast_in[p];
                if s != NONE {
                    let s = s as usize;
                    let sp = self.stream_src_pair[s] as usize;
                    let r = self.delivered[p] - self.bat.snap.delivered[p];
                    if r > 0 {
                        debug_assert_eq!(r, self.delivered[sp] - self.bat.snap.delivered[sp]);
                        let jr = j * r;
                        let sp_end = self.delivered[sp] + jr;
                        let dp_end = self.delivered[p] + jr;
                        let occ = (self.vc_arrived[s] + self.vc_inflight[s]) as u64;
                        let sq = self.sendq_len[s] as u64;
                        debug_assert_eq!(dp_end + occ + sq, sp_end);
                        self.rect_b[v] = QRect {
                            stream: s as u32,
                            vc_first: dp_end,
                            vc_lo: dp_end.max(self.delivered[sp]),
                            vc_hi: dp_end + occ,
                            sq_first: sp_end - sq,
                            sq_lo: (sp_end - sq).max(self.delivered[sp]),
                            sq_hi: sp_end,
                        };
                    }
                }
            }
        }

        let offset = self.tree_off[ti];
        let root = self.tree_root[ti] as usize;
        let rp = ti * n + root;
        let topo_lo = self.topo_off[ti] as usize;
        let topo_hi = self.topo_off[ti + 1] as usize;
        let track = self.track_jobs;
        let job = self.tree_job[ti] as usize;
        let root_fire_lo = self.reduced[rp];
        let root_fire_hi = root_fire_lo + j * (root_fire_lo - self.bat.snap.reduced[rp]);

        let mut blk = lo;
        while blk < hi {
            let bw = ((hi - blk) as usize).min(BATCH_BLOCK);
            let b_end = blk + bw as u64;

            if kind.reduces() {
                // Pass A: recompute R(v) = combine(local input, children)
                // bottom-up for the whole block — bit-identical to the
                // per-cycle engine, which combines the same inputs in the
                // same CSR order.
                for t_idx in topo_lo..topo_hi {
                    let v = self.topo_nodes[t_idx] as usize;
                    let p = ti * n + v;
                    {
                        let row =
                            &mut self.rblock[v * BATCH_BLOCK..v * BATCH_BLOCK + bw];
                        w.input_run(v as u32, offset + blk, row);
                    }
                    let in_lo = self.reduce_in_off[p] as usize;
                    let in_hi = self.reduce_in_off[p + 1] as usize;
                    for i in in_lo..in_hi {
                        let s = self.in_ids[i] as usize;
                        let c = self.stream_src_node[s] as usize;
                        let (acc, xs) = two_rows(&mut self.rblock, v, c, bw);
                        w.combine_run(offset + blk, acc, xs);
                    }
                }
                // Root side effects for fires in this block: validation,
                // job hash, delivery digest (reduce-family roots deliver
                // at the fire).
                let flo = root_fire_lo.max(blk);
                let fhi = root_fire_hi.min(b_end);
                for e in flo..fhi {
                    let ge = offset + e;
                    let acc = self.rblock[root * BATCH_BLOCK + (e - blk) as usize];
                    if !w.value_close_at(ge, acc, w.expected(ge)) {
                        self.mismatches += 1;
                        if track {
                            self.job_mismatches[job] += 1;
                        }
                    }
                    if track {
                        self.job_hash[job] =
                            self.job_hash[job].wrapping_add(hash_entry(ge, acc));
                    }
                    self.value_digest = self
                        .value_digest
                        .wrapping_add(delivery_digest_entry(root as u64, ge, acc));
                }
                // Reduce-stream queue rewrites: the value a node pushed for
                // element e is R(node) at e.
                for t_idx in topo_lo..topo_hi {
                    let v = self.topo_nodes[t_idx] as usize;
                    let rect = self.rect_r[v];
                    if rect.stream != NONE {
                        self.write_rect_from_row(&rect, blk, b_end, v);
                    }
                }
            }

            if kind.broadcasts() {
                // Pass B: the broadcast value B(e) lands in the root's
                // scratch row — the allreduce turnaround already put it
                // there (B = R(root)); root-sourced collectives fill it
                // from the workload.
                match kind {
                    Collective::Allreduce => {}
                    Collective::Broadcast => {
                        let row =
                            &mut self.rblock[root * BATCH_BLOCK..root * BATCH_BLOCK + bw];
                        w.input_run(root as u32, offset + blk, row);
                    }
                    _ => {
                        for k in 0..bw {
                            self.rblock[root * BATCH_BLOCK + k] =
                                w.expected(offset + blk + k as u64);
                        }
                    }
                }
                for v in 0..n {
                    let p = ti * n + v;
                    let dl = self.delivered[p] - self.bat.snap.delivered[p];
                    // The allreduce root's deliveries were already replayed
                    // in pass A (it delivers at the fire, not as a relay).
                    if dl > 0 && (v != root || kind.root_sources_broadcast()) {
                        let dlo = self.delivered[p].max(blk);
                        let dhi = (self.delivered[p] + j * dl).min(b_end);
                        for e in dlo..dhi {
                            let ge = offset + e;
                            let val = self.rblock[root * BATCH_BLOCK + (e - blk) as usize];
                            if v == root {
                                // Broadcast/allgather source: hash + digest,
                                // no validation (it emits, it doesn't check).
                                if track {
                                    self.job_hash[job] =
                                        self.job_hash[job].wrapping_add(hash_entry(ge, val));
                                }
                            } else {
                                let expect = match kind {
                                    Collective::Broadcast => w.input(root as u32, ge),
                                    _ => w.expected(ge),
                                };
                                if !w.value_close_at(ge, val, expect) {
                                    self.mismatches += 1;
                                    if track {
                                        self.job_mismatches[job] += 1;
                                    }
                                }
                            }
                            self.value_digest = self
                                .value_digest
                                .wrapping_add(delivery_digest_entry(v as u64, ge, val));
                        }
                    }
                    let rect = self.rect_b[v];
                    if rect.stream != NONE {
                        self.write_rect_from_row(&rect, blk, b_end, root);
                    }
                }
            }

            blk = b_end;
        }
    }

    /// Writes the block-clipped portions of one rewrite rectangle from
    /// scratch row `row` into the stream's (already advanced) rings.
    #[inline]
    fn write_rect_from_row(&mut self, rect: &QRect, blk: u64, b_end: u64, row: usize) {
        let s = rect.stream as usize;
        let vlo = rect.vc_lo.max(blk);
        let vhi = rect.vc_hi.min(b_end);
        for e in vlo..vhi {
            let slot =
                ((self.vc_head[s] as u64 + (e - rect.vc_first)) & self.vc_mask as u64) as usize;
            self.vc_val[(s << self.vc_shift) + slot] =
                self.rblock[row * BATCH_BLOCK + (e - blk) as usize];
        }
        let qlo = rect.sq_lo.max(blk);
        let qhi = rect.sq_hi.min(b_end);
        for e in qlo..qhi {
            let slot =
                ((self.sendq_head[s] as u64 + (e - rect.sq_first)) & self.sq_mask as u64) as usize;
            self.sendq_val[(s << self.sq_shift) + slot] =
                self.rblock[row * BATCH_BLOCK + (e - blk) as usize];
        }
    }

    /// Bulk-advances every progress counter by `j` times its per-period
    /// delta. Runs last: the element passes need the pre-window values.
    fn bulk_counters(&mut self, j: u64, c_end: u64) {
        let snap = &self.bat.snap;
        for p in 0..self.reduced.len() {
            self.reduced[p] += j * (self.reduced[p] - snap.reduced[p]);
            self.delivered[p] += j * (self.delivered[p] - snap.delivered[p]);
        }
        self.deliveries += j * (self.deliveries - snap.deliveries);
        for ti in 0..self.ntrees {
            self.tree_deliveries[ti] +=
                j * (self.tree_deliveries[ti] - snap.tree_deliveries[ti]);
        }
        for jb in 0..self.job_deliveries.len() {
            self.job_deliveries[jb] += j * (self.job_deliveries[jb] - snap.job_deliveries[jb]);
        }
        for c in 0..self.channel_flits.len() {
            self.channel_flits[c] += j * (self.channel_flits[c] - snap.channel_flits[c]);
        }
        // The fused fast path has already completed arrivals for the cycle
        // after the cut; the restamped wires preserve that at the new cut.
        if self.arrivals_done != 0 {
            self.arrivals_done = c_end + 1;
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::{Graph, RootedTree};

    fn cycle_graph(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn run_single_tree(n: u32, m: u64, cfg: SimConfig) -> SimReport {
        let g = cycle_graph(n);
        let path: Vec<u32> = (0..n).collect();
        let t = RootedTree::from_path(&path, (n / 2) as usize).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(n, m);
        Simulator::new(&g, &emb, cfg).run(&w)
    }

    #[test]
    fn correct_and_complete_single_tree() {
        let r = run_single_tree(6, 200, SimConfig::default());
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.total_elems, 200);
        assert!(r.cycles > 0);
    }

    #[test]
    fn single_tree_approaches_link_rate() {
        // One uncongested tree streams at ~1 element/cycle for large m.
        let r = run_single_tree(6, 5000, SimConfig::default());
        assert!(r.completed);
        assert!(
            r.measured_bandwidth > 0.95,
            "measured {} el/cy, expected ~1",
            r.measured_bandwidth
        );
    }

    #[test]
    fn small_buffer_throttles_throughput() {
        // With vc_buffer = 1 and latency 4, at most one flit per
        // round-trip-ish window: bandwidth well below saturation. This is
        // the latency-bandwidth-product memory footprint the paper cites.
        let starved = SimConfig { link_latency: 4, vc_buffer: 1, ..Default::default() };
        let r = run_single_tree(6, 2000, starved);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert!(
            r.measured_bandwidth < 0.5,
            "measured {} el/cy with 1-flit buffers",
            r.measured_bandwidth
        );
    }

    #[test]
    fn congested_trees_share_bandwidth() {
        // Two fully-overlapping path trees with opposite roots: reduce
        // streams flow in opposite directions, but each channel still
        // carries one reduce + one broadcast stream -> per-tree rate 1/2.
        let g = {
            let mut g = Graph::new(5);
            for i in 0..4 {
                g.add_edge(i, i + 1);
            }
            g
        };
        let path = [0u32, 1, 2, 3, 4];
        let t1 = RootedTree::from_path(&path, 0).unwrap();
        let t2 = RootedTree::from_path(&path, 4).unwrap();
        let m = 4000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(5, m);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        // Aggregate ~1 element/cycle (2 trees x 1/2 each).
        assert!(
            (r.measured_bandwidth - 1.0).abs() < 0.1,
            "measured {}",
            r.measured_bandwidth
        );
    }

    #[test]
    fn utilization_bounded_by_one() {
        let r = run_single_tree(5, 1000, SimConfig::default());
        assert!(r.max_channel_utilization <= 1.0 + 1e-9);
        assert!(r.max_channel_utilization > 0.5);
    }

    #[test]
    fn deadlock_backstop_reports_incomplete() {
        let cfg = SimConfig { max_cycles: 10, ..Default::default() };
        let r = run_single_tree(6, 10_000, cfg);
        assert!(!r.completed);
        assert_eq!(r.cycles, 10);
    }

    #[test]
    fn empty_vector_finishes_immediately() {
        let r = run_single_tree(4, 0, SimConfig::default());
        assert!(r.completed);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.total_elems, 0);
    }

    #[test]
    fn reduce_only_collective() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 2).unwrap();
        let m = 500;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let full = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let reduce =
            Simulator::new(&g, &emb, SimConfig::default()).run_collective(&w, Collective::Reduce);
        assert!(reduce.completed);
        assert_eq!(reduce.mismatches, 0);
        // No broadcast phase: strictly faster than the full allreduce.
        assert!(reduce.cycles < full.cycles);
    }

    #[test]
    fn broadcast_only_collective() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 0).unwrap();
        let m = 500;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let r = Simulator::new(&g, &emb, SimConfig::default())
            .run_collective(&w, Collective::Broadcast);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        // Streams at link rate like the reduce direction.
        assert!(r.measured_bandwidth > 0.8, "measured {}", r.measured_bandwidth);
    }

    #[test]
    fn engine_cap_throttles_multi_tree_routers() {
        // Two edge-disjoint trees both stream at link rate, so routers
        // need two reductions per cycle; capping the engine at 1 halves
        // throughput. (Overlapping congestion-2 trees only need ~1
        // reduction per router per cycle on average, and the fair rotation
        // covers that — which is itself the Lemma 7.8 engine story.)
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let t2 = RootedTree::from_path(&[2, 0, 3, 1], 1).unwrap();
        let m = 2000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(4, m);
        let free = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let capped = Simulator::new(
            &g,
            &emb,
            SimConfig { max_reductions_per_router: Some(1), ..Default::default() },
        )
        .run(&w);
        assert!(free.completed && capped.completed);
        assert_eq!(capped.mismatches, 0);
        assert!(
            free.measured_bandwidth > 1.8,
            "uncapped streams both trees: {}",
            free.measured_bandwidth
        );
        assert!(
            capped.measured_bandwidth < 1.2,
            "engine cap 1 halves throughput: {}",
            capped.measured_bandwidth
        );
    }

    #[test]
    fn first_element_latency_scales_with_depth() {
        let shallow = {
            let g = cycle_graph(8);
            let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 4).unwrap();
            let emb = MultiTreeEmbedding::new(&g, &[t], &[64]);
            let w = Workload::new(8, 64);
            Simulator::new(&g, &emb, SimConfig::default()).run(&w)
        };
        let deep = {
            let g = cycle_graph(8);
            let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 0).unwrap();
            let emb = MultiTreeEmbedding::new(&g, &[t], &[64]);
            let w = Workload::new(8, 64);
            Simulator::new(&g, &emb, SimConfig::default()).run(&w)
        };
        assert!(shallow.first_element_latency > 0);
        assert!(
            deep.first_element_latency > shallow.first_element_latency,
            "deep {} vs shallow {}",
            deep.first_element_latency,
            shallow.first_element_latency
        );
        assert!(shallow.first_element_latency <= shallow.cycles);
    }

    #[test]
    fn collective_latency_formulas() {
        // Pure broadcast and pure reduce each traverse `depth` hops once:
        // first-element latency = depth·L + 1 (the +1 is the source's
        // compute/inject cycle). Allreduce chains both: 2·depth·L + 1.
        let g = cycle_graph(8);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 0).unwrap(); // depth 7
        let m = 64;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(8, m);
        let cfg = SimConfig::default(); // L = 4
        let bc = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Broadcast);
        let rd = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Reduce);
        let ar = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Allreduce);
        assert_eq!(bc.first_element_latency, 7 * 4 + 1);
        assert_eq!(rd.first_element_latency, 7 * 4 + 1);
        assert_eq!(ar.first_element_latency, 2 * 7 * 4 + 1);
        for r in [&bc, &rd, &ar] {
            assert!(r.completed && r.mismatches == 0);
        }
    }

    #[test]
    fn vc_occupancy_tracks_latency_bandwidth_product() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 0).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t], &[4000]);
        let w = Workload::new(6, 4000);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        // Occupancy never exceeds the configured buffer...
        assert!(r.max_vc_occupancy <= 6);
        // ...and a saturated stream keeps at least the latency in flight.
        assert!(r.max_vc_occupancy >= 4, "occupancy {}", r.max_vc_occupancy);
    }

    #[test]
    fn injection_cap_throttles_aggregate_bandwidth() {
        // Two overlapping trees want 2 local injections per node per
        // cycle in steady state... here both run at 1/2 each, so a cap of
        // 1 is harmless but a cap that starves (per-cycle 0 impossible;
        // use two disjoint paths where each tree streams at full rate and
        // needs 1 injection each -> cap 1 halves the aggregate).
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        // Edge-disjoint spanning trees of K4: the Hamiltonian path
        // 0-1-2-3 and its complement path 2-0-3-1.
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let t2 = RootedTree::from_path(&[2, 0, 3, 1], 1).unwrap();
        let m = 2000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(4, m);
        let free = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let capped = Simulator::new(
            &g,
            &emb,
            SimConfig { max_injections_per_node: Some(1), ..Default::default() },
        )
        .run(&w);
        assert!(free.completed && capped.completed);
        assert_eq!(capped.mismatches, 0);
        assert!(
            free.measured_bandwidth > 1.8,
            "uncapped should stream both trees: {}",
            free.measured_bandwidth
        );
        assert!(
            capped.measured_bandwidth < 1.2,
            "injection cap 1 should halve throughput: {}",
            capped.measured_bandwidth
        );
    }

    #[test]
    fn float_gradient_allreduce_validates() {
        // The ML case: f64 gradients, tree association order != reference
        // order, tolerance-based validation must still pass with zero
        // mismatches.
        let g = cycle_graph(8);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 3).unwrap();
        let t2 = RootedTree::from_path(&[1, 2, 3, 4, 5, 6, 7, 0], 4).unwrap();
        let m = 1000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new_float(8, m);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
    }

    #[test]
    fn zero_length_tree_slice_allowed() {
        let g = cycle_graph(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[50, 0]);
        let w = Workload::new(4, 50);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.tree_completion[1], 0);
    }

    fn two_tenant_setup(m1: u64, m2: u64) -> (Graph, Vec<RootedTree>, Workload) {
        let g = cycle_graph(6);
        let path: Vec<u32> = (0..6).collect();
        let t1 = RootedTree::from_path(&path, 0).unwrap();
        let t2 = RootedTree::from_path(&path, 5).unwrap();
        let w = Workload::concat(
            6,
            &[
                crate::workload::JobSegment::full(m1, crate::workload::ReduceKind::WrappingU64),
                crate::workload::JobSegment::full(m2, crate::workload::ReduceKind::WrappingU64),
            ],
        );
        (g, vec![t1, t2], w)
    }

    #[test]
    fn run_jobs_single_binding_matches_plain_run() {
        // One binding released at 0 is exactly run() plus job accounting.
        let g = cycle_graph(6);
        let path: Vec<u32> = (0..6).collect();
        let t = RootedTree::from_path(&path, 3).unwrap();
        let m = 300;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let plain = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let jr = Simulator::new(&g, &emb, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 0..1, release: 0 }]);
        assert_eq!(jr.report, plain);
        assert_eq!(jr.jobs.len(), 1);
        assert_eq!(jr.jobs[0].elems, m);
        assert_eq!(jr.jobs[0].deliveries, m * 6);
        assert_eq!(jr.jobs[0].completion, plain.cycles);
        assert_eq!(jr.jobs[0].mismatches, 0);
    }

    #[test]
    fn concurrent_jobs_track_separate_completions() {
        let (m1, m2) = (400u64, 100u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb =
            MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let jr = Simulator::new(&g, &emb, SimConfig::default()).run_jobs(
            &w,
            &[
                JobBinding { trees: 0..1, release: 0 },
                JobBinding { trees: 1..2, release: 0 },
            ],
        );
        assert!(jr.report.completed);
        assert_eq!(jr.report.mismatches, 0);
        for j in &jr.jobs {
            assert_eq!(j.mismatches, 0);
            assert!(j.completion > 0);
            assert!(j.first_delivery > 0 && j.first_delivery <= j.completion);
        }
        // The shorter job finishes first under fair channel sharing.
        assert!(jr.jobs[1].completion < jr.jobs[0].completion);
        assert_eq!(jr.jobs[0].deliveries, m1 * 6);
        assert_eq!(jr.jobs[1].deliveries, m2 * 6);
    }

    #[test]
    fn job_value_hash_is_schedule_invariant() {
        // The same job reduced solo, on the same trees and global element
        // offsets, yields the identical digest as in the concurrent run.
        let (m1, m2) = (250u64, 130u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb = MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let both = Simulator::new(&g, &emb, SimConfig::default()).run_jobs(
            &w,
            &[
                JobBinding { trees: 0..1, release: 0 },
                JobBinding { trees: 1..2, release: 0 },
            ],
        );
        let solo1 = MultiTreeEmbedding::with_offsets(&g, &trees[..1], &[m1], &[0]);
        let solo2 = MultiTreeEmbedding::with_offsets(&g, &trees[1..], &[m2], &[m1]);
        let r1 = Simulator::new(&g, &solo1, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 0..1, release: 0 }]);
        let r2 = Simulator::new(&g, &solo2, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 0..1, release: 0 }]);
        assert_eq!(both.jobs[0].value_hash, r1.jobs[0].value_hash);
        assert_eq!(both.jobs[1].value_hash, r2.jobs[0].value_hash);
        assert_ne!(both.jobs[0].value_hash, both.jobs[1].value_hash);
        assert_eq!(both.report.mismatches, 0);
    }

    #[test]
    fn release_cycle_delays_a_job() {
        let (m1, m2) = (200u64, 200u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb = MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let release = 5000u64; // far after job 0 would finish alone
        let jr = Simulator::new(&g, &emb, SimConfig::default()).run_jobs(
            &w,
            &[
                JobBinding { trees: 0..1, release: 0 },
                JobBinding { trees: 1..2, release },
            ],
        );
        assert!(jr.report.completed);
        assert_eq!(jr.report.mismatches, 0);
        assert!(jr.jobs[0].completion < release);
        assert!(jr.jobs[1].first_delivery >= release);
        // The engine must skip the idle gap, not tick through it: the
        // delayed job still finishes promptly after its release.
        assert!(jr.jobs[1].completion < release + 2 * jr.jobs[0].completion + 100);
    }

    #[test]
    #[should_panic(expected = "partition")]
    fn run_jobs_rejects_gapped_bindings() {
        let (m1, m2) = (50u64, 50u64);
        let (g, trees, w) = two_tenant_setup(m1, m2);
        let emb = MultiTreeEmbedding::with_offsets(&g, &trees, &[m1, m2], &[0, m1]);
        let _ = Simulator::new(&g, &emb, SimConfig::default())
            .run_jobs(&w, &[JobBinding { trees: 1..2, release: 0 }]);
    }
}
