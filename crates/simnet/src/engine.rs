//! The cycle-driven simulation engine.
//!
//! Each cycle has three sub-steps, in an order that prevents same-cycle
//! pass-through (a flit needs at least one cycle per hop):
//!
//! 1. **Arrivals** — in-flight flits whose latency elapsed enter the
//!    destination's virtual-channel buffer.
//! 2. **Compute** — every router advances each tree's reduction engine (one
//!    element per tree per cycle: combine all child heads with the local
//!    contribution, emit to the parent or, at the root, eject and fan out
//!    the broadcast) and each tree's broadcast relay.
//! 3. **Transmit** — every directed channel moves at most one flit,
//!    selected by work-conserving round-robin among its resident streams
//!    with both data and downstream credit. This is where congestion turns
//!    into bandwidth sharing.
//!
//! Credits are implicit: a stream may transmit only while
//! `receiver-buffer occupancy + in-flight < vc_buffer`, which is exactly
//! credit-based flow control with `vc_buffer` credits.

use crate::embedding::{MultiTreeEmbedding, Phase};
use crate::faults::{FaultReport, FaultSchedule, FaultState};
use crate::trace::{EngineStall, TraceConfig, TraceReport, Tracer};
use crate::workload::Workload;
use pf_graph::Graph;
use std::collections::VecDeque;

/// Simulator knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Pipeline latency of every physical hop, in cycles (≥ 1).
    pub link_latency: u32,
    /// Virtual-channel buffer capacity per stream at the receiver, in
    /// flits. Full throughput needs `link_latency + 1` or more (the
    /// latency–bandwidth product).
    pub vc_buffer: usize,
    /// Sender-side staging queue per stream, in flits.
    pub source_queue: usize,
    /// Hard cycle cap: the run aborts (with `completed = false`) if
    /// exceeded — a deadlock/livelock backstop.
    pub max_cycles: u64,
    /// Reduction-engine capacity per router per cycle, across all trees
    /// (`None` = unbounded, the paper's "multiple reductions at link rate"
    /// assumption; small values model compute-bound routers — the engine
    /// ablation).
    pub max_reductions_per_router: Option<u32>,
    /// Local-port injection capacity per node per cycle, across all trees
    /// (`None` = unbounded — §4.1's assumption that a node drives all its
    /// links at once; multi-tree allreduce needs ~aggregate-bandwidth
    /// injection per node, which this knob makes explicit).
    pub max_injections_per_node: Option<u32>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_latency: 4,
            vc_buffer: 6,
            source_queue: 2,
            max_cycles: 50_000_000,
            max_reductions_per_router: None,
            max_injections_per_node: None,
        }
    }
}

/// Which collective the engines execute over the embedded trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Reduce up + broadcast down: every node gets the global reduction.
    Allreduce,
    /// Reduce up only: the tree roots get the global reduction.
    Reduce,
    /// Broadcast down only: the roots' own slices reach every node.
    Broadcast,
}

/// Result of one simulated allreduce.
///
/// `PartialEq` is derived so tests can assert that enabling tracing leaves
/// the simulation bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Total cycles until the last element was delivered everywhere.
    pub cycles: u64,
    /// Total vector length reduced.
    pub total_elems: u64,
    /// `true` iff every node received every element before `max_cycles`.
    pub completed: bool,
    /// Elements whose delivered value disagreed with the expected
    /// reduction (must be 0).
    pub mismatches: u64,
    /// Aggregate goodput in elements/cycle: `total_elems / cycles`.
    pub measured_bandwidth: f64,
    /// Completion cycle per tree (last delivery of its slice).
    pub tree_completion: Vec<u64>,
    /// Cycle by which every sink had received its *first* element — the
    /// collective's latency, dominated by tree depth (Figure 5b's
    /// quantity, measured on the executing system).
    pub first_element_latency: u64,
    /// Flits carried per directed channel.
    pub channel_flits: Vec<u64>,
    /// Maximum observed channel utilization (flits / cycles).
    pub max_channel_utilization: f64,
    /// High-water mark of receiver VC occupancy (buffered + in flight)
    /// over all streams — never exceeds `vc_buffer`, and saturated runs
    /// sit at the latency-bandwidth product.
    pub max_vc_occupancy: usize,
}

/// Per-(tree, node) dataflow wiring and progress.
#[derive(Debug, Clone)]
struct Engine {
    reduce_in: Vec<u32>,
    reduce_out: Option<u32>,
    bcast_in: Option<u32>,
    bcast_out: Vec<u32>,
    /// Local elements consumed by the reduction (0..len).
    reduced: u64,
    /// Broadcast elements delivered locally (0..len).
    delivered: u64,
}

/// One logical stream's queues.
#[derive(Debug, Clone)]
struct StreamState {
    sendq: VecDeque<u64>,
    inflight: VecDeque<(u64, u64)>, // (arrival cycle, value)
    recvq: VecDeque<u64>,
}

/// Result of a run with a fault layer attached
/// ([`Simulator::with_faults`]).
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// The ordinary simulation report. `completed` is `false` when
    /// detection aborted the run.
    pub report: SimReport,
    /// The trace, when one was also enabled via [`Simulator::with_trace`].
    pub trace: Option<TraceReport>,
    /// What the fault layer injected and detected.
    pub faults: FaultReport,
}

/// The cycle-level simulator. Construct once per embedding, then
/// [`Simulator::run`].
pub struct Simulator<'a> {
    emb: &'a MultiTreeEmbedding,
    cfg: SimConfig,
    /// engines[tree][node]
    engines: Vec<Vec<Engine>>,
    streams: Vec<StreamState>,
    rr: Vec<usize>, // round-robin pointer per channel
    channel_flits: Vec<u64>,
    max_vc_occupancy: usize,
    tracer: Option<Tracer>,
    faults: Option<FaultState>,
}

impl<'a> Simulator<'a> {
    /// Wires up the engines for an embedding. `g` must be the graph the
    /// embedding was built from (used only for assertions).
    pub fn new(g: &Graph, emb: &'a MultiTreeEmbedding, cfg: SimConfig) -> Self {
        assert!(cfg.link_latency >= 1, "links need at least one cycle of latency");
        assert!(cfg.vc_buffer >= 1 && cfg.source_queue >= 1, "queues must hold at least one flit");
        assert_eq!(g.num_vertices(), emb.num_nodes);

        let n = emb.num_nodes as usize;
        let mut engines: Vec<Vec<Engine>> = emb
            .trees
            .iter()
            .map(|_| {
                (0..n)
                    .map(|_| Engine {
                        reduce_in: Vec::new(),
                        reduce_out: None,
                        bcast_in: None,
                        bcast_out: Vec::new(),
                        reduced: 0,
                        delivered: 0,
                    })
                    .collect()
            })
            .collect();

        for (si, s) in emb.streams.iter().enumerate() {
            let si = si as u32;
            match s.phase {
                Phase::Reduce => {
                    engines[s.tree as usize][s.dst as usize].reduce_in.push(si);
                    engines[s.tree as usize][s.src as usize].reduce_out = Some(si);
                }
                Phase::Broadcast => {
                    engines[s.tree as usize][s.src as usize].bcast_out.push(si);
                    engines[s.tree as usize][s.dst as usize].bcast_in = Some(si);
                }
            }
        }

        let streams = vec![
            StreamState {
                sendq: VecDeque::new(),
                inflight: VecDeque::new(),
                recvq: VecDeque::new(),
            };
            emb.streams.len()
        ];
        let rr = vec![0usize; emb.channel_streams.len()];
        let channel_flits = vec![0u64; emb.channel_streams.len()];
        Simulator {
            emb,
            cfg,
            engines,
            streams,
            rr,
            channel_flits,
            max_vc_occupancy: 0,
            tracer: None,
            faults: None,
        }
    }

    /// Enables observability per `tcfg` (see [`crate::trace`]). With
    /// [`TraceConfig::off`] (the default) no tracer is allocated and the
    /// run is exactly the untraced one.
    pub fn with_trace(mut self, tcfg: TraceConfig) -> Self {
        self.tracer = tcfg.enabled.then(|| {
            Tracer::new(
                self.emb.streams.len(),
                self.emb.channel_streams.len(),
                self.emb.num_nodes as usize,
                tcfg,
            )
        });
        self
    }

    /// Attaches a fault-injection layer executing `schedule` (see
    /// [`crate::faults`]). `g` must be the graph the embedding was built
    /// from. With an empty schedule the layer stays attached but every
    /// decision is identical to a run without it (property-tested, like
    /// tracing).
    pub fn with_faults(mut self, g: &Graph, schedule: FaultSchedule) -> Self {
        assert_eq!(g.num_vertices(), self.emb.num_nodes);
        self.faults = Some(FaultState::new(g, self.emb, &schedule));
        self
    }

    /// Runs the allreduce of `w` (which must match the embedding's node
    /// count and total length) to completion and reports.
    pub fn run(self, w: &Workload) -> SimReport {
        self.run_collective(w, Collective::Allreduce)
    }

    /// Runs an arbitrary tree collective of `w` to completion and reports.
    pub fn run_collective(self, w: &Workload, kind: Collective) -> SimReport {
        self.run_collective_traced(w, kind).0
    }

    /// Like [`Simulator::run`], additionally returning the trace when one
    /// was enabled via [`Simulator::with_trace`].
    pub fn run_traced(self, w: &Workload) -> (SimReport, Option<TraceReport>) {
        self.run_collective_traced(w, Collective::Allreduce)
    }

    /// Like [`Simulator::run_collective`], additionally returning the
    /// trace when one was enabled via [`Simulator::with_trace`].
    ///
    /// Tracing is purely observational: the `SimReport` is identical
    /// whether or not a tracer is attached.
    pub fn run_collective_traced(
        self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>) {
        let (report, trace, _) = self.run_inner(w, kind);
        (report, trace)
    }

    /// Runs the allreduce of `w` under the attached fault layer (or a
    /// quiet one) and reports the fault layer's observations alongside.
    pub fn run_faulted(self, w: &Workload) -> FaultedRun {
        self.run_collective_faulted(w, Collective::Allreduce)
    }

    /// Like [`Simulator::run_faulted`] for an arbitrary collective.
    pub fn run_collective_faulted(self, w: &Workload, kind: Collective) -> FaultedRun {
        let (report, trace, faults) = self.run_inner(w, kind);
        FaultedRun { report, trace, faults: faults.unwrap_or_else(FaultReport::quiet) }
    }

    fn run_inner(
        mut self,
        w: &Workload,
        kind: Collective,
    ) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
        assert_eq!(w.nodes(), self.emb.num_nodes);
        assert_eq!(w.len(), self.emb.total_len);

        let n = self.emb.num_nodes as u64;
        // Deliveries per tree: every node for allreduce/broadcast, the
        // root only for reduce.
        let per_tree_sinks = match kind {
            Collective::Allreduce | Collective::Broadcast => n,
            Collective::Reduce => 1,
        };
        let total_deliveries: u64 =
            self.emb.trees.iter().map(|t| t.len * per_tree_sinks).sum();
        let live_pairs: u64 = self
            .emb
            .trees
            .iter()
            .map(|t| if t.len > 0 { per_tree_sinks } else { 0 })
            .sum();
        let mut first_done_pairs = 0u64;
        let mut first_element_latency = 0u64;
        let mut deliveries = 0u64;
        let mut mismatches = 0u64;
        let mut tree_completion = vec![0u64; self.emb.trees.len()];
        let mut tree_deliveries = vec![0u64; self.emb.trees.len()];
        let mut engine_budget = vec![0u32; self.emb.num_nodes as usize];
        let mut inject_budget = vec![0u32; self.emb.num_nodes as usize];
        // Detach the tracer from `self` so counter updates don't alias the
        // stream/engine borrows below. `None` when tracing is off. The
        // fault layer is detached the same way (and for the same reason).
        let mut tracer = self.tracer.take();
        let mut faults = self.faults.take();

        let mut cycle = 0u64;
        while deliveries < total_deliveries
            && cycle < self.cfg.max_cycles
            && !faults.as_ref().is_some_and(|f| f.should_abort())
        {
            cycle += 1;
            if let Some(fs) = faults.as_mut() {
                fs.begin_cycle(cycle);
            }
            if let Some(cap) = self.cfg.max_reductions_per_router {
                engine_budget.fill(cap);
            }
            if let Some(cap) = self.cfg.max_injections_per_node {
                inject_budget.fill(cap);
            }

            // 1. Arrivals. Flits in flight on a dead channel are stuck on
            // the wire: they arrive only after the fault heals (transient
            // outages delay, they never drop data).
            for (s, st) in self.streams.iter_mut().enumerate() {
                if faults.as_ref().is_some_and(|f| f.arrivals_frozen(s)) {
                    continue;
                }
                while st.inflight.front().is_some_and(|&(t, _)| t <= cycle) {
                    let (_, v) = st.inflight.pop_front().unwrap();
                    st.recvq.push_back(v);
                }
            }

            // 2. Compute.
            // Rotate tree priority per cycle so shared per-node budgets
            // (engine/injection caps) are served max-min fairly instead of
            // starving high-index trees.
            let ntrees = self.emb.trees.len();
            for ti in (0..ntrees).map(|i| (i + cycle as usize) % ntrees.max(1)) {
                let tree = &self.emb.trees[ti];
                if tree.len == 0 {
                    continue;
                }
                // The broadcast's expected payload: the global reduction for
                // allreduce, the root's own input for a pure broadcast.
                let expected = |elem: u64| match kind {
                    Collective::Broadcast => w.input(tree.root, tree.offset + elem),
                    _ => w.expected(tree.offset + elem),
                };
                let mut deliver = |eng: &mut Engine,
                                   deliveries: &mut u64,
                                   tree_deliveries: &mut [u64]| {
                    eng.delivered += 1;
                    if eng.delivered == 1 {
                        first_done_pairs += 1;
                        if first_done_pairs == live_pairs {
                            first_element_latency = cycle;
                        }
                    }
                    *deliveries += 1;
                    tree_deliveries[ti] += 1;
                    if tree_deliveries[ti] == tree.len * per_tree_sinks {
                        tree_completion[ti] = cycle;
                    }
                };
                for v in 0..self.emb.num_nodes {
                    // A dead router's engines and relays are halted.
                    if faults.as_ref().is_some_and(|f| f.router_is_down(v as usize)) {
                        continue;
                    }
                    let is_root = tree.root == v;

                    // -- Reduction engine (allreduce / reduce) --
                    let eng = &self.engines[ti][v as usize];
                    if kind != Collective::Broadcast && eng.reduced < tree.len {
                        let engine_free = self.cfg.max_reductions_per_router.is_none()
                            || engine_budget[v as usize] > 0;
                        let inject_free = self.cfg.max_injections_per_node.is_none()
                            || inject_budget[v as usize] > 0;
                        let inputs_ready = eng
                            .reduce_in
                            .iter()
                            .all(|&s| !self.streams[s as usize].recvq.is_empty());
                        let out_ok = match eng.reduce_out {
                            Some(s) => {
                                self.streams[s as usize].sendq.len() < self.cfg.source_queue
                            }
                            None => true,
                        };
                        // An allreduce root turns the result straight into
                        // the broadcast, so it needs space on every down
                        // stream.
                        let bcast_ok = !(is_root && kind == Collective::Allreduce)
                            || eng.bcast_out.iter().all(|&s| {
                                self.streams[s as usize].sendq.len() < self.cfg.source_queue
                            });
                        if let Some(tr) = tracer.as_mut() {
                            if !(engine_free && inject_free && inputs_ready && out_ok && bcast_ok)
                            {
                                // Attribute the stall: missing inputs first
                                // (most fundamental), then budget, then a
                                // blocked output path.
                                let why = if !inputs_ready {
                                    EngineStall::InputStarved
                                } else if !engine_free || !inject_free {
                                    EngineStall::Budget
                                } else {
                                    EngineStall::OutputBlocked
                                };
                                tr.engine_stalled(v as usize, why);
                            } else {
                                tr.reduction_fired(v as usize);
                            }
                        }
                        if engine_free && inject_free && inputs_ready && out_ok && bcast_ok {
                            if self.cfg.max_reductions_per_router.is_some() {
                                engine_budget[v as usize] -= 1;
                            }
                            if self.cfg.max_injections_per_node.is_some() {
                                inject_budget[v as usize] -= 1;
                            }
                            let eng = &mut self.engines[ti][v as usize];
                            let elem = eng.reduced;
                            eng.reduced += 1;
                            let mut acc = w.input(v, tree.offset + elem);
                            let ins: Vec<u32> = eng.reduce_in.clone();
                            for s in ins {
                                let x =
                                    self.streams[s as usize].recvq.pop_front().unwrap();
                                acc = w.combine(acc, x);
                            }
                            let eng = &self.engines[ti][v as usize];
                            if is_root {
                                if !w.value_close(acc, w.expected(tree.offset + elem)) {
                                    mismatches += 1;
                                }
                                if kind == Collective::Allreduce {
                                    let outs: Vec<u32> = eng.bcast_out.clone();
                                    for s in outs {
                                        self.streams[s as usize].sendq.push_back(acc);
                                    }
                                }
                                deliver(
                                    &mut self.engines[ti][v as usize],
                                    &mut deliveries,
                                    &mut tree_deliveries,
                                );
                            } else {
                                let s = eng.reduce_out.unwrap();
                                self.streams[s as usize].sendq.push_back(acc);
                            }
                        }
                    }

                    // -- Broadcast source (pure broadcast only) --
                    let eng = &self.engines[ti][v as usize];
                    if kind == Collective::Broadcast && is_root && eng.delivered < tree.len {
                        let space = eng.bcast_out.iter().all(|&s| {
                            self.streams[s as usize].sendq.len() < self.cfg.source_queue
                        });
                        if let Some(tr) = tracer.as_mut() {
                            if space {
                                tr.relay_fired(v as usize);
                            } else {
                                tr.engine_stalled(v as usize, EngineStall::OutputBlocked);
                            }
                        }
                        if space {
                            let eng = &mut self.engines[ti][v as usize];
                            let elem = eng.delivered;
                            let val = w.input(v, tree.offset + elem);
                            let outs: Vec<u32> = eng.bcast_out.clone();
                            for s in outs {
                                self.streams[s as usize].sendq.push_back(val);
                            }
                            deliver(eng, &mut deliveries, &mut tree_deliveries);
                        }
                    }

                    // -- Broadcast relay (allreduce + broadcast) --
                    let eng = &self.engines[ti][v as usize];
                    if kind != Collective::Reduce {
                        if let Some(bin) = eng.bcast_in {
                            let input_ready = !self.streams[bin as usize].recvq.is_empty();
                            let out_ok = eng.bcast_out.iter().all(|&s| {
                                self.streams[s as usize].sendq.len() < self.cfg.source_queue
                            });
                            if eng.delivered < tree.len {
                                if let Some(tr) = tracer.as_mut() {
                                    if input_ready && out_ok {
                                        tr.relay_fired(v as usize);
                                    } else {
                                        tr.engine_stalled(
                                            v as usize,
                                            if !input_ready {
                                                EngineStall::InputStarved
                                            } else {
                                                EngineStall::OutputBlocked
                                            },
                                        );
                                    }
                                }
                            }
                            if eng.delivered < tree.len && input_ready && out_ok {
                                let val =
                                    self.streams[bin as usize].recvq.pop_front().unwrap();
                                let eng = &mut self.engines[ti][v as usize];
                                let elem = eng.delivered;
                                if !w.value_close(val, expected(elem)) {
                                    mismatches += 1;
                                }
                                let outs: Vec<u32> = eng.bcast_out.clone();
                                for s in outs {
                                    self.streams[s as usize].sendq.push_back(val);
                                }
                                deliver(eng, &mut deliveries, &mut tree_deliveries);
                            }
                        }
                    }
                }
            }

            // 3. Transmit: one flit per directed channel per cycle. The
            // winner — first resident stream in round-robin order with both
            // data and credit — is found first and the flit moved after, so
            // the tracer can observe every member without changing
            // arbitration (with tracing off the scan stops at the winner,
            // which is the identical decision).
            for (c, members) in self.emb.channel_streams.iter().enumerate() {
                if members.is_empty() {
                    continue;
                }
                // A faulted channel transmits nothing this cycle. Full
                // outages additionally charge a stall to every resident
                // stream with staged data — the timeout/retry detector.
                // (Tracer channel/stream hooks are skipped: the channel is
                // physically dead, not arbitrating.)
                if let Some(fs) = faults.as_mut() {
                    if fs.channel_blocked(c, cycle) {
                        if fs.channel_down(c) {
                            let streams = &self.streams;
                            fs.observe_outage(
                                c,
                                members,
                                |s| !streams[s].sendq.is_empty(),
                                cycle,
                            );
                        }
                        continue;
                    }
                }
                let k = members.len();
                let start = self.rr[c];
                let mut winner: Option<(usize, usize)> = None; // (rr offset, stream)
                if let Some(tr) = tracer.as_mut() {
                    let mut any_data = false;
                    for off in 0..k {
                        let s = members[(start + off) % k] as usize;
                        let st = &self.streams[s];
                        let occupancy = st.recvq.len() + st.inflight.len();
                        let has_data = !st.sendq.is_empty();
                        let has_credit = occupancy < self.cfg.vc_buffer;
                        if winner.is_none() && has_data && has_credit {
                            winner = Some((off, s));
                        }
                        any_data |= has_data;
                        let won = winner.is_some_and(|(_, w)| w == s);
                        tr.observe_stream(
                            s,
                            st.sendq.len() as u64,
                            (occupancy + won as usize) as u64,
                            has_data,
                            has_credit,
                            won,
                        );
                    }
                    tr.observe_channel(c, winner.is_some(), any_data);
                } else {
                    for off in 0..k {
                        let s = members[(start + off) % k] as usize;
                        let st = &self.streams[s];
                        if !st.sendq.is_empty()
                            && st.recvq.len() + st.inflight.len() < self.cfg.vc_buffer
                        {
                            winner = Some((off, s));
                            break;
                        }
                    }
                }
                if let Some((off, s)) = winner {
                    let st = &mut self.streams[s];
                    let occupancy = st.recvq.len() + st.inflight.len();
                    let v = st.sendq.pop_front().unwrap();
                    st.inflight.push_back((cycle + self.cfg.link_latency as u64, v));
                    self.channel_flits[c] += 1;
                    self.max_vc_occupancy = self.max_vc_occupancy.max(occupancy + 1);
                    self.rr[c] = (start + off + 1) % k;
                    if let Some(fs) = faults.as_mut() {
                        fs.note_progress(s);
                    }
                }
            }

            if let Some(tr) = tracer.as_mut() {
                if tr.timeline_due(cycle) {
                    tr.sample_timeline(cycle, deliveries);
                }
            }
        }

        let completed = deliveries == total_deliveries;
        let max_util = self
            .channel_flits
            .iter()
            .map(|&f| f as f64 / cycle.max(1) as f64)
            .fold(0.0, f64::max);
        let fault_report = faults.map(|f| f.finish(completed));
        let mut trace = tracer.map(|mut tr| {
            tr.sample_timeline(cycle, deliveries); // final sample (timeline runs only)
            tr.finish(self.emb, cycle)
        });
        if let (Some(t), Some(fr)) = (trace.as_mut(), fault_report.as_ref()) {
            t.faults = fr.records.clone();
        }
        let report = SimReport {
            cycles: cycle,
            total_elems: self.emb.total_len,
            completed,
            mismatches,
            measured_bandwidth: self.emb.total_len as f64 / cycle.max(1) as f64,
            tree_completion,
            first_element_latency,
            channel_flits: self.channel_flits,
            max_channel_utilization: max_util,
            max_vc_occupancy: self.max_vc_occupancy,
        };
        (report, trace, fault_report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::{Graph, RootedTree};

    fn cycle_graph(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    fn run_single_tree(n: u32, m: u64, cfg: SimConfig) -> SimReport {
        let g = cycle_graph(n);
        let path: Vec<u32> = (0..n).collect();
        let t = RootedTree::from_path(&path, (n / 2) as usize).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(n, m);
        Simulator::new(&g, &emb, cfg).run(&w)
    }

    #[test]
    fn correct_and_complete_single_tree() {
        let r = run_single_tree(6, 200, SimConfig::default());
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.total_elems, 200);
        assert!(r.cycles > 0);
    }

    #[test]
    fn single_tree_approaches_link_rate() {
        // One uncongested tree streams at ~1 element/cycle for large m.
        let r = run_single_tree(6, 5000, SimConfig::default());
        assert!(r.completed);
        assert!(
            r.measured_bandwidth > 0.95,
            "measured {} el/cy, expected ~1",
            r.measured_bandwidth
        );
    }

    #[test]
    fn small_buffer_throttles_throughput() {
        // With vc_buffer = 1 and latency 4, at most one flit per
        // round-trip-ish window: bandwidth well below saturation. This is
        // the latency-bandwidth-product memory footprint the paper cites.
        let starved = SimConfig { link_latency: 4, vc_buffer: 1, ..Default::default() };
        let r = run_single_tree(6, 2000, starved);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert!(
            r.measured_bandwidth < 0.5,
            "measured {} el/cy with 1-flit buffers",
            r.measured_bandwidth
        );
    }

    #[test]
    fn congested_trees_share_bandwidth() {
        // Two fully-overlapping path trees with opposite roots: reduce
        // streams flow in opposite directions, but each channel still
        // carries one reduce + one broadcast stream -> per-tree rate 1/2.
        let g = {
            let mut g = Graph::new(5);
            for i in 0..4 {
                g.add_edge(i, i + 1);
            }
            g
        };
        let path = [0u32, 1, 2, 3, 4];
        let t1 = RootedTree::from_path(&path, 0).unwrap();
        let t2 = RootedTree::from_path(&path, 4).unwrap();
        let m = 4000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(5, m);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        // Aggregate ~1 element/cycle (2 trees x 1/2 each).
        assert!(
            (r.measured_bandwidth - 1.0).abs() < 0.1,
            "measured {}",
            r.measured_bandwidth
        );
    }

    #[test]
    fn utilization_bounded_by_one() {
        let r = run_single_tree(5, 1000, SimConfig::default());
        assert!(r.max_channel_utilization <= 1.0 + 1e-9);
        assert!(r.max_channel_utilization > 0.5);
    }

    #[test]
    fn deadlock_backstop_reports_incomplete() {
        let cfg = SimConfig { max_cycles: 10, ..Default::default() };
        let r = run_single_tree(6, 10_000, cfg);
        assert!(!r.completed);
        assert_eq!(r.cycles, 10);
    }

    #[test]
    fn empty_vector_finishes_immediately() {
        let r = run_single_tree(4, 0, SimConfig::default());
        assert!(r.completed);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.total_elems, 0);
    }

    #[test]
    fn reduce_only_collective() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 2).unwrap();
        let m = 500;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let full = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let reduce =
            Simulator::new(&g, &emb, SimConfig::default()).run_collective(&w, Collective::Reduce);
        assert!(reduce.completed);
        assert_eq!(reduce.mismatches, 0);
        // No broadcast phase: strictly faster than the full allreduce.
        assert!(reduce.cycles < full.cycles);
    }

    #[test]
    fn broadcast_only_collective() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 0).unwrap();
        let m = 500;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(6, m);
        let r = Simulator::new(&g, &emb, SimConfig::default())
            .run_collective(&w, Collective::Broadcast);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        // Streams at link rate like the reduce direction.
        assert!(r.measured_bandwidth > 0.8, "measured {}", r.measured_bandwidth);
    }

    #[test]
    fn engine_cap_throttles_multi_tree_routers() {
        // Two edge-disjoint trees both stream at link rate, so routers
        // need two reductions per cycle; capping the engine at 1 halves
        // throughput. (Overlapping congestion-2 trees only need ~1
        // reduction per router per cycle on average, and the fair rotation
        // covers that — which is itself the Lemma 7.8 engine story.)
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let t2 = RootedTree::from_path(&[2, 0, 3, 1], 1).unwrap();
        let m = 2000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(4, m);
        let free = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let capped = Simulator::new(
            &g,
            &emb,
            SimConfig { max_reductions_per_router: Some(1), ..Default::default() },
        )
        .run(&w);
        assert!(free.completed && capped.completed);
        assert_eq!(capped.mismatches, 0);
        assert!(
            free.measured_bandwidth > 1.8,
            "uncapped streams both trees: {}",
            free.measured_bandwidth
        );
        assert!(
            capped.measured_bandwidth < 1.2,
            "engine cap 1 halves throughput: {}",
            capped.measured_bandwidth
        );
    }

    #[test]
    fn first_element_latency_scales_with_depth() {
        let shallow = {
            let g = cycle_graph(8);
            let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 4).unwrap();
            let emb = MultiTreeEmbedding::new(&g, &[t], &[64]);
            let w = Workload::new(8, 64);
            Simulator::new(&g, &emb, SimConfig::default()).run(&w)
        };
        let deep = {
            let g = cycle_graph(8);
            let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 0).unwrap();
            let emb = MultiTreeEmbedding::new(&g, &[t], &[64]);
            let w = Workload::new(8, 64);
            Simulator::new(&g, &emb, SimConfig::default()).run(&w)
        };
        assert!(shallow.first_element_latency > 0);
        assert!(
            deep.first_element_latency > shallow.first_element_latency,
            "deep {} vs shallow {}",
            deep.first_element_latency,
            shallow.first_element_latency
        );
        assert!(shallow.first_element_latency <= shallow.cycles);
    }

    #[test]
    fn collective_latency_formulas() {
        // Pure broadcast and pure reduce each traverse `depth` hops once:
        // first-element latency = depth·L + 1 (the +1 is the source's
        // compute/inject cycle). Allreduce chains both: 2·depth·L + 1.
        let g = cycle_graph(8);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 0).unwrap(); // depth 7
        let m = 64;
        let emb = MultiTreeEmbedding::new(&g, &[t], &[m]);
        let w = Workload::new(8, m);
        let cfg = SimConfig::default(); // L = 4
        let bc = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Broadcast);
        let rd = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Reduce);
        let ar = Simulator::new(&g, &emb, cfg).run_collective(&w, Collective::Allreduce);
        assert_eq!(bc.first_element_latency, 7 * 4 + 1);
        assert_eq!(rd.first_element_latency, 7 * 4 + 1);
        assert_eq!(ar.first_element_latency, 2 * 7 * 4 + 1);
        for r in [&bc, &rd, &ar] {
            assert!(r.completed && r.mismatches == 0);
        }
    }

    #[test]
    fn vc_occupancy_tracks_latency_bandwidth_product() {
        let g = cycle_graph(6);
        let t = RootedTree::from_path(&[0, 1, 2, 3, 4, 5], 0).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t], &[4000]);
        let w = Workload::new(6, 4000);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        // Occupancy never exceeds the configured buffer...
        assert!(r.max_vc_occupancy <= 6);
        // ...and a saturated stream keeps at least the latency in flight.
        assert!(r.max_vc_occupancy >= 4, "occupancy {}", r.max_vc_occupancy);
    }

    #[test]
    fn injection_cap_throttles_aggregate_bandwidth() {
        // Two overlapping trees want 2 local injections per node per
        // cycle in steady state... here both run at 1/2 each, so a cap of
        // 1 is harmless but a cap that starves (per-cycle 0 impossible;
        // use two disjoint paths where each tree streams at full rate and
        // needs 1 injection each -> cap 1 halves the aggregate).
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        // Edge-disjoint spanning trees of K4: the Hamiltonian path
        // 0-1-2-3 and its complement path 2-0-3-1.
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let t2 = RootedTree::from_path(&[2, 0, 3, 1], 1).unwrap();
        let m = 2000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new(4, m);
        let free = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let capped = Simulator::new(
            &g,
            &emb,
            SimConfig { max_injections_per_node: Some(1), ..Default::default() },
        )
        .run(&w);
        assert!(free.completed && capped.completed);
        assert_eq!(capped.mismatches, 0);
        assert!(
            free.measured_bandwidth > 1.8,
            "uncapped should stream both trees: {}",
            free.measured_bandwidth
        );
        assert!(
            capped.measured_bandwidth < 1.2,
            "injection cap 1 should halve throughput: {}",
            capped.measured_bandwidth
        );
    }

    #[test]
    fn float_gradient_allreduce_validates() {
        // The ML case: f64 gradients, tree association order != reference
        // order, tolerance-based validation must still pass with zero
        // mismatches.
        let g = cycle_graph(8);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3, 4, 5, 6, 7], 3).unwrap();
        let t2 = RootedTree::from_path(&[1, 2, 3, 4, 5, 6, 7, 0], 4).unwrap();
        let m = 1000;
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[m / 2, m / 2]);
        let w = Workload::new_float(8, m);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
    }

    #[test]
    fn zero_length_tree_slice_allowed() {
        let g = cycle_graph(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[50, 0]);
        let w = Workload::new(4, 50);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        assert!(r.completed);
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.tree_completion[1], 0);
    }
}
