//! Flit-level point-to-point phase simulation — the executed counterpart
//! of the analytic [`crate::routing::phase_time`] model.
//!
//! Host-based allreduce algorithms (§4.2) run in synchronous rounds of
//! point-to-point messages. Here each message is streamed flit by flit
//! along its minimal route with per-hop relay buffers and credit flow
//! control, and contended channels arbitrate round-robin — exactly the
//! machinery the in-network engine uses, so in-network and host-based
//! numbers are directly comparable. Phases execute back to back with a
//! per-phase software overhead (the protocol/staging cost in-network
//! computing avoids).

use crate::engine::SimConfig;
use crate::routing::Routing;
use pf_graph::{Graph, VertexId};
use std::collections::VecDeque;

/// One point-to-point transfer of `len` elements.
#[derive(Debug, Clone, Copy)]
pub struct Message {
    pub src: VertexId,
    pub dst: VertexId,
    pub len: u64,
}

/// Result of one simulated phase (or phase schedule).
#[derive(Debug, Clone)]
pub struct P2PReport {
    /// Cycles until the last flit of the last message arrived.
    pub cycles: u64,
    /// `true` iff everything was delivered before `max_cycles`.
    pub completed: bool,
    /// Flits carried per directed channel.
    pub channel_flits: Vec<u64>,
}

/// Per-hop stream state of one message.
#[derive(Debug, Clone)]
struct HopState {
    channel: u32,
    /// Flits staged at the hop's source router.
    sendq: u64,
    /// Flits in flight, by arrival cycle.
    inflight: VecDeque<u64>,
    /// Flits buffered at the hop's destination router.
    recvq: u64,
}

/// Per-channel cycle attribution of one traced phase (see
/// `docs/OBSERVABILITY.md`). Indexed like `P2PReport::channel_flits`.
#[derive(Debug, Clone, PartialEq)]
pub struct P2PTrace {
    /// Cycles the phase ran.
    pub cycles: u64,
    /// Cycles each directed channel moved a flit.
    pub busy_cycles: Vec<u64>,
    /// Cycles each directed channel had a flit staged but every staged
    /// hop was out of downstream credit.
    pub credit_stall_cycles: Vec<u64>,
}

impl P2PTrace {
    /// Cycles channel `c` had nothing staged.
    pub fn idle_cycles(&self, c: usize) -> u64 {
        self.cycles
            .saturating_sub(self.busy_cycles[c] + self.credit_stall_cycles[c])
    }
}

/// Simulates one phase of concurrent messages at flit granularity.
/// Payloads are not modeled (host-based reductions happen in host memory
/// between rounds); the flit *count* and congestion behavior are.
pub fn simulate_phase(
    g: &Graph,
    routing: &Routing,
    messages: &[Message],
    cfg: SimConfig,
) -> P2PReport {
    simulate_phase_inner(g, routing, messages, cfg, None)
}

/// Like [`simulate_phase`], additionally attributing every channel-cycle
/// as busy, credit-stalled, or idle. Tracing is observational: the
/// returned `P2PReport` is identical to the untraced run's.
pub fn simulate_phase_traced(
    g: &Graph,
    routing: &Routing,
    messages: &[Message],
    cfg: SimConfig,
) -> (P2PReport, P2PTrace) {
    let nc = 2 * g.num_edges() as usize;
    let mut trace =
        P2PTrace { cycles: 0, busy_cycles: vec![0; nc], credit_stall_cycles: vec![0; nc] };
    let report = simulate_phase_inner(g, routing, messages, cfg, Some(&mut trace));
    trace.cycles = report.cycles;
    (report, trace)
}

fn simulate_phase_inner(
    g: &Graph,
    routing: &Routing,
    messages: &[Message],
    cfg: SimConfig,
    mut trace: Option<&mut P2PTrace>,
) -> P2PReport {
    let mut channel_flits = vec![0u64; 2 * g.num_edges() as usize];
    // Build hop chains.
    let mut chains: Vec<Vec<HopState>> = Vec::with_capacity(messages.len());
    let mut pending: Vec<u64> = Vec::with_capacity(messages.len()); // to inject
    let mut delivered: Vec<u64> = vec![0; messages.len()];
    for msg in messages {
        if msg.src == msg.dst || msg.len == 0 {
            chains.push(Vec::new());
            pending.push(0);
            continue;
        }
        let path = routing.path(msg.src, msg.dst);
        let hops = path
            .windows(2)
            .map(|w| HopState {
                channel: crate::embedding::channel_id(g, w[0], w[1]),
                sendq: 0,
                inflight: VecDeque::new(),
                recvq: 0,
            })
            .collect();
        chains.push(hops);
        pending.push(msg.len);
    }
    let total: u64 = messages
        .iter()
        .map(|m| if m.src == m.dst { 0 } else { m.len })
        .collect::<Vec<_>>()
        .iter()
        .sum();
    let mut done: u64 = 0;

    // Per-channel membership: (message index, hop index).
    let mut members: Vec<Vec<(u32, u32)>> = vec![Vec::new(); channel_flits.len()];
    for (mi, hops) in chains.iter().enumerate() {
        for (hi, h) in hops.iter().enumerate() {
            members[h.channel as usize].push((mi as u32, hi as u32));
        }
    }
    let mut rr = vec![0usize; members.len()];

    let mut cycle = 0u64;
    while done < total && cycle < cfg.max_cycles {
        cycle += 1;
        // 1. Arrivals.
        for hops in &mut chains {
            for h in hops.iter_mut() {
                while h.inflight.front().is_some_and(|&t| t <= cycle) {
                    h.inflight.pop_front();
                    h.recvq += 1;
                }
            }
        }
        // 2. Inject, relay, deliver (one flit per message per stage per cycle).
        for (mi, hops) in chains.iter_mut().enumerate() {
            if hops.is_empty() {
                continue;
            }
            // Deliver at the last hop.
            let last = hops.len() - 1;
            if hops[last].recvq > 0 {
                hops[last].recvq -= 1;
                delivered[mi] += 1;
                done += 1;
            }
            // Relay between hops (front to back so a flit moves one stage
            // per cycle).
            for hi in (1..hops.len()).rev() {
                if hops[hi - 1].recvq > 0 && hops[hi].sendq < cfg.source_queue as u64 {
                    hops[hi - 1].recvq -= 1;
                    hops[hi].sendq += 1;
                }
            }
            // Inject at the source.
            if pending[mi] > 0 && hops[0].sendq < cfg.source_queue as u64 {
                pending[mi] -= 1;
                hops[0].sendq += 1;
            }
        }
        // 3. Transmit: one flit per channel, round-robin with credits.
        // Winner first, move after — so the tracer can observe all members
        // without altering arbitration (untraced runs stop at the winner,
        // the identical decision).
        for (c, mem) in members.iter().enumerate() {
            if mem.is_empty() {
                continue;
            }
            let k = mem.len();
            let start = rr[c];
            let mut winner: Option<(usize, u32, u32)> = None; // (offset, msg, hop)
            if let Some(tr) = trace.as_deref_mut() {
                let mut any_data = false;
                for off in 0..k {
                    let (mi, hi) = mem[(start + off) % k];
                    let h = &chains[mi as usize][hi as usize];
                    let has_data = h.sendq > 0;
                    let has_credit =
                        h.recvq + (h.inflight.len() as u64) < cfg.vc_buffer as u64;
                    any_data |= has_data;
                    if winner.is_none() && has_data && has_credit {
                        winner = Some((off, mi, hi));
                    }
                }
                if winner.is_some() {
                    tr.busy_cycles[c] += 1;
                } else if any_data {
                    tr.credit_stall_cycles[c] += 1;
                }
            } else {
                for off in 0..k {
                    let (mi, hi) = mem[(start + off) % k];
                    let h = &chains[mi as usize][hi as usize];
                    if h.sendq > 0 && h.recvq + (h.inflight.len() as u64) < cfg.vc_buffer as u64
                    {
                        winner = Some((off, mi, hi));
                        break;
                    }
                }
            }
            if let Some((off, mi, hi)) = winner {
                let h = &mut chains[mi as usize][hi as usize];
                h.sendq -= 1;
                h.inflight.push_back(cycle + cfg.link_latency as u64);
                channel_flits[c] += 1;
                rr[c] = (start + off + 1) % k;
            }
        }
    }

    P2PReport { cycles: cycle, completed: done == total, channel_flits }
}

/// Simulates a schedule of phases back to back, charging `phase_overhead`
/// cycles per phase (software/protocol cost). Returns total cycles, or
/// `None` if any phase failed to complete.
pub fn simulate_schedule(
    g: &Graph,
    routing: &Routing,
    phases: &[Vec<Message>],
    cfg: SimConfig,
    phase_overhead: u64,
) -> Option<u64> {
    let mut total = 0u64;
    for phase in phases {
        let r = simulate_phase(g, routing, phase, cfg);
        if !r.completed {
            return None;
        }
        total += r.cycles + phase_overhead;
    }
    Some(total)
}

/// Flit-level ring allreduce: `2(N-1)` identical rounds of neighbor
/// chunks. All rounds share the message pattern, so one round is
/// simulated and scaled.
pub fn ring_allreduce_sim(
    g: &Graph,
    routing: &Routing,
    m: u64,
    cfg: SimConfig,
    phase_overhead: u64,
) -> Option<u64> {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return Some(0);
    }
    let chunk = m.div_ceil(n);
    let phase: Vec<Message> = (0..n as u32)
        .map(|i| Message { src: i, dst: (i + 1) % n as u32, len: chunk })
        .collect();
    let r = simulate_phase(g, routing, &phase, cfg);
    if !r.completed {
        return None;
    }
    Some(2 * (n - 1) * (r.cycles + phase_overhead))
}

/// Flit-level recursive doubling (pairwise exchange of full vectors, with
/// straggler folding for non-powers of two).
pub fn recursive_doubling_sim(
    g: &Graph,
    routing: &Routing,
    m: u64,
    cfg: SimConfig,
    phase_overhead: u64,
) -> Option<u64> {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return Some(0);
    }
    let pow = 1u64 << (63 - n.leading_zeros() as u64);
    let extras = n - pow;
    let mut phases: Vec<Vec<Message>> = Vec::new();
    if extras > 0 {
        phases.push(
            (0..extras as u32).map(|i| Message { src: pow as u32 + i, dst: i, len: m }).collect(),
        );
    }
    let mut k = 1u64;
    while k < pow {
        phases.push(
            (0..pow as u32).map(|i| Message { src: i, dst: i ^ k as u32, len: m }).collect(),
        );
        k <<= 1;
    }
    if extras > 0 {
        phases.push(
            (0..extras as u32).map(|i| Message { src: i, dst: pow as u32 + i, len: m }).collect(),
        );
    }
    simulate_schedule(g, routing, &phases, cfg, phase_overhead)
}

/// Flit-level Rabenseifner: recursive-halving reduce-scatter then
/// recursive-doubling allgather, with straggler folding.
pub fn rabenseifner_sim(
    g: &Graph,
    routing: &Routing,
    m: u64,
    cfg: SimConfig,
    phase_overhead: u64,
) -> Option<u64> {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return Some(0);
    }
    let pow = 1u64 << (63 - n.leading_zeros() as u64);
    let extras = n - pow;
    let mut phases: Vec<Vec<Message>> = Vec::new();
    if extras > 0 {
        phases.push(
            (0..extras as u32).map(|i| Message { src: pow as u32 + i, dst: i, len: m }).collect(),
        );
    }
    let mut dist = pow / 2;
    let mut size = m.div_ceil(2);
    while dist >= 1 {
        phases.push(
            (0..pow as u32).map(|i| Message { src: i, dst: i ^ dist as u32, len: size }).collect(),
        );
        if dist == 1 {
            break;
        }
        dist /= 2;
        size = size.div_ceil(2);
    }
    let mut dist = 1u64;
    let mut size = m.div_ceil(pow);
    while dist < pow {
        phases.push(
            (0..pow as u32).map(|i| Message { src: i, dst: i ^ dist as u32, len: size }).collect(),
        );
        dist *= 2;
        size *= 2;
    }
    if extras > 0 {
        phases.push(
            (0..extras as u32).map(|i| Message { src: i, dst: pow as u32 + i, len: m }).collect(),
        );
    }
    simulate_schedule(g, routing, &phases, cfg, phase_overhead)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostbased::{
        rabenseifner_time, recursive_doubling_time, ring_allreduce_time, HostParams,
    };

    fn path_graph(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn single_message_streams_at_link_rate() {
        let g = path_graph(3);
        let r = Routing::new(&g);
        let rep = simulate_phase(
            &g,
            &r,
            &[Message { src: 0, dst: 2, len: 1000 }],
            SimConfig::default(),
        );
        assert!(rep.completed);
        // Two hops of latency 4 plus ~1000 cycles of streaming.
        assert!(rep.cycles >= 1000 && rep.cycles < 1100, "cycles {}", rep.cycles);
    }

    #[test]
    fn contended_channel_halves_throughput() {
        // Two messages into the same directed channel 1 -> 2.
        let g = path_graph(4);
        let r = Routing::new(&g);
        let rep = simulate_phase(
            &g,
            &r,
            &[
                Message { src: 0, dst: 2, len: 1000 },
                Message { src: 1, dst: 3, len: 1000 },
            ],
            SimConfig::default(),
        );
        assert!(rep.completed);
        assert!(rep.cycles >= 2000 && rep.cycles < 2200, "cycles {}", rep.cycles);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let g = path_graph(3);
        let r = Routing::new(&g);
        let rep = simulate_phase(
            &g,
            &r,
            &[
                Message { src: 0, dst: 2, len: 1000 },
                Message { src: 2, dst: 0, len: 1000 },
            ],
            SimConfig::default(),
        );
        assert!(rep.completed);
        assert!(rep.cycles < 1100, "cycles {}", rep.cycles);
    }

    #[test]
    fn degenerate_messages_ignored() {
        let g = path_graph(2);
        let r = Routing::new(&g);
        let rep = simulate_phase(
            &g,
            &r,
            &[Message { src: 0, dst: 0, len: 50 }, Message { src: 1, dst: 0, len: 0 }],
            SimConfig::default(),
        );
        assert!(rep.completed);
        assert_eq!(rep.cycles, 0);
    }

    #[test]
    fn flit_level_ring_matches_phase_model_shape() {
        let pf = pf_topo::PolarFly::new(5);
        let g = pf.graph();
        let r = Routing::new(g);
        let m = 3100; // 100 per node
        let cfg = SimConfig::default();
        let sim = ring_allreduce_sim(g, &r, m, cfg, 0).unwrap();
        let model =
            ring_allreduce_time(g, &r, m, HostParams { hop_latency: 4, phase_overhead: 0 });
        // The analytic model charges serialized load + path latency per
        // phase; the flit simulation pipelines within a phase, so it is
        // close but not identical. Within 35%.
        let ratio = sim as f64 / model as f64;
        assert!((0.65..=1.35).contains(&ratio), "sim {sim} vs model {model}");
    }

    #[test]
    fn flit_level_doubling_matches_phase_model_shape() {
        let pf = pf_topo::PolarFly::new(3);
        let g = pf.graph();
        let r = Routing::new(g);
        let m = 500;
        let cfg = SimConfig::default();
        let sim = recursive_doubling_sim(g, &r, m, cfg, 0).unwrap();
        let model =
            recursive_doubling_time(g, &r, m, HostParams { hop_latency: 4, phase_overhead: 0 });
        let ratio = sim as f64 / model as f64;
        assert!((0.5..=1.5).contains(&ratio), "sim {sim} vs model {model}");
    }

    #[test]
    fn flit_level_rabenseifner_matches_phase_model_shape() {
        let pf = pf_topo::PolarFly::new(3);
        let g = pf.graph();
        let r = Routing::new(g);
        let m = 2000;
        let cfg = SimConfig::default();
        let sim = rabenseifner_sim(g, &r, m, cfg, 0).unwrap();
        let model =
            rabenseifner_time(g, &r, m, HostParams { hop_latency: 4, phase_overhead: 0 });
        let ratio = sim as f64 / model as f64;
        assert!((0.5..=1.5).contains(&ratio), "sim {sim} vs model {model}");
        // Bandwidth-optimal: beats recursive doubling at this size.
        let rd = recursive_doubling_sim(g, &r, m, cfg, 0).unwrap();
        assert!(sim < rd, "rab {sim} vs rdbl {rd}");
    }

    #[test]
    fn schedule_adds_overhead_per_phase() {
        let g = path_graph(3);
        let r = Routing::new(&g);
        let phase: Vec<Message> = vec![Message { src: 0, dst: 2, len: 10 }];
        let base =
            simulate_schedule(&g, &r, &[phase.clone(), phase.clone()], SimConfig::default(), 0)
                .unwrap();
        let with =
            simulate_schedule(&g, &r, &[phase.clone(), phase], SimConfig::default(), 500).unwrap();
        assert_eq!(with - base, 1000);
    }

    #[test]
    fn traced_phase_matches_untraced_and_accounts_every_cycle() {
        let g = path_graph(4);
        let r = Routing::new(&g);
        let msgs = [
            Message { src: 0, dst: 2, len: 500 },
            Message { src: 1, dst: 3, len: 500 },
        ];
        let cfg = SimConfig::default();
        let plain = simulate_phase(&g, &r, &msgs, cfg);
        let (traced, trace) = simulate_phase_traced(&g, &r, &msgs, cfg);
        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(plain.channel_flits, traced.channel_flits);
        assert_eq!(trace.cycles, traced.cycles);
        for (c, &flits) in traced.channel_flits.iter().enumerate() {
            // A channel is busy exactly when it moves a flit.
            assert_eq!(trace.busy_cycles[c], flits);
            assert_eq!(
                trace.busy_cycles[c] + trace.credit_stall_cycles[c] + trace.idle_cycles(c),
                trace.cycles
            );
        }
        // The shared channel 1 -> 2 is the bottleneck: it must be busy most
        // of the run.
        let c12 = crate::embedding::channel_id(&g, 1, 2) as usize;
        assert!(trace.busy_cycles[c12] as f64 > 0.9 * trace.cycles as f64);
    }

    #[test]
    fn incomplete_on_cycle_cap() {
        let g = path_graph(3);
        let r = Routing::new(&g);
        let cfg = SimConfig { max_cycles: 5, ..Default::default() };
        let rep = simulate_phase(&g, &r, &[Message { src: 0, dst: 2, len: 1000 }], cfg);
        assert!(!rep.completed);
    }
}
