//! Deterministic allreduce workloads and their expected results.
//!
//! The paper's motivating workload is gradient allreduce in data-parallel
//! training; numerically we only need an associative, commutative operator
//! and per-node inputs whose global reduction we can check exactly, so the
//! simulator reduces `u64` values with wrapping addition. Inputs come from
//! a splittable hash of `(node, element)` — every element of every node is
//! distinct, so misrouted or dropped flits are always detected. That
//! distinctness is also what makes the *multi-tenant* workloads safe: a
//! segmented workload ([`Workload::concat`]) carves the element space into
//! per-job ranges, and because no two `(node, element)` inputs collide, a
//! flit leaking from one job's trees into another's is always caught by
//! the expected-value check.

/// The reduction operator carried by the flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// Wrapping `u64` addition — exact, order-independent; the default
    /// validation workload (any lost or misrouted flit is detected).
    WrappingU64,
    /// IEEE `f64` addition over bit-cast payloads — the ML gradient case.
    /// Association order differs between the reference sum and the tree
    /// reduction, so validation uses a relative tolerance.
    FloatF64,
}

impl ReduceKind {
    /// The operator's identity element (as a flit bit pattern): `0` for
    /// wrapping addition and `0.0` for `f64` addition — conveniently the
    /// same all-zero bits. Nodes outside a segment's participant set
    /// contribute the identity.
    #[must_use]
    pub fn identity(self) -> u64 {
        0
    }
}

/// One segment of a segmented ([`Workload::concat`]) workload: a
/// contiguous element range owned by one tenant/job.
#[derive(Debug, Clone)]
pub struct JobSegment {
    /// Number of elements in the segment.
    pub elems: u64,
    /// Reduction operator of the segment.
    pub kind: ReduceKind,
    /// Participating nodes (`None` = the full fabric). Non-participants
    /// contribute the operator's identity, so spanning trees still relay
    /// and reduce through them, but the expected reduction sums only the
    /// participants' inputs.
    pub participants: Option<Vec<u32>>,
}

impl JobSegment {
    /// A full-fabric segment.
    #[must_use]
    pub fn full(elems: u64, kind: ReduceKind) -> Self {
        JobSegment { elems, kind, participants: None }
    }
}

/// A deterministic allreduce input: `m` elements per node, partitioned
/// into one or more segments (one per tenant in multi-job runs).
#[derive(Debug, Clone)]
pub struct Workload {
    nodes: u32,
    m: u64,
    /// Exclusive element-end of each segment (ascending; last == `m`).
    seg_end: Vec<u64>,
    seg_kind: Vec<ReduceKind>,
    /// Per-segment participant bitset words (empty = every node).
    seg_members: Vec<Vec<u64>>,
    expected: Vec<u64>,
}

/// SplitMix64 finalizer — a cheap, high-quality mixing function.
#[inline]
#[must_use]
pub fn mix(node: u32, elem: u64) -> u64 {
    let mut z = (node as u64) << 40 ^ elem ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random gradient value in `[-1, 1)` for `(node, elem)`.
#[inline]
#[must_use]
pub fn mix_f64(node: u32, elem: u64) -> f64 {
    (mix(node, elem) as i64 as f64) / (i64::MAX as f64 + 1.0)
}

impl Workload {
    /// Builds the exact `u64` workload and precomputes the expected global
    /// reduction for each element (wrapping sum over all nodes).
    #[must_use]
    pub fn new(nodes: u32, m: u64) -> Self {
        Self::concat(nodes, &[JobSegment::full(m, ReduceKind::WrappingU64)])
    }

    /// Builds an `f64` gradient workload: per-node values in `[-1, 1)`
    /// (bit-cast into the flit payload), expected sums in node order.
    #[must_use]
    pub fn new_float(nodes: u32, m: u64) -> Self {
        Self::concat(nodes, &[JobSegment::full(m, ReduceKind::FloatF64)])
    }

    /// Builds a segmented workload: segment `j` owns the global element
    /// range `[Σ_{i<j} elems_i, Σ_{i≤j} elems_i)` with its own operator and
    /// participant set. Because [`mix`] makes every `(node, element)` input
    /// distinct, elements of different segments can never be confused — the
    /// cross-job leakage detector of the multi-tenant scheduler.
    ///
    /// Panics when `segs` is empty or a participant list is empty /
    /// out of range.
    #[must_use]
    pub fn concat(nodes: u32, segs: &[JobSegment]) -> Self {
        assert!(!segs.is_empty(), "a workload needs at least one segment");
        let words = (nodes as usize).div_ceil(64);
        let mut seg_end = Vec::with_capacity(segs.len());
        let mut seg_kind = Vec::with_capacity(segs.len());
        let mut seg_members = Vec::with_capacity(segs.len());
        let mut end = 0u64;
        for s in segs {
            end += s.elems;
            seg_end.push(end);
            seg_kind.push(s.kind);
            let members = match &s.participants {
                None => Vec::new(),
                Some(list) => {
                    assert!(!list.is_empty(), "a segment needs at least one participant");
                    let mut bits = vec![0u64; words];
                    for &v in list {
                        assert!(v < nodes, "participant {v} out of range (nodes = {nodes})");
                        bits[v as usize / 64] |= 1u64 << (v % 64);
                    }
                    bits
                }
            };
            seg_members.push(members);
        }
        let m = end;
        let mut w = Workload { nodes, m, seg_end, seg_kind, seg_members, expected: Vec::new() };
        let mut expected = vec![0u64; m as usize];
        for (k, slot) in expected.iter_mut().enumerate() {
            let k = k as u64;
            let seg = w.seg_index(k);
            *slot = match w.seg_kind[seg] {
                ReduceKind::WrappingU64 => {
                    let mut acc = 0u64;
                    for v in 0..nodes {
                        if w.member(seg, v) {
                            acc = acc.wrapping_add(mix(v, k));
                        }
                    }
                    acc
                }
                ReduceKind::FloatF64 => {
                    let mut acc = 0.0f64;
                    for v in 0..nodes {
                        if w.member(seg, v) {
                            acc += mix_f64(v, k);
                        }
                    }
                    acc.to_bits()
                }
            };
        }
        w.expected = expected;
        w
    }

    /// Segment owning global element `elem`.
    #[inline]
    fn seg_index(&self, elem: u64) -> usize {
        if self.seg_end.len() == 1 {
            0
        } else {
            self.seg_end.partition_point(|&end| end <= elem)
        }
    }

    /// Whether `node` participates in segment `seg`.
    #[inline]
    fn member(&self, seg: usize, node: u32) -> bool {
        let bits = &self.seg_members[seg];
        bits.is_empty() || bits[node as usize / 64] >> (node % 64) & 1 == 1
    }

    /// The reduction operator of the *first* segment. Single-segment
    /// workloads (the common case) have one uniform operator; segmented
    /// workloads should use [`Workload::kind_at`].
    #[must_use]
    pub fn kind(&self) -> ReduceKind {
        self.seg_kind[0]
    }

    /// The reduction operator governing global element `elem`.
    #[inline]
    #[must_use]
    pub fn kind_at(&self, elem: u64) -> ReduceKind {
        self.seg_kind[self.seg_index(elem)]
    }

    /// Combines two flit payloads under the first segment's operator (see
    /// [`Workload::kind`]); the engines use [`Workload::combine_at`].
    #[inline]
    #[must_use]
    pub fn combine(&self, a: u64, b: u64) -> u64 {
        combine_kind(self.seg_kind[0], a, b)
    }

    /// Combines two flit payloads of global element `elem` under its
    /// segment's operator.
    #[inline]
    #[must_use]
    pub fn combine_at(&self, elem: u64, a: u64, b: u64) -> u64 {
        combine_kind(self.kind_at(elem), a, b)
    }

    /// Whether a delivered payload matches an expected one under the first
    /// segment's operator (see [`Workload::value_close_at`]): exact for
    /// `u64`, relative tolerance for `f64` (tree association order differs
    /// from the reference sum's).
    #[inline]
    #[must_use]
    pub fn value_close(&self, got: u64, want: u64) -> bool {
        self.close_kind(self.seg_kind[0], got, want)
    }

    /// Whether a delivered payload of global element `elem` matches an
    /// expected one under its segment's operator.
    #[inline]
    #[must_use]
    pub fn value_close_at(&self, elem: u64, got: u64, want: u64) -> bool {
        self.close_kind(self.kind_at(elem), got, want)
    }

    #[inline]
    fn close_kind(&self, kind: ReduceKind, got: u64, want: u64) -> bool {
        match kind {
            ReduceKind::WrappingU64 => got == want,
            ReduceKind::FloatF64 => {
                let (g, w) = (f64::from_bits(got), f64::from_bits(want));
                let scale = w.abs().max(self.nodes as f64 * 1e-3);
                (g - w).abs() <= 1e-9 * scale
            }
        }
    }

    /// Number of participating nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Total vector length across all nodes' shared element space — the
    /// global element count `m` (equal to the embedding's `total_len` in
    /// single-job runs), *not* a per-node quantity.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.m
    }

    /// `true` iff the workload has no elements at all (`len() == 0`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The input payload of `node` for global element `elem` (bit pattern
    /// under the element's operator). Nodes outside the owning segment's
    /// participant set contribute the operator's identity.
    #[inline]
    #[must_use]
    pub fn input(&self, node: u32, elem: u64) -> u64 {
        debug_assert!(node < self.nodes && elem < self.m);
        let seg = self.seg_index(elem);
        if !self.member(seg, node) {
            return self.seg_kind[seg].identity();
        }
        match self.seg_kind[seg] {
            ReduceKind::WrappingU64 => mix(node, elem),
            ReduceKind::FloatF64 => mix_f64(node, elem).to_bits(),
        }
    }

    /// The expected allreduce output for global element `elem`.
    #[inline]
    #[must_use]
    pub fn expected(&self, elem: u64) -> u64 {
        self.expected[elem as usize]
    }

    /// Fills `out[i] = input(node, start + i)` for a contiguous element
    /// run with the segment lookup and operator dispatch hoisted out of
    /// the per-element loop: the batched steady-state engine reduces whole
    /// element blocks at once, and calling [`Workload::input`] per element
    /// would re-run the segment search (a binary search on segmented
    /// workloads) every time. Inside one segment the fill is a tight
    /// [`mix`] / [`mix_f64`] loop.
    pub fn input_run(&self, node: u32, start: u64, out: &mut [u64]) {
        let end = start + out.len() as u64;
        debug_assert!(node < self.nodes && end <= self.m);
        let mut e = start;
        let mut i = 0usize;
        while e < end {
            let seg = self.seg_index(e);
            let stop = self.seg_end[seg].min(end);
            let cnt = (stop - e) as usize;
            let slot = &mut out[i..i + cnt];
            if !self.member(seg, node) {
                slot.fill(self.seg_kind[seg].identity());
            } else {
                match self.seg_kind[seg] {
                    ReduceKind::WrappingU64 => {
                        for (k, o) in slot.iter_mut().enumerate() {
                            *o = mix(node, e + k as u64);
                        }
                    }
                    ReduceKind::FloatF64 => {
                        for (k, o) in slot.iter_mut().enumerate() {
                            *o = mix_f64(node, e + k as u64).to_bits();
                        }
                    }
                }
            }
            e = stop;
            i += cnt;
        }
    }

    /// `acc[i] = combine_at(start + i, acc[i], xs[i])` over a contiguous
    /// element run, dispatching the operator once per segment run instead
    /// of per element — the `u64` case compiles to a vectorizable
    /// wrapping-add loop. Bit-exact against per-element
    /// [`Workload::combine_at`] (the f64 path performs the identical
    /// additions in the identical order).
    pub fn combine_run(&self, start: u64, acc: &mut [u64], xs: &[u64]) {
        assert_eq!(acc.len(), xs.len());
        let end = start + acc.len() as u64;
        debug_assert!(end <= self.m);
        let mut e = start;
        let mut i = 0usize;
        while e < end {
            let seg = self.seg_index(e);
            let stop = self.seg_end[seg].min(end);
            let cnt = (stop - e) as usize;
            match self.seg_kind[seg] {
                ReduceKind::WrappingU64 => {
                    for k in i..i + cnt {
                        acc[k] = acc[k].wrapping_add(xs[k]);
                    }
                }
                ReduceKind::FloatF64 => {
                    for k in i..i + cnt {
                        acc[k] = (f64::from_bits(acc[k]) + f64::from_bits(xs[k])).to_bits();
                    }
                }
            }
            e = stop;
            i += cnt;
        }
    }
}

#[inline]
fn combine_kind(kind: ReduceKind, a: u64, b: u64) -> u64 {
    match kind {
        ReduceKind::WrappingU64 => a.wrapping_add(b),
        ReduceKind::FloatF64 => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_matches_manual_sum() {
        let w = Workload::new(5, 16);
        for k in 0..16u64 {
            let manual = (0..5).fold(0u64, |acc, v| acc.wrapping_add(mix(v, k)));
            assert_eq!(w.expected(k), manual);
        }
    }

    #[test]
    fn inputs_are_distinct() {
        let w = Workload::new(8, 64);
        let mut seen = std::collections::HashSet::new();
        for v in 0..8 {
            for k in 0..64 {
                assert!(seen.insert(w.input(v, k)), "collision at ({v},{k})");
            }
        }
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new(3, 0);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn float_workload_expected_and_tolerance() {
        let w = Workload::new_float(9, 32);
        assert_eq!(w.kind(), ReduceKind::FloatF64);
        for k in 0..32u64 {
            let manual: f64 = (0..9).map(|v| mix_f64(v, k)).sum();
            assert!(w.value_close(manual.to_bits(), w.expected(k)));
            // A permuted-order sum is also accepted (associativity slack).
            let permuted: f64 = (0..9).rev().map(|v| mix_f64(v, k)).sum();
            assert!(w.value_close(permuted.to_bits(), w.expected(k)));
            // A grossly wrong value is not.
            assert!(!w.value_close((manual + 1.0).to_bits(), w.expected(k)));
        }
    }

    #[test]
    fn float_inputs_bounded() {
        for v in 0..16 {
            for k in 0..64 {
                let x = mix_f64(v, k);
                assert!((-1.0..1.0).contains(&x), "({v},{k}) -> {x}");
            }
        }
    }

    #[test]
    fn combine_dispatch() {
        let wu = Workload::new(2, 1);
        assert_eq!(wu.combine(u64::MAX, 1), 0); // wrapping
        let wf = Workload::new_float(2, 1);
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(wf.combine(a, b)), 3.75);
    }

    #[test]
    fn mix_avalanche_spot_check() {
        // Neighboring inputs differ in many bits.
        let a = mix(0, 0);
        let b = mix(0, 1);
        let c = mix(1, 0);
        assert!((a ^ b).count_ones() > 10);
        assert!((a ^ c).count_ones() > 10);
    }

    #[test]
    fn concat_matches_uniform_constructors() {
        // A single full segment is exactly Workload::new / new_float.
        let u = Workload::new(6, 40);
        let cu = Workload::concat(6, &[JobSegment::full(40, ReduceKind::WrappingU64)]);
        let f = Workload::new_float(6, 40);
        let cf = Workload::concat(6, &[JobSegment::full(40, ReduceKind::FloatF64)]);
        for k in 0..40 {
            assert_eq!(u.expected(k), cu.expected(k));
            assert_eq!(f.expected(k), cf.expected(k));
            for v in 0..6 {
                assert_eq!(u.input(v, k), cu.input(v, k));
                assert_eq!(f.input(v, k), cf.input(v, k));
            }
        }
    }

    #[test]
    fn segmented_workload_dispatches_per_element() {
        let w = Workload::concat(
            4,
            &[
                JobSegment::full(10, ReduceKind::WrappingU64),
                JobSegment::full(5, ReduceKind::FloatF64),
            ],
        );
        assert_eq!(w.len(), 15);
        assert_eq!(w.kind_at(9), ReduceKind::WrappingU64);
        assert_eq!(w.kind_at(10), ReduceKind::FloatF64);
        // Segment 0 combines by wrapping addition, segment 1 by f64.
        assert_eq!(w.combine_at(0, u64::MAX, 1), 0);
        let (a, b) = (1.5f64.to_bits(), 2.25f64.to_bits());
        assert_eq!(f64::from_bits(w.combine_at(12, a, b)), 3.75);
        // Expected values match the per-segment manual reductions.
        for k in 0..10u64 {
            let manual = (0..4).fold(0u64, |acc, v| acc.wrapping_add(mix(v, k)));
            assert_eq!(w.expected(k), manual);
            assert!(w.value_close_at(k, manual, w.expected(k)));
        }
        for k in 10..15u64 {
            let manual: f64 = (0..4).map(|v| mix_f64(v, k)).sum();
            assert!(w.value_close_at(k, manual.to_bits(), w.expected(k)));
        }
    }

    #[test]
    fn participant_subsets_contribute_identity() {
        let seg = JobSegment {
            elems: 8,
            kind: ReduceKind::WrappingU64,
            participants: Some(vec![0, 2]),
        };
        let w = Workload::concat(4, &[seg]);
        for k in 0..8u64 {
            // Non-participants inject the identity...
            assert_eq!(w.input(1, k), 0);
            assert_eq!(w.input(3, k), 0);
            // ...so the expected reduction sums participants only.
            assert_eq!(w.expected(k), mix(0, k).wrapping_add(mix(2, k)));
        }
    }

    #[test]
    fn cross_segment_inputs_stay_distinct() {
        // The multi-tenant leakage detector: inputs of different segments
        // never collide (identity injections aside, which reduce checks
        // catch through the expected value, not the raw input).
        let w = Workload::concat(
            5,
            &[
                JobSegment::full(32, ReduceKind::WrappingU64),
                JobSegment::full(32, ReduceKind::WrappingU64),
            ],
        );
        let mut seen = std::collections::HashSet::new();
        for v in 0..5 {
            for k in 0..64 {
                assert!(seen.insert(w.input(v, k)), "collision at ({v},{k})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn concat_rejects_empty_segment_list() {
        let _ = Workload::concat(3, &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn concat_rejects_bad_participant() {
        let _ = Workload::concat(
            3,
            &[JobSegment {
                elems: 1,
                kind: ReduceKind::WrappingU64,
                participants: Some(vec![3]),
            }],
        );
    }
}
