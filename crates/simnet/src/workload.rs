//! Deterministic allreduce workloads and their expected results.
//!
//! The paper's motivating workload is gradient allreduce in data-parallel
//! training; numerically we only need an associative, commutative operator
//! and per-node inputs whose global reduction we can check exactly, so the
//! simulator reduces `u64` values with wrapping addition. Inputs come from
//! a splittable hash of `(node, element)` — every element of every node is
//! distinct, so misrouted or dropped flits are always detected.

/// The reduction operator carried by the flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceKind {
    /// Wrapping `u64` addition — exact, order-independent; the default
    /// validation workload (any lost or misrouted flit is detected).
    WrappingU64,
    /// IEEE `f64` addition over bit-cast payloads — the ML gradient case.
    /// Association order differs between the reference sum and the tree
    /// reduction, so validation uses a relative tolerance.
    FloatF64,
}

/// A deterministic allreduce input: `m` elements per node.
#[derive(Debug, Clone)]
pub struct Workload {
    nodes: u32,
    m: u64,
    kind: ReduceKind,
    expected: Vec<u64>,
}

/// SplitMix64 finalizer — a cheap, high-quality mixing function.
#[inline]
pub fn mix(node: u32, elem: u64) -> u64 {
    let mut z = (node as u64) << 40 ^ elem ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random gradient value in `[-1, 1)` for `(node, elem)`.
#[inline]
pub fn mix_f64(node: u32, elem: u64) -> f64 {
    (mix(node, elem) as i64 as f64) / (i64::MAX as f64 + 1.0)
}

impl Workload {
    /// Builds the exact `u64` workload and precomputes the expected global
    /// reduction for each element (wrapping sum over all nodes).
    pub fn new(nodes: u32, m: u64) -> Self {
        let mut expected = vec![0u64; m as usize];
        for (k, slot) in expected.iter_mut().enumerate() {
            let mut acc = 0u64;
            for v in 0..nodes {
                acc = acc.wrapping_add(mix(v, k as u64));
            }
            *slot = acc;
        }
        Workload { nodes, m, kind: ReduceKind::WrappingU64, expected }
    }

    /// Builds an `f64` gradient workload: per-node values in `[-1, 1)`
    /// (bit-cast into the flit payload), expected sums in node order.
    pub fn new_float(nodes: u32, m: u64) -> Self {
        let mut expected = vec![0u64; m as usize];
        for (k, slot) in expected.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for v in 0..nodes {
                acc += mix_f64(v, k as u64);
            }
            *slot = acc.to_bits();
        }
        Workload { nodes, m, kind: ReduceKind::FloatF64, expected }
    }

    /// The reduction operator of this workload.
    pub fn kind(&self) -> ReduceKind {
        self.kind
    }

    /// Combines two flit payloads under the workload's operator.
    #[inline]
    pub fn combine(&self, a: u64, b: u64) -> u64 {
        match self.kind {
            ReduceKind::WrappingU64 => a.wrapping_add(b),
            ReduceKind::FloatF64 => {
                (f64::from_bits(a) + f64::from_bits(b)).to_bits()
            }
        }
    }

    /// Whether a delivered payload matches an expected one: exact for
    /// `u64`, relative tolerance for `f64` (tree association order differs
    /// from the reference sum's).
    #[inline]
    pub fn value_close(&self, got: u64, want: u64) -> bool {
        match self.kind {
            ReduceKind::WrappingU64 => got == want,
            ReduceKind::FloatF64 => {
                let (g, w) = (f64::from_bits(got), f64::from_bits(want));
                let scale = w.abs().max(self.nodes as f64 * 1e-3);
                (g - w).abs() <= 1e-9 * scale
            }
        }
    }

    /// Number of participating nodes.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Vector length per node.
    pub fn len(&self) -> u64 {
        self.m
    }

    /// `true` iff the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The input payload of `node` for global element `elem` (bit pattern
    /// under the workload's operator).
    #[inline]
    pub fn input(&self, node: u32, elem: u64) -> u64 {
        debug_assert!(node < self.nodes && elem < self.m);
        match self.kind {
            ReduceKind::WrappingU64 => mix(node, elem),
            ReduceKind::FloatF64 => mix_f64(node, elem).to_bits(),
        }
    }

    /// The expected allreduce output for global element `elem`.
    #[inline]
    pub fn expected(&self, elem: u64) -> u64 {
        self.expected[elem as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_matches_manual_sum() {
        let w = Workload::new(5, 16);
        for k in 0..16u64 {
            let manual = (0..5).fold(0u64, |acc, v| acc.wrapping_add(mix(v, k)));
            assert_eq!(w.expected(k), manual);
        }
    }

    #[test]
    fn inputs_are_distinct() {
        let w = Workload::new(8, 64);
        let mut seen = std::collections::HashSet::new();
        for v in 0..8 {
            for k in 0..64 {
                assert!(seen.insert(w.input(v, k)), "collision at ({v},{k})");
            }
        }
    }

    #[test]
    fn empty_workload() {
        let w = Workload::new(3, 0);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn float_workload_expected_and_tolerance() {
        let w = Workload::new_float(9, 32);
        assert_eq!(w.kind(), ReduceKind::FloatF64);
        for k in 0..32u64 {
            let manual: f64 = (0..9).map(|v| mix_f64(v, k)).sum();
            assert!(w.value_close(manual.to_bits(), w.expected(k)));
            // A permuted-order sum is also accepted (associativity slack).
            let permuted: f64 = (0..9).rev().map(|v| mix_f64(v, k)).sum();
            assert!(w.value_close(permuted.to_bits(), w.expected(k)));
            // A grossly wrong value is not.
            assert!(!w.value_close((manual + 1.0).to_bits(), w.expected(k)));
        }
    }

    #[test]
    fn float_inputs_bounded() {
        for v in 0..16 {
            for k in 0..64 {
                let x = mix_f64(v, k);
                assert!((-1.0..1.0).contains(&x), "({v},{k}) -> {x}");
            }
        }
    }

    #[test]
    fn combine_dispatch() {
        let wu = Workload::new(2, 1);
        assert_eq!(wu.combine(u64::MAX, 1), 0); // wrapping
        let wf = Workload::new_float(2, 1);
        let a = 1.5f64.to_bits();
        let b = 2.25f64.to_bits();
        assert_eq!(f64::from_bits(wf.combine(a, b)), 3.75);
    }

    #[test]
    fn mix_avalanche_spot_check() {
        // Neighboring inputs differ in many bits.
        let a = mix(0, 0);
        let b = mix(0, 1);
        let c = mix(1, 0);
        assert!((a ^ b).count_ones() > 10);
        assert!((a ^ c).count_ones() > 10);
    }
}
