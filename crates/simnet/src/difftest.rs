//! Differential suite: the active-set engine versus the retained
//! reference stepper.
//!
//! Every test builds two identically-configured simulators over the same
//! embedding and workload, runs one through the optimized `run_inner` and
//! the other through [`crate::engine::reference`], and asserts the outputs
//! are *byte-identical*: `SimReport` by `PartialEq` (covers every counter
//! including floats, which must come from the same integer arithmetic),
//! traces by their serialized JSON bytes, and `FaultReport` by
//! `PartialEq` (covers the ordered `FaultTraceRow` action log, so retry
//! and detection cycle stamps must match exactly).
//!
//! The matrix spans the paper's radixes (q ∈ {3, 5, 7, 9, 11}), all five
//! collectives (allreduce, reduce, broadcast and the sharded-training
//! reduce-scatter / allgather pair), low-depth and edge-disjoint plans,
//! per-router / per-node caps, tracing on/off, and fault schedules
//! (permanent, transient-healing, degraded, router) — the cases where
//! cycle skipping, active sets and lazy budgets could plausibly diverge
//! from the per-cycle full-scan semantics.

use crate::embedding::MultiTreeEmbedding;
use crate::engine::{Collective, SimConfig, Simulator};
use crate::faults::{
    DetectionConfig, FaultEvent, FaultKind, FaultSchedule, FaultTarget,
};
use crate::trace::TraceConfig;
use crate::workload::Workload;
use pf_allreduce::AllreducePlan;

/// One prepared scenario both engines run.
struct Case {
    plan: AllreducePlan,
    m: u64,
    cfg: SimConfig,
    trace: Option<TraceConfig>,
    faults: Option<FaultSchedule>,
}

impl Case {
    fn new(plan: AllreducePlan, m: u64) -> Self {
        Case { plan, m, cfg: SimConfig::default(), trace: None, faults: None }
    }

    fn sim<'a>(&self, emb: &'a MultiTreeEmbedding) -> Simulator<'a> {
        let mut sim = Simulator::new(&self.plan.graph, emb, self.cfg);
        if let Some(tcfg) = self.trace {
            sim = sim.with_trace(tcfg);
        }
        if let Some(schedule) = &self.faults {
            sim = sim.with_faults(&self.plan.graph, schedule.clone());
        }
        sim
    }

    /// Runs the case through both engines and asserts byte identity.
    fn assert_identical(&self, kind: Collective, label: &str) {
        let sizes = self.plan.split(self.m);
        let emb = MultiTreeEmbedding::new(&self.plan.graph, &self.plan.trees, &sizes);
        let w = Workload::new(self.plan.graph.num_vertices(), self.m);
        let (opt_report, opt_trace, opt_faults) = self.sim(&emb).run_optimized(&w, kind);
        let (ref_report, ref_trace, ref_faults) = self.sim(&emb).run_reference(&w, kind);

        assert_eq!(opt_report, ref_report, "{label}: SimReport diverged");
        match (&opt_trace, &ref_trace) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a, b, "{label}: TraceReport diverged");
                assert_eq!(a.to_json(), b.to_json(), "{label}: trace bytes diverged");
            }
            _ => panic!("{label}: one engine produced a trace, the other did not"),
        }
        assert_eq!(opt_faults, ref_faults, "{label}: FaultReport diverged");
    }
}

/// The edge both schedules target: the first edge the plan actually uses,
/// so outages bite.
fn used_edge(plan: &AllreducePlan) -> u32 {
    plan.edge_congestion.iter().position(|&c| c > 0).expect("plan uses an edge") as u32
}

const COLLECTIVES: [Collective; 5] = Collective::ALL;

#[test]
fn low_depth_all_radixes_all_collectives() {
    for q in [3u64, 5, 7, 9, 11] {
        let plan = AllreducePlan::low_depth(q).unwrap();
        let m = 300;
        for kind in COLLECTIVES {
            Case::new(plan.clone(), m).assert_identical(kind, &format!("low_depth q={q} {kind:?}"));
        }
    }
}

#[test]
fn edge_disjoint_plans_match() {
    for q in [3u64, 7] {
        let plan = AllreducePlan::edge_disjoint(q, 40, 0xD1FF).unwrap();
        for kind in COLLECTIVES {
            Case::new(plan.clone(), 400)
                .assert_identical(kind, &format!("edge_disjoint q={q} {kind:?}"));
        }
    }
}

#[test]
fn capped_runs_match() {
    // Per-router and per-node caps exercise the lazy epoch-stamped budget
    // refill against the reference's eager per-cycle memset, including the
    // budget-stall rearm path of the active set.
    let plan = AllreducePlan::low_depth(7).unwrap();
    for (caps, label) in [
        (SimConfig { max_reductions_per_router: Some(1), ..Default::default() }, "engine cap"),
        (SimConfig { max_injections_per_node: Some(1), ..Default::default() }, "inject cap"),
        (
            SimConfig {
                max_reductions_per_router: Some(2),
                max_injections_per_node: Some(1),
                ..Default::default()
            },
            "both caps",
        ),
    ] {
        let mut case = Case::new(plan.clone(), 400);
        case.cfg = caps;
        case.assert_identical(Collective::Allreduce, label);
        // The sharded pair splits the cap pressure: reduce-scatter leans
        // on the engine/injection budgets, allgather on neither (no
        // reductions) — both must still match cycle-for-cycle.
        case.assert_identical(Collective::ReduceScatter, &format!("{label} reduce_scatter"));
        case.assert_identical(Collective::Allgather, &format!("{label} allgather"));
    }
}

#[test]
fn tight_queue_configs_match() {
    // Small buffers produce heavy credit stalls (active channels with no
    // winner); a 1-flit VC serializes to round-trip rate and leans on the
    // skip path through the latency gaps.
    let plan = AllreducePlan::low_depth(5).unwrap();
    for (cfg, label) in [
        (SimConfig { vc_buffer: 1, ..Default::default() }, "vc=1"),
        (SimConfig { source_queue: 1, ..Default::default() }, "sq=1"),
        (SimConfig { link_latency: 9, vc_buffer: 3, ..Default::default() }, "latency>buffer"),
    ] {
        let mut case = Case::new(plan.clone(), 250);
        case.cfg = cfg;
        case.assert_identical(Collective::Allreduce, label);
    }
}

#[test]
fn traced_runs_match_to_the_byte() {
    // Tracing pins per-cycle stepping in the optimized engine; every
    // stall-attribution, occupancy and timeline sample must land on the
    // same cycle with the same value as the reference full scan.
    let plan = AllreducePlan::low_depth(5).unwrap();
    for (tcfg, label) in
        [(TraceConfig::counters(), "counters"), (TraceConfig::with_timeline(64), "timeline")]
    {
        for kind in COLLECTIVES {
            let mut case = Case::new(plan.clone(), 300);
            case.trace = Some(tcfg);
            case.assert_identical(kind, &format!("trace {label} {kind:?}"));
        }
    }
}

#[test]
fn traced_capped_runs_match() {
    // Budget stalls are the only tracer rows whose attribution depends on
    // the lazy refill: pin them against the reference.
    let plan = AllreducePlan::low_depth(7).unwrap();
    let mut case = Case::new(plan, 300);
    case.cfg = SimConfig { max_reductions_per_router: Some(1), ..Default::default() };
    case.trace = Some(TraceConfig::counters());
    case.assert_identical(Collective::Allreduce, "traced + engine cap");
}

#[test]
fn incomplete_runs_match() {
    // max_cycles exhaustion: the skip path must land on exactly the same
    // final cycle count as the reference's idle ticking.
    let plan = AllreducePlan::low_depth(5).unwrap();
    let mut case = Case::new(plan, 5_000);
    case.cfg = SimConfig { max_cycles: 700, ..Default::default() };
    case.assert_identical(Collective::Allreduce, "max_cycles backstop");
}

#[test]
fn faulted_runs_match() {
    let plan = AllreducePlan::low_depth(7).unwrap();
    let e = used_edge(&plan);
    let schedules: Vec<(FaultSchedule, &str)> = vec![
        (FaultSchedule::permanent_links(&[e], 50), "permanent link"),
        (
            FaultSchedule {
                events: vec![FaultEvent {
                    cycle: 50,
                    target: FaultTarget::Link(e),
                    kind: FaultKind::Down,
                    duration: Some(40),
                }],
                detection: DetectionConfig::default(),
            },
            "transient link",
        ),
        (
            FaultSchedule {
                events: vec![FaultEvent {
                    cycle: 1,
                    target: FaultTarget::Link(e),
                    kind: FaultKind::Degraded { period: 4 },
                    duration: None,
                }],
                detection: DetectionConfig::default(),
            },
            "degraded link",
        ),
        (
            FaultSchedule {
                events: vec![FaultEvent {
                    cycle: 30,
                    target: FaultTarget::Router(3),
                    kind: FaultKind::Down,
                    duration: None,
                }],
                detection: DetectionConfig::default(),
            },
            "router down",
        ),
        (
            FaultSchedule {
                events: vec![FaultEvent {
                    cycle: 40,
                    target: FaultTarget::Link(e),
                    kind: FaultKind::Down,
                    duration: Some(200),
                }],
                detection: DetectionConfig {
                    timeout: 16,
                    max_retries: 4,
                    abort_on_detection: false,
                },
            },
            "no-abort detection",
        ),
        (FaultSchedule::none(), "empty schedule"),
        (FaultSchedule::permanent_links(&[e], 1_000_000_000), "never fires"),
    ];
    for (schedule, label) in schedules {
        let mut case = Case::new(plan.clone(), 1_500);
        case.faults = Some(schedule);
        case.assert_identical(Collective::Allreduce, label);
    }
}

#[test]
fn faulted_sharded_collectives_match() {
    // The new collectives under fault schedules: a healing transient (the
    // frozen-wire arrival path), a permanent outage with detection, and a
    // dead router — for both halves of the sharded-training pair.
    let plan = AllreducePlan::low_depth(7).unwrap();
    let e = used_edge(&plan);
    let schedules: Vec<(FaultSchedule, &str)> = vec![
        (
            FaultSchedule {
                events: vec![FaultEvent {
                    cycle: 50,
                    target: FaultTarget::Link(e),
                    kind: FaultKind::Down,
                    duration: Some(40),
                }],
                detection: DetectionConfig::default(),
            },
            "transient link",
        ),
        (FaultSchedule::permanent_links(&[e], 50), "permanent link"),
        (
            FaultSchedule {
                events: vec![FaultEvent {
                    cycle: 30,
                    target: FaultTarget::Router(3),
                    kind: FaultKind::Down,
                    duration: None,
                }],
                detection: DetectionConfig::default(),
            },
            "router down",
        ),
    ];
    for (schedule, label) in schedules {
        for kind in [Collective::ReduceScatter, Collective::Allgather] {
            let mut case = Case::new(plan.clone(), 1_500);
            case.faults = Some(schedule.clone());
            case.assert_identical(kind, &format!("{label} {kind:?}"));
        }
    }
}

#[test]
fn traced_faulted_runs_match() {
    // The full stack: tracer rows, fault rows, and the fault table folded
    // into the trace must all serialize to the same bytes.
    let plan = AllreducePlan::low_depth(7).unwrap();
    let e = used_edge(&plan);
    let mut case = Case::new(plan, 1_000);
    case.trace = Some(TraceConfig::counters());
    case.faults = Some(FaultSchedule::permanent_links(&[e], 50));
    case.assert_identical(Collective::Allreduce, "traced + permanent fault");
    case.assert_identical(Collective::ReduceScatter, "traced + fault reduce_scatter");
    case.assert_identical(Collective::Allgather, "traced + fault allgather");
}

#[test]
fn constructed_plans_match_on_generic_substrates() {
    // Plans from the pluggable TreeConstruction backends drive the same
    // engines as the paper's PolarFly plans; the byte-identity contract
    // must hold off-PolarFly too (torus, star product, random graph).
    use pf_allreduce::substrates;
    use pf_allreduce::{
        Budget, GreedyPeel, KaryMultitree, StarProductDisjoint, TreeConstruction,
    };
    use pf_graph::{builders, shifted_product, Graph};

    let torus = pf_topo::torus::Torus::new(&[4, 4]).graph().clone();
    let er = substrates::erdos_renyi_connected(20, 30, 0xE5);
    let sp = shifted_product(&builders::cycle(4), &builders::complete(4));
    let star = sp.graph().clone();
    let cases: Vec<(&Graph, Box<dyn TreeConstruction>, &str)> = vec![
        (&torus, Box::new(KaryMultitree { k: 3 }), "kary torus-4x4"),
        (&er, Box::new(GreedyPeel { seed: 7 }), "greedy-peel er-n20"),
        (&star, Box::new(StarProductDisjoint::new(sp.clone(), 3)), "star-disjoint c4xk4"),
    ];
    for (g, backend, label) in cases {
        let plan = AllreducePlan::construct(g, backend.as_ref(), &Budget::unlimited())
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        for kind in COLLECTIVES {
            Case::new(plan.clone(), 300).assert_identical(kind, &format!("{label} {kind:?}"));
        }
    }
}

#[test]
fn constructed_plans_match_under_faults() {
    // A constructed plan with a mid-run permanent outage: detection,
    // retries and the fault table must serialize identically.
    use pf_allreduce::{Budget, KaryMultitree};
    let g = pf_topo::torus::Torus::new(&[4, 4]).graph().clone();
    let plan =
        AllreducePlan::construct(&g, &KaryMultitree { k: 3 }, &Budget::unlimited()).unwrap();
    let e = used_edge(&plan);
    let mut case = Case::new(plan, 800);
    case.trace = Some(TraceConfig::counters());
    case.faults = Some(FaultSchedule::permanent_links(&[e], 60));
    case.assert_identical(Collective::Allreduce, "constructed + traced + fault");
}

#[test]
fn batched_steady_state_matches_at_scale() {
    // Large m drives the run into a long saturated steady state, so the
    // batch replay (engine.rs `batch_step`) covers most of the simulated
    // cycles — and the deterministic sharded mode must merge back to the
    // same bytes. Three-way check: reference, optimized single-thread
    // (batched), optimized sharded.
    for q in [5u64, 7, 11] {
        let plan = AllreducePlan::low_depth(q).unwrap();
        let m = 20_000;
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let kind = Collective::Allreduce;
        let (ref_report, _, _) =
            Simulator::new(&plan.graph, &emb, SimConfig::default()).run_reference(&w, kind);
        assert!(ref_report.completed && ref_report.mismatches == 0);
        for threads in [1usize, 2, 4, 8] {
            let cfg = SimConfig { threads, ..SimConfig::default() };
            let (report, _, _) =
                Simulator::new(&plan.graph, &emb, cfg).run_optimized(&w, kind);
            assert_eq!(
                report, ref_report,
                "batched saturated q={q} threads={threads}: SimReport diverged"
            );
        }
    }
}

#[test]
fn batched_contention_jobs_match_across_threads() {
    // Two tenants on disjoint tree halves (the perf-snapshot contention
    // regime): the job accounting path must be byte-deterministic across
    // thread counts, and the engine decisions must coincide with the
    // reference running the identical embedding as one plain collective.
    use crate::engine::JobBinding;
    use crate::workload::{JobSegment, ReduceKind};

    for q in [5u64, 7, 11] {
        let plan = AllreducePlan::low_depth(q).unwrap();
        let m = 10_000u64;
        let half = (plan.trees.len() / 2).max(1);
        let idx_a: Vec<usize> = (0..half).collect();
        let idx_b: Vec<usize> = (half..plan.trees.len()).collect();
        let sub_a = plan.tree_subset(&idx_a);
        let sub_b = plan.tree_subset(&idx_b);
        let (m_a, m_b) = (m / 2, m - m / 2);
        let (split_a, split_b) = (sub_a.split(m_a), sub_b.split(m_b));
        let mut trees = sub_a.trees.clone();
        trees.extend(sub_b.trees.iter().cloned());
        let mut sizes = split_a.clone();
        sizes.extend_from_slice(&split_b);
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut off = 0u64;
        for &len in &split_a {
            offsets.push(off);
            off += len;
        }
        let mut off = m_a;
        for &len in &split_b {
            offsets.push(off);
            off += len;
        }
        let emb = MultiTreeEmbedding::with_offsets(&plan.graph, &trees, &sizes, &offsets);
        let w = Workload::concat(
            plan.graph.num_vertices(),
            &[
                JobSegment::full(m_a, ReduceKind::WrappingU64),
                JobSegment::full(m_b, ReduceKind::WrappingU64),
            ],
        );
        let bindings = [
            JobBinding { trees: 0..half, release: 0 },
            JobBinding { trees: half..trees.len(), release: 0 },
        ];
        let base = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .run_jobs(&w, &bindings);
        assert!(base.report.completed && base.report.mismatches == 0);
        for threads in [2usize, 4, 8] {
            let cfg = SimConfig { threads, ..SimConfig::default() };
            let run = Simulator::new(&plan.graph, &emb, cfg).run_jobs(&w, &bindings);
            assert_eq!(
                run.report, base.report,
                "contention q={q} threads={threads}: SimReport diverged"
            );
            assert_eq!(
                run.jobs, base.jobs,
                "contention q={q} threads={threads}: job outcomes diverged"
            );
        }
        let (ref_report, _, _) = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .run_reference(&w, Collective::Allreduce);
        assert_eq!(
            base.report, ref_report,
            "contention q={q}: jobs run diverged from reference collective"
        );
    }
}

#[test]
fn fault_transitions_break_batch_spans() {
    // A transient outage deep in the saturated steady state: by then the
    // batch replay is armed and fast-forwarding, so its window margin
    // must clip exactly at the fault's activation cycle (and again at the
    // heal) or detection stamps and frozen-subtree timing shift. Traced
    // variants pin per-cycle stepping on top of the same schedule.
    let plan = AllreducePlan::low_depth(7).unwrap();
    let e = used_edge(&plan);
    let schedule = FaultSchedule {
        events: vec![FaultEvent {
            cycle: 2_000,
            target: FaultTarget::Link(e),
            kind: FaultKind::Down,
            duration: Some(500),
        }],
        detection: DetectionConfig { timeout: 32, max_retries: 3, abort_on_detection: false },
    };
    let mut case = Case::new(plan.clone(), 20_000);
    case.faults = Some(schedule.clone());
    case.assert_identical(Collective::Allreduce, "mid-steady-state transient");
    let mut traced = Case::new(plan, 20_000);
    traced.trace = Some(TraceConfig::counters());
    traced.faults = Some(schedule);
    traced.assert_identical(Collective::Allreduce, "traced mid-steady-state transient");
}

#[test]
fn zero_length_and_tiny_vectors_match() {
    let plan = AllreducePlan::low_depth(3).unwrap();
    for m in [0u64, 1, 2, 13] {
        for kind in COLLECTIVES {
            Case::new(plan.clone(), m).assert_identical(kind, &format!("m={m} {kind:?}"));
        }
    }
}
