//! The pre-optimization stepper, retained verbatim as the differential
//! oracle for the active-set engine.
//!
//! This module is the hot loop as it existed before the active-set /
//! cycle-skip rewrite: per-cycle full scans over every (tree, node)
//! engine, every stream and every directed channel, `VecDeque` queues,
//! eagerly refilled budgets, and per-fire `Vec` clones. It is compiled
//! only for tests and under the `reference-engine` feature (the
//! `experiments perf-snapshot` harness measures the optimized engine's
//! speedup against it); production code always gets the optimized engine.
//!
//! The differential suite (`crate::difftest`) asserts that both steppers
//! produce byte-identical [`SimReport`]s, trace JSON and [`FaultReport`]s
//! — any behavioral change to one side must be made to both.

use super::{Collective, SimReport, Simulator};
use crate::embedding::Phase;
use crate::faults::FaultReport;
use crate::trace::{EngineStall, TraceReport};
use crate::workload::Workload;
use std::collections::VecDeque;

/// Per-(tree, node) dataflow wiring and progress.
#[derive(Debug, Clone)]
struct Engine {
    reduce_in: Vec<u32>,
    reduce_out: Option<u32>,
    bcast_in: Option<u32>,
    bcast_out: Vec<u32>,
    /// Local elements consumed by the reduction (0..len).
    reduced: u64,
    /// Broadcast elements delivered locally (0..len).
    delivered: u64,
}

/// One logical stream's queues.
#[derive(Debug, Clone)]
struct StreamState {
    sendq: VecDeque<u64>,
    inflight: VecDeque<(u64, u64)>, // (arrival cycle, value)
    recvq: VecDeque<u64>,
}

/// Runs `w` on the reference stepper, consuming the simulator (including
/// its tracer and fault layer, exactly like the optimized `run_inner`).
pub(super) fn run(
    sim: Simulator<'_>,
    w: &Workload,
    kind: Collective,
) -> (SimReport, Option<TraceReport>, Option<FaultReport>) {
    let Simulator { emb, cfg, tracer, faults } = sim;
    assert_eq!(w.nodes(), emb.num_nodes);
    assert!(
        w.len() >= emb.elem_end(),
        "workload must cover every tree slice's global element range"
    );

    let n = emb.num_nodes as usize;
    let mut engines: Vec<Vec<Engine>> = emb
        .trees
        .iter()
        .map(|_| {
            (0..n)
                .map(|_| Engine {
                    reduce_in: Vec::new(),
                    reduce_out: None,
                    bcast_in: None,
                    bcast_out: Vec::new(),
                    reduced: 0,
                    delivered: 0,
                })
                .collect()
        })
        .collect();
    for (si, s) in emb.streams.iter().enumerate() {
        let si = si as u32;
        match s.phase {
            Phase::Reduce => {
                engines[s.tree as usize][s.dst as usize].reduce_in.push(si);
                engines[s.tree as usize][s.src as usize].reduce_out = Some(si);
            }
            Phase::Broadcast => {
                engines[s.tree as usize][s.src as usize].bcast_out.push(si);
                engines[s.tree as usize][s.dst as usize].bcast_in = Some(si);
            }
        }
    }
    let mut streams = vec![
        StreamState {
            sendq: VecDeque::new(),
            inflight: VecDeque::new(),
            recvq: VecDeque::new(),
        };
        emb.streams.len()
    ];
    let mut rr = vec![0usize; emb.channel_streams.len()];
    let mut channel_flits = vec![0u64; emb.channel_streams.len()];
    let mut max_vc_occupancy = 0usize;

    // Deliveries per tree: every node when the collective broadcasts
    // down, the root shard only for reduce / reduce-scatter.
    let per_tree_sinks = kind.sinks_per_tree(emb.num_nodes as u64);
    let total_deliveries: u64 = emb.trees.iter().map(|t| t.len * per_tree_sinks).sum();
    let live_pairs: u64 = emb
        .trees
        .iter()
        .map(|t| if t.len > 0 { per_tree_sinks } else { 0 })
        .sum();
    let mut first_done_pairs = 0u64;
    let mut first_element_latency = 0u64;
    let mut deliveries = 0u64;
    let mut mismatches = 0u64;
    let mut value_digest = 0u64;
    let mut tree_completion = vec![0u64; emb.trees.len()];
    let mut tree_deliveries = vec![0u64; emb.trees.len()];
    let mut engine_budget = vec![0u32; n];
    let mut inject_budget = vec![0u32; n];
    let mut tracer = tracer;
    let mut faults = faults;

    let mut cycle = 0u64;
    while deliveries < total_deliveries
        && cycle < cfg.max_cycles
        && !faults.as_ref().is_some_and(|f| f.should_abort())
    {
        cycle += 1;
        if let Some(fs) = faults.as_mut() {
            fs.begin_cycle(cycle);
        }
        if let Some(cap) = cfg.max_reductions_per_router {
            engine_budget.fill(cap);
        }
        if let Some(cap) = cfg.max_injections_per_node {
            inject_budget.fill(cap);
        }

        // 1. Arrivals. Flits in flight on a dead channel are stuck on the
        // wire: they arrive only after the fault heals (transient outages
        // delay, they never drop data).
        for (s, st) in streams.iter_mut().enumerate() {
            if faults.as_ref().is_some_and(|f| f.arrivals_frozen(s)) {
                continue;
            }
            while st.inflight.front().is_some_and(|&(t, _)| t <= cycle) {
                let (_, v) = st.inflight.pop_front().unwrap();
                st.recvq.push_back(v);
            }
        }

        // 2. Compute.
        // Rotate tree priority per cycle so shared per-node budgets
        // (engine/injection caps) are served max-min fairly instead of
        // starving high-index trees.
        let ntrees = emb.trees.len();
        for ti in (0..ntrees).map(|i| (i + cycle as usize) % ntrees.max(1)) {
            let tree = &emb.trees[ti];
            if tree.len == 0 {
                continue;
            }
            // The broadcast's expected payload: the global reduction for
            // allreduce/allgather, the root's own input for a pure
            // broadcast.
            let expected = |elem: u64| match kind {
                Collective::Broadcast => w.input(tree.root, tree.offset + elem),
                _ => w.expected(tree.offset + elem),
            };
            let mut deliver = |eng: &mut Engine,
                               node: u32,
                               val: u64,
                               deliveries: &mut u64,
                               tree_deliveries: &mut [u64]| {
                value_digest = value_digest.wrapping_add(super::delivery_digest_entry(
                    node as u64,
                    tree.offset + eng.delivered,
                    val,
                ));
                eng.delivered += 1;
                if eng.delivered == 1 {
                    first_done_pairs += 1;
                    if first_done_pairs == live_pairs {
                        first_element_latency = cycle;
                    }
                }
                *deliveries += 1;
                tree_deliveries[ti] += 1;
                if tree_deliveries[ti] == tree.len * per_tree_sinks {
                    tree_completion[ti] = cycle;
                }
            };
            for v in 0..emb.num_nodes {
                // A dead router's engines and relays are halted.
                if faults.as_ref().is_some_and(|f| f.router_is_down(v as usize)) {
                    continue;
                }
                let is_root = tree.root == v;

                // -- Reduction engine (allreduce / reduce / reduce-scatter) --
                let eng = &engines[ti][v as usize];
                if kind.reduces() && eng.reduced < tree.len {
                    let engine_free =
                        cfg.max_reductions_per_router.is_none() || engine_budget[v as usize] > 0;
                    let inject_free =
                        cfg.max_injections_per_node.is_none() || inject_budget[v as usize] > 0;
                    let inputs_ready =
                        eng.reduce_in.iter().all(|&s| !streams[s as usize].recvq.is_empty());
                    let out_ok = match eng.reduce_out {
                        Some(s) => streams[s as usize].sendq.len() < cfg.source_queue,
                        None => true,
                    };
                    // An allreduce root turns the result straight into the
                    // broadcast, so it needs space on every down stream.
                    let bcast_ok = !(is_root && kind == Collective::Allreduce)
                        || eng
                            .bcast_out
                            .iter()
                            .all(|&s| streams[s as usize].sendq.len() < cfg.source_queue);
                    if let Some(tr) = tracer.as_mut() {
                        if !(engine_free && inject_free && inputs_ready && out_ok && bcast_ok) {
                            // Attribute the stall: missing inputs first
                            // (most fundamental), then budget, then a
                            // blocked output path.
                            let why = if !inputs_ready {
                                EngineStall::InputStarved
                            } else if !engine_free || !inject_free {
                                EngineStall::Budget
                            } else {
                                EngineStall::OutputBlocked
                            };
                            tr.engine_stalled(v as usize, why);
                        } else {
                            tr.reduction_fired(v as usize);
                        }
                    }
                    if engine_free && inject_free && inputs_ready && out_ok && bcast_ok {
                        if cfg.max_reductions_per_router.is_some() {
                            engine_budget[v as usize] -= 1;
                        }
                        if cfg.max_injections_per_node.is_some() {
                            inject_budget[v as usize] -= 1;
                        }
                        let eng = &mut engines[ti][v as usize];
                        let elem = eng.reduced;
                        eng.reduced += 1;
                        let mut acc = w.input(v, tree.offset + elem);
                        let ins: Vec<u32> = eng.reduce_in.clone();
                        for s in ins {
                            let x = streams[s as usize].recvq.pop_front().unwrap();
                            acc = w.combine_at(tree.offset + elem, acc, x);
                        }
                        let eng = &engines[ti][v as usize];
                        if is_root {
                            if !w.value_close_at(tree.offset + elem, acc, w.expected(tree.offset + elem)) {
                                mismatches += 1;
                            }
                            if kind == Collective::Allreduce {
                                let outs: Vec<u32> = eng.bcast_out.clone();
                                for s in outs {
                                    streams[s as usize].sendq.push_back(acc);
                                }
                            }
                            deliver(
                                &mut engines[ti][v as usize],
                                v,
                                acc,
                                &mut deliveries,
                                &mut tree_deliveries,
                            );
                        } else {
                            let s = eng.reduce_out.unwrap();
                            streams[s as usize].sendq.push_back(acc);
                        }
                    }
                }

                // -- Broadcast source (broadcast / allgather root) --
                let eng = &engines[ti][v as usize];
                if kind.root_sources_broadcast() && is_root && eng.delivered < tree.len {
                    let space = eng
                        .bcast_out
                        .iter()
                        .all(|&s| streams[s as usize].sendq.len() < cfg.source_queue);
                    if let Some(tr) = tracer.as_mut() {
                        if space {
                            tr.relay_fired(v as usize);
                        } else {
                            tr.engine_stalled(v as usize, EngineStall::OutputBlocked);
                        }
                    }
                    if space {
                        let eng = &mut engines[ti][v as usize];
                        let elem = eng.delivered;
                        // A broadcast root sends its own contribution; an
                        // allgather root sends its slice of the global
                        // reduction — the state a preceding reduce-scatter
                        // left it with.
                        let val = match kind {
                            Collective::Broadcast => w.input(v, tree.offset + elem),
                            _ => w.expected(tree.offset + elem),
                        };
                        let outs: Vec<u32> = eng.bcast_out.clone();
                        for s in outs {
                            streams[s as usize].sendq.push_back(val);
                        }
                        deliver(eng, v, val, &mut deliveries, &mut tree_deliveries);
                    }
                }

                // -- Broadcast relay (allreduce / broadcast / allgather) --
                let eng = &engines[ti][v as usize];
                if kind.broadcasts() {
                    if let Some(bin) = eng.bcast_in {
                        let input_ready = !streams[bin as usize].recvq.is_empty();
                        let out_ok = eng
                            .bcast_out
                            .iter()
                            .all(|&s| streams[s as usize].sendq.len() < cfg.source_queue);
                        if eng.delivered < tree.len {
                            if let Some(tr) = tracer.as_mut() {
                                if input_ready && out_ok {
                                    tr.relay_fired(v as usize);
                                } else {
                                    tr.engine_stalled(
                                        v as usize,
                                        if !input_ready {
                                            EngineStall::InputStarved
                                        } else {
                                            EngineStall::OutputBlocked
                                        },
                                    );
                                }
                            }
                        }
                        if eng.delivered < tree.len && input_ready && out_ok {
                            let val = streams[bin as usize].recvq.pop_front().unwrap();
                            let eng = &mut engines[ti][v as usize];
                            let elem = eng.delivered;
                            if !w.value_close_at(tree.offset + elem, val, expected(elem)) {
                                mismatches += 1;
                            }
                            let outs: Vec<u32> = eng.bcast_out.clone();
                            for s in outs {
                                streams[s as usize].sendq.push_back(val);
                            }
                            deliver(eng, v, val, &mut deliveries, &mut tree_deliveries);
                        }
                    }
                }
            }
        }

        // 3. Transmit: one flit per directed channel per cycle. The winner
        // — first resident stream in round-robin order with both data and
        // credit — is found first and the flit moved after, so the tracer
        // can observe every member without changing arbitration (with
        // tracing off the scan stops at the winner, which is the identical
        // decision).
        for (c, members) in emb.channel_streams.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            // A faulted channel transmits nothing this cycle. Full outages
            // additionally charge a stall to every resident stream with
            // staged data — the timeout/retry detector. (Tracer
            // channel/stream hooks are skipped: the channel is physically
            // dead, not arbitrating.)
            if let Some(fs) = faults.as_mut() {
                if fs.channel_blocked(c, cycle) {
                    if fs.channel_down(c) {
                        let streams = &streams;
                        fs.observe_outage(c, members, |s| !streams[s].sendq.is_empty(), cycle);
                    }
                    continue;
                }
            }
            let k = members.len();
            let start = rr[c];
            let mut winner: Option<(usize, usize)> = None; // (rr offset, stream)
            if let Some(tr) = tracer.as_mut() {
                let mut any_data = false;
                for off in 0..k {
                    let s = members[(start + off) % k] as usize;
                    let st = &streams[s];
                    let occupancy = st.recvq.len() + st.inflight.len();
                    let has_data = !st.sendq.is_empty();
                    let has_credit = occupancy < cfg.vc_buffer;
                    if winner.is_none() && has_data && has_credit {
                        winner = Some((off, s));
                    }
                    any_data |= has_data;
                    let won = winner.is_some_and(|(_, w)| w == s);
                    tr.observe_stream(
                        s,
                        st.sendq.len() as u64,
                        (occupancy + won as usize) as u64,
                        has_data,
                        has_credit,
                        won,
                    );
                }
                tr.observe_channel(c, winner.is_some(), any_data);
            } else {
                for off in 0..k {
                    let s = members[(start + off) % k] as usize;
                    let st = &streams[s];
                    if !st.sendq.is_empty() && st.recvq.len() + st.inflight.len() < cfg.vc_buffer {
                        winner = Some((off, s));
                        break;
                    }
                }
            }
            if let Some((off, s)) = winner {
                let st = &mut streams[s];
                let occupancy = st.recvq.len() + st.inflight.len();
                let v = st.sendq.pop_front().unwrap();
                st.inflight.push_back((cycle + cfg.link_latency as u64, v));
                channel_flits[c] += 1;
                max_vc_occupancy = max_vc_occupancy.max(occupancy + 1);
                rr[c] = (start + off + 1) % k;
                if let Some(fs) = faults.as_mut() {
                    fs.note_progress(s);
                }
            }
        }

        if let Some(tr) = tracer.as_mut() {
            if tr.timeline_due(cycle) {
                tr.sample_timeline(cycle, deliveries);
            }
        }
    }

    let completed = deliveries == total_deliveries;
    let max_util =
        channel_flits.iter().map(|&f| f as f64 / cycle.max(1) as f64).fold(0.0, f64::max);
    let fault_report = faults.map(|f| f.finish(completed));
    let mut trace = tracer.map(|mut tr| {
        tr.sample_timeline(cycle, deliveries); // final sample (timeline runs only)
        tr.finish(emb, cycle)
    });
    if let Some(t) = trace.as_mut() {
        t.collective = kind.name().to_string();
    }
    if let (Some(t), Some(fr)) = (trace.as_mut(), fault_report.as_ref()) {
        t.faults = fr.records.clone();
    }
    let report = SimReport {
        cycles: cycle,
        total_elems: emb.total_len,
        completed,
        mismatches,
        value_digest,
        measured_bandwidth: emb.total_len as f64 / cycle.max(1) as f64,
        tree_completion,
        first_element_latency,
        channel_flits,
        max_channel_utilization: max_util,
        max_vc_occupancy,
    };
    (report, trace, fault_report)
}
