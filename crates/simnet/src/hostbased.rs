//! Congestion-aware phase models of host-based allreduce baselines (§4.2,
//! §8 of the paper).
//!
//! Host-based algorithms proceed in synchronous communication rounds; each
//! round's point-to-point messages are routed minimally over the physical
//! topology, and contended channels serialize (see
//! [`crate::routing::phase_time`]). On top of link time, every round pays a
//! per-phase software overhead — the protocol/memory-copy cost that
//! in-network computing eliminates (§4.3: a single transfer from
//! application memory to the network).
//!
//! Implemented baselines:
//! * **Ring allreduce** (reduce-scatter + allgather around a ring) —
//!   bandwidth-optimal per node, `2(N-1)` rounds,
//! * **Recursive doubling** — latency-optimal, `log2 N` rounds of
//!   full-vector exchanges,
//! * **Rabenseifner** (recursive halving reduce-scatter + recursive
//!   doubling allgather) — bandwidth-optimal on powers of two.

use crate::routing::{phase_profile, phase_time, PhaseProfile, Routing};
use pf_graph::{Graph, VertexId};

/// Cost parameters of the host-based models.
#[derive(Debug, Clone, Copy)]
pub struct HostParams {
    /// Per-hop pipeline latency (same unit as the cycle-level simulator).
    pub hop_latency: u64,
    /// Fixed software cost charged to every round (protocol stack, memory
    /// staging). In-network trees pay this once, not per round.
    pub phase_overhead: u64,
}

impl Default for HostParams {
    fn default() -> Self {
        HostParams { hop_latency: 4, phase_overhead: 200 }
    }
}

fn ceil_div(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Ring allreduce: `2(N-1)` rounds, each node passing a `⌈m/N⌉` chunk to
/// its ring successor (node ids in order).
pub fn ring_allreduce_time(g: &Graph, routing: &Routing, m: u64, p: HostParams) -> u64 {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return 0;
    }
    let chunk = ceil_div(m, n);
    let messages: Vec<(VertexId, VertexId, u64)> =
        (0..n as u32).map(|i| (i, (i + 1) % n as u32, chunk)).collect();
    let round = phase_time(g, routing, &messages, p.hop_latency) + p.phase_overhead;
    2 * (n - 1) * round
}

/// Observability breakdown of [`ring_allreduce_time`]: every round shares
/// one message pattern, so a single round's [`PhaseProfile`] explains the
/// whole schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct RingProfile {
    /// Number of rounds: `2(N-1)` for the full allreduce, `(N-1)` for a
    /// lone reduce-scatter or allgather phase.
    pub rounds: u64,
    /// Congestion profile of the representative round.
    pub round: PhaseProfile,
    /// Software overhead charged per round.
    pub round_overhead: u64,
    /// Total cycles — always equals [`ring_allreduce_time`].
    pub total: u64,
}

/// Profiled variant of [`ring_allreduce_time`] (identical arithmetic).
/// Returns `None` for degenerate inputs where the time is 0.
pub fn ring_allreduce_profile(
    g: &Graph,
    routing: &Routing,
    m: u64,
    p: HostParams,
) -> Option<RingProfile> {
    ring_phase_profile(g, routing, m, p, 2)
}

/// The shared ring-phase arithmetic: every round of a ring collective
/// moves the same `⌈m/N⌉`-chunk neighbor pattern, and a full allreduce is
/// two back-to-back `(N-1)`-round phases (`rounds_per_phase` 1 for a
/// single phase, 2 for the allreduce).
fn ring_phase_profile(
    g: &Graph,
    routing: &Routing,
    m: u64,
    p: HostParams,
    phases: u64,
) -> Option<RingProfile> {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return None;
    }
    let chunk = ceil_div(m, n);
    let messages: Vec<(VertexId, VertexId, u64)> =
        (0..n as u32).map(|i| (i, (i + 1) % n as u32, chunk)).collect();
    let round = phase_profile(g, routing, &messages, p.hop_latency);
    let rounds = phases * (n - 1);
    let total = rounds * (round.time() + p.phase_overhead);
    Some(RingProfile { rounds, round, round_overhead: p.phase_overhead, total })
}

/// Ring reduce-scatter: the first phase of [`ring_allreduce_time`] on its
/// own — `(N-1)` rounds, each node passing a reduced `⌈m/N⌉` chunk to its
/// ring successor, after which node `i` holds slice `i` of the global
/// reduction. Exactly half the allreduce's rounds (and, round pattern
/// being identical, exactly half its time), which is what makes the ring
/// the like-for-like host-based baseline for the in-network
/// `Collective::ReduceScatter`.
pub fn ring_reduce_scatter_time(g: &Graph, routing: &Routing, m: u64, p: HostParams) -> u64 {
    ring_reduce_scatter_profile(g, routing, m, p).map_or(0, |pr| pr.total)
}

/// Profiled variant of [`ring_reduce_scatter_time`] (identical
/// arithmetic). Returns `None` for degenerate inputs where the time is 0.
pub fn ring_reduce_scatter_profile(
    g: &Graph,
    routing: &Routing,
    m: u64,
    p: HostParams,
) -> Option<RingProfile> {
    ring_phase_profile(g, routing, m, p, 1)
}

/// Ring allgather: the second phase of [`ring_allreduce_time`] on its own
/// — `(N-1)` rounds circulating the already-reduced slices until every
/// node holds the full `m`-element result. The round pattern is the
/// mirror image of the reduce-scatter's and costs the same, so
/// `ring_reduce_scatter_time + ring_allgather_time == ring_allreduce_time`
/// (pinned by a unit test).
pub fn ring_allgather_time(g: &Graph, routing: &Routing, m: u64, p: HostParams) -> u64 {
    ring_allgather_profile(g, routing, m, p).map_or(0, |pr| pr.total)
}

/// Profiled variant of [`ring_allgather_time`] (identical arithmetic).
/// Returns `None` for degenerate inputs where the time is 0.
pub fn ring_allgather_profile(
    g: &Graph,
    routing: &Routing,
    m: u64,
    p: HostParams,
) -> Option<RingProfile> {
    ring_phase_profile(g, routing, m, p, 1)
}

/// Recursive doubling: pre/post rounds fold non-power-of-two stragglers
/// onto the power-of-two core, then `log2(p)` rounds of full-`m` pairwise
/// exchanges with partner `i XOR 2^k`.
pub fn recursive_doubling_time(g: &Graph, routing: &Routing, m: u64, p: HostParams) -> u64 {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return 0;
    }
    let pow = 1u64 << (63 - n.leading_zeros() as u64); // largest power of two <= n
    let extras = n - pow;
    let mut total = 0u64;

    if extras > 0 {
        // Stragglers send their vector down, and receive the result back.
        let pre: Vec<(VertexId, VertexId, u64)> =
            (0..extras as u32).map(|i| (pow as u32 + i, i, m)).collect();
        let post: Vec<(VertexId, VertexId, u64)> =
            (0..extras as u32).map(|i| (i, pow as u32 + i, m)).collect();
        total += phase_time(g, routing, &pre, p.hop_latency) + p.phase_overhead;
        total += phase_time(g, routing, &post, p.hop_latency) + p.phase_overhead;
    }
    let mut k = 1u64;
    while k < pow {
        let messages: Vec<(VertexId, VertexId, u64)> =
            (0..pow as u32).map(|i| (i, i ^ k as u32, m)).collect();
        total += phase_time(g, routing, &messages, p.hop_latency) + p.phase_overhead;
        k <<= 1;
    }
    total
}

/// Rabenseifner's algorithm: recursive-halving reduce-scatter (message
/// sizes `m/2, m/4, …`) followed by a recursive-doubling allgather
/// (mirrored sizes), with the same straggler pre/post folding.
pub fn rabenseifner_time(g: &Graph, routing: &Routing, m: u64, p: HostParams) -> u64 {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return 0;
    }
    let pow = 1u64 << (63 - n.leading_zeros() as u64);
    let extras = n - pow;
    let mut total = 0u64;
    if extras > 0 {
        let pre: Vec<(VertexId, VertexId, u64)> =
            (0..extras as u32).map(|i| (pow as u32 + i, i, m)).collect();
        let post: Vec<(VertexId, VertexId, u64)> =
            (0..extras as u32).map(|i| (i, pow as u32 + i, m)).collect();
        total += phase_time(g, routing, &pre, p.hop_latency) + p.phase_overhead;
        total += phase_time(g, routing, &post, p.hop_latency) + p.phase_overhead;
    }
    // Reduce-scatter: halving distances pow/2, pow/4, ..., 1 with sizes m/2, m/4, ...
    let mut dist = pow / 2;
    let mut size = ceil_div(m, 2);
    while dist >= 1 {
        let messages: Vec<(VertexId, VertexId, u64)> =
            (0..pow as u32).map(|i| (i, i ^ dist as u32, size)).collect();
        total += phase_time(g, routing, &messages, p.hop_latency) + p.phase_overhead;
        if dist == 1 {
            break;
        }
        dist /= 2;
        size = ceil_div(size, 2);
    }
    // Allgather mirrors the reduce-scatter.
    let mut dist = 1u64;
    let mut size = ceil_div(m, pow);
    while dist < pow {
        let messages: Vec<(VertexId, VertexId, u64)> =
            (0..pow as u32).map(|i| (i, i ^ dist as u32, size)).collect();
        total += phase_time(g, routing, &messages, p.hop_latency) + p.phase_overhead;
        dist *= 2;
        size *= 2;
    }
    total
}

/// Multiported torus allreduce (§1.2's prior work [25, 30, 53]): the
/// vector is split into `2n` slices, one per (dimension, direction) port;
/// each slice runs a ring reduce-scatter + allgather along its
/// dimension's rings, all ports concurrently. Dimension-partitioned links
/// mean the concurrent rings never contend, so the schedule's time is the
/// slowest dimension's ring time.
///
/// This is host-based: every node stages the full `m`-element working
/// vector in memory each round — the "prohibitive for in-network
/// computation" footprint the paper contrasts with the
/// latency-bandwidth-product buffers of pipelined trees.
pub fn multiported_torus_time(t: &pf_topo::torus::Torus, m: u64, p: HostParams) -> u64 {
    let g = t.graph();
    let routing = Routing::new(g);
    let ports = t.radix() as u64;
    if m == 0 || g.num_vertices() <= 1 {
        return 0;
    }
    let slice = ceil_div(m, ports);
    let mut worst = 0u64;
    for (d, &k) in t.dims().iter().enumerate() {
        if k <= 1 {
            continue;
        }
        // One ring round along dimension d: every node sends its chunk of
        // the slice to its +1 neighbor (the -1 direction's slice uses the
        // opposite channels of the same links, also concurrently).
        let chunk = ceil_div(slice, k as u64);
        let msgs: Vec<(VertexId, VertexId, u64)> =
            g.vertices().map(|v| (v, t.step(v, d), chunk)).collect();
        let round = phase_time(g, &routing, &msgs, p.hop_latency) + p.phase_overhead;
        // Reduce-scatter + allgather: 2(k - 1) rounds.
        let total = 2 * (k as u64 - 1) * round;
        worst = worst.max(total);
    }
    worst
}

/// Host-side working-memory footprint of the multiported torus schedule:
/// each node holds its `m`-element vector plus a receive staging buffer of
/// the largest in-flight chunk per port — `Θ(m)` overall.
pub fn multiported_torus_memory_elems(t: &pf_topo::torus::Torus, m: u64) -> u64 {
    let ports = t.radix() as u64;
    let slice = ceil_div(m, ports.max(1));
    let max_chunk = t
        .dims()
        .iter()
        .map(|&k| ceil_div(slice, k as u64))
        .max()
        .unwrap_or(0);
    m + ports * max_chunk
}

/// BlueConnect-style hierarchical allreduce (§8): split the nodes into
/// `g ≈ √N` groups; run reduce-scatter rings inside each group
/// concurrently, an allreduce ring across group leaders per chunk, then
/// allgather rings inside each group. On a *flat* network with uniform
/// links this stays gated by a single link's bandwidth — the §8 point the
/// multi-tree solutions overcome.
pub fn blueconnect_time(g: &Graph, routing: &Routing, m: u64, p: HostParams) -> u64 {
    let n = g.num_vertices() as u64;
    if n <= 1 || m == 0 {
        return 0;
    }
    let groups = (1..=n).rev().find(|&x| x * x <= n).unwrap_or(1);
    let group_size = n.div_ceil(groups);
    let group_of = |v: u64| (v / group_size).min(groups - 1);
    let members = |gi: u64| -> Vec<u32> {
        (0..n).filter(|&v| group_of(v) == gi).map(|v| v as u32).collect()
    };
    let mut total = 0u64;

    // Phase set 1: intra-group ring reduce-scatter (all groups concurrent).
    let max_group = (0..groups).map(|gi| members(gi).len() as u64).max().unwrap();
    let chunk1 = ceil_div(m, max_group.max(1));
    for _round in 0..max_group.saturating_sub(1) {
        let msgs: Vec<(VertexId, VertexId, u64)> = (0..groups)
            .flat_map(|gi| {
                let ms = members(gi);
                let k = ms.len();
                (0..k).map(move |i| (ms[i], ms[(i + 1) % k], chunk1)).collect::<Vec<_>>()
            })
            .filter(|&(s, d, _)| s != d)
            .collect();
        total += phase_time(g, routing, &msgs, p.hop_latency) + p.phase_overhead;
    }

    // Phase set 2: cross-group allreduce ring over same-rank members.
    let chunk2 = ceil_div(chunk1, groups.max(1));
    for _round in 0..2 * groups.saturating_sub(1) {
        let msgs: Vec<(VertexId, VertexId, u64)> = (0..max_group)
            .flat_map(|rank| {
                (0..groups)
                    .filter_map(|gi| {
                        let ms = members(gi);
                        let next = members((gi + 1) % groups);
                        let s = *ms.get(rank as usize)?;
                        let d = *next.get(rank as usize)?;
                        Some((s, d, chunk2))
                    })
                    .collect::<Vec<_>>()
            })
            .filter(|&(s, d, _)| s != d)
            .collect();
        if msgs.is_empty() {
            break;
        }
        total += phase_time(g, routing, &msgs, p.hop_latency) + p.phase_overhead;
    }

    // Phase set 3: intra-group ring allgather (mirror of phase set 1).
    for _round in 0..max_group.saturating_sub(1) {
        let msgs: Vec<(VertexId, VertexId, u64)> = (0..groups)
            .flat_map(|gi| {
                let ms = members(gi);
                let k = ms.len();
                (0..k).map(move |i| (ms[i], ms[(i + 1) % k], chunk1)).collect::<Vec<_>>()
            })
            .filter(|&(s, d, _)| s != d)
            .collect();
        total += phase_time(g, routing, &msgs, p.hop_latency) + p.phase_overhead;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_topo::PolarFly;

    fn setup(q: u64) -> (Graph, Routing) {
        let pf = PolarFly::new(q);
        let g = pf.graph().clone();
        let r = Routing::new(&g);
        (g, r)
    }

    #[test]
    fn zero_cases() {
        let (g, r) = setup(3);
        let p = HostParams::default();
        assert_eq!(ring_allreduce_time(&g, &r, 0, p), 0);
        assert_eq!(recursive_doubling_time(&g, &r, 0, p), 0);
        assert_eq!(rabenseifner_time(&g, &r, 0, p), 0);
    }

    #[test]
    fn ring_scales_linearly_in_n_rounds() {
        let (g, r) = setup(3); // N = 13
        let p = HostParams { hop_latency: 1, phase_overhead: 0 };
        let t = ring_allreduce_time(&g, &r, 1300, p);
        // 24 rounds; chunk 100. Each round's bottleneck channel carries at
        // least one chunk.
        assert!(t >= 24 * 100, "t = {t}");
    }

    #[test]
    fn recursive_doubling_fewer_rounds_but_full_vectors() {
        let (g, r) = setup(3);
        let p = HostParams { hop_latency: 1, phase_overhead: 0 };
        let small = 16;
        // For small vectors, recursive doubling beats ring (fewer rounds).
        let rd = recursive_doubling_time(&g, &r, small, p);
        let ring = ring_allreduce_time(&g, &r, small, p);
        assert!(rd < ring, "rd {rd} vs ring {ring}");
    }

    #[test]
    fn ring_beats_doubling_for_large_vectors() {
        let (g, r) = setup(5); // N = 31
        let p = HostParams { hop_latency: 1, phase_overhead: 0 };
        let big = 1_000_000;
        let rd = recursive_doubling_time(&g, &r, big, p);
        let ring = ring_allreduce_time(&g, &r, big, p);
        assert!(ring < rd, "ring {ring} vs rd {rd}");
    }

    #[test]
    fn rabenseifner_beats_doubling_for_large_vectors() {
        let (g, r) = setup(5);
        let p = HostParams { hop_latency: 1, phase_overhead: 0 };
        let big = 1_000_000;
        let rab = rabenseifner_time(&g, &r, big, p);
        let rd = recursive_doubling_time(&g, &r, big, p);
        assert!(rab < rd, "rab {rab} vs rd {rd}");
    }

    #[test]
    fn multiported_torus_basics() {
        use pf_topo::torus::Torus;
        let t = Torus::new(&[4, 4]);
        let p = HostParams { hop_latency: 1, phase_overhead: 0 };
        assert_eq!(multiported_torus_time(&t, 0, p), 0);
        // m elements over 4 ports, rings of 4: chunk = m/16 per round,
        // 6 rounds -> ~6m/16 plus latency.
        let m = 16_000;
        let time = multiported_torus_time(&t, m, p);
        let expect = 6 * (m / 16 + 1);
        assert!(
            (time as i64 - expect as i64).unsigned_abs() < 50,
            "time {time} vs ~{expect}"
        );
        // Effective per-node bandwidth approaches radix-limited 16m/6m ≈ 2.67
        // elements/cycle — below PolarFly's (q+1)/2 at comparable size.
        let bw = m as f64 / time as f64;
        assert!(bw > 2.2 && bw < 3.0, "bw {bw}");
    }

    #[test]
    fn multiported_memory_is_order_m() {
        use pf_topo::torus::Torus;
        let t = Torus::new(&[4, 4]);
        let m = 10_000;
        let mem = multiported_torus_memory_elems(&t, m);
        assert!(mem >= m);
        assert!(mem < 2 * m);
    }

    #[test]
    fn asymmetric_torus_gated_by_longest_dimension() {
        use pf_topo::torus::Torus;
        let p = HostParams { hop_latency: 1, phase_overhead: 0 };
        let square = Torus::new(&[4, 4]);
        let long = Torus::new(&[8, 3]); // longest ring 8 -> more rounds
        let m = 24_000;
        assert!(
            multiported_torus_time(&long, m, p) > multiported_torus_time(&square, m, p),
            "longer rings mean more rounds"
        );
    }

    #[test]
    fn blueconnect_zero_cases() {
        let (g, r) = setup(3);
        assert_eq!(blueconnect_time(&g, &r, 0, HostParams::default()), 0);
    }

    #[test]
    fn blueconnect_improves_on_flat_ring_rounds_but_not_past_link_rate() {
        // §8: hierarchical decomposition reduces round count versus a flat
        // ring, but per-node goodput stays bounded by a single link — the
        // limitation in-network multi-tree allreduce removes.
        let (g, r) = setup(5); // N = 31
        let p = HostParams { hop_latency: 1, phase_overhead: 100 };
        let m = 100_000u64;
        let bc = blueconnect_time(&g, &r, m, p);
        let ring = ring_allreduce_time(&g, &r, m, p);
        assert!(bc < ring, "blueconnect {bc} vs ring {ring}");
        // Still gated near/below one element per cycle per node: total time
        // can't beat m cycles by more than a small constant factor.
        assert!(bc as f64 > 0.5 * m as f64, "bc {bc} too fast for a flat network");
    }

    #[test]
    fn ring_profile_explains_ring_time() {
        let (g, r) = setup(3);
        let p = HostParams::default();
        let m = 1300;
        let prof = ring_allreduce_profile(&g, &r, m, p).unwrap();
        assert_eq!(prof.total, ring_allreduce_time(&g, &r, m, p));
        assert_eq!(prof.rounds, 2 * (g.num_vertices() as u64 - 1));
        assert_eq!(prof.total, prof.rounds * (prof.round.time() + prof.round_overhead));
        assert!(prof.round.active_channels() > 0);
        assert!(ring_allreduce_profile(&g, &r, 0, p).is_none());
    }

    #[test]
    fn overhead_charged_per_phase() {
        let (g, r) = setup(3);
        let p0 = HostParams { hop_latency: 1, phase_overhead: 0 };
        let p1 = HostParams { hop_latency: 1, phase_overhead: 1000 };
        let n = g.num_vertices() as u64;
        let m = 130;
        let diff = ring_allreduce_time(&g, &r, m, p1) - ring_allreduce_time(&g, &r, m, p0);
        assert_eq!(diff, 2 * (n - 1) * 1000);
    }

    #[test]
    fn ring_phases_compose_into_the_allreduce() {
        // The defining formula: reduce-scatter and allgather are each one
        // (N-1)-round phase of the 2(N-1)-round ring allreduce, with the
        // identical per-round pattern, so their times sum exactly.
        for q in [3u64, 5] {
            let (g, r) = setup(q);
            let p = HostParams::default();
            for m in [1u64, 130, 1300, 99_991] {
                let rs = ring_reduce_scatter_time(&g, &r, m, p);
                let ag = ring_allgather_time(&g, &r, m, p);
                let ar = ring_allreduce_time(&g, &r, m, p);
                assert_eq!(rs + ag, ar, "q={q} m={m}");
                assert_eq!(rs, ag, "mirrored phases cost the same");
            }
        }
    }

    #[test]
    fn ring_phase_profiles_pin_the_cycle_formula() {
        let (g, r) = setup(3); // N = 13
        let n = g.num_vertices() as u64;
        let p = HostParams::default();
        let m = 1300;
        for (prof, time) in [
            (ring_reduce_scatter_profile(&g, &r, m, p), ring_reduce_scatter_time(&g, &r, m, p)),
            (ring_allgather_profile(&g, &r, m, p), ring_allgather_time(&g, &r, m, p)),
        ] {
            let prof = prof.unwrap();
            assert_eq!(prof.rounds, n - 1);
            assert_eq!(prof.total, time);
            assert_eq!(prof.total, prof.rounds * (prof.round.time() + prof.round_overhead));
            assert_eq!(prof.round_overhead, p.phase_overhead);
            assert!(prof.round.active_channels() > 0);
        }
        // Degenerate inputs profile to None / time 0.
        assert!(ring_reduce_scatter_profile(&g, &r, 0, p).is_none());
        assert!(ring_allgather_profile(&g, &r, 0, p).is_none());
        assert_eq!(ring_reduce_scatter_time(&g, &r, 0, p), 0);
        assert_eq!(ring_allgather_time(&g, &r, 0, p), 0);
    }

    #[test]
    fn ring_phase_overhead_charged_per_round() {
        let (g, r) = setup(3);
        let p0 = HostParams { hop_latency: 1, phase_overhead: 0 };
        let p1 = HostParams { hop_latency: 1, phase_overhead: 1000 };
        let n = g.num_vertices() as u64;
        let m = 130;
        let diff =
            ring_reduce_scatter_time(&g, &r, m, p1) - ring_reduce_scatter_time(&g, &r, m, p0);
        assert_eq!(diff, (n - 1) * 1000);
        let diff = ring_allgather_time(&g, &r, m, p1) - ring_allgather_time(&g, &r, m, p0);
        assert_eq!(diff, (n - 1) * 1000);
    }
}
