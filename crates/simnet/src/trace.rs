//! Cycle-level observability: per-link, per-stream and per-router counters
//! with structured JSON/CSV export.
//!
//! The paper's central guarantees (Theorems 7.6 and 7.19: per-link
//! congestion ≤ 2 for the low-depth trees, = 1 for edge-disjoint
//! Hamiltonian trees; Theorem 5.1's bandwidth model) are *per-link*
//! statements. The aggregate numbers in [`crate::engine::SimReport`] can
//! confirm that measured bandwidth roughly matches the model, but not *why*
//! a run falls short of it. This module records, per directed channel and
//! per stream, where every cycle went — a flit forwarded, a credit stall, an
//! arbitration loss, or idleness — and per router, how often each reduction
//! engine fired or what blocked it. The exported [`TraceReport`] is the
//! measured counterpart of the Algorithm 1 congestion vector, letting tests
//! assert the theorems as *runtime-verified* invariants (see
//! `tests/paper_claims.rs`) and letting `docs/OBSERVABILITY.md`'s worked
//! example attribute the quickstart's 3.67-vs-4 elements/cycle gap to
//! pipeline fill.
//!
//! Tracing is strictly observational: enabling it never changes arbitration,
//! credit, or engine decisions, so a traced run produces a bit-identical
//! [`crate::engine::SimReport`] (property-tested in this crate). With
//! [`TraceConfig::off`] the simulator skips every hook behind one `Option`
//! check and allocates nothing.

use crate::embedding::{MultiTreeEmbedding, Phase};

/// What the simulator should record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch: collect per-channel / per-stream / per-router
    /// counters. `false` makes every hook a no-op (and `Simulator` skips
    /// allocating a tracer altogether).
    pub enabled: bool,
    /// Sample the global timeline every `timeline_interval` cycles
    /// (0 = no timeline). Ignored when `enabled` is false.
    pub timeline_interval: u64,
}

impl TraceConfig {
    /// Tracing disabled — the default; zero overhead.
    pub fn off() -> Self {
        TraceConfig { enabled: false, timeline_interval: 0 }
    }

    /// End-of-run counters only (no timeline).
    pub fn counters() -> Self {
        TraceConfig { enabled: true, timeline_interval: 0 }
    }

    /// Counters plus a timeline sample every `interval` cycles (≥ 1).
    pub fn with_timeline(interval: u64) -> Self {
        assert!(interval >= 1, "timeline interval must be at least one cycle");
        TraceConfig { enabled: true, timeline_interval: interval }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

/// Where a directed channel's cycles went. One row per directed channel
/// (`2*e` is the `u → v` direction of edge `e = (u, v)` with `u < v`,
/// `2*e + 1` the reverse, as in [`crate::embedding::channel_id`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTrace {
    /// Directed channel id.
    pub channel: u32,
    /// Undirected edge id (`channel / 2`).
    pub edge: u32,
    /// Transmitting router.
    pub src: u32,
    /// Receiving router.
    pub dst: u32,
    /// Streams mapped onto this channel by the embedding.
    pub streams: u32,
    /// Streams that actually carried at least one flit — the *measured*
    /// per-direction congestion (compare `AllreducePlan::edge_congestion`).
    pub active_streams: u32,
    /// Flits transmitted.
    pub flits: u64,
    /// Cycles in which a flit was transmitted (`flits`, kept separate for
    /// schema clarity).
    pub busy_cycles: u64,
    /// Cycles in which some resident stream had a flit staged but every
    /// such stream was out of downstream credit — back-pressure.
    pub credit_stall_cycles: u64,
    /// Cycles with no staged flit on any resident stream (includes all
    /// cycles for channels no tree uses).
    pub idle_cycles: u64,
    /// `flits / cycles`.
    pub utilization: f64,
}

/// Per-logical-stream counters (one stream = one directed tree edge in one
/// phase).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamTrace {
    /// Stream index in the embedding.
    pub stream: u32,
    /// Owning tree.
    pub tree: u32,
    /// `"reduce"` or `"broadcast"`.
    pub phase: String,
    /// Sending router.
    pub src: u32,
    /// Receiving router.
    pub dst: u32,
    /// Directed channel the stream is mapped to.
    pub channel: u32,
    /// Flits transmitted.
    pub flits: u64,
    /// Cycles with a staged flit but no downstream credit.
    pub credit_stall_cycles: u64,
    /// Cycles with a staged flit *and* credit, lost to round-robin
    /// arbitration — bandwidth sharing under congestion made visible.
    pub arb_loss_cycles: u64,
    /// High-water mark of the sender-side staging queue, in flits.
    pub max_sendq: u64,
    /// High-water mark of receiver occupancy (buffered + in flight) —
    /// bounded by `vc_buffer`; saturated streams sit at the
    /// latency-bandwidth product.
    pub max_vc_occupancy: u64,
}

/// Per-router reduction/broadcast engine counters, summed over trees.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterTrace {
    /// Router id.
    pub router: u32,
    /// Reduction-engine firings (one element combined + forwarded each).
    pub reductions: u64,
    /// Broadcast-relay firings (one element forwarded down each).
    pub relays: u64,
    /// Engine-cycles stalled waiting for a child or upstream input
    /// (per tree with work remaining, summed).
    pub input_starved_cycles: u64,
    /// Engine-cycles stalled on a full output staging queue.
    pub output_blocked_cycles: u64,
    /// Engine-cycles stalled on the router's shared reduction/injection
    /// budget (`max_reductions_per_router` / `max_injections_per_node`).
    pub budget_stall_cycles: u64,
}

/// One fault-layer action (injection, heal, retry expiration, or
/// dead-declaration), as recorded by [`crate::faults`]. Appears in the
/// trace's `faults` table; the table is absent from fault-free traces
/// written before fault support and optional on parse, so the
/// `pf-simnet-trace-v1` schema tag is unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultTraceRow {
    /// Cycle the action happened at.
    pub cycle: u64,
    /// `"fail"`, `"degrade"`, `"heal"`, `"retry"`, or `"detected"`.
    pub action: String,
    /// `"link"`, `"router"`, or `"stream"` (retries are per stream).
    pub target_kind: String,
    /// Edge, router, or stream id, per `target_kind`.
    pub target: u32,
    /// Action-specific payload: fault duration (0 = permanent) for
    /// `"fail"`, degrade period for `"degrade"`, the retry ordinal for
    /// `"retry"`, 0 otherwise.
    pub detail: u64,
}

/// One tenant's scheduling record in a multi-job run, as filled in by the
/// `pf-sched` scheduler. Appears in the trace's `jobs` table; like the
/// `faults` table it postdates the original v1 writer, is absent from
/// single-job traces and optional on parse, so the `pf-simnet-trace-v1`
/// schema tag is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTraceRow {
    /// Job id (unique within the scheduler run).
    pub job: u32,
    /// Cycle the job entered the arrival queue.
    pub arrival: u64,
    /// Cycle the admission controller admitted it into a wave.
    pub admit: u64,
    /// Cycle its engines were released (work could begin).
    pub start: u64,
    /// Cycle its last element was delivered to every sink.
    pub finish: u64,
    /// The job's vector length.
    pub elems: u64,
    /// Number of spanning trees allocated to it.
    pub trees: u32,
    /// `start - arrival`.
    pub queueing_delay: u64,
    /// `elems / (finish - start)` in elements per cycle.
    pub achieved_bandwidth: f64,
    /// The collective this job executed ([`crate::Collective::name`]:
    /// `"allreduce"`, `"reduce"`, `"broadcast"`, `"reduce_scatter"` or
    /// `"allgather"`). Absent in pre-collective traces and optional on
    /// parse, defaulting to `"allreduce"`.
    pub collective: String,
}

/// One sample of global progress (taken every
/// [`TraceConfig::timeline_interval`] cycles and at completion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineSample {
    /// Cycle the sample was taken at.
    pub cycle: u64,
    /// Cumulative element deliveries across all trees and sinks.
    pub deliveries: u64,
    /// Cumulative flits transmitted on all channels.
    pub flits: u64,
    /// Channels that have carried at least one flit so far.
    pub active_channels: u64,
}

/// The full structured trace of one run. Schema documented field by field
/// in `docs/OBSERVABILITY.md`; stable under the `pf-simnet-trace-v1` tag.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Cycles simulated.
    pub cycles: u64,
    /// Total flits transmitted.
    pub total_flits: u64,
    /// The collective the traced run executed
    /// ([`crate::Collective::name`]). Absent in pre-collective traces and
    /// optional on parse, defaulting to `"allreduce"` — so the
    /// `pf-simnet-trace-v1` schema tag is unchanged, like the `faults` and
    /// `jobs` tables.
    pub collective: String,
    /// One row per directed channel.
    pub channels: Vec<ChannelTrace>,
    /// One row per logical stream.
    pub streams: Vec<StreamTrace>,
    /// One row per router.
    pub routers: Vec<RouterTrace>,
    /// Progress samples (empty unless a timeline interval was set).
    pub timeline: Vec<TimelineSample>,
    /// Fault-layer actions (empty unless faults were injected; see
    /// [`crate::faults`] and `docs/FAULTS.md`).
    pub faults: Vec<FaultTraceRow>,
    /// Per-tenant scheduling records (empty unless the trace came from a
    /// `pf-sched` multi-job wave; see `docs/SCHEDULER.md`).
    pub jobs: Vec<JobTraceRow>,
}

impl TraceReport {
    /// Measured congestion per undirected edge: the larger of the two
    /// directions' active stream counts. Directly comparable to the
    /// theoretical per-edge congestion (`AllreducePlan::edge_congestion`),
    /// because each tree using edge `e` contributes exactly one stream per
    /// direction (reduce one way and broadcast the other, or vice versa).
    pub fn link_congestion(&self) -> Vec<u32> {
        let num_edges = self.channels.len() / 2;
        let mut per_edge = vec![0u32; num_edges];
        for c in &self.channels {
            let e = c.edge as usize;
            per_edge[e] = per_edge[e].max(c.active_streams);
        }
        per_edge
    }

    /// Maximum measured per-link congestion — the runtime counterpart of
    /// `AllreducePlan::max_congestion` (Theorems 7.6 / 7.19).
    pub fn max_link_congestion(&self) -> u32 {
        self.link_congestion().into_iter().max().unwrap_or(0)
    }

    /// Serializes the full trace as compact JSON (schema
    /// `pf-simnet-trace-v1`; see `docs/OBSERVABILITY.md`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\"schema\":\"pf-simnet-trace-v1\"");
        s.push_str(&format!(",\"cycles\":{}", self.cycles));
        s.push_str(&format!(",\"total_flits\":{}", self.total_flits));
        s.push_str(&format!(",\"collective\":\"{}\"", self.collective));
        s.push_str(",\"channels\":[");
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"channel\":{},\"edge\":{},\"src\":{},\"dst\":{},\"streams\":{},\
                 \"active_streams\":{},\"flits\":{},\"busy_cycles\":{},\
                 \"credit_stall_cycles\":{},\"idle_cycles\":{},\"utilization\":{}}}",
                c.channel,
                c.edge,
                c.src,
                c.dst,
                c.streams,
                c.active_streams,
                c.flits,
                c.busy_cycles,
                c.credit_stall_cycles,
                c.idle_cycles,
                json_f64(c.utilization),
            ));
        }
        s.push_str("],\"streams\":[");
        for (i, t) in self.streams.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"stream\":{},\"tree\":{},\"phase\":\"{}\",\"src\":{},\"dst\":{},\
                 \"channel\":{},\"flits\":{},\"credit_stall_cycles\":{},\
                 \"arb_loss_cycles\":{},\"max_sendq\":{},\"max_vc_occupancy\":{}}}",
                t.stream,
                t.tree,
                t.phase,
                t.src,
                t.dst,
                t.channel,
                t.flits,
                t.credit_stall_cycles,
                t.arb_loss_cycles,
                t.max_sendq,
                t.max_vc_occupancy,
            ));
        }
        s.push_str("],\"routers\":[");
        for (i, r) in self.routers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"router\":{},\"reductions\":{},\"relays\":{},\
                 \"input_starved_cycles\":{},\"output_blocked_cycles\":{},\
                 \"budget_stall_cycles\":{}}}",
                r.router,
                r.reductions,
                r.relays,
                r.input_starved_cycles,
                r.output_blocked_cycles,
                r.budget_stall_cycles,
            ));
        }
        s.push_str("],\"timeline\":[");
        for (i, t) in self.timeline.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"cycle\":{},\"deliveries\":{},\"flits\":{},\"active_channels\":{}}}",
                t.cycle, t.deliveries, t.flits, t.active_channels,
            ));
        }
        s.push_str("],\"faults\":[");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"cycle\":{},\"action\":\"{}\",\"target_kind\":\"{}\",\
                 \"target\":{},\"detail\":{}}}",
                f.cycle, f.action, f.target_kind, f.target, f.detail,
            ));
        }
        s.push_str("],\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"job\":{},\"arrival\":{},\"admit\":{},\"start\":{},\"finish\":{},\
                 \"elems\":{},\"trees\":{},\"queueing_delay\":{},\"achieved_bandwidth\":{},\
                 \"collective\":\"{}\"}}",
                j.job,
                j.arrival,
                j.admit,
                j.start,
                j.finish,
                j.elems,
                j.trees,
                j.queueing_delay,
                json_f64(j.achieved_bandwidth),
                j.collective,
            ));
        }
        s.push_str("]}");
        s
    }

    /// Parses a trace serialized by [`TraceReport::to_json`].
    pub fn from_json(text: &str) -> Result<TraceReport, String> {
        let v = json::parse(text)?;
        let obj = v.as_object()?;
        let schema = obj.get_str("schema")?;
        if schema != "pf-simnet-trace-v1" {
            return Err(format!("unknown trace schema {schema:?}"));
        }
        let channels = obj
            .get_array("channels")?
            .iter()
            .map(|c| {
                let c = c.as_object()?;
                Ok(ChannelTrace {
                    channel: c.get_u64("channel")? as u32,
                    edge: c.get_u64("edge")? as u32,
                    src: c.get_u64("src")? as u32,
                    dst: c.get_u64("dst")? as u32,
                    streams: c.get_u64("streams")? as u32,
                    active_streams: c.get_u64("active_streams")? as u32,
                    flits: c.get_u64("flits")?,
                    busy_cycles: c.get_u64("busy_cycles")?,
                    credit_stall_cycles: c.get_u64("credit_stall_cycles")?,
                    idle_cycles: c.get_u64("idle_cycles")?,
                    utilization: c.get_f64("utilization")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let streams = obj
            .get_array("streams")?
            .iter()
            .map(|t| {
                let t = t.as_object()?;
                Ok(StreamTrace {
                    stream: t.get_u64("stream")? as u32,
                    tree: t.get_u64("tree")? as u32,
                    phase: t.get_str("phase")?.to_string(),
                    src: t.get_u64("src")? as u32,
                    dst: t.get_u64("dst")? as u32,
                    channel: t.get_u64("channel")? as u32,
                    flits: t.get_u64("flits")?,
                    credit_stall_cycles: t.get_u64("credit_stall_cycles")?,
                    arb_loss_cycles: t.get_u64("arb_loss_cycles")?,
                    max_sendq: t.get_u64("max_sendq")?,
                    max_vc_occupancy: t.get_u64("max_vc_occupancy")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let routers = obj
            .get_array("routers")?
            .iter()
            .map(|r| {
                let r = r.as_object()?;
                Ok(RouterTrace {
                    router: r.get_u64("router")? as u32,
                    reductions: r.get_u64("reductions")?,
                    relays: r.get_u64("relays")?,
                    input_starved_cycles: r.get_u64("input_starved_cycles")?,
                    output_blocked_cycles: r.get_u64("output_blocked_cycles")?,
                    budget_stall_cycles: r.get_u64("budget_stall_cycles")?,
                })
            })
            .collect::<Result<_, String>>()?;
        let timeline = obj
            .get_array("timeline")?
            .iter()
            .map(|t| {
                let t = t.as_object()?;
                Ok(TimelineSample {
                    cycle: t.get_u64("cycle")?,
                    deliveries: t.get_u64("deliveries")?,
                    flits: t.get_u64("flits")?,
                    active_channels: t.get_u64("active_channels")?,
                })
            })
            .collect::<Result<_, String>>()?;
        // The faults table postdates the original v1 writer: absent means
        // no fault layer was attached (or an older producer) — not an error.
        let faults = obj
            .get_array_opt("faults")?
            .unwrap_or(&[])
            .iter()
            .map(|f| {
                let f = f.as_object()?;
                Ok(FaultTraceRow {
                    cycle: f.get_u64("cycle")?,
                    action: f.get_str("action")?.to_string(),
                    target_kind: f.get_str("target_kind")?.to_string(),
                    target: f.get_u64("target")? as u32,
                    detail: f.get_u64("detail")?,
                })
            })
            .collect::<Result<_, String>>()?;
        // The jobs table likewise postdates the original v1 writer: absent
        // means the trace came from a single-job run — not an error.
        let jobs = obj
            .get_array_opt("jobs")?
            .unwrap_or(&[])
            .iter()
            .map(|j| {
                let j = j.as_object()?;
                Ok(JobTraceRow {
                    job: j.get_u64("job")? as u32,
                    arrival: j.get_u64("arrival")?,
                    admit: j.get_u64("admit")?,
                    start: j.get_u64("start")?,
                    finish: j.get_u64("finish")?,
                    elems: j.get_u64("elems")?,
                    trees: j.get_u64("trees")? as u32,
                    queueing_delay: j.get_u64("queueing_delay")?,
                    achieved_bandwidth: j.get_f64("achieved_bandwidth")?,
                    collective: j.get_str_opt("collective")?.unwrap_or("allreduce").to_string(),
                })
            })
            .collect::<Result<_, String>>()?;
        Ok(TraceReport {
            cycles: obj.get_u64("cycles")?,
            total_flits: obj.get_u64("total_flits")?,
            // Absent in pre-collective traces: default, don't error.
            collective: obj.get_str_opt("collective")?.unwrap_or("allreduce").to_string(),
            channels,
            streams,
            routers,
            timeline,
            faults,
            jobs,
        })
    }

    /// Per-channel counters as CSV (header included).
    pub fn channels_csv(&self) -> String {
        let mut s = String::from(
            "channel,edge,src,dst,streams,active_streams,flits,busy_cycles,\
             credit_stall_cycles,idle_cycles,utilization\n",
        );
        for c in &self.channels {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                c.channel,
                c.edge,
                c.src,
                c.dst,
                c.streams,
                c.active_streams,
                c.flits,
                c.busy_cycles,
                c.credit_stall_cycles,
                c.idle_cycles,
                json_f64(c.utilization),
            ));
        }
        s
    }

    /// Per-stream counters as CSV (header included).
    pub fn streams_csv(&self) -> String {
        let mut s = String::from(
            "stream,tree,phase,src,dst,channel,flits,credit_stall_cycles,\
             arb_loss_cycles,max_sendq,max_vc_occupancy\n",
        );
        for t in &self.streams {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                t.stream,
                t.tree,
                t.phase,
                t.src,
                t.dst,
                t.channel,
                t.flits,
                t.credit_stall_cycles,
                t.arb_loss_cycles,
                t.max_sendq,
                t.max_vc_occupancy,
            ));
        }
        s
    }

    /// Per-router counters as CSV (header included).
    pub fn routers_csv(&self) -> String {
        let mut s = String::from(
            "router,reductions,relays,input_starved_cycles,output_blocked_cycles,\
             budget_stall_cycles\n",
        );
        for r in &self.routers {
            s.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.router,
                r.reductions,
                r.relays,
                r.input_starved_cycles,
                r.output_blocked_cycles,
                r.budget_stall_cycles,
            ));
        }
        s
    }

    /// Timeline samples as CSV (header included).
    pub fn timeline_csv(&self) -> String {
        let mut s = String::from("cycle,deliveries,flits,active_channels\n");
        for t in &self.timeline {
            s.push_str(&format!(
                "{},{},{},{}\n",
                t.cycle, t.deliveries, t.flits, t.active_channels
            ));
        }
        s
    }

    /// Fault-layer actions as CSV (header included).
    pub fn faults_csv(&self) -> String {
        let mut s = String::from("cycle,action,target_kind,target,detail\n");
        for f in &self.faults {
            s.push_str(&format!(
                "{},{},{},{},{}\n",
                f.cycle, f.action, f.target_kind, f.target, f.detail
            ));
        }
        s
    }

    /// Per-tenant scheduling records as CSV (header included).
    pub fn jobs_csv(&self) -> String {
        let mut s = String::from(
            "job,arrival,admit,start,finish,elems,trees,queueing_delay,achieved_bandwidth,\
             collective\n",
        );
        for j in &self.jobs {
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                j.job,
                j.arrival,
                j.admit,
                j.start,
                j.finish,
                j.elems,
                j.trees,
                j.queueing_delay,
                json_f64(j.achieved_bandwidth),
                j.collective,
            ));
        }
        s
    }
}

/// Prints an f64 so that it parses back to the identical bits (Rust's
/// shortest round-trip `Display`), with a decimal point guaranteed.
fn json_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// The in-flight counter store the engine writes into. Struct-of-arrays;
/// converted into a [`TraceReport`] by [`Tracer::finish`].
#[derive(Debug, Clone)]
pub(crate) struct Tracer {
    cfg: TraceConfig,
    // Per stream.
    stream_flits: Vec<u64>,
    stream_credit_stalls: Vec<u64>,
    stream_arb_losses: Vec<u64>,
    stream_max_sendq: Vec<u64>,
    stream_max_occ: Vec<u64>,
    // Per directed channel.
    channel_busy: Vec<u64>,
    channel_credit_stall: Vec<u64>,
    // Per router.
    router_reductions: Vec<u64>,
    router_relays: Vec<u64>,
    router_input_starved: Vec<u64>,
    router_output_blocked: Vec<u64>,
    router_budget_stall: Vec<u64>,
    timeline: Vec<TimelineSample>,
}

/// Why a reduction engine or broadcast relay could not fire this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EngineStall {
    /// A child / upstream input queue was empty.
    InputStarved,
    /// The output (or broadcast fan-out) staging queue was full.
    OutputBlocked,
    /// The router's shared engine/injection budget was exhausted.
    Budget,
}

impl Tracer {
    pub(crate) fn new(num_streams: usize, num_channels: usize, num_nodes: usize, cfg: TraceConfig) -> Self {
        Tracer {
            cfg,
            stream_flits: vec![0; num_streams],
            stream_credit_stalls: vec![0; num_streams],
            stream_arb_losses: vec![0; num_streams],
            stream_max_sendq: vec![0; num_streams],
            stream_max_occ: vec![0; num_streams],
            channel_busy: vec![0; num_channels],
            channel_credit_stall: vec![0; num_channels],
            router_reductions: vec![0; num_nodes],
            router_relays: vec![0; num_nodes],
            router_input_starved: vec![0; num_nodes],
            router_output_blocked: vec![0; num_nodes],
            router_budget_stall: vec![0; num_nodes],
            timeline: Vec::new(),
        }
    }

    /// Observes one member stream during the arbitration scan. `won` is the
    /// stream the channel actually granted this cycle (if any).
    #[inline]
    pub(crate) fn observe_stream(
        &mut self,
        stream: usize,
        sendq: u64,
        occupancy: u64,
        has_data: bool,
        has_credit: bool,
        won: bool,
    ) {
        self.stream_max_sendq[stream] = self.stream_max_sendq[stream].max(sendq);
        self.stream_max_occ[stream] = self.stream_max_occ[stream].max(occupancy);
        if won {
            self.stream_flits[stream] += 1;
        } else if has_data && !has_credit {
            self.stream_credit_stalls[stream] += 1;
        } else if has_data {
            self.stream_arb_losses[stream] += 1;
        }
    }

    /// Records the channel-level outcome of one arbitration cycle.
    #[inline]
    pub(crate) fn observe_channel(&mut self, channel: usize, transmitted: bool, any_data: bool) {
        if transmitted {
            self.channel_busy[channel] += 1;
        } else if any_data {
            self.channel_credit_stall[channel] += 1;
        }
    }

    /// Records a reduction-engine firing at `router`.
    #[inline]
    pub(crate) fn reduction_fired(&mut self, router: usize) {
        self.router_reductions[router] += 1;
    }

    /// Records a broadcast-relay (or broadcast-source) firing at `router`.
    #[inline]
    pub(crate) fn relay_fired(&mut self, router: usize) {
        self.router_relays[router] += 1;
    }

    /// Attributes a non-firing engine cycle at `router`.
    #[inline]
    pub(crate) fn engine_stalled(&mut self, router: usize, why: EngineStall) {
        match why {
            EngineStall::InputStarved => self.router_input_starved[router] += 1,
            EngineStall::OutputBlocked => self.router_output_blocked[router] += 1,
            EngineStall::Budget => self.router_budget_stall[router] += 1,
        }
    }

    /// True when a timeline sample is due at `cycle`.
    #[inline]
    pub(crate) fn timeline_due(&self, cycle: u64) -> bool {
        self.cfg.timeline_interval > 0 && cycle.is_multiple_of(self.cfg.timeline_interval)
    }

    /// Appends a timeline sample (callers check [`Tracer::timeline_due`],
    /// and may also sample once at completion). No-op when the config has
    /// no timeline interval or `cycle` was already sampled.
    pub(crate) fn sample_timeline(&mut self, cycle: u64, deliveries: u64) {
        if self.cfg.timeline_interval == 0 {
            return;
        }
        if self.timeline.last().is_some_and(|s| s.cycle == cycle) {
            return;
        }
        let flits: u64 = self.stream_flits.iter().sum();
        let active = self.channel_busy.iter().filter(|&&b| b > 0).count() as u64;
        self.timeline.push(TimelineSample { cycle, deliveries, flits, active_channels: active });
    }

    /// Folds the counters into the exported report.
    pub(crate) fn finish(self, emb: &MultiTreeEmbedding, cycles: u64) -> TraceReport {
        // Invert the channel → streams map once.
        let mut stream_channel = vec![u32::MAX; emb.streams.len()];
        for (c, members) in emb.channel_streams.iter().enumerate() {
            for &s in members {
                stream_channel[s as usize] = c as u32;
            }
        }
        let streams: Vec<StreamTrace> = emb
            .streams
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let channel = stream_channel[si];
                debug_assert_ne!(channel, u32::MAX, "every stream is mapped to a channel");
                StreamTrace {
                    stream: si as u32,
                    tree: s.tree,
                    phase: match s.phase {
                        Phase::Reduce => "reduce".to_string(),
                        Phase::Broadcast => "broadcast".to_string(),
                    },
                    src: s.src,
                    dst: s.dst,
                    channel,
                    flits: self.stream_flits[si],
                    credit_stall_cycles: self.stream_credit_stalls[si],
                    arb_loss_cycles: self.stream_arb_losses[si],
                    max_sendq: self.stream_max_sendq[si],
                    max_vc_occupancy: self.stream_max_occ[si],
                }
            })
            .collect();

        let channels: Vec<ChannelTrace> = emb
            .channel_streams
            .iter()
            .enumerate()
            .map(|(c, members)| {
                let flits: u64 = members.iter().map(|&s| self.stream_flits[s as usize]).sum();
                let active =
                    members.iter().filter(|&&s| self.stream_flits[s as usize] > 0).count() as u32;
                let busy = self.channel_busy[c];
                let stall = self.channel_credit_stall[c];
                // Endpoints: any member stream knows them; memberless
                // channels fall back to the stored stream metadata being
                // absent, so recover endpoints from the channel id parity
                // via the first member or mark src = dst = u32::MAX.
                let (src, dst) = members
                    .first()
                    .map(|&s| (emb.streams[s as usize].src, emb.streams[s as usize].dst))
                    .unwrap_or((u32::MAX, u32::MAX));
                ChannelTrace {
                    channel: c as u32,
                    edge: (c / 2) as u32,
                    src,
                    dst,
                    streams: members.len() as u32,
                    active_streams: active,
                    flits,
                    busy_cycles: busy,
                    credit_stall_cycles: stall,
                    idle_cycles: cycles.saturating_sub(busy + stall),
                    utilization: flits as f64 / cycles.max(1) as f64,
                }
            })
            .collect();

        let routers: Vec<RouterTrace> = (0..emb.num_nodes as usize)
            .map(|v| RouterTrace {
                router: v as u32,
                reductions: self.router_reductions[v],
                relays: self.router_relays[v],
                input_starved_cycles: self.router_input_starved[v],
                output_blocked_cycles: self.router_output_blocked[v],
                budget_stall_cycles: self.router_budget_stall[v],
            })
            .collect();

        let total_flits = streams.iter().map(|s| s.flits).sum();
        TraceReport {
            cycles,
            total_flits,
            // The engines overwrite this with the executed collective's
            // name right after `finish` returns.
            collective: "allreduce".to_string(),
            channels,
            streams,
            routers,
            timeline: self.timeline,
            faults: Vec::new(),
            jobs: Vec::new(),
        }
    }
}

mod json {
    //! A minimal JSON reader — just enough to round-trip [`super::TraceReport`].

    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Num(f64),
        Str(String),
        Array(Vec<Value>),
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Result<Obj<'_>, String> {
            match self {
                Value::Object(m) => Ok(Obj(m)),
                other => Err(format!("expected object, got {other:?}")),
            }
        }
    }

    /// Typed field access over a parsed object.
    pub struct Obj<'a>(&'a BTreeMap<String, Value>);

    impl<'a> Obj<'a> {
        fn get(&self, key: &str) -> Result<&'a Value, String> {
            self.0.get(key).ok_or_else(|| format!("missing field {key:?}"))
        }
        pub fn get_u64(&self, key: &str) -> Result<u64, String> {
            match self.get(key)? {
                Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u64),
                other => Err(format!("field {key:?} is not a u64: {other:?}")),
            }
        }
        pub fn get_f64(&self, key: &str) -> Result<f64, String> {
            match self.get(key)? {
                Value::Num(x) => Ok(*x),
                other => Err(format!("field {key:?} is not a number: {other:?}")),
            }
        }
        pub fn get_str(&self, key: &str) -> Result<&'a str, String> {
            match self.get(key)? {
                Value::Str(s) => Ok(s),
                other => Err(format!("field {key:?} is not a string: {other:?}")),
            }
        }
        /// Like [`Obj::get_str`], but a missing key is `Ok(None)` — for
        /// fields added to the schema after its first release.
        pub fn get_str_opt(&self, key: &str) -> Result<Option<&'a str>, String> {
            match self.0.get(key) {
                None => Ok(None),
                Some(Value::Str(s)) => Ok(Some(s)),
                Some(other) => Err(format!("field {key:?} is not a string: {other:?}")),
            }
        }
        pub fn get_array(&self, key: &str) -> Result<&'a [Value], String> {
            match self.get(key)? {
                Value::Array(v) => Ok(v),
                other => Err(format!("field {key:?} is not an array: {other:?}")),
            }
        }
        /// Like [`Obj::get_array`], but a missing key is `Ok(None)` — for
        /// tables added to the schema after its first release.
        pub fn get_array_opt(&self, key: &str) -> Result<Option<&'a [Value]>, String> {
            match self.0.get(key) {
                None => Ok(None),
                Some(Value::Array(v)) => Ok(Some(v)),
                Some(other) => Err(format!("field {key:?} is not an array: {other:?}")),
            }
        }
    }

    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            other => Err(format!("unexpected {other:?} at byte {pos}")),
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'{')?;
        let mut map = BTreeMap::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            expect(b, pos, b':')?;
            let val = parse_value(b, pos)?;
            map.insert(key, val);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Value::Object(map));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        expect(b, pos, b'[')?;
        let mut out = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let start = *pos;
        while *pos < b.len() && b[*pos] != b'"' {
            if b[*pos] == b'\\' {
                return Err("escape sequences are not used by this schema".to_string());
            }
            *pos += 1;
        }
        if *pos >= b.len() {
            return Err("unterminated string".to_string());
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?.to_string();
        *pos += 1;
        Ok(s)
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while *pos < b.len()
            && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            *pos += 1;
        }
        let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TraceReport {
        TraceReport {
            cycles: 100,
            total_flits: 42,
            collective: "allreduce".to_string(),
            channels: vec![
                ChannelTrace {
                    channel: 0,
                    edge: 0,
                    src: 0,
                    dst: 1,
                    streams: 2,
                    active_streams: 1,
                    flits: 40,
                    busy_cycles: 40,
                    credit_stall_cycles: 10,
                    idle_cycles: 50,
                    utilization: 0.4,
                },
                ChannelTrace {
                    channel: 1,
                    edge: 0,
                    src: 1,
                    dst: 0,
                    streams: 1,
                    active_streams: 1,
                    flits: 2,
                    busy_cycles: 2,
                    credit_stall_cycles: 0,
                    idle_cycles: 98,
                    utilization: 0.02,
                },
            ],
            streams: vec![StreamTrace {
                stream: 0,
                tree: 0,
                phase: "reduce".to_string(),
                src: 0,
                dst: 1,
                channel: 0,
                flits: 40,
                credit_stall_cycles: 10,
                arb_loss_cycles: 3,
                max_sendq: 2,
                max_vc_occupancy: 5,
            }],
            routers: vec![RouterTrace {
                router: 0,
                reductions: 40,
                relays: 2,
                input_starved_cycles: 7,
                output_blocked_cycles: 1,
                budget_stall_cycles: 0,
            }],
            timeline: vec![TimelineSample {
                cycle: 50,
                deliveries: 20,
                flits: 21,
                active_channels: 2,
            }],
            faults: vec![FaultTraceRow {
                cycle: 30,
                action: "fail".to_string(),
                target_kind: "link".to_string(),
                target: 0,
                detail: 0,
            }],
            jobs: vec![JobTraceRow {
                job: 0,
                arrival: 0,
                admit: 0,
                start: 0,
                finish: 90,
                elems: 20,
                trees: 2,
                queueing_delay: 0,
                achieved_bandwidth: 20.0 / 90.0,
                collective: "allreduce".to_string(),
            }],
        }
    }

    #[test]
    fn traces_without_collective_fields_still_parse() {
        // A trace written before the sharded-training collectives has no
        // "collective" key (top level or per job); both must parse to the
        // "allreduce" default.
        let r = sample_report();
        let j = r
            .to_json()
            .replace(",\"collective\":\"allreduce\"", "");
        assert!(!j.contains("collective"));
        let parsed = TraceReport::from_json(&j).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_round_trip_is_identity() {
        let r = sample_report();
        let parsed = TraceReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_round_trip_preserves_awkward_floats() {
        let mut r = sample_report();
        r.channels[0].utilization = 1.0 / 3.0;
        r.channels[1].utilization = 0.918_273_645_546_372_8;
        let parsed = TraceReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.channels[0].utilization.to_bits(), r.channels[0].utilization.to_bits());
        assert_eq!(parsed.channels[1].utilization.to_bits(), r.channels[1].utilization.to_bits());
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(TraceReport::from_json("").is_err());
        assert!(TraceReport::from_json("{}").is_err());
        assert!(TraceReport::from_json("{\"schema\":\"other-v9\"}").is_err());
        let r = sample_report();
        let mut j = r.to_json();
        j.push('x');
        assert!(TraceReport::from_json(&j).is_err());
    }

    #[test]
    fn link_congestion_takes_per_edge_max() {
        let r = sample_report();
        // Edge 0: directions with 1 and 1 active streams -> congestion 1.
        assert_eq!(r.link_congestion(), vec![1]);
        assert_eq!(r.max_link_congestion(), 1);
        let mut r2 = r.clone();
        r2.channels[0].active_streams = 2;
        assert_eq!(r2.link_congestion(), vec![2]);
    }

    #[test]
    fn traces_without_a_faults_table_still_parse() {
        // A trace written by the original v1 producer (pre-fault-injection)
        // has no "faults" key; it must parse to an empty table.
        let mut r = sample_report();
        r.faults.clear();
        let j = r.to_json().replace(",\"faults\":[]", "");
        assert!(!j.contains("faults"));
        let parsed = TraceReport::from_json(&j).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn traces_without_a_jobs_table_still_parse() {
        // A trace written before multi-tenant scheduling has no "jobs"
        // key; it must parse to an empty table.
        let mut r = sample_report();
        r.jobs.clear();
        let j = r.to_json().replace(",\"jobs\":[]", "");
        assert!(!j.contains("\"jobs\""));
        let parsed = TraceReport::from_json(&j).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn csv_outputs_are_rectangular() {
        let r = sample_report();
        for csv in [
            r.channels_csv(),
            r.streams_csv(),
            r.routers_csv(),
            r.timeline_csv(),
            r.faults_csv(),
            r.jobs_csv(),
        ] {
            let mut lines = csv.lines();
            let cols = lines.next().unwrap().split(',').count();
            let mut rows = 0;
            for l in lines {
                assert_eq!(l.split(',').count(), cols, "ragged row {l}");
                rows += 1;
            }
            assert!(rows >= 1);
        }
    }

    #[test]
    fn tracer_counter_arithmetic() {
        let mut t = Tracer::new(2, 2, 1, TraceConfig::counters());
        // Cycle 1: stream 0 wins, stream 1 loses arbitration.
        t.observe_stream(0, 1, 2, true, true, true);
        t.observe_stream(1, 3, 0, true, true, false);
        t.observe_channel(0, true, true);
        // Cycle 2: stream 0 blocked on credit; channel stalls.
        t.observe_stream(0, 2, 6, true, false, false);
        t.observe_stream(1, 0, 0, false, true, false);
        t.observe_channel(0, false, true);
        // Cycle 3: nothing to send — idle.
        t.observe_stream(0, 0, 0, false, true, false);
        t.observe_stream(1, 0, 0, false, true, false);
        t.observe_channel(0, false, false);
        t.reduction_fired(0);
        t.engine_stalled(0, EngineStall::InputStarved);
        t.engine_stalled(0, EngineStall::Budget);
        t.relay_fired(0);

        assert_eq!(t.stream_flits, vec![1, 0]);
        assert_eq!(t.stream_credit_stalls, vec![1, 0]);
        assert_eq!(t.stream_arb_losses, vec![0, 1]);
        assert_eq!(t.stream_max_sendq, vec![2, 3]);
        assert_eq!(t.stream_max_occ, vec![6, 0]);
        assert_eq!(t.channel_busy[0], 1);
        assert_eq!(t.channel_credit_stall[0], 1);
        assert_eq!(t.router_reductions[0], 1);
        assert_eq!(t.router_relays[0], 1);
        assert_eq!(t.router_input_starved[0], 1);
        assert_eq!(t.router_budget_stall[0], 1);
        assert_eq!(t.router_output_blocked[0], 0);
    }

    #[test]
    fn timeline_sampling_interval_and_dedup() {
        let mut t = Tracer::new(1, 1, 1, TraceConfig::with_timeline(10));
        assert!(!t.timeline_due(5));
        assert!(t.timeline_due(10));
        t.sample_timeline(10, 4);
        t.sample_timeline(10, 4); // duplicate cycle collapses
        t.sample_timeline(20, 9);
        assert_eq!(t.timeline.len(), 2);
        assert_eq!(t.timeline[1], TimelineSample {
            cycle: 20,
            deliveries: 9,
            flits: 0,
            active_channels: 0,
        });
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_timeline_interval_rejected() {
        TraceConfig::with_timeline(0);
    }
}
