//! Small fork-join helper for embarrassingly parallel work.
//!
//! Two callers share this: the bench harness parallelizes independent
//! radix sweep points (each builds its own topology and trees), and the
//! engine's deterministic sharded mode ([`crate::SimConfig::threads`])
//! runs channel-disjoint tree components concurrently. Workers steal
//! *chunks* of indices from a shared atomic cursor (`std::thread::scope`
//! scoped threads) into pre-sized per-worker buffers, merged in order at
//! join — no shared lock on the hot path, one `fetch_add` per chunk
//! instead of per item, and the output is identical to the serial map
//! regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on a scoped worker pool sized from
/// `available_parallelism`, preserving input order in the output. `f`
/// must be `Sync` (it runs concurrently).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    parallel_map_workers(workers, items, f)
}

/// [`parallel_map`] with an explicit worker count — the engine's sharded
/// mode must honor the configured thread budget exactly (and `workers <=
/// 1` must run serially on the calling thread, so a one-thread "parallel"
/// run is literally the serial run).
pub fn parallel_map_workers<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    // Chunked stealing: grab several indices per CAS so cheap sweep points
    // don't serialize on cursor contention, but keep chunks small enough
    // (≥ 4 per worker on average) that uneven per-item cost still
    // load-balances across workers.
    let chunk = (n / (4 * workers)).max(1);
    let cursor = AtomicUsize::new(0);
    // Each worker accumulates (index, result) locally; taking the output
    // mutex once per item would serialize cheap maps on lock traffic.
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::with_capacity(n / workers + chunk);
                    loop {
                        let lo = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if lo >= n {
                            break;
                        }
                        let hi = (lo + chunk).min(n);
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            local.push((lo + i, f(item)));
                        }
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buffers.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} produced twice");
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn chunk_boundaries_cover_every_index() {
        // Sizes straddling chunk-size breakpoints (n / (4 * workers)
        // rounding, final partial chunk): every index must be produced
        // exactly once — the debug_assert in the merge loop catches
        // duplicates, the expect catches holes.
        for n in [1usize, 2, 3, 5, 7, 8, 15, 16, 17, 31, 63, 64, 65, 127, 129, 1000] {
            let items: Vec<u64> = (0..n as u64).collect();
            let out = parallel_map(&items, |&x| x + 1);
            assert_eq!(out, items.iter().map(|&x| x + 1).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn explicit_worker_counts_match_serial() {
        let items: Vec<u64> = (0..257).collect();
        let ser: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 17).collect();
        for workers in [0usize, 1, 2, 3, 4, 8, 16] {
            let out = parallel_map_workers(workers, &items, |&x| x.wrapping_mul(x) ^ 17);
            assert_eq!(out, ser, "workers={workers}");
        }
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Wildly uneven per-item cost shuffles completion order across
        // workers; the merged output must still be the serial one.
        let items: Vec<u64> = (0..64).rev().collect();
        let heavy = |&x: &u64| {
            let mut acc = 0u64;
            for i in 0..(x * 2_000) {
                acc = acc.wrapping_add(i ^ x);
            }
            acc ^ x
        };
        let out = parallel_map(&items, heavy);
        let ser: Vec<u64> = items.iter().map(heavy).collect();
        assert_eq!(out, ser);
    }
}
