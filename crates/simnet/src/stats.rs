//! Post-run statistics helpers over [`crate::engine::SimReport`] and
//! [`crate::trace::TraceReport`]: utilization roll-ups, per-tree goodput,
//! and measured-vs-theoretical congestion comparison (the runtime check of
//! Theorems 7.6 / 7.19).

use crate::engine::SimReport;
use crate::trace::TraceReport;

/// Summary of per-channel utilization across a run.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationSummary {
    /// Channels that carried at least one flit.
    pub active_channels: usize,
    /// Total channels (2 × physical links).
    pub total_channels: usize,
    pub min_active: f64,
    pub mean_active: f64,
    pub max: f64,
}

/// Computes the utilization summary of a report.
pub fn utilization_summary(r: &SimReport) -> UtilizationSummary {
    let cycles = r.cycles.max(1) as f64;
    let active: Vec<f64> = r
        .channel_flits
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| f as f64 / cycles)
        .collect();
    UtilizationSummary {
        active_channels: active.len(),
        total_channels: r.channel_flits.len(),
        min_active: active.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY),
        mean_active: if active.is_empty() {
            0.0
        } else {
            active.iter().sum::<f64>() / active.len() as f64
        },
        max: r.max_channel_utilization,
    }
}

/// Per-tree measured bandwidth: slice length over that tree's completion
/// cycle (0 for empty slices).
pub fn per_tree_bandwidth(r: &SimReport, sizes: &[u64]) -> Vec<f64> {
    assert_eq!(sizes.len(), r.tree_completion.len());
    sizes
        .iter()
        .zip(&r.tree_completion)
        .map(|(&m, &c)| if c == 0 { 0.0 } else { m as f64 / c as f64 })
        .collect()
}

/// Measured-vs-theoretical per-link congestion for one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionSummary {
    /// Measured congestion per undirected edge
    /// ([`TraceReport::link_congestion`]).
    pub measured: Vec<u32>,
    /// Maximum measured per-link congestion.
    pub max_measured: u32,
    /// The theoretical bound being checked (e.g. `AllreducePlan::max_congestion`).
    pub bound: u32,
    /// `true` iff no link exceeded the bound — the runtime form of
    /// Theorems 7.6 (≤ 2, low-depth) and 7.19 (= 1, edge-disjoint).
    pub within_bound: bool,
}

/// Compares a trace's measured per-link congestion against a theoretical
/// bound.
pub fn congestion_vs_bound(trace: &TraceReport, bound: u32) -> CongestionSummary {
    let measured = trace.link_congestion();
    let max_measured = measured.iter().copied().max().unwrap_or(0);
    CongestionSummary { measured, max_measured, bound, within_bound: max_measured <= bound }
}

/// Where the run's channel-cycles went, summed over channels that carried
/// traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct StallSummary {
    /// Channel-cycles that moved a flit.
    pub busy_cycles: u64,
    /// Channel-cycles lost to exhausted downstream credit.
    pub credit_stall_cycles: u64,
    /// Channel-cycles with nothing staged (on active channels only).
    pub idle_cycles: u64,
    /// `busy / (busy + stall + idle)` over active channels.
    pub busy_fraction: f64,
}

/// Aggregates per-channel stall attribution over the channels that carried
/// at least one flit.
pub fn stall_summary(trace: &TraceReport) -> StallSummary {
    let (mut busy, mut stall, mut idle) = (0u64, 0u64, 0u64);
    for c in trace.channels.iter().filter(|c| c.flits > 0) {
        busy += c.busy_cycles;
        stall += c.credit_stall_cycles;
        idle += c.idle_cycles;
    }
    let total = busy + stall + idle;
    StallSummary {
        busy_cycles: busy,
        credit_stall_cycles: stall,
        idle_cycles: idle,
        busy_fraction: if total == 0 { 0.0 } else { busy as f64 / total as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MultiTreeEmbedding, SimConfig, Simulator, TraceConfig, Workload};
    use pf_graph::{Graph, RootedTree};

    fn run() -> (SimReport, Vec<u64>) {
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap();
        let sizes = vec![1000, 1000];
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &sizes);
        let w = Workload::new(4, 2000);
        (Simulator::new(&g, &emb, SimConfig::default()).run(&w), sizes)
    }

    #[test]
    fn utilization_summary_sane() {
        let (r, _) = run();
        let s = utilization_summary(&r);
        assert!(s.active_channels > 0);
        assert!(s.active_channels <= s.total_channels);
        assert!(s.min_active > 0.0);
        assert!(s.min_active <= s.mean_active);
        assert!(s.mean_active <= s.max + 1e-12);
        assert!(s.max <= 1.0 + 1e-9);
    }

    #[test]
    fn per_tree_bandwidth_positive() {
        let (r, sizes) = run();
        let bw = per_tree_bandwidth(&r, &sizes);
        assert_eq!(bw.len(), 2);
        for b in bw {
            assert!(b > 0.2 && b <= 1.0, "per-tree bw {b}");
        }
    }

    #[test]
    fn congestion_and_stall_summaries() {
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        // Two trees over the same path -> per-link congestion 2 on shared
        // edges.
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[0, 1, 2, 3], 3).unwrap();
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &[500, 500]);
        let w = Workload::new(4, 1000);
        let (r, trace) = Simulator::new(&g, &emb, SimConfig::default())
            .with_trace(TraceConfig::counters())
            .run_traced(&w);
        assert!(r.completed);
        let trace = trace.unwrap();

        let c = congestion_vs_bound(&trace, 2);
        assert_eq!(c.max_measured, 2);
        assert!(c.within_bound);
        assert!(!congestion_vs_bound(&trace, 1).within_bound);

        let s = stall_summary(&trace);
        assert!(s.busy_cycles > 0);
        assert!(s.busy_fraction > 0.0 && s.busy_fraction <= 1.0);
        // Congestion-2 channels split their bandwidth, so the run can't be
        // all-busy everywhere.
        assert!(s.busy_fraction < 1.0);
    }

    #[test]
    fn per_tree_bandwidth_zero_slice() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let t1 = RootedTree::from_path(&[0, 1, 2], 1).unwrap();
        let t2 = RootedTree::from_path(&[0, 1, 2], 0).unwrap();
        let sizes = vec![100, 0];
        let emb = MultiTreeEmbedding::new(&g, &[t1, t2], &sizes);
        let w = Workload::new(3, 100);
        let r = Simulator::new(&g, &emb, SimConfig::default()).run(&w);
        let bw = per_tree_bandwidth(&r, &sizes);
        assert!(bw[0] > 0.0);
        assert_eq!(bw[1], 0.0);
    }
}
