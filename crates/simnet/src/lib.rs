//! Cycle-level in-network-computing simulator.
//!
//! This crate stands in for the hardware the paper targets (Intel
//! PIUMA-style / Mellanox SHARP-style routers with streaming reduction
//! engines). It implements the abstract router model of §4.4–§5.1:
//!
//! * every physical link is a pair of directed channels moving one element
//!   ("flit") per cycle with a configurable pipeline latency,
//! * each tree edge is a logical *stream* with its own virtual-channel
//!   buffer at the receiver and credit-based flow control (buffers sized in
//!   flits; full throughput needs `buffer ≥ latency + 1`, the
//!   latency–bandwidth product the paper cites as the in-network memory
//!   footprint),
//! * overlapping streams on a directed channel share its bandwidth through
//!   work-conserving round-robin arbitration — the physical realization of
//!   the congestion model behind Algorithm 1,
//! * reduction engines combine child streams with the local contribution at
//!   link rate (the paper's "multiple reductions at link rate" assumption),
//!   and the root turns the reduced stream around into a broadcast.
//!
//! The same machinery executes the full collective family — allreduce,
//! reduce, broadcast, and the sharded-training pair reduce-scatter /
//! allgather ([`engine::Collective`]; semantics and pricing in
//! `docs/COLLECTIVES.md`).
//!
//! The simulator checks numerical correctness of every delivered element
//! and reports cycle counts, per-tree goodput and per-channel utilization,
//! which the experiments compare against the Algorithm 1 predictions. The
//! [`trace`] module adds opt-in cycle-level observability — per-link,
//! per-stream and per-router counters with a documented JSON/CSV schema
//! (see `docs/OBSERVABILITY.md`) — used to verify the paper's per-link
//! congestion bounds at runtime.
//!
//! [`hostbased`] adds congestion-aware phase models of classical host-based
//! allreduce algorithms (ring, recursive doubling, Rabenseifner) as the
//! baselines of the paper's §8 comparison.
//!
//! The [`faults`] module injects deterministic, seed-reproducible link and
//! router faults (transient or permanent), models per-channel
//! timeout/bounded-retry failure detection, and drives the
//! `pf_allreduce::recovery` rebuild loop so the collective completes on
//! the surviving fabric with quantified bandwidth loss (`docs/FAULTS.md`).

#[cfg(test)]
mod difftest;
pub mod embedding;
pub mod engine;
pub mod faults;
pub mod hostbased;
pub mod p2p;
pub mod par;
pub mod routing;
pub mod stats;
pub mod trace;
pub mod workload;

pub use embedding::MultiTreeEmbedding;
pub use engine::{
    delivery_digest_entry, Collective, FaultedRun, JobBinding, JobOutcome, JobsRun, SimConfig,
    SimReport, Simulator,
};
pub use faults::{
    run_collective_with_recovery, run_with_recovery, DetectionConfig, FaultEvent, FaultKind,
    FaultReport, FaultSchedule, FaultTarget, RecoveryError, RecoveryOutcome, RecoveryRound,
};
pub use trace::{FaultTraceRow, JobTraceRow, TraceConfig, TraceReport};
pub use workload::{JobSegment, ReduceKind, Workload};
