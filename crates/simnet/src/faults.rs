//! Deterministic fault injection and degraded-tree recovery.
//!
//! A [`FaultSchedule`] kills or degrades links and routers at scheduled
//! cycles, permanently or transiently. The engine models an outage as a
//! frozen channel: nothing crosses it (flits already in flight are stuck
//! on the wire and delivered only if the fault heals), and upstream
//! streams with staged data accrue *stall* cycles. Every
//! [`DetectionConfig::timeout`] stalled cycles counts as one failed
//! transmission attempt (a retry); after [`DetectionConfig::max_retries`]
//! failed attempts the channel is declared dead, the owning link or
//! router is recorded in the [`FaultReport`], and (by default) the run
//! aborts so a fabric manager can re-plan. Transient faults that heal
//! before the retry budget runs out only delay the collective.
//!
//! [`run_with_recovery`] is that fabric manager: it runs the collective
//! under a schedule, and on detection rebuilds a degraded plan on the
//! surviving subgraph (`pf_allreduce::recovery`), re-embeds it, and
//! re-runs — iterating until the collective completes. The outcome
//! quantifies the bandwidth loss (Algorithm 1 on the degraded graph) and
//! the cycles spent across all attempts.
//!
//! Everything is deterministic and seed-reproducible: the same schedule
//! (or the same [`FaultSchedule::random_links`] seed) produces the
//! identical [`SimReport`], trace, and recovery outcome. With no schedule
//! attached — or an empty one — the engine takes the exact same decisions
//! as the fault-free build (property-tested, like tracing).

use crate::embedding::MultiTreeEmbedding;
use crate::engine::{SimConfig, SimReport, Simulator};
use crate::trace::FaultTraceRow;
use crate::workload::Workload;
use pf_allreduce::recovery::{rebuild_degraded, DegradedPlan, FaultSet, RebuildError};
use pf_allreduce::{AllreducePlan, Rational};
use pf_graph::{EdgeId, Graph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which physical element a fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// An undirected link (both directed channels), by edge id.
    Link(EdgeId),
    /// A router: every incident channel goes down and its engines halt.
    Router(VertexId),
}

/// What the fault does to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Full outage: nothing crosses the affected channels.
    Down,
    /// Degraded link: the affected channels may transmit only on cycles
    /// divisible by `period` — bandwidth drops to `1/period`. Degraded
    /// channels make (slow) progress, so they never trip detection.
    Degraded {
        /// Transmit-gate period (≥ 2 to mean an actual slowdown).
        period: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault activates (first affected cycle).
    pub cycle: u64,
    /// What fails.
    pub target: FaultTarget,
    /// How it fails.
    pub kind: FaultKind,
    /// `None` = permanent; `Some(d)` = transient, healing at `cycle + d`.
    pub duration: Option<u64>,
}

/// Per-channel timeout / bounded-retry semantics (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionConfig {
    /// Stalled cycles per failed transmission attempt (≥ 1).
    pub timeout: u64,
    /// Failed attempts before the channel is declared dead (≥ 1).
    pub max_retries: u32,
    /// Abort the run on the first declared-dead channel (the fabric
    /// manager re-plans). With `false` the run keeps going until
    /// `max_cycles` — useful to observe transient faults healing.
    pub abort_on_detection: bool,
}

impl Default for DetectionConfig {
    fn default() -> Self {
        DetectionConfig { timeout: 32, max_retries: 3, abort_on_detection: true }
    }
}

/// A full injection plan: events plus detection semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The faults, in any order (the engine sorts by activation cycle).
    pub events: Vec<FaultEvent>,
    /// Timeout/retry semantics used by the engine.
    pub detection: DetectionConfig,
}

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::none()
    }
}

impl FaultSchedule {
    /// No faults. Attaching this schedule is property-tested to leave the
    /// simulation bit-identical.
    pub fn none() -> Self {
        FaultSchedule { events: Vec::new(), detection: DetectionConfig::default() }
    }

    /// True when there is nothing to inject.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Permanent outage of the given links, all at `cycle`.
    pub fn permanent_links(edges: &[EdgeId], cycle: u64) -> Self {
        FaultSchedule {
            events: edges
                .iter()
                .map(|&e| FaultEvent {
                    cycle,
                    target: FaultTarget::Link(e),
                    kind: FaultKind::Down,
                    duration: None,
                })
                .collect(),
            detection: DetectionConfig::default(),
        }
    }

    /// `k` distinct random links of `g` failing permanently at one random
    /// cycle in `[cycle_lo, cycle_hi]`. Pure function of `seed`.
    pub fn random_links(g: &Graph, k: usize, cycle_lo: u64, cycle_hi: u64, seed: u64) -> Self {
        assert!(k as u32 <= g.num_edges(), "cannot fail {k} of {} links", g.num_edges());
        assert!(cycle_lo <= cycle_hi);
        let mut rng = StdRng::seed_from_u64(seed);
        let cycle = rng.random_range(cycle_lo..=cycle_hi);
        let mut chosen: Vec<EdgeId> = Vec::with_capacity(k);
        while chosen.len() < k {
            let e = rng.random_range(0..g.num_edges());
            if !chosen.contains(&e) {
                chosen.push(e);
            }
        }
        FaultSchedule::permanent_links(&chosen, cycle)
    }

    /// One random router failing permanently at a random cycle in
    /// `[cycle_lo, cycle_hi]`. Pure function of `seed`.
    pub fn random_router(g: &Graph, cycle_lo: u64, cycle_hi: u64, seed: u64) -> Self {
        assert!(g.num_vertices() > 0);
        assert!(cycle_lo <= cycle_hi);
        let mut rng = StdRng::seed_from_u64(seed);
        let cycle = rng.random_range(cycle_lo..=cycle_hi);
        let v = rng.random_range(0..g.num_vertices());
        FaultSchedule {
            events: vec![FaultEvent {
                cycle,
                target: FaultTarget::Router(v),
                kind: FaultKind::Down,
                duration: None,
            }],
            detection: DetectionConfig::default(),
        }
    }
}

/// What the fault layer observed during one run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Events that activated before the run ended.
    pub injected: usize,
    /// Links declared dead by timeout/retry detection (edge ids, sorted).
    pub failed_edges: Vec<EdgeId>,
    /// Routers declared dead (attributed when the dead channel belongs to
    /// a router fault), sorted.
    pub failed_routers: Vec<VertexId>,
    /// Cycle of the first dead declaration.
    pub first_detection_cycle: Option<u64>,
    /// Total failed transmission attempts (retry expirations).
    pub retries: u64,
    /// True when the run was cut short by `abort_on_detection`.
    pub aborted: bool,
    /// Every fault-layer action, in order (also exported into the trace's
    /// `faults` table).
    pub records: Vec<FaultTraceRow>,
}

impl FaultReport {
    /// An all-quiet report (no schedule attached / nothing happened).
    pub fn quiet() -> Self {
        FaultReport {
            injected: 0,
            failed_edges: Vec::new(),
            failed_routers: Vec::new(),
            first_detection_cycle: None,
            retries: 0,
            aborted: false,
            records: Vec::new(),
        }
    }

    /// The detected faults as a `pf_allreduce` fault set, ready for
    /// [`rebuild_degraded`].
    pub fn detected(&self) -> FaultSet {
        FaultSet { edges: self.failed_edges.clone(), routers: self.failed_routers.clone() }
    }
}

/// Engine-side fault state. Owned by the simulator when a schedule is
/// attached; every hook is a no-op-equivalent when it is absent.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    detection: DetectionConfig,
    /// Events sorted by activation cycle (stable, so schedule order breaks
    /// ties deterministically).
    events: Vec<FaultEvent>,
    next_event: usize,
    /// Pending heals as `(heal cycle, event index)`, kept sorted.
    heals: Vec<(u64, usize)>,
    // Static topology maps.
    channel_ends: Vec<(VertexId, VertexId)>,
    router_channels: Vec<Vec<u32>>,
    stream_channel: Vec<u32>,
    // Live fault state.
    down: Vec<u32>,
    degrade: Vec<u32>,
    router_down: Vec<bool>,
    link_down: Vec<u32>,
    /// Activated-but-not-healed events — nonzero means per-cycle stepping
    /// is required (see [`FaultState::skip_safe`]).
    active_faults: u32,
    // Detection state.
    stalled: Vec<u64>,
    retries: Vec<u32>,
    stream_dead: Vec<bool>,
    detected_edge: Vec<bool>,
    detected_router: Vec<bool>,
    total_retries: u64,
    first_detection: Option<u64>,
    injected: usize,
    abort: bool,
    records: Vec<FaultTraceRow>,
}

impl FaultState {
    pub(crate) fn new(g: &Graph, emb: &MultiTreeEmbedding, schedule: &FaultSchedule) -> Self {
        assert!(schedule.detection.timeout >= 1, "detection timeout must be at least 1 cycle");
        assert!(schedule.detection.max_retries >= 1, "at least one retry is required");
        for ev in &schedule.events {
            match ev.target {
                FaultTarget::Link(e) => {
                    assert!(e < g.num_edges(), "fault targets unknown edge {e}")
                }
                FaultTarget::Router(v) => {
                    assert!(v < g.num_vertices(), "fault targets unknown router {v}")
                }
            }
            if let FaultKind::Degraded { period } = ev.kind {
                assert!(period >= 1, "degrade period must be at least 1");
            }
        }
        let mut events = schedule.events.clone();
        events.sort_by_key(|e| e.cycle);

        let num_channels = 2 * g.num_edges() as usize;
        let mut channel_ends = vec![(0, 0); num_channels];
        let mut router_channels = vec![Vec::new(); g.num_vertices() as usize];
        for (e, u, v) in g.edges() {
            channel_ends[2 * e as usize] = (u, v);
            channel_ends[2 * e as usize + 1] = (v, u);
            for c in [2 * e, 2 * e + 1] {
                router_channels[u as usize].push(c);
                router_channels[v as usize].push(c);
            }
        }
        let mut stream_channel = vec![u32::MAX; emb.streams.len()];
        for (c, members) in emb.channel_streams.iter().enumerate() {
            for &s in members {
                stream_channel[s as usize] = c as u32;
            }
        }

        FaultState {
            detection: schedule.detection,
            events,
            next_event: 0,
            heals: Vec::new(),
            channel_ends,
            router_channels,
            stream_channel,
            down: vec![0; num_channels],
            degrade: vec![0; num_channels],
            router_down: vec![false; g.num_vertices() as usize],
            link_down: vec![0; g.num_edges() as usize],
            active_faults: 0,
            stalled: vec![0; emb.streams.len()],
            retries: vec![0; emb.streams.len()],
            stream_dead: vec![false; emb.streams.len()],
            detected_edge: vec![false; g.num_edges() as usize],
            detected_router: vec![false; g.num_vertices() as usize],
            total_retries: 0,
            first_detection: None,
            injected: 0,
            abort: false,
            records: Vec::new(),
        }
    }

    fn apply(&mut self, idx: usize, activate: bool) {
        let ev = self.events[idx];
        if activate {
            self.active_faults += 1;
        } else {
            self.active_faults -= 1;
        }
        match (ev.target, ev.kind) {
            (FaultTarget::Link(e), FaultKind::Down) => {
                for c in [2 * e as usize, 2 * e as usize + 1] {
                    if activate {
                        self.down[c] += 1;
                    } else {
                        self.down[c] -= 1;
                    }
                }
                if activate {
                    self.link_down[e as usize] += 1;
                } else {
                    self.link_down[e as usize] -= 1;
                }
            }
            (FaultTarget::Link(e), FaultKind::Degraded { period }) => {
                let p = if activate { period } else { 0 };
                self.degrade[2 * e as usize] = p;
                self.degrade[2 * e as usize + 1] = p;
            }
            (FaultTarget::Router(v), _) => {
                // Router faults are full outages regardless of kind.
                self.router_down[v as usize] = activate;
                for ci in 0..self.router_channels[v as usize].len() {
                    let c = self.router_channels[v as usize][ci] as usize;
                    if activate {
                        self.down[c] += 1;
                    } else {
                        self.down[c] -= 1;
                    }
                }
            }
        }
    }

    /// Activates/heals everything due at `cycle`. Heals run first so a
    /// transient fault of duration `d` affects exactly cycles
    /// `[cycle, cycle + d)`.
    pub(crate) fn begin_cycle(&mut self, cycle: u64) {
        while let Some(&(at, idx)) = self.heals.first() {
            if at > cycle {
                break;
            }
            self.heals.remove(0);
            self.apply(idx, false);
            let ev = self.events[idx];
            self.records.push(FaultTraceRow {
                cycle,
                action: "heal".to_string(),
                target_kind: target_kind(ev.target).to_string(),
                target: target_id(ev.target),
                detail: 0,
            });
        }
        while self.next_event < self.events.len() && self.events[self.next_event].cycle <= cycle {
            let idx = self.next_event;
            self.next_event += 1;
            let ev = self.events[idx];
            self.apply(idx, true);
            self.injected += 1;
            if let Some(d) = ev.duration {
                let heal_at = ev.cycle + d;
                let pos = self.heals.partition_point(|&(at, _)| at <= heal_at);
                self.heals.insert(pos, (heal_at, idx));
            }
            self.records.push(FaultTraceRow {
                cycle,
                action: match ev.kind {
                    FaultKind::Down => "fail".to_string(),
                    FaultKind::Degraded { .. } => "degrade".to_string(),
                },
                target_kind: target_kind(ev.target).to_string(),
                target: target_id(ev.target),
                detail: match ev.kind {
                    FaultKind::Down => ev.duration.unwrap_or(0),
                    FaultKind::Degraded { period } => period as u64,
                },
            });
        }
    }

    /// True while any activated fault keeps channel `c` from transmitting
    /// at `cycle`.
    #[inline]
    pub(crate) fn channel_blocked(&self, c: usize, cycle: u64) -> bool {
        self.down[c] > 0 || (self.degrade[c] > 0 && !cycle.is_multiple_of(self.degrade[c] as u64))
    }

    /// True while channel `c` is fully down (outage, not mere degrade).
    #[inline]
    pub(crate) fn channel_down(&self, c: usize) -> bool {
        self.down[c] > 0
    }

    /// Flits in flight on a dead channel are stuck on the wire.
    #[inline]
    pub(crate) fn arrivals_frozen(&self, stream: usize) -> bool {
        self.down[self.stream_channel[stream] as usize] > 0
    }

    /// True while router `v`'s engines are halted.
    #[inline]
    pub(crate) fn router_is_down(&self, v: usize) -> bool {
        self.router_down[v]
    }

    /// Accounts one stalled cycle for every resident stream with staged
    /// data on the downed channel `c`, expiring retries and declaring the
    /// owning element dead when the budget runs out.
    pub(crate) fn observe_outage(
        &mut self,
        c: usize,
        members: &[u32],
        has_data: impl Fn(usize) -> bool,
        cycle: u64,
    ) {
        for &s in members {
            let s = s as usize;
            if self.stream_dead[s] || !has_data(s) {
                continue;
            }
            self.stalled[s] += 1;
            if self.stalled[s] < self.detection.timeout {
                continue;
            }
            self.stalled[s] = 0;
            self.retries[s] += 1;
            self.total_retries += 1;
            self.records.push(FaultTraceRow {
                cycle,
                action: "retry".to_string(),
                target_kind: "stream".to_string(),
                target: s as u32,
                detail: self.retries[s] as u64,
            });
            if self.retries[s] < self.detection.max_retries {
                continue;
            }
            self.stream_dead[s] = true;
            self.declare_dead(c, cycle);
        }
    }

    /// Attributes a dead channel to its link or router fault.
    fn declare_dead(&mut self, c: usize, cycle: u64) {
        let (src, dst) = self.channel_ends[c];
        let (target_kind, target) = if self.router_down[src as usize] {
            self.detected_router[src as usize] = true;
            ("router", src)
        } else if self.router_down[dst as usize] {
            self.detected_router[dst as usize] = true;
            ("router", dst)
        } else {
            let e = (c / 2) as u32;
            self.detected_edge[e as usize] = true;
            ("link", e)
        };
        self.first_detection.get_or_insert(cycle);
        if self.detection.abort_on_detection {
            self.abort = true;
        }
        self.records.push(FaultTraceRow {
            cycle,
            action: "detected".to_string(),
            target_kind: target_kind.to_string(),
            target,
            detail: 0,
        });
    }

    /// Resets the retry bookkeeping of a stream that transmitted.
    #[inline]
    pub(crate) fn note_progress(&mut self, stream: usize) {
        self.stalled[stream] = 0;
        self.retries[stream] = 0;
    }

    /// True once detection has declared a fault and asked for an abort.
    #[inline]
    pub(crate) fn should_abort(&self) -> bool {
        self.abort
    }

    /// True while idle cycles may be skipped as far as the fault layer is
    /// concerned: no fault is currently active. Downed channels need
    /// per-cycle stall/retry accounting and degraded channels gate
    /// transmission on the cycle number, so any active fault pins the
    /// engine to per-cycle stepping until it heals.
    #[inline]
    pub(crate) fn skip_safe(&self) -> bool {
        self.active_faults == 0
    }

    /// The next cycle at which the fault layer changes state — the
    /// earliest pending activation or heal. A skipping engine must not
    /// jump past it: [`FaultState::begin_cycle`] stamps its records with
    /// the cycle it runs in, and activations change channel behavior.
    #[inline]
    pub(crate) fn next_transition(&self) -> Option<u64> {
        let activation = self.events.get(self.next_event).map(|e| e.cycle);
        let heal = self.heals.first().map(|&(at, _)| at);
        match (activation, heal) {
            (Some(a), Some(h)) => Some(a.min(h)),
            (a, h) => a.or(h),
        }
    }

    /// Folds the state into the exported report.
    pub(crate) fn finish(self, completed: bool) -> FaultReport {
        let failed_edges: Vec<EdgeId> = self
            .detected_edge
            .iter()
            .enumerate()
            .filter_map(|(e, &d)| d.then_some(e as EdgeId))
            .collect();
        let failed_routers: Vec<VertexId> = self
            .detected_router
            .iter()
            .enumerate()
            .filter_map(|(v, &d)| d.then_some(v as VertexId))
            .collect();
        FaultReport {
            injected: self.injected,
            failed_edges,
            failed_routers,
            first_detection_cycle: self.first_detection,
            retries: self.total_retries,
            aborted: self.abort && !completed,
            records: self.records,
        }
    }
}

fn target_kind(t: FaultTarget) -> &'static str {
    match t {
        FaultTarget::Link(_) => "link",
        FaultTarget::Router(_) => "router",
    }
}

fn target_id(t: FaultTarget) -> u32 {
    match t {
        FaultTarget::Link(e) => e,
        FaultTarget::Router(v) => v,
    }
}

/// One attempt of the recovery loop.
#[derive(Debug, Clone)]
pub struct RecoveryRound {
    /// The simulator's report for this attempt.
    pub report: SimReport,
    /// What the fault layer saw.
    pub faults: FaultReport,
    /// Faults newly detected this round, in the *healthy* graph's ids.
    pub newly_detected: FaultSet,
}

/// Result of [`run_with_recovery`].
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Every attempt, in order; the last one completed.
    pub rounds: Vec<RecoveryRound>,
    /// Cumulative detected faults (healthy-graph ids).
    pub fault_set: FaultSet,
    /// The degraded plan the final attempt ran on (`None` when the first
    /// attempt completed on the healthy plan).
    pub degraded: Option<DegradedPlan>,
    /// Sum of cycles over all attempts — the collective's wall-clock cost
    /// including the aborted runs.
    pub total_cycles: u64,
}

impl RecoveryOutcome {
    /// The completed attempt's report.
    pub fn final_report(&self) -> &SimReport {
        &self.rounds.last().expect("at least one round").report
    }

    /// Fraction of the healthy aggregate bandwidth the final plan retains.
    pub fn bandwidth_retention(&self) -> Rational {
        self.degraded.as_ref().map_or(Rational::ONE, |d| d.bandwidth_retention())
    }

    /// End-to-end goodput including detection and re-run time, in
    /// elements per cycle.
    pub fn achieved_bandwidth(&self) -> f64 {
        self.final_report().total_elems as f64 / self.total_cycles.max(1) as f64
    }
}

/// Maps a schedule into a degraded plan's labeling, dropping events whose
/// target no longer exists.
fn translate_schedule(schedule: &FaultSchedule, d: &DegradedPlan) -> FaultSchedule {
    FaultSchedule {
        events: schedule
            .events
            .iter()
            .filter_map(|ev| {
                let target = match ev.target {
                    FaultTarget::Link(e) => FaultTarget::Link(d.new_edge[e as usize]?),
                    FaultTarget::Router(v) => FaultTarget::Router(d.new_vertex[v as usize]?),
                };
                Some(FaultEvent { target, ..*ev })
            })
            .collect(),
        detection: schedule.detection,
    }
}

/// Why a recovery loop failed. `Display` text is stable — it matches the
/// strings the old `Result<_, String>` API produced, so logs and
/// downstream formatting don't churn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// The final attempt completed but produced wrong values.
    Mismatches(u64),
    /// An attempt aborted without the fault layer detecting anything
    /// (typically `max_cycles` exhausted).
    Undetected,
    /// The accumulated faults left no plan to rebuild on.
    Rebuild(RebuildError),
    /// The detect→rebuild→re-run loop exceeded its attempt budget.
    NoConvergence {
        /// The attempt budget that was exhausted.
        attempts: usize,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Mismatches(n) => {
                write!(f, "completed with {n} mismatched elements")
            }
            RecoveryError::Undetected => {
                write!(f, "run aborted without detecting a fault (max_cycles exhausted?)")
            }
            RecoveryError::Rebuild(e) => write!(f, "{e}"),
            RecoveryError::NoConvergence { attempts } => {
                write!(f, "recovery did not converge within {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Rebuild(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RebuildError> for RecoveryError {
    fn from(e: RebuildError) -> Self {
        RecoveryError::Rebuild(e)
    }
}

/// Runs the allreduce of an `m`-element vector under `schedule`,
/// rebuilding a degraded plan and re-running on every detection, until an
/// attempt completes (see module docs).
///
/// Router faults shrink the collective to the surviving routers: the
/// re-run reduces the survivors' contributions (the dead router's input is
/// lost with it).
///
/// Errors when the faults partition the network, when an attempt aborts
/// without detecting anything (`max_cycles` exhausted), or when the loop
/// fails to converge within `schedule.events.len() + 2` attempts.
pub fn run_with_recovery(
    plan: &AllreducePlan,
    m: u64,
    cfg: SimConfig,
    schedule: &FaultSchedule,
) -> Result<RecoveryOutcome, RecoveryError> {
    run_collective_with_recovery(plan, m, cfg, schedule, crate::engine::Collective::Allreduce)
}

/// Like [`run_with_recovery`] for an arbitrary collective: every recovery
/// attempt (on the healthy and each degraded plan) re-runs the same
/// collective kind.
pub fn run_collective_with_recovery(
    plan: &AllreducePlan,
    m: u64,
    cfg: SimConfig,
    schedule: &FaultSchedule,
    kind: crate::engine::Collective,
) -> Result<RecoveryOutcome, RecoveryError> {
    let mut fault_set = FaultSet::none();
    let mut degraded: Option<DegradedPlan> = None;
    let mut rounds: Vec<RecoveryRound> = Vec::new();
    let mut total_cycles = 0u64;
    let max_rounds = schedule.events.len() + 2;

    for _ in 0..max_rounds {
        // Current topology / trees / schedule, in this round's labeling.
        let (graph, trees, sizes, round_schedule) = match &degraded {
            None => (&plan.graph, &plan.trees, plan.split(m), schedule.clone()),
            Some(d) => (&d.graph, &d.trees, d.split(m), translate_schedule(schedule, d)),
        };
        let emb = MultiTreeEmbedding::new(graph, trees, &sizes);
        let w = Workload::new(graph.num_vertices(), m);
        let run = Simulator::new(graph, &emb, cfg)
            .with_faults(graph, round_schedule)
            .run_collective_faulted(&w, kind);

        total_cycles += run.report.cycles;

        // Map this round's detections back into healthy-graph ids.
        let newly_detected = match &degraded {
            None => run.faults.detected(),
            Some(d) => FaultSet {
                edges: run
                    .faults
                    .failed_edges
                    .iter()
                    .map(|&e| d.orig_edge[e as usize])
                    .collect(),
                routers: run
                    .faults
                    .failed_routers
                    .iter()
                    .map(|&v| d.orig_vertex[v as usize])
                    .collect(),
            },
        };
        let completed = run.report.completed;
        let mismatches = run.report.mismatches;
        rounds.push(RecoveryRound { report: run.report, faults: run.faults, newly_detected });

        if completed {
            if mismatches != 0 {
                return Err(RecoveryError::Mismatches(mismatches));
            }
            return Ok(RecoveryOutcome { rounds, fault_set, degraded, total_cycles });
        }
        let newly = &rounds.last().expect("just pushed").newly_detected;
        if newly.is_empty() {
            return Err(RecoveryError::Undetected);
        }
        fault_set.edges.extend(&newly.edges);
        fault_set.routers.extend(&newly.routers);
        fault_set.edges.sort_unstable();
        fault_set.edges.dedup();
        fault_set.routers.sort_unstable();
        fault_set.routers.dedup();
        degraded = Some(rebuild_degraded(plan, &fault_set)?);
    }
    Err(RecoveryError::NoConvergence { attempts: max_rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Collective;
    use crate::trace::TraceConfig;

    fn low7() -> AllreducePlan {
        AllreducePlan::low_depth(7).unwrap()
    }

    fn run_plain(plan: &AllreducePlan, m: u64) -> SimReport {
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        Simulator::new(&plan.graph, &emb, SimConfig::default()).run(&w)
    }

    #[test]
    fn empty_schedule_is_bit_identical() {
        let plan = low7();
        let m = 600;
        let plain = run_plain(&plan, m);
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let faulted = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .with_faults(&plan.graph, FaultSchedule::none())
            .run_faulted(&w);
        assert_eq!(faulted.report, plain);
        assert_eq!(faulted.faults, FaultReport::quiet());
    }

    #[test]
    fn never_firing_schedule_is_bit_identical() {
        let plan = low7();
        let m = 600;
        let plain = run_plain(&plan, m);
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let schedule = FaultSchedule::permanent_links(&[0, 1], 1_000_000_000);
        let faulted = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .with_faults(&plan.graph, schedule)
            .run_faulted(&w);
        assert_eq!(faulted.report, plain);
        assert_eq!(faulted.faults.injected, 0);
    }

    #[test]
    fn permanent_link_fault_is_detected_and_aborts() {
        let plan = low7();
        let m = 2000;
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        // Fail a link every low-depth tree set actually uses: pick the
        // first edge with nonzero planned congestion.
        let e = plan.edge_congestion.iter().position(|&c| c > 0).unwrap() as u32;
        let schedule = FaultSchedule::permanent_links(&[e], 50);
        let run = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .with_faults(&plan.graph, schedule.clone())
            .run_faulted(&w);
        assert!(!run.report.completed);
        assert!(run.faults.aborted);
        assert_eq!(run.faults.failed_edges, vec![e]);
        assert!(run.faults.failed_routers.is_empty());
        let detect = run.faults.first_detection_cycle.unwrap();
        // Detection takes at least timeout * max_retries stalled cycles.
        let d = schedule.detection;
        assert!(detect >= 50 + d.timeout * (d.max_retries as u64 - 1));
        assert!(run.faults.retries >= d.max_retries as u64);
    }

    #[test]
    fn transient_fault_heals_and_completes() {
        let plan = low7();
        let m = 2000;
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let e = plan.edge_congestion.iter().position(|&c| c > 0).unwrap() as u32;
        // Outage shorter than the detection horizon (32 * 3 = 96 cycles).
        let schedule = FaultSchedule {
            events: vec![FaultEvent {
                cycle: 50,
                target: FaultTarget::Link(e),
                kind: FaultKind::Down,
                duration: Some(40),
            }],
            detection: DetectionConfig::default(),
        };
        let plain = run_plain(&plan, m);
        let run = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .with_faults(&plan.graph, schedule)
            .run_faulted(&w);
        assert!(run.report.completed, "transient fault must heal");
        assert_eq!(run.report.mismatches, 0);
        assert!(run.faults.failed_edges.is_empty());
        assert!(!run.faults.aborted);
        // The outage can only slow the run down.
        assert!(run.report.cycles >= plain.cycles);
    }

    #[test]
    fn degraded_link_slows_but_completes() {
        let plan = low7();
        let m = 2000;
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let e = plan.edge_congestion.iter().position(|&c| c > 0).unwrap() as u32;
        let schedule = FaultSchedule {
            events: vec![FaultEvent {
                cycle: 1,
                target: FaultTarget::Link(e),
                kind: FaultKind::Degraded { period: 4 },
                duration: None,
            }],
            detection: DetectionConfig::default(),
        };
        let plain = run_plain(&plan, m);
        let run = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .with_faults(&plan.graph, schedule)
            .run_faulted(&w);
        assert!(run.report.completed);
        assert_eq!(run.report.mismatches, 0);
        assert!(run.faults.failed_edges.is_empty(), "degrades never trip detection");
        assert!(run.report.cycles > plain.cycles, "quarter-rate link must cost cycles");
    }

    #[test]
    fn recovery_completes_after_permanent_fault() {
        let plan = low7();
        let m = 2000;
        let e = plan.edge_congestion.iter().position(|&c| c > 0).unwrap() as u32;
        let schedule = FaultSchedule::permanent_links(&[e], 50);
        let out = run_with_recovery(&plan, m, SimConfig::default(), &schedule).unwrap();
        assert_eq!(out.rounds.len(), 2, "abort then completed re-run");
        assert!(out.final_report().completed);
        assert_eq!(out.final_report().mismatches, 0);
        assert_eq!(out.fault_set.edges, vec![e]);
        let d = out.degraded.as_ref().unwrap();
        assert!(d.max_congestion <= plan.max_congestion);
        assert!(out.bandwidth_retention() <= Rational::ONE);
        assert!(out.bandwidth_retention() > Rational::ZERO);
        assert!(out.total_cycles > out.final_report().cycles);
    }

    #[test]
    fn recovery_router_fault_runs_on_survivors() {
        let plan = AllreducePlan::low_depth(5).unwrap();
        let m = 1000;
        let schedule = FaultSchedule {
            events: vec![FaultEvent {
                cycle: 30,
                target: FaultTarget::Router(7),
                kind: FaultKind::Down,
                duration: None,
            }],
            detection: DetectionConfig::default(),
        };
        let out = run_with_recovery(&plan, m, SimConfig::default(), &schedule).unwrap();
        assert!(out.final_report().completed);
        assert_eq!(out.final_report().mismatches, 0);
        assert_eq!(out.fault_set.routers, vec![7]);
        let d = out.degraded.as_ref().unwrap();
        assert_eq!(d.graph.num_vertices() + 1, plan.graph.num_vertices());
    }

    #[test]
    fn recovery_is_seed_reproducible() {
        let plan = low7();
        let m = 1500;
        for seed in [1u64, 99, 0xFA17] {
            let s1 = FaultSchedule::random_links(&plan.graph, 2, 10, 400, seed);
            let s2 = FaultSchedule::random_links(&plan.graph, 2, 10, 400, seed);
            assert_eq!(s1, s2, "schedule generation is a pure function of the seed");
            let a = run_with_recovery(&plan, m, SimConfig::default(), &s1).unwrap();
            let b = run_with_recovery(&plan, m, SimConfig::default(), &s2).unwrap();
            assert_eq!(a.rounds.len(), b.rounds.len());
            for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
                assert_eq!(ra.report, rb.report);
                assert_eq!(ra.faults, rb.faults);
            }
            assert_eq!(a.total_cycles, b.total_cycles);
        }
    }

    #[test]
    fn fault_events_appear_in_trace() {
        let plan = low7();
        let m = 1000;
        let sizes = plan.split(m);
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        let e = plan.edge_congestion.iter().position(|&c| c > 0).unwrap() as u32;
        let schedule = FaultSchedule::permanent_links(&[e], 50);
        let run = Simulator::new(&plan.graph, &emb, SimConfig::default())
            .with_trace(TraceConfig::counters())
            .with_faults(&plan.graph, schedule)
            .run_collective_faulted(&w, Collective::Allreduce);
        let trace = run.trace.expect("tracing enabled");
        assert!(!trace.faults.is_empty());
        assert_eq!(trace.faults, run.faults.records);
        assert!(trace.faults.iter().any(|r| r.action == "fail" && r.target == e));
        assert!(trace.faults.iter().any(|r| r.action == "detected"));
        // And the fault table round-trips through the JSON schema.
        let parsed = crate::trace::TraceReport::from_json(&trace.to_json()).unwrap();
        assert_eq!(parsed, trace);
    }
}
