//! Mapping a set of spanning trees onto the physical network as router
//! dataflow configurations.
//!
//! For every tree, every router needs to know: its parent port, its child
//! ports, whether it is the root, and which sub-vector slice the tree
//! carries. This module also enumerates the logical *streams* (tree edges
//! with a direction and phase) and assigns each to its directed physical
//! channel — the structure the cycle engine executes.

use pf_graph::{Graph, RootedTree, VertexId};

/// Direction/phase of a logical stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Child → parent partial sums.
    Reduce,
    /// Parent → child reduced results.
    Broadcast,
}

/// One logical stream: a directed tree edge in one phase.
#[derive(Debug, Clone, Copy)]
pub struct Stream {
    /// Index of the tree this stream belongs to.
    pub tree: u32,
    /// Sending router.
    pub src: VertexId,
    /// Receiving router.
    pub dst: VertexId,
    /// Reduce (up) or broadcast (down).
    pub phase: Phase,
}

/// Per-tree router configuration.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// The tree's root router.
    pub root: VertexId,
    /// Children of each router in this tree.
    pub children: Vec<Vec<VertexId>>,
    /// Parent of each router (None at the root).
    pub parent: Vec<Option<VertexId>>,
    /// Global element offset of this tree's sub-vector.
    pub offset: u64,
    /// Sub-vector length.
    pub len: u64,
}

/// A full multi-tree embedding: streams, channel assignments, sub-vector
/// slices.
#[derive(Debug, Clone)]
pub struct MultiTreeEmbedding {
    /// Number of routers.
    pub num_nodes: u32,
    /// Per-tree configuration.
    pub trees: Vec<TreeConfig>,
    /// All logical streams.
    pub streams: Vec<Stream>,
    /// `channel_streams[c]` = stream indices mapped to directed channel `c`.
    /// Channel ids: `2*e` for `u -> v` and `2*e + 1` for `v -> u`, where
    /// edge `e = (u, v)` with `u < v`.
    pub channel_streams: Vec<Vec<u32>>,
    /// Total vector length (sum of tree slices).
    pub total_len: u64,
}

/// Directed channel id for hop `src -> dst` over graph `g`.
pub fn channel_id(g: &Graph, src: VertexId, dst: VertexId) -> u32 {
    let e = g.edge_id(src, dst).expect("hop must be a physical edge");
    let (u, _) = g.endpoints(e);
    if src == u {
        2 * e
    } else {
        2 * e + 1
    }
}

impl MultiTreeEmbedding {
    /// Builds the embedding of `trees` in `g`, carving an `m`-element
    /// vector into per-tree slices `sizes` (must sum to `m`; use
    /// `pf_allreduce::perf::optimal_split`). Tree slices are laid out
    /// back to back from element 0.
    ///
    /// Panics if a tree is not a spanning tree of `g` or sizes mismatch.
    pub fn new(g: &Graph, trees: &[RootedTree], sizes: &[u64]) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut off = 0u64;
        for &len in sizes {
            offsets.push(off);
            off += len;
        }
        Self::with_offsets(g, trees, sizes, &offsets)
    }

    /// Builds an embedding whose tree slices sit at *explicit* global
    /// element offsets instead of a dense 0-based layout. This is how
    /// multi-tenant runs address one shared element space: each job's
    /// trees point at that job's global element range, so a job re-run
    /// solo on the same offsets reduces exactly the same elements as in a
    /// concurrent run. `total_len` stays the sum of `sizes` (the work this
    /// embedding performs), not the extent of the global space.
    ///
    /// Panics if a tree is not a spanning tree of `g` or lengths mismatch.
    pub fn with_offsets(g: &Graph, trees: &[RootedTree], sizes: &[u64], offsets: &[u64]) -> Self {
        assert_eq!(trees.len(), sizes.len(), "one slice size per tree");
        assert_eq!(trees.len(), offsets.len(), "one slice offset per tree");
        let n = g.num_vertices();
        let mut configs = Vec::with_capacity(trees.len());
        let mut streams = Vec::new();
        let mut channel_streams = vec![Vec::new(); 2 * g.num_edges() as usize];
        let mut total = 0u64;

        for (ti, (t, (&len, &offset))) in
            trees.iter().zip(sizes.iter().zip(offsets)).enumerate()
        {
            t.validate_spanning(g).expect("embedded tree must span the network");
            let mut children = vec![Vec::new(); n as usize];
            let mut parent = vec![None; n as usize];
            for (child, par) in t.edges() {
                children[par as usize].push(child);
                parent[child as usize] = Some(par);

                let up = Stream { tree: ti as u32, src: child, dst: par, phase: Phase::Reduce };
                channel_streams[channel_id(g, child, par) as usize].push(streams.len() as u32);
                streams.push(up);

                let down =
                    Stream { tree: ti as u32, src: par, dst: child, phase: Phase::Broadcast };
                channel_streams[channel_id(g, par, child) as usize].push(streams.len() as u32);
                streams.push(down);
            }
            configs.push(TreeConfig { root: t.root(), children, parent, offset, len });
            total += len;
        }

        MultiTreeEmbedding {
            num_nodes: n,
            trees: configs,
            streams,
            channel_streams,
            total_len: total,
        }
    }

    /// One past the highest global element any tree slice touches — the
    /// minimum workload length this embedding needs. Equals `total_len`
    /// for dense ([`MultiTreeEmbedding::new`]) layouts.
    pub fn elem_end(&self) -> u64 {
        self.trees.iter().map(|t| t.offset + t.len).max().unwrap_or(0)
    }

    /// Worst-case number of streams sharing one directed channel — the VC
    /// count an implementation would need (§5.1).
    pub fn max_channel_load(&self) -> usize {
        self.channel_streams.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Number of *reduce* streams entering each router port, maximized over
    /// ports: 1 everywhere iff Lemma 7.8's single-engine property holds.
    pub fn max_reduce_streams_per_channel(&self) -> usize {
        self.phase_max(Phase::Reduce)
    }

    /// Number of *broadcast* streams per directed channel, maximized.
    pub fn max_broadcast_streams_per_channel(&self) -> usize {
        self.phase_max(Phase::Broadcast)
    }

    fn phase_max(&self, phase: Phase) -> usize {
        self.channel_streams
            .iter()
            .map(|ss| {
                ss.iter().filter(|&&s| self.streams[s as usize].phase == phase).count()
            })
            .max()
            .unwrap_or(0)
    }

    /// The §5.1 router-resource summary of this embedding.
    pub fn vc_requirements(&self) -> VcRequirements {
        VcRequirements {
            total_vcs_per_channel: self.max_channel_load(),
            reduce_vcs_per_channel: self.max_reduce_streams_per_channel(),
            broadcast_vcs_per_channel: self.max_broadcast_streams_per_channel(),
        }
    }
}

/// Router resource requirements implied by an embedding (§5.1: "one way …
/// is to use a number of Virtual Channels equivalent to worst-case link
/// congestion"; PIUMA separates reduce and broadcast VCs, §7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcRequirements {
    /// VCs needed per directed channel with a shared reduce/broadcast pool.
    pub total_vcs_per_channel: usize,
    /// VCs needed on the reduction plane alone. 1 for the low-depth trees
    /// (Lemma 7.8) and for edge-disjoint trees — a single arithmetic
    /// engine per input port always suffices for the paper's solutions.
    pub reduce_vcs_per_channel: usize,
    /// VCs needed on the broadcast plane alone.
    pub broadcast_vcs_per_channel: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::Graph;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn single_tree_embedding() {
        let g = cycle(4);
        let t = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let e = MultiTreeEmbedding::new(&g, &[t], &[100]);
        assert_eq!(e.num_nodes, 4);
        assert_eq!(e.total_len, 100);
        assert_eq!(e.streams.len(), 2 * 3); // (n-1) edges, 2 phases
        assert_eq!(e.trees[0].root, 1);
        assert_eq!(e.trees[0].children[1], vec![0, 2]);
        assert_eq!(e.trees[0].children[2], vec![3]);
        assert_eq!(e.trees[0].parent[0], Some(1));
        assert_eq!(e.max_channel_load(), 1);
        assert_eq!(e.max_reduce_streams_per_channel(), 1);
    }

    #[test]
    fn overlapping_trees_share_channels() {
        let g = cycle(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[0, 1, 2, 3], 3).unwrap();
        let e = MultiTreeEmbedding::new(&g, &[t1, t2], &[10, 10]);
        // Same path, opposite roots: each directed channel carries the
        // reduce of one tree and the broadcast of the other.
        assert_eq!(e.max_channel_load(), 2);
        assert_eq!(e.max_reduce_streams_per_channel(), 1);
        assert_eq!(e.trees[1].offset, 10);
        assert_eq!(e.total_len, 20);
    }

    #[test]
    fn vc_requirements_summary() {
        let g = cycle(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[0, 1, 2, 3], 3).unwrap();
        let e = MultiTreeEmbedding::new(&g, &[t1, t2], &[10, 10]);
        let vc = e.vc_requirements();
        assert_eq!(vc.total_vcs_per_channel, 2);
        assert_eq!(vc.reduce_vcs_per_channel, 1);
        assert_eq!(vc.broadcast_vcs_per_channel, 1);
    }

    #[test]
    fn channel_id_directionality() {
        let g = cycle(3);
        let c01 = channel_id(&g, 0, 1);
        let c10 = channel_id(&g, 1, 0);
        assert_ne!(c01, c10);
        assert_eq!(c01 / 2, c10 / 2);
    }

    #[test]
    fn explicit_offsets_place_slices_in_a_shared_space() {
        let g = cycle(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[0, 1, 2, 3], 3).unwrap();
        // A tenant owning global elements [100, 130): 10 on t1, 20 on t2.
        let e = MultiTreeEmbedding::with_offsets(&g, &[t1, t2], &[10, 20], &[100, 110]);
        assert_eq!(e.trees[0].offset, 100);
        assert_eq!(e.trees[1].offset, 110);
        assert_eq!(e.total_len, 30); // work performed, not global extent
        assert_eq!(e.elem_end(), 130);
    }

    #[test]
    fn dense_layout_elem_end_equals_total_len() {
        let g = cycle(4);
        let t = RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap();
        let e = MultiTreeEmbedding::new(&g, &[t], &[100]);
        assert_eq!(e.elem_end(), e.total_len);
    }

    #[test]
    #[should_panic(expected = "span")]
    fn rejects_non_spanning_tree() {
        let g = cycle(4);
        let t = RootedTree::from_path(&[0, 1, 2], 0).unwrap();
        MultiTreeEmbedding::new(&g, &[t], &[1]);
    }

    #[test]
    #[should_panic(expected = "one slice size")]
    fn rejects_size_mismatch() {
        let g = cycle(3);
        let t = RootedTree::from_path(&[0, 1, 2], 0).unwrap();
        MultiTreeEmbedding::new(&g, &[t], &[1, 2]);
    }
}
