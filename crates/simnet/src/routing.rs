//! Deterministic shortest-path routing and per-link traffic accounting.
//!
//! Host-based baselines send point-to-point messages between compute
//! nodes; on a direct network those messages traverse minimal paths chosen
//! by the routing function. PolarFly has diameter 2 and at most one 2-hop
//! path between non-adjacent routers (Theorem 6.1), so minimal routing is
//! essentially unique — the deterministic BFS tie-break below is exact, not
//! an approximation, on `ER_q`.

use pf_graph::{bfs, subgraph, EdgeId, Graph, VertexId};

/// All-pairs minimal routes, precomputed.
#[derive(Debug, Clone)]
pub struct Routing {
    parents: Vec<Vec<Option<VertexId>>>,
}

impl Routing {
    /// Precomputes BFS trees from every source.
    pub fn new(g: &Graph) -> Self {
        let parents = g.vertices().map(|v| bfs::tree(g, v).1).collect();
        Routing { parents }
    }

    /// Minimal routes avoiding `dead_edges` — routing on the degraded
    /// fabric after link faults. Vertex ids are unchanged (an edge-deleted
    /// subgraph keeps the vertex set), so paths come back in the original
    /// labeling; pairs the faults disconnect have no route
    /// ([`Routing::try_path`] returns `None`).
    pub fn new_avoiding(g: &Graph, dead_edges: &[EdgeId]) -> Self {
        Routing::new(&subgraph::edge_deleted(g, dead_edges).graph)
    }

    /// The vertex path from `src` to `dst` (inclusive), or `None` when
    /// `dst` is unreachable (possible after faults).
    pub fn try_path(&self, src: VertexId, dst: VertexId) -> Option<Vec<VertexId>> {
        // parents[src] is the BFS tree rooted at src; walk dst -> src.
        let mut rev = vec![dst];
        let mut cur = dst;
        while cur != src {
            cur = self.parents[src as usize][cur as usize]?;
            rev.push(cur);
        }
        rev.reverse();
        Some(rev)
    }

    /// The vertex path from `src` to `dst` (inclusive). Panics if
    /// unreachable (PolarFly is connected).
    pub fn path(&self, src: VertexId, dst: VertexId) -> Vec<VertexId> {
        self.try_path(src, dst).expect("network must be connected")
    }

    /// Number of hops from `src` to `dst`.
    pub fn hops(&self, src: VertexId, dst: VertexId) -> u32 {
        (self.path(src, dst).len() - 1) as u32
    }
}

/// Accumulates the per-directed-channel load (in elements) of a set of
/// point-to-point messages `(src, dst, elements)` under minimal routing.
/// Channel ids follow [`crate::embedding::channel_id`].
pub fn channel_loads(g: &Graph, routing: &Routing, messages: &[(VertexId, VertexId, u64)]) -> Vec<u64> {
    let mut load = vec![0u64; 2 * g.num_edges() as usize];
    for &(src, dst, m) in messages {
        if src == dst || m == 0 {
            continue;
        }
        let path = routing.path(src, dst);
        for w in path.windows(2) {
            load[crate::embedding::channel_id(g, w[0], w[1]) as usize] += m;
        }
    }
    load
}

/// Observability breakdown of one α–β phase: where [`phase_time`]'s cycles
/// come from, channel by channel.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Per-directed-channel load in elements ([`channel_loads`]).
    pub loads: Vec<u64>,
    /// Load of the most congested channel — the serialization term.
    pub serial: u64,
    /// Deepest routed path, in hops.
    pub depth: u64,
    /// Pipeline latency charged per hop.
    pub hop_latency: u64,
}

impl PhaseProfile {
    /// The phase time this profile explains: `serial + depth·hop_latency`.
    pub fn time(&self) -> u64 {
        self.serial + self.depth * self.hop_latency
    }

    /// Directed channels carrying at least one element.
    pub fn active_channels(&self) -> usize {
        self.loads.iter().filter(|&&l| l > 0).count()
    }
}

/// Computes the congestion breakdown of one communication phase — the
/// model-side counterpart of the engine's measured per-channel flit
/// counters (`docs/OBSERVABILITY.md`).
pub fn phase_profile(
    g: &Graph,
    routing: &Routing,
    messages: &[(VertexId, VertexId, u64)],
    hop_latency: u64,
) -> PhaseProfile {
    let loads = channel_loads(g, routing, messages);
    let serial = loads.iter().copied().max().unwrap_or(0);
    let depth = messages
        .iter()
        .filter(|&&(s, d, m)| s != d && m > 0)
        .map(|&(s, d, _)| routing.hops(s, d) as u64)
        .max()
        .unwrap_or(0);
    PhaseProfile { loads, serial, depth, hop_latency }
}

/// Time for one communication phase under the congestion-aware α–β model:
/// every message proceeds concurrently; each directed channel serializes
/// its total load at one element per cycle; the phase ends when the most
/// loaded channel drains, plus the deepest path's pipeline latency.
pub fn phase_time(
    g: &Graph,
    routing: &Routing,
    messages: &[(VertexId, VertexId, u64)],
    hop_latency: u64,
) -> u64 {
    phase_profile(g, routing, messages, hop_latency).time()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn paths_are_minimal() {
        let g = cycle(8);
        let r = Routing::new(&g);
        assert_eq!(r.path(0, 0), vec![0]);
        assert_eq!(r.hops(0, 4), 4);
        assert_eq!(r.hops(0, 3), 3);
        assert_eq!(r.hops(0, 6), 2);
        let p = r.path(2, 5);
        assert_eq!(p.first(), Some(&2));
        assert_eq!(p.last(), Some(&5));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn loads_accumulate_per_direction() {
        let g = cycle(4);
        let r = Routing::new(&g);
        // 0 -> 1 and 1 -> 0 use opposite channels of the same edge.
        let loads = channel_loads(&g, &r, &[(0, 1, 10), (1, 0, 7)]);
        let c01 = crate::embedding::channel_id(&g, 0, 1) as usize;
        let c10 = crate::embedding::channel_id(&g, 1, 0) as usize;
        assert_eq!(loads[c01], 10);
        assert_eq!(loads[c10], 7);
    }

    #[test]
    fn phase_time_serializes_contention() {
        let g = cycle(4);
        let r = Routing::new(&g);
        // Two messages forced through channel 0->1 (0->1 and 3->...).
        // In C4, 3 -> 1 routes via 0 (3-0-1) or 3-2-1; BFS from 3 with
        // smallest-parent tie-break: dist(1)=2 via parent 0 or 2; neighbors
        // of 3 are 0 and 2 -> 0 first, so path 3-0-1.
        let t = phase_time(&g, &r, &[(0, 1, 100), (3, 1, 100)], 5);
        assert_eq!(t, 200 + 2 * 5);
    }

    #[test]
    fn phase_profile_explains_phase_time() {
        let g = cycle(4);
        let r = Routing::new(&g);
        let msgs = [(0u32, 1u32, 100u64), (3, 1, 100)];
        let p = phase_profile(&g, &r, &msgs, 5);
        assert_eq!(p.time(), phase_time(&g, &r, &msgs, 5));
        assert_eq!(p.serial, 200);
        assert_eq!(p.depth, 2);
        assert!(p.active_channels() >= 2);
        assert_eq!(p.loads, channel_loads(&g, &r, &msgs));
    }

    #[test]
    fn phase_time_empty() {
        let g = cycle(3);
        let r = Routing::new(&g);
        assert_eq!(phase_time(&g, &r, &[], 5), 0);
        assert_eq!(phase_time(&g, &r, &[(1, 1, 50)], 5), 0);
    }

    #[test]
    fn routing_avoids_dead_edges() {
        let g = cycle(6);
        // Kill edge 0 = (0, 1): the only route 0 -> 1 is now the long way.
        let r = Routing::new_avoiding(&g, &[0]);
        let p = r.try_path(0, 1).unwrap();
        assert_eq!(p.len(), 6, "must route the long way around");
        for w in p.windows(2) {
            assert!(!(w[0].min(w[1]) == 0 && w[0].max(w[1]) == 1));
        }
    }

    #[test]
    fn disconnected_pairs_have_no_route() {
        let mut g = Graph::new(4); // path 0-1-2-3
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        let r = Routing::new_avoiding(&g, &[1]); // cut (1, 2)
        assert!(r.try_path(0, 3).is_none());
        assert!(r.try_path(0, 1).is_some());
        assert!(r.try_path(2, 3).is_some());
    }

    #[test]
    fn polarfly_routes_are_at_most_two_hops() {
        let pf = pf_topo::PolarFly::new(5);
        let g = pf.graph();
        let r = Routing::new(g);
        for u in g.vertices() {
            for v in g.vertices() {
                assert!(r.hops(u, v) <= 2, "({u},{v})");
            }
        }
    }
}
