//! Equivalence suite: `extend_degraded` must be structurally identical to
//! a full `rebuild_degraded` on the accumulated fault set.
//!
//! The fabric manager patches degraded plans incrementally as link faults
//! arrive one batch at a time; the whole scheme rests on the incremental
//! path being an *optimization* of the full rebuild, never a semantic
//! fork. These tests walk random fault sequences and compare every field
//! of the two plans after each step.

use pf_allreduce::recovery::{extend_degraded, rebuild_degraded, DegradedPlan, FaultSet};
use pf_allreduce::AllreducePlan;
use proptest::prelude::*;

/// Field-by-field structural equality (DegradedPlan has no PartialEq; the
/// point here is to enumerate everything so a future field is noticed).
fn assert_same(a: &DegradedPlan, b: &DegradedPlan) {
    assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    assert_eq!(
        a.graph.edges().collect::<Vec<_>>(),
        b.graph.edges().collect::<Vec<_>>()
    );
    assert_eq!(a.trees, b.trees);
    assert_eq!(a.origins, b.origins);
    assert_eq!(a.dropped, b.dropped);
    assert_eq!(a.bandwidths, b.bandwidths);
    assert_eq!(a.aggregate, b.aggregate);
    assert_eq!(a.healthy_aggregate, b.healthy_aggregate);
    assert_eq!(a.congestion_bound, b.congestion_bound);
    assert_eq!(a.edge_congestion, b.edge_congestion);
    assert_eq!(a.max_congestion, b.max_congestion);
    assert_eq!(a.depth, b.depth);
    assert_eq!(a.orig_vertex, b.orig_vertex);
    assert_eq!(a.new_vertex, b.new_vertex);
    assert_eq!(a.orig_edge, b.orig_edge);
    assert_eq!(a.new_edge, b.new_edge);
}

/// Replays `batches` of link faults one batch at a time through the
/// incremental path, asserting equivalence with the full rebuild after
/// every step. Returns how many steps took the incremental path.
fn replay(plan: &AllreducePlan, batches: &[Vec<u32>]) -> usize {
    let mut faults = FaultSet::none();
    let mut current: Option<DegradedPlan> = None;
    let mut incremental = 0;
    for batch in batches {
        let delta = FaultSet::links(batch.clone());
        let combined = faults.union(&delta);
        let full = rebuild_degraded(plan, &combined);
        if let (Some(prev), Ok(ref want)) = (&current, &full) {
            if let Some(got) = extend_degraded(plan, &faults, prev, &delta) {
                assert_same(&got, want);
                incremental += 1;
            }
        }
        // Disconnecting batch: skip it, keep the previous state, like a
        // fabric manager refusing a fault report it cannot survive.
        if let Ok(d) = full {
            current = Some(d);
            faults = combined;
        }
    }
    incremental
}

#[test]
fn single_link_steps_match_full_rebuild() {
    let plan = AllreducePlan::low_depth(7).unwrap();
    let batches: Vec<Vec<u32>> = vec![vec![0], vec![5], vec![17], vec![100], vec![33]];
    let steps = replay(&plan, &batches);
    assert!(steps >= 4, "expected most steps to take the incremental path, got {steps}");
}

#[test]
fn multi_link_batches_match_full_rebuild() {
    let plan = AllreducePlan::low_depth(7).unwrap();
    let batches: Vec<Vec<u32>> = vec![vec![3, 9, 27], vec![81, 11], vec![2, 4, 8, 16]];
    replay(&plan, &batches);
}

#[test]
fn edge_disjoint_plan_steps_match_full_rebuild() {
    let plan = AllreducePlan::edge_disjoint(7, 30, 3).unwrap();
    let batches: Vec<Vec<u32>> = vec![vec![0], vec![7, 21], vec![42]];
    replay(&plan, &batches);
}

#[test]
fn router_delta_refuses_incremental() {
    let plan = AllreducePlan::low_depth(5).unwrap();
    let prev = rebuild_degraded(&plan, &FaultSet::none()).unwrap();
    let delta = FaultSet { edges: vec![], routers: vec![3] };
    assert!(extend_degraded(&plan, &FaultSet::none(), &prev, &delta).is_none());
}

#[test]
fn prior_router_faults_refuse_incremental() {
    let plan = AllreducePlan::low_depth(5).unwrap();
    let prior = FaultSet { edges: vec![], routers: vec![3] };
    let prev = rebuild_degraded(&plan, &prior).unwrap();
    let delta = FaultSet::links(vec![0]);
    assert!(extend_degraded(&plan, &prior, &prev, &delta).is_none());
}

#[test]
fn disconnecting_delta_refuses_incremental() {
    let plan = AllreducePlan::single_tree(3).unwrap();
    let prev = rebuild_degraded(&plan, &FaultSet::none()).unwrap();
    // Kill every link of router 0: survivors stay connected but router 0
    // is cut off, so the full rebuild reports Partitioned and the
    // incremental path must decline rather than panic.
    let incident: Vec<u32> =
        plan.graph.neighbors_with_edges(0).iter().map(|&(_, e)| e).collect();
    let delta = FaultSet::links(incident);
    assert!(extend_degraded(&plan, &FaultSet::none(), &prev, &delta).is_none());
    assert!(rebuild_degraded(&plan, &delta).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_fault_sequences_match_full_rebuild(
        seed in 0u64..1000,
        steps in 1usize..6,
        batch in 1usize..4,
    ) {
        let plan = AllreducePlan::low_depth(7).unwrap();
        let m = plan.graph.num_edges() as u64;
        // SplitMix64 stream: deterministic per (seed, step, slot).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let batches: Vec<Vec<u32>> = (0..steps)
            .map(|_| (0..batch).map(|_| (next() % m) as u32).collect())
            .collect();
        replay(&plan, &batches);
    }
}
