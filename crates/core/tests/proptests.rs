//! Property-based tests for the tree constructions and the bandwidth
//! model.

use pf_allreduce::congestion::assign_unit_bandwidth;
use pf_allreduce::disjoint::{conflict_graph, find_edge_disjoint};
use pf_allreduce::hamiltonian::{alternating_path, hamiltonian_pairs_unordered};
use pf_allreduce::lowdepth::low_depth_trees;
use pf_allreduce::rate::allreduce_rate_bound;
use pf_allreduce::recovery::{extend_degraded, rebuild_degraded, FaultSet};
use pf_allreduce::{perf, verify, AllreducePlan, Rational};
use pf_graph::tree::pairwise_edge_disjoint;
use pf_topo::{PolarFly, Singer};
use proptest::prelude::*;

fn odd_q() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![3u64, 5, 7, 9, 11])
}

fn any_q() -> impl Strategy<Value = u64> {
    prop::sample::select(vec![3u64, 4, 5, 7, 8, 9, 11])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn low_depth_theorems_for_any_starter(q in odd_q(), pick in 0usize..16) {
        let pf = PolarFly::new(q);
        let quads = pf.quadrics();
        let starter = quads[pick % quads.len()];
        let out = low_depth_trees(&pf, Some(starter)).unwrap();
        prop_assert_eq!(out.trees.len() as u64, q);
        prop_assert!(verify::verify_spanning_set(pf.graph(), &out.trees).is_ok());
        prop_assert!(verify::verify_max_depth(&out.trees, 3).is_ok());
        prop_assert!(verify::verify_max_congestion(pf.graph(), &out.trees, 2).is_ok());
        prop_assert!(verify::verify_lemma_7_8(pf.graph(), &out.trees).is_ok());
        prop_assert!(verify::verify_low_depth_bandwidth(pf.graph(), &out.trees, q).is_ok());
    }

    #[test]
    fn disjoint_search_always_valid(q in any_q(), seed in 0u64..10_000, attempts in 1usize..40) {
        let s = Singer::new(q);
        let sol = find_edge_disjoint(&s, attempts, seed);
        prop_assert!(!sol.pairs.is_empty());
        prop_assert!(sol.pairs.len() as u64 <= q.div_ceil(2));
        prop_assert!(pairwise_edge_disjoint(&sol.trees, s.graph()));
        for t in &sol.trees {
            prop_assert!(t.validate_spanning(s.graph()).is_ok());
        }
        // Any found set gets full bandwidth per tree.
        prop_assert!(verify::verify_full_bandwidth_per_tree(s.graph(), &sol.trees).is_ok());
    }

    #[test]
    fn every_hamiltonian_pair_gives_a_spanning_tree(q in any_q(), pick in 0usize..64) {
        let s = Singer::new(q);
        let pairs = hamiltonian_pairs_unordered(&s);
        let (d0, d1) = pairs[pick % pairs.len()];
        let p = alternating_path(&s, d0, d1);
        prop_assert!(p.is_hamiltonian(s.n()));
        let t = p.midpoint_tree();
        prop_assert!(t.validate_spanning(s.graph()).is_ok());
        prop_assert_eq!(t.depth() as u64, (s.n() - 1) / 2);
    }

    #[test]
    fn conflict_graph_independent_sets_are_disjoint_paths(q in any_q(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let s = Singer::new(q);
        let pairs = hamiltonian_pairs_unordered(&s);
        let g = conflict_graph(&pairs);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let set = pf_graph::indset::random_maximal(&g, &mut rng);
        // Any independent set in G_S must give edge-disjoint trees.
        let trees: Vec<_> = set
            .iter()
            .map(|&i| alternating_path(&s, pairs[i as usize].0, pairs[i as usize].1).midpoint_tree())
            .collect();
        prop_assert!(pairwise_edge_disjoint(&trees, s.graph()));
    }

    #[test]
    fn aggregate_bandwidth_never_exceeds_optimum(q in odd_q(), k in 1usize..6, seed in 0u64..500) {
        // Any tree set whatsoever obeys Corollary 7.1's ceiling.
        let pf = PolarFly::new(q);
        let trees = pf_allreduce::baselines::k_bfs_trees(pf.graph(), k, seed);
        let a = assign_unit_bandwidth(pf.graph(), &trees);
        prop_assert!(a.aggregate() <= perf::optimal_bandwidth(q, Rational::ONE));
    }

    #[test]
    fn predicted_time_monotone_in_m(q in odd_q(), m1 in 1u64..100_000, m2 in 1u64..100_000) {
        let plan = pf_allreduce::AllreducePlan::low_depth(q).unwrap();
        let hop = Rational::from_int(4);
        let (lo, hi) = (m1.min(m2), m1.max(m2));
        prop_assert!(plan.predicted_time(lo, hop) <= plan.predicted_time(hi, hop));
    }

    #[test]
    fn tree_subsets_never_exceed_the_full_plan_rate_bound(q in odd_q(), mask in 1u64..2048) {
        // A tenant's subset plan prices fewer trees on the same substrate,
        // so the full plan's exact rate bound must still dominate it —
        // and the subset's own bound is the same (same graph).
        let plan = AllreducePlan::low_depth(q).unwrap();
        let bound = plan.rate_bound();
        let idx: Vec<usize> =
            (0..plan.trees.len()).filter(|i| mask >> i & 1 == 1).collect();
        prop_assume!(!idx.is_empty());
        let sub = plan.tree_subset(&idx);
        prop_assert!(sub.aggregate <= bound);
        prop_assert_eq!(sub.rate_bound(), bound);
        prop_assert!(sub.optimality_gap() <= Rational::ONE);
    }

    #[test]
    fn degraded_plans_respect_the_surviving_rate_bound(
        q in odd_q(),
        nf in 1usize..4,
        seed in 0u64..200,
    ) {
        // Fault random links, rebuild, and recompute the rate bound on
        // the surviving subgraph: the degraded plan must respect it. Then
        // extend with one more fault and check again on the incremental
        // path.
        use rand::{Rng, SeedableRng};
        let plan = AllreducePlan::low_depth(q).unwrap();
        let ne = plan.graph.num_edges();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut edges: Vec<u32> = (0..nf).map(|_| rng.random_range(0..ne)).collect();
        edges.sort_unstable();
        edges.dedup();
        let faults = FaultSet::links(edges.clone());
        // PolarFly at these radices survives ≤ 3 link faults.
        let d = rebuild_degraded(&plan, &faults).unwrap();
        let rate = allreduce_rate_bound(&d.graph).unwrap();
        prop_assert!(rate.certifies(d.aggregate));
        prop_assert!(rate.bound <= plan.rate_bound());
        let extra = (0..ne).find(|x| !edges.contains(x)).unwrap();
        let delta = FaultSet::links(vec![extra]);
        if let Some(d2) = extend_degraded(&plan, &faults, &d, &delta) {
            let rate2 = allreduce_rate_bound(&d2.graph).unwrap();
            prop_assert!(rate2.certifies(d2.aggregate));
            prop_assert!(rate2.bound <= rate.bound);
        }
    }

    #[test]
    fn split_respects_zero_bandwidth_never_happens(q in odd_q(), m in 0u64..1_000_000) {
        let plan = pf_allreduce::AllreducePlan::low_depth(q).unwrap();
        let sizes = plan.split(m);
        prop_assert_eq!(sizes.iter().sum::<u64>(), m);
        prop_assert_eq!(sizes.len(), plan.trees.len());
        for b in &plan.bandwidths {
            prop_assert!(b.is_positive());
        }
    }
}
