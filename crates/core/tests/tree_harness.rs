//! Tinygarden-style property harness for every [`TreeConstruction`]
//! backend × substrate pair (see `docs/CONSTRUCTIONS.md`).
//!
//! For each pair the harness re-derives every contract clause from
//! scratch — it deliberately does not trust `validate_spanning` alone:
//!
//! * **spanning**: exactly `n − 1` edges, every edge physical, DSU says one
//!   component, and depths are parent-consistent with the root at 0;
//! * **disjointness**: if the backend claims edge-disjoint output, the
//!   trees are pairwise edge-disjoint;
//! * **congestion**: no edge is used by more than `congestion_bound()`
//!   trees (or more than `trees.len()` when no bound is claimed);
//! * **water-filling**: Algorithm 1 shares in exact rationals — per-edge
//!   load `Σ B_i ≤ 1`, every tree saturates some link, and the aggregate
//!   respects the substrate-generic bound `min(|E|/(n−1), δ_min)`;
//! * **rate bound**: the aggregate also respects the tighter exact rate
//!   bound `min(|E|/(n−1), λ(G))` (`pf_allreduce::rate`, docs/RATES.md),
//!   the rate bound refines the substrate bound, and on substrate
//!   families with a published closed form the generic computation
//!   reproduces it exactly;
//! * **budget & determinism**: tree caps are honored and rebuilding is
//!   byte-identical.
//!
//! The quick tier (`quick_catalog`) runs on every push; the full sweep
//! (`full_catalog`, all paper radices `q ∈ {3, 5, 7, 9, 11}` plus both
//! labelings) is `#[ignore]`d and runs in the nightly
//! `--include-ignored` job.

use pf_allreduce::congestion::assign_unit_bandwidth;
use pf_allreduce::perf::substrate_bandwidth_bound;
use pf_allreduce::plan::AllreducePlan;
use pf_allreduce::rational::Rational;
use pf_allreduce::rate::{allreduce_rate_bound, RateError};
use pf_allreduce::recovery::{rebuild_degraded, FaultSet};
use pf_allreduce::substrates::{
    backends_for, bridged_cliques, closed_form_rate_bound, erdos_renyi_connected, full_catalog,
    quick_catalog, Substrate,
};
use pf_allreduce::{Budget, ConstructError, GreedyPeel, KaryMultitree, TreeConstruction};
use pf_graph::dsu::Dsu;
use pf_graph::tree::pairwise_edge_disjoint;
use pf_graph::{builders, Graph, RootedTree};

/// Independent spanning re-check: count, membership, connectivity (DSU),
/// and depth consistency — none of it via `validate_spanning`.
fn assert_spanning(t: &RootedTree, g: &Graph, ctx: &str) {
    let n = g.num_vertices();
    assert_eq!(t.num_vertices(), n as usize, "{ctx}: tree order");
    assert_eq!(t.depth_of(t.root()), 0, "{ctx}: root depth");
    assert!(t.parent(t.root()).is_none(), "{ctx}: root parent");
    let mut dsu = Dsu::new(n);
    let mut edges = 0usize;
    for (child, parent) in t.edges() {
        assert!(g.has_edge(child, parent), "{ctx}: edge ({child},{parent}) not physical");
        assert_eq!(
            t.depth_of(child),
            t.depth_of(parent) + 1,
            "{ctx}: depth inconsistent at ({child},{parent})"
        );
        dsu.union(child, parent);
        edges += 1;
    }
    assert_eq!(edges, n as usize - 1, "{ctx}: edge count");
    assert_eq!(dsu.components(), 1, "{ctx}: not connected");
}

/// One backend × substrate harness pass; returns `false` when the backend
/// (correctly) declined the substrate as unsupported.
fn check_pair(b: &dyn TreeConstruction, sub: &Substrate) -> bool {
    let g = &sub.graph;
    let ctx = format!("{} on {}", b.name(), sub.name);
    let trees = match b.build(g, &Budget::unlimited()) {
        Ok(trees) => trees,
        Err(ConstructError::UnsupportedSubstrate(_)) => return false,
        Err(e) => panic!("{ctx}: unexpected error: {e}"),
    };
    assert!(!trees.is_empty(), "{ctx}: empty tree set");

    for t in &trees {
        assert_spanning(t, g, &ctx);
    }

    if b.claims_edge_disjoint() {
        assert!(pairwise_edge_disjoint(&trees, g), "{ctx}: disjointness claim broken");
    }

    // Water-filling in exact rationals; its per-edge congestion doubles as
    // the bound check.
    let a = assign_unit_bandwidth(g, &trees);
    let bound = b.congestion_bound().unwrap_or(trees.len() as u32);
    assert!(
        a.per_edge.iter().all(|&c| c <= bound),
        "{ctx}: congestion {} exceeds bound {bound}",
        a.max_congestion
    );

    // Per-edge load Σ B_i ≤ 1 and per-tree saturation: Algorithm 1 assigns
    // each tree at a bottleneck link that ends exactly full.
    let tree_edges: Vec<Vec<u32>> = trees.iter().map(|t| t.edge_ids(g)).collect();
    let mut load = vec![Rational::ZERO; g.num_edges() as usize];
    for (ti, ids) in tree_edges.iter().enumerate() {
        for &e in ids {
            load[e as usize] += a.per_tree[ti];
        }
    }
    for (e, &l) in load.iter().enumerate() {
        assert!(l <= Rational::ONE, "{ctx}: edge {e} oversubscribed ({l})");
    }
    for (ti, ids) in tree_edges.iter().enumerate() {
        assert!(a.per_tree[ti].is_positive(), "{ctx}: tree {ti} got zero bandwidth");
        assert!(
            ids.iter().any(|&e| load[e as usize] == Rational::ONE),
            "{ctx}: tree {ti} saturates no link"
        );
    }
    assert!(
        a.aggregate() <= substrate_bandwidth_bound(g),
        "{ctx}: aggregate {} beats the substrate bound {}",
        a.aggregate(),
        substrate_bandwidth_bound(g)
    );

    // The exact rate bound (edge budget ∧ global min cut) must also hold,
    // refine the substrate bound, and agree with the family's closed form
    // where one is known.
    let rate = allreduce_rate_bound(g).unwrap_or_else(|e| panic!("{ctx}: {e}"));
    assert!(
        rate.certifies(a.aggregate()),
        "{ctx}: aggregate {} beats the rate bound {}",
        a.aggregate(),
        rate.bound
    );
    assert!(
        rate.bound <= substrate_bandwidth_bound(g),
        "{ctx}: rate bound {} must refine the substrate bound {}",
        rate.bound,
        substrate_bandwidth_bound(g)
    );
    if let Some(closed) = closed_form_rate_bound(&sub.name) {
        assert_eq!(rate.bound, closed, "{ctx}: closed-form rate bound mismatch");
    }

    // Budget cap and determinism.
    let one = b.build(g, &Budget::trees(1)).expect("budgeted build");
    assert_eq!(one.len(), 1, "{ctx}: budget cap ignored");
    assert_spanning(&one[0], g, &ctx);
    let again = b.build(g, &Budget::unlimited()).expect("rebuild");
    assert_eq!(trees, again, "{ctx}: non-deterministic");
    true
}

fn run_catalog(cat: Vec<Substrate>) {
    for sub in &cat {
        let mut ran = 0;
        for b in backends_for(&sub.name) {
            if check_pair(b.as_ref(), sub) {
                ran += 1;
            }
        }
        assert!(ran >= 3, "{}: fewer than the generic backends ran", sub.name);
    }
}

#[test]
fn quick_catalog_satisfies_all_backend_contracts() {
    run_catalog(quick_catalog());
}

#[test]
#[ignore = "nightly: full substrate sweep over all paper radices"]
fn full_catalog_satisfies_all_backend_contracts() {
    run_catalog(full_catalog());
}

#[test]
fn specializations_run_somewhere_in_the_full_catalog() {
    // Guard against silent skipping: the PolarFly and star-product
    // backends must actually execute (not UnsupportedSubstrate) on their
    // home substrates.
    for name in ["polarfly-q3", "singer-q3", "star-k5xk4", "cart-c5xk4"] {
        let sub = full_catalog()
            .into_iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing from the full catalog"));
        let executed = backends_for(name)
            .iter()
            .filter(|b| check_pair(b.as_ref(), &sub))
            .count();
        assert!(executed >= 4, "{name}: its specialization did not run");
    }
}

/// Runs the full harness (including the rate-bound clause in
/// `check_pair`) over seeded-random ER substrates: the bound must
/// dominate every constructed plan on graphs nobody hand-tuned.
fn run_random_substrates(shapes: &[(u32, u32)], seeds: std::ops::Range<u64>) {
    for &(n, extra) in shapes {
        for seed in seeds.clone() {
            let sub = Substrate {
                name: format!("er-n{n}-e{extra}-s{seed}"),
                graph: erdos_renyi_connected(n, extra, seed),
            };
            let mut ran = 0;
            for b in backends_for(&sub.name) {
                if check_pair(b.as_ref(), &sub) {
                    ran += 1;
                }
            }
            assert!(ran >= 3, "{}: fewer than the generic backends ran", sub.name);
        }
    }
}

#[test]
fn random_substrates_respect_the_rate_bound_quick() {
    run_random_substrates(&[(12, 10), (20, 30)], 0..4);
}

#[test]
#[ignore = "nightly: wide seeded-random substrate sweep"]
fn random_substrates_respect_the_rate_bound_full() {
    run_random_substrates(&[(8, 6), (16, 20), (24, 40), (32, 24), (40, 90), (48, 60)], 0..12);
}

#[test]
fn deleted_bridge_is_a_typed_disconnection_everywhere() {
    // The two-clique bridge graph with its bridge deleted: every backend
    // reports Disconnected{2} (not a panic, not a bogus tree set), and
    // the rate module refuses to price it the same way.
    let g = bridged_cliques(5);
    let bridge = g.edge_id(4, 5).expect("bridge edge");
    let cut = pf_graph::edge_deleted(&g, &[bridge]).graph;
    for b in backends_for("bridged-k5") {
        assert_eq!(
            b.build(&cut, &Budget::unlimited()).unwrap_err(),
            ConstructError::Disconnected { components: 2 },
            "{}",
            b.name()
        );
    }
    assert_eq!(
        allreduce_rate_bound(&cut).unwrap_err(),
        RateError::Disconnected { components: 2 }
    );
}

#[test]
fn degenerate_graphs_get_typed_rate_errors_not_bogus_bounds() {
    // Mirrors degenerate_substrates_stay_typed_across_all_backends for
    // the rate module: where no plan exists, no bound exists either.
    assert_eq!(allreduce_rate_bound(&Graph::new(0)).unwrap_err(), RateError::EmptyGraph);
    assert_eq!(allreduce_rate_bound(&Graph::new(1)).unwrap_err(), RateError::SingleVertex);
    let mut split = Graph::new(5);
    split.add_edge(0, 1);
    split.add_edge(1, 2);
    split.add_edge(3, 4);
    assert_eq!(
        allreduce_rate_bound(&split).unwrap_err(),
        RateError::Disconnected { components: 2 }
    );
}

#[test]
fn degenerate_substrates_stay_typed_across_all_backends() {
    let empty = Graph::new(0);
    let lone = Graph::new(1);
    let mut split = Graph::new(5);
    split.add_edge(0, 1);
    split.add_edge(1, 2);
    split.add_edge(3, 4);
    for b in backends_for("star-c4xk4") {
        assert_eq!(
            b.build(&empty, &Budget::unlimited()).unwrap_err(),
            ConstructError::EmptySubstrate,
            "{}",
            b.name()
        );
        assert_eq!(
            b.build(&lone, &Budget::unlimited()).unwrap_err(),
            ConstructError::TooSmall,
            "{}",
            b.name()
        );
        assert_eq!(
            b.build(&split, &Budget::unlimited()).unwrap_err(),
            ConstructError::Disconnected { components: 2 },
            "{}",
            b.name()
        );
    }
}

#[test]
fn complete_graphs_support_every_generic_backend() {
    for n in [2u32, 3, 8, 12] {
        let sub = Substrate { name: format!("complete-k{n}"), graph: builders::complete(n) };
        for b in backends_for(&sub.name) {
            assert!(check_pair(b.as_ref(), &sub), "{} skipped K{n}", b.name());
        }
    }
}

#[test]
fn bridges_cap_edge_disjoint_sets_at_one_tree() {
    // Every spanning tree of a bridged graph uses the bridge, so no two
    // spanning trees are edge-disjoint; disjoint backends must settle for
    // one tree rather than panic or lie.
    let g = bridged_cliques(5);
    let trees = GreedyPeel { seed: 11 }.build(&g, &Budget::unlimited()).unwrap();
    assert_eq!(trees.len(), 1);
    assert_spanning(&trees[0], &g, "greedy-peel on bridged-k5");
    // The kary builder still embeds several (overlapping) trees, and
    // Algorithm 1 prices the shared bridge correctly: aggregate stays at
    // the bridge-limited bound of 1... per direction — i.e. the substrate
    // bound δ_min is not what binds here, the bridge congestion is.
    let plan = AllreducePlan::construct(&g, &KaryMultitree { k: 3 }, &Budget::unlimited())
        .expect("kary on bridged cliques");
    let bridge = g.edge_id(4, 5).expect("bridge edge");
    let crossing = plan.edge_congestion[bridge as usize];
    assert_eq!(crossing, plan.trees.len() as u32, "every tree crosses the bridge");
    assert!(plan.aggregate <= Rational::ONE, "bridge caps the aggregate at one");
}

#[test]
fn constructed_plans_rebuild_after_faults() {
    // The recovery path is construction-agnostic: fault a link out of a
    // kary plan on a torus and the degraded rebuild must hold the plan's
    // healthy congestion bound.
    let g = pf_topo::torus::Torus::new(&[4, 4]).graph().clone();
    let plan = AllreducePlan::construct(&g, &KaryMultitree { k: 3 }, &Budget::unlimited())
        .expect("kary plan on the torus");
    let victim = plan.trees[0].edge_ids(&g)[0];
    let degraded = rebuild_degraded(&plan, &FaultSet::links(vec![victim]))
        .expect("torus survives one link fault");
    assert_eq!(degraded.graph.num_vertices(), g.num_vertices());
    assert_eq!(degraded.graph.num_edges(), g.num_edges() - 1);
    assert!(!degraded.trees.is_empty());
    assert!(degraded.max_congestion <= degraded.congestion_bound);
    for t in &degraded.trees {
        t.validate_spanning(&degraded.graph).unwrap();
    }
    assert!(degraded.aggregate.is_positive());
}
