//! Maximal sets of edge-disjoint Hamiltonian paths (§7.2–7.3).
//!
//! A `(d0, d1)` alternating-sum path only uses edges of colors `d0` and
//! `d1`, so two Hamiltonian paths over disjoint color pairs are edge
//! disjoint. Finding the most simultaneous paths is therefore an
//! independent-set problem in the *conflict graph* `G_S` whose vertices are
//! Hamiltonian color pairs and whose edges join pairs sharing a color.
//!
//! The upper bound is `⌊(q+1)/2⌋` trees (Lemma 7.18); the paper reports
//! that random maximal independent sets reach it within 30 attempts for
//! every prime power `q < 128`, which the `disjoint-sweep` experiment
//! reproduces.

use crate::hamiltonian::{alternating_path, hamiltonian_pairs_unordered, AltPath};
use pf_graph::{indset, Graph, RootedTree};
use pf_topo::Singer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A set of pairwise edge-disjoint Hamiltonian paths and their trees.
#[derive(Debug, Clone)]
pub struct DisjointSolution {
    /// The chosen unordered color pairs.
    pub pairs: Vec<(u64, u64)>,
    /// The corresponding alternating-sum Hamiltonian paths.
    pub paths: Vec<AltPath>,
    /// Midpoint-rooted spanning trees (Lemma 7.17) of the paths.
    pub trees: Vec<RootedTree>,
    /// Random maximal-independent-set attempts consumed (1 if exact search).
    pub attempts_used: usize,
}

impl DisjointSolution {
    /// The optimal tree count `⌊(q+1)/2⌋` (Lemma 7.18).
    pub fn upper_bound(q: u64) -> usize {
        q.div_ceil(2) as usize
    }

    /// `true` iff this solution attains the Lemma 7.18 upper bound.
    pub fn is_optimal(&self, q: u64) -> bool {
        self.pairs.len() >= Self::upper_bound(q)
    }
}

/// Builds the conflict graph `G_S` over the given unordered Hamiltonian
/// color pairs: vertices are pairs, edges join pairs sharing an element.
pub fn conflict_graph(pairs: &[(u64, u64)]) -> Graph {
    let mut g = Graph::new(pairs.len() as u32);
    for (i, &(a0, a1)) in pairs.iter().enumerate() {
        for (j, &(b0, b1)) in pairs.iter().enumerate().skip(i + 1) {
            if a0 == b0 || a0 == b1 || a1 == b0 || a1 == b1 {
                g.add_edge(i as u32, j as u32);
            }
        }
    }
    g
}

fn solution_from_pairs(s: &Singer, pairs: Vec<(u64, u64)>, attempts_used: usize) -> DisjointSolution {
    let paths: Vec<AltPath> =
        pairs.iter().map(|&(d0, d1)| alternating_path(s, d0, d1)).collect();
    let trees: Vec<RootedTree> = paths.iter().map(|p| p.midpoint_tree()).collect();
    DisjointSolution { pairs, paths, trees, attempts_used }
}

/// The paper's protocol: up to `attempts` random maximal independent sets
/// in the conflict graph, stopping early at the `⌊(q+1)/2⌋` upper bound.
/// Deterministic for a given `seed`.
pub fn find_edge_disjoint(s: &Singer, attempts: usize, seed: u64) -> DisjointSolution {
    let all = hamiltonian_pairs_unordered(s);
    let g = conflict_graph(&all);
    let target = DisjointSolution::upper_bound(s.q());
    let mut rng = StdRng::seed_from_u64(seed);
    let (set, used) = indset::best_of_random(&g, attempts, Some(target), &mut rng);
    let pairs = set.into_iter().map(|i| all[i as usize]).collect();
    solution_from_pairs(s, pairs, used)
}

/// Exact maximum edge-disjoint set via branch-and-bound maximum independent
/// set — the ablation baseline. Exponential; intended for small `q`.
pub fn find_edge_disjoint_exact(s: &Singer) -> DisjointSolution {
    let all = hamiltonian_pairs_unordered(s);
    let g = conflict_graph(&all);
    let set = indset::maximum(&g);
    let pairs = set.into_iter().map(|i| all[i as usize]).collect();
    solution_from_pairs(s, pairs, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::assign_unit_bandwidth;
    use crate::rational::Rational;
    use pf_graph::tree::pairwise_edge_disjoint;

    #[test]
    fn conflict_graph_structure() {
        let pairs = vec![(0, 1), (0, 2), (1, 2), (3, 4)];
        let g = conflict_graph(&pairs);
        assert_eq!(g.num_vertices(), 4);
        assert!(g.has_edge(0, 1)); // share 0
        assert!(g.has_edge(0, 2)); // share 1
        assert!(g.has_edge(1, 2)); // share 2
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn random_search_hits_optimum_small_q() {
        for q in [3u64, 4, 5, 7, 8, 9, 11, 13] {
            let s = Singer::new(q);
            let sol = find_edge_disjoint(&s, 30, 2023);
            assert!(
                sol.is_optimal(q),
                "q={q}: found {} trees, bound {}",
                sol.pairs.len(),
                DisjointSolution::upper_bound(q)
            );
            assert!(sol.attempts_used <= 30);
        }
    }

    #[test]
    fn trees_are_edge_disjoint_spanning_trees() {
        for q in [3u64, 4, 5, 7, 9] {
            let s = Singer::new(q);
            let sol = find_edge_disjoint(&s, 30, 7);
            for t in &sol.trees {
                t.validate_spanning(s.graph()).unwrap();
            }
            assert!(pairwise_edge_disjoint(&sol.trees, s.graph()), "q={q}");
        }
    }

    #[test]
    fn disjoint_trees_get_full_bandwidth() {
        // Theorem 7.19: aggregate bandwidth = t·B with no congestion.
        for q in [3u64, 5, 7] {
            let s = Singer::new(q);
            let sol = find_edge_disjoint(&s, 30, 99);
            let a = assign_unit_bandwidth(s.graph(), &sol.trees);
            assert_eq!(a.max_congestion, 1, "q={q}");
            assert_eq!(
                a.aggregate(),
                Rational::from_int(sol.trees.len() as i64),
                "q={q}"
            );
            for b in &a.per_tree {
                assert_eq!(*b, Rational::ONE);
            }
        }
    }

    #[test]
    fn exact_matches_bound_small_q() {
        for q in [3u64, 4, 5, 7, 8] {
            let s = Singer::new(q);
            let sol = find_edge_disjoint_exact(&s);
            assert_eq!(
                sol.pairs.len(),
                DisjointSolution::upper_bound(q),
                "q={q}: exact maximum independent set"
            );
            assert!(pairwise_edge_disjoint(&sol.trees, s.graph()));
        }
    }

    #[test]
    fn chosen_pairs_have_disjoint_colors() {
        let s = Singer::new(9);
        let sol = find_edge_disjoint(&s, 30, 1);
        let mut used = std::collections::HashSet::new();
        for &(d0, d1) in &sol.pairs {
            assert!(used.insert(d0), "color {d0} reused");
            assert!(used.insert(d1), "color {d1} reused");
        }
    }

    #[test]
    fn figure4_sets_q3_q4() {
        // Figure 4: maximal sets of 2 edge-disjoint Hamiltonian paths for
        // q = 3 and q = 4. The exact color pairs depend on the independent
        // set found; the paper's examples are {(0,1),(3,9)} for q=3 and
        // {(0,1),(4,14)} for q=4 — both must be valid solutions here.
        let s3 = Singer::new(3);
        let sol3 = solution_from_pairs(&s3, vec![(0, 1), (3, 9)], 1);
        assert!(pairwise_edge_disjoint(&sol3.trees, s3.graph()));
        assert!(sol3.is_optimal(3));
        // q=3: the two paths use all edges of S_3.
        let total_edges: usize = sol3.trees.iter().map(|t| t.edges().count()).sum();
        assert_eq!(total_edges as u32, s3.graph().num_edges());

        let s4 = Singer::new(4);
        let sol4 = solution_from_pairs(&s4, vec![(0, 1), (4, 14)], 1);
        assert!(pairwise_edge_disjoint(&sol4.trees, s4.graph()));
        assert!(sol4.is_optimal(4));
        // q=4: color 16 is unused (the paper notes the cyan edges remain).
        let total_edges: usize = sol4.trees.iter().map(|t| t.edges().count()).sum();
        assert_eq!(total_edges as u64, s4.graph().num_edges() as u64 - (s4.n() - 1) / 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Singer::new(7);
        let a = find_edge_disjoint(&s, 30, 5);
        let b = find_edge_disjoint(&s, 30, 5);
        assert_eq!(a.pairs, b.pairs);
    }
}
