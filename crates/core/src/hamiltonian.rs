//! Alternating-sum paths in the Singer graph and their spanning trees
//! (paper §7.2).
//!
//! For a pair of distinct difference-set elements `(d0, d1)` there is a
//! unique maximal alternating-sum non-repeating path with
//! `k = N / gcd(d0 - d1, N)` vertices (Theorem 7.13), running between the
//! reflection points `2^{-1}·d1` and `2^{-1}·d0` (Lemma 7.12) with edge
//! sums alternating `d1, d0, d1, …`. The path is Hamiltonian iff
//! `d0 - d1` is coprime to `N` (Corollary 7.15), and the number of
//! Hamiltonian such paths (counting reversals) is `φ(N)` (Corollary 7.20).

use pf_galois::zmod::{half_mod, sub_mod};
use pf_graph::{RootedTree, VertexId};
use pf_topo::Singer;

/// A maximal alternating-sum non-repeating path for a color pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AltPath {
    /// First alternating sum (color of even-indexed edges, 1-based).
    pub d0: u64,
    /// Second alternating sum; the path starts at `2^{-1}·d1`.
    pub d1: u64,
    /// The vertex sequence `b_1 … b_k`.
    pub vertices: Vec<VertexId>,
}

impl AltPath {
    /// Number of vertices `k`.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` iff the path is empty (never produced by the constructor).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether the path spans all `N` vertices.
    pub fn is_hamiltonian(&self, n: u64) -> bool {
        self.vertices.len() as u64 == n
    }

    /// Source endpoint `b_1 = 2^{-1}·d1`.
    pub fn source(&self) -> VertexId {
        self.vertices[0]
    }

    /// Sink endpoint `b_k = 2^{-1}·d0`.
    pub fn sink(&self) -> VertexId {
        *self.vertices.last().unwrap()
    }

    /// The midpoint-rooted spanning tree of Lemma 7.17 (depth `(k-1)/2`;
    /// `k` is always odd by Lemma 7.12).
    pub fn midpoint_tree(&self) -> RootedTree {
        RootedTree::from_path(&self.vertices, (self.vertices.len() - 1) / 2)
            .expect("an alternating-sum path is a simple path")
    }
}

/// Constructs the unique maximal alternating-sum non-repeating path for the
/// ordered pair `(d0, d1)` by the recurrence of Corollary 7.15:
/// `b_1 = 2^{-1}·d1`, then `b_i = d0 - b_{i-1}` (even `i`) or
/// `d1 - b_{i-1}` (odd `i`).
///
/// Panics unless `d0` and `d1` are distinct members of the difference set.
///
/// ```
/// use pf_allreduce::hamiltonian::alternating_path;
/// use pf_topo::Singer;
/// let s = Singer::new(3);
/// let p = alternating_path(&s, 3, 1);          // colors (d0, d1) = (3, 1)
/// assert!(p.is_hamiltonian(13));               // gcd(3-1, 13) = 1
/// assert_eq!(p.source(), 7);                   // 2^{-1} * d1 mod 13
/// assert_eq!(p.midpoint_tree().depth(), 6);    // (N-1)/2
/// ```
pub fn alternating_path(s: &Singer, d0: u64, d1: u64) -> AltPath {
    let n = s.n();
    assert!(d0 != d1, "alternating sums must be distinct");
    assert!(
        s.difference_set().contains(&d0) && s.difference_set().contains(&d1),
        "({d0},{d1}) must be difference-set elements"
    );
    let diff = sub_mod(d0, d1, n);
    let k = n / pf_galois::zmod::gcd(diff, n);
    let half = half_mod(n);
    let b1 = (half as u128 * d1 as u128 % n as u128) as u64;

    let mut vertices = Vec::with_capacity(k as usize);
    vertices.push(b1 as VertexId);
    let mut prev = b1;
    for i in 2..=k {
        let d = if i % 2 == 0 { d0 } else { d1 };
        let next = sub_mod(d, prev, n);
        vertices.push(next as VertexId);
        prev = next;
    }
    debug_assert_eq!(
        prev,
        (half as u128 * d0 as u128 % n as u128) as u64,
        "Lemma 7.12: the sink must be the reflection point of d0"
    );
    AltPath { d0, d1, vertices }
}

/// All ordered pairs `(d0, d1)` whose alternating-sum path is Hamiltonian.
/// By Corollary 7.20 there are exactly `φ(N)` of them.
pub fn hamiltonian_pairs(s: &Singer) -> Vec<(u64, u64)> {
    let n = s.n();
    let d = s.difference_set();
    let mut out = Vec::new();
    for &d0 in d {
        for &d1 in d {
            if d0 != d1 && pf_galois::zmod::gcd(sub_mod(d0, d1, n), n) == 1 {
                out.push((d0, d1));
            }
        }
    }
    out
}

/// All *unordered* Hamiltonian color pairs `{d0 < d1}` (a path and its
/// reversal use the same edges, so the edge-disjointness search works on
/// unordered pairs).
pub fn hamiltonian_pairs_unordered(s: &Singer) -> Vec<(u64, u64)> {
    hamiltonian_pairs(s).into_iter().filter(|&(a, b)| a < b).collect()
}

/// All non-Hamiltonian maximal alternating-sum paths (unordered pairs),
/// reproducing Table 2 of the paper for `q = 4`.
pub fn non_hamiltonian_paths(s: &Singer) -> Vec<AltPath> {
    let n = s.n();
    let d = s.difference_set();
    let mut out = Vec::new();
    for (i, &d0) in d.iter().enumerate() {
        for &d1 in &d[i + 1..] {
            if pf_galois::zmod::gcd(sub_mod(d0, d1, n), n) != 1 {
                out.push(alternating_path(s, d0, d1));
            }
        }
    }
    out
}

/// Direct closed form for `b_i`, used to cross-check the recurrence.
///
/// Derived from the Corollary 7.15 recurrence (`b_1 = 2^{-1}·d1`,
/// `b_i = d0 - b_{i-1}` for even `i`, `d1 - b_{i-1}` for odd `i`):
///
/// * odd `i`:  `b_i = b_1 + ((i-1)/2)·(d1 - d0)`
/// * even `i`: `b_i = d0 - b_1 - (i/2 - 1)·(d1 - d0)`
///
/// Note: Corollary 7.16 as printed in the paper has its parity cases
/// shifted (its own `i = 1` case would give `d0 - b_1` instead of `b_1`);
/// the form above is the one consistent with Lemma 7.12 and Theorem 7.13
/// (`b_k - b_1 = 2^{-1}(d0 - d1)` for odd `k`). Our tests verify it against
/// the recurrence on every path. See EXPERIMENTS.md for the erratum note.
pub fn closed_form_vertex(s: &Singer, d0: u64, d1: u64, i: u64) -> VertexId {
    assert!(i >= 1, "vertex indices are 1-based");
    let n = s.n() as u128;
    let b1 = half_mod(s.n()) as u128 * d1 as u128 % n;
    let step = sub_mod(d1, d0, s.n()) as u128; // (d1 - d0) mod N
    let v = if i % 2 == 1 {
        (b1 + ((i as u128 - 1) / 2) * step) % n
    } else {
        let m = i as u128 / 2;
        // d0 - b1 - (m - 1)·step, all mod N.
        let negs = (b1 + (m - 1) * step % n) % n;
        (d0 as u128 + n - negs) % n
    };
    v as VertexId
}

/// The root predicted by Lemma 7.17 for a Hamiltonian path: the midpoint
/// vertex `b_{(N+1)/2}`.
pub fn predicted_root(s: &Singer, d0: u64, d1: u64) -> VertexId {
    closed_form_vertex(s, d0, d1, s.n().div_ceil(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_galois::euler_totient;

    #[test]
    fn paths_are_valid_graph_paths() {
        for q in [3u64, 4, 5, 7, 8, 9] {
            let s = Singer::new(q);
            let d = s.difference_set().to_vec();
            for (i, &d0) in d.iter().enumerate() {
                for &d1 in &d[i + 1..] {
                    let p = alternating_path(&s, d0, d1);
                    // Non-repeating.
                    let set: std::collections::HashSet<_> = p.vertices.iter().collect();
                    assert_eq!(set.len(), p.vertices.len(), "q={q} ({d0},{d1})");
                    // Every hop is an edge with the right alternating sum.
                    for (idx, w) in p.vertices.windows(2).enumerate() {
                        let i1 = idx + 2; // edge (b_{i1-1}, b_{i1}), 1-based vertex index
                        assert!(
                            s.graph().has_edge(w[0], w[1]),
                            "q={q} ({d0},{d1}): hop {idx} not an edge"
                        );
                        let sum = (w[0] as u64 + w[1] as u64) % s.n();
                        let expect = if i1 % 2 == 0 { d0 } else { d1 };
                        assert_eq!(sum, expect, "q={q} ({d0},{d1}) hop {idx}");
                    }
                }
            }
        }
    }

    #[test]
    fn path_length_matches_theorem_7_13() {
        for q in [3u64, 4, 5, 7, 8] {
            let s = Singer::new(q);
            let n = s.n();
            let d = s.difference_set().to_vec();
            for (i, &d0) in d.iter().enumerate() {
                for &d1 in &d[i + 1..] {
                    let p = alternating_path(&s, d0, d1);
                    let k = n / pf_galois::zmod::gcd(sub_mod(d0, d1, n), n);
                    assert_eq!(p.len() as u64, k, "q={q} ({d0},{d1})");
                    assert_eq!(k % 2, 1, "Lemma 7.12: k is odd");
                }
            }
        }
    }

    #[test]
    fn endpoints_are_reflection_points() {
        // Lemma 7.12.
        for q in [3u64, 4, 5] {
            let s = Singer::new(q);
            for &(d0, d1) in &hamiltonian_pairs_unordered(&s) {
                let p = alternating_path(&s, d0, d1);
                assert_eq!(p.source(), s.reflection_of(d1), "q={q}");
                assert_eq!(p.sink(), s.reflection_of(d0), "q={q}");
                assert!(s.is_reflection(p.source()));
                assert!(s.is_reflection(p.sink()));
            }
        }
    }

    #[test]
    fn hamiltonian_count_is_totient() {
        // Corollary 7.20.
        for q in [3u64, 4, 5, 7, 8, 9, 11, 13] {
            let s = Singer::new(q);
            let n = s.n();
            assert_eq!(
                hamiltonian_pairs(&s).len() as u64,
                euler_totient(n),
                "q={q}, N={n}"
            );
        }
    }

    #[test]
    fn table2_non_hamiltonian_paths_q4() {
        // Table 2 of the paper: the non-Hamiltonian maximal paths of S_4
        // with D = {0,1,4,14,16}, N = 21.
        let s = Singer::new(4);
        let paths = non_hamiltonian_paths(&s);
        let mut rows: Vec<(u64, u64, u64, usize, VertexId, VertexId)> = paths
            .iter()
            .map(|p| {
                let g = pf_galois::zmod::gcd(sub_mod(p.d0, p.d1, 21), 21);
                (p.d0, p.d1, g, p.len(), p.source(), p.sink())
            })
            .collect();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                (0, 14, 7, 3, 7, 0),
                (1, 4, 3, 7, 2, 11),
                (1, 16, 3, 7, 8, 11),
                (4, 16, 3, 7, 8, 2),
            ]
        );
    }

    #[test]
    fn closed_form_matches_recurrence() {
        // Corollary 7.16.
        for q in [3u64, 4, 5, 7] {
            let s = Singer::new(q);
            for &(d0, d1) in &hamiltonian_pairs(&s) {
                let p = alternating_path(&s, d0, d1);
                for (idx, &v) in p.vertices.iter().enumerate() {
                    let i = idx as u64 + 1;
                    assert_eq!(v, closed_form_vertex(&s, d0, d1, i), "q={q} ({d0},{d1}) i={i}");
                }
            }
        }
    }

    #[test]
    fn midpoint_tree_depth_is_half() {
        // Lemma 7.17: optimal depth (N-1)/2, root = b_{(N+1)/2}.
        for q in [3u64, 4, 5, 7] {
            let s = Singer::new(q);
            let n = s.n();
            for &(d0, d1) in &hamiltonian_pairs_unordered(&s) {
                let p = alternating_path(&s, d0, d1);
                let t = p.midpoint_tree();
                assert_eq!(t.depth() as u64, (n - 1) / 2, "q={q}");
                assert_eq!(t.root(), predicted_root(&s, d0, d1), "q={q} ({d0},{d1})");
                t.validate_spanning(s.graph()).unwrap();
            }
        }
    }

    #[test]
    fn reversal_swaps_endpoints() {
        let s = Singer::new(3);
        let p = alternating_path(&s, 1, 3);
        let r = alternating_path(&s, 3, 1);
        let mut rev = r.vertices.clone();
        rev.reverse();
        assert_eq!(p.vertices, rev);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn equal_sums_rejected() {
        let s = Singer::new(3);
        alternating_path(&s, 1, 1);
    }

    #[test]
    #[should_panic(expected = "difference-set")]
    fn non_member_sums_rejected() {
        let s = Singer::new(3);
        alternating_path(&s, 2, 3);
    }

    #[test]
    fn n_prime_means_all_paths_hamiltonian() {
        // q = 3 -> N = 13 prime: every pair is Hamiltonian.
        let s = Singer::new(3);
        assert!(non_hamiltonian_paths(&s).is_empty());
        assert_eq!(hamiltonian_pairs(&s).len(), 4 * 3);
    }
}
