//! High-level facade: build a complete multi-tree allreduce plan for a
//! PolarFly of a given radix.
//!
//! An [`AllreducePlan`] owns the topology graph, the spanning-tree set, and
//! the Algorithm 1 bandwidth assignment, and exposes the Theorem 5.1
//! performance model (optimal sub-vector split, predicted time). It is the
//! type the examples, the benchmarks and the simulator consume.

use crate::congestion::assign_unit_bandwidth;
use crate::construction::{Budget, ConstructError, TreeConstruction};
use crate::disjoint::find_edge_disjoint;
use crate::lowdepth::low_depth_trees;
use crate::perf;
use crate::rational::Rational;
use pf_graph::{bfs, Graph, RootedTree};
use pf_topo::{PolarFly, Singer};

/// Which of the paper's two solutions (plus baselines) a plan embodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Solution {
    /// §7.1: `q` trees, depth ≤ 3, congestion ≤ 2 (odd prime powers).
    LowDepth,
    /// §7.2: `⌊(q+1)/2⌋` edge-disjoint Hamiltonian-path trees.
    EdgeDisjoint,
    /// Baseline: one BFS spanning tree (depth 2), bandwidth `B`.
    SingleTree,
    /// A plan built through a pluggable [`TreeConstruction`] backend; the
    /// payload is the backend's name.
    Constructed(&'static str),
}

impl Solution {
    /// Human-readable label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            Solution::LowDepth => "low-depth",
            Solution::EdgeDisjoint => "edge-disjoint",
            Solution::SingleTree => "single-tree",
            Solution::Constructed(name) => name,
        }
    }
}

/// A fully-resolved multi-tree allreduce embedding for one PolarFly.
#[derive(Debug, Clone)]
pub struct AllreducePlan {
    /// Field order (`radix = q + 1`, `N = q^2 + q + 1` routers).
    pub q: u64,
    /// Which construction produced the trees.
    pub solution: Solution,
    /// The physical topology the trees are embedded in. For `LowDepth` and
    /// `SingleTree` this is the projective-geometry `ER_q` labeling; for
    /// `EdgeDisjoint` it is the (isomorphic) Singer labeling.
    pub graph: Graph,
    /// The spanning trees.
    pub trees: Vec<RootedTree>,
    /// Per-tree bandwidth from Algorithm 1 (unit link bandwidth).
    pub bandwidths: Vec<Rational>,
    /// Aggregate allreduce bandwidth `Σ B_i` (Theorem 5.1).
    pub aggregate: Rational,
    /// Maximum tree depth (latency proxy).
    pub depth: u32,
    /// Theoretical congestion per undirected edge (graph edge-id order) —
    /// how many trees embed each link. The observability layer compares
    /// the simulator's measured per-link congestion against this vector.
    pub edge_congestion: Vec<u32>,
    /// Worst-case link congestion (`max(edge_congestion)`).
    pub max_congestion: u32,
}

impl AllreducePlan {
    fn from_parts(q: u64, solution: Solution, graph: Graph, trees: Vec<RootedTree>) -> Self {
        let a = assign_unit_bandwidth(&graph, &trees);
        let aggregate = a.aggregate();
        let depth = trees.iter().map(|t| t.depth()).max().unwrap_or(0);
        AllreducePlan {
            q,
            solution,
            graph,
            trees,
            bandwidths: a.per_tree,
            aggregate,
            depth,
            edge_congestion: a.per_edge,
            max_congestion: a.max_congestion,
        }
    }

    /// Assembles a plan from a substrate graph and a ready-made spanning
    /// tree set, re-deriving bandwidths and congestion with Algorithm 1.
    /// This is how a rebuilt [`crate::recovery::DegradedPlan`] is promoted
    /// back into a schedulable plan; the caller vouches that every tree
    /// spans `graph`.
    pub fn from_tree_set(
        q: u64,
        solution: Solution,
        graph: Graph,
        trees: Vec<RootedTree>,
    ) -> Self {
        Self::from_parts(q, solution, graph, trees)
    }

    /// Builds the low-depth plan (Algorithm 3). Odd prime powers only.
    pub fn low_depth(q: u64) -> Result<Self, String> {
        let pf = PolarFly::new(q);
        let out = low_depth_trees(&pf, None)?;
        Ok(Self::from_parts(q, Solution::LowDepth, pf.graph().clone(), out.trees))
    }

    /// Builds the edge-disjoint Hamiltonian plan (§7.2) with the paper's
    /// randomized independent-set protocol (`attempts` tries, seeded).
    pub fn edge_disjoint(q: u64, attempts: usize, seed: u64) -> Result<Self, String> {
        let s = Singer::new(q);
        let sol = find_edge_disjoint(&s, attempts, seed);
        if sol.trees.is_empty() {
            return Err(format!("no edge-disjoint Hamiltonian paths found for q = {q}"));
        }
        Ok(Self::from_parts(q, Solution::EdgeDisjoint, s.graph().clone(), sol.trees))
    }

    /// Builds the single-tree baseline: one BFS tree rooted at vertex 0 of
    /// `ER_q` (depth 2 thanks to diameter 2) — the "current practice" the
    /// paper's multi-tree solutions are compared against.
    pub fn single_tree(q: u64) -> Result<Self, String> {
        let pf = PolarFly::new(q);
        let (_, parents) = bfs::tree(pf.graph(), 0);
        let t = RootedTree::from_parents(0, parents).map_err(|e| e.to_string())?;
        Ok(Self::from_parts(q, Solution::SingleTree, pf.graph().clone(), vec![t]))
    }

    /// Builds a plan over an arbitrary substrate through a pluggable
    /// [`TreeConstruction`] backend: the backend's trees, priced with
    /// Algorithm 1 on `g`. The plan's `solution` carries the backend name
    /// ([`Solution::Constructed`]); `q` is 0, so the PolarFly-specific
    /// [`AllreducePlan::optimal_bandwidth`] /
    /// [`AllreducePlan::normalized_bandwidth`] do not apply — compare
    /// against [`AllreducePlan::substrate_bound`] instead. Everything
    /// downstream (simulator embedding, faults/recovery, scheduler
    /// subsets) works on these plans unchanged.
    pub fn construct(
        g: &Graph,
        backend: &dyn TreeConstruction,
        budget: &Budget,
    ) -> Result<Self, ConstructError> {
        let trees = backend.build(g, budget)?;
        for t in &trees {
            // The harness re-checks each backend's output property by
            // property; plan creation still refuses non-spanning sets so
            // a buggy backend cannot reach the congestion model.
            t.validate_spanning(g).map_err(|e| ConstructError::NoTrees(e.to_string()))?;
        }
        Ok(Self::from_parts(0, Solution::Constructed(backend.name()), g.clone(), trees))
    }

    /// Number of routers. For the PolarFly constructors this is
    /// `N = q^2 + q + 1`; for [`AllreducePlan::construct`] plans it is the
    /// substrate's order.
    pub fn num_nodes(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    /// Substrate-generic aggregate-bandwidth upper bound
    /// ([`perf::substrate_bandwidth_bound`]): `min(|E|/(n−1), δ_min)`.
    /// Holds for every plan, on every substrate, in exact rationals.
    pub fn substrate_bound(&self) -> Rational {
        perf::substrate_bandwidth_bound(&self.graph)
    }

    /// Exact allreduce rate upper bound for this plan's substrate
    /// ([`crate::rate::allreduce_rate_bound`]): `min(|E|/(n−1), λ(G))` in
    /// exact rationals. Tightens [`AllreducePlan::substrate_bound`]
    /// (global min cut instead of `δ_min`); `aggregate ≤ rate_bound()` is
    /// the standing paper-claims invariant for every plan on every
    /// substrate (see `docs/RATES.md`).
    pub fn rate_bound(&self) -> Rational {
        crate::rate::allreduce_rate_bound(&self.graph)
            .expect("plans only exist on connected substrates with >= 2 vertices")
            .bound
    }

    /// Optimality gap `aggregate / rate_bound() ∈ (0, 1]` as an exact
    /// rational — 1 means the plan is certified rate-optimal (the
    /// edge-disjoint Hamiltonian plans at odd `q` land exactly here).
    pub fn optimality_gap(&self) -> Rational {
        crate::rate::allreduce_rate_bound(&self.graph)
            .expect("plans only exist on connected substrates with >= 2 vertices")
            .gap(self.aggregate)
    }

    /// A plan over a subset of this plan's trees (by strictly increasing
    /// tree index), on the same graph — the tree allocator's per-tenant
    /// view of the fabric. Bandwidths and per-edge congestion are
    /// recomputed from scratch over the subset, so `split` and
    /// `predicted_*` answer for the tenant's trees alone; a subset can
    /// only lower per-edge congestion, never raise it (each tree
    /// contributes its edges exactly once), which is what keeps any
    /// disjoint partition of one healthy plan under the full plan's
    /// Theorem 7.6/7.19 congestion bound.
    ///
    /// Panics if `indices` is empty, out of range, or not strictly
    /// increasing.
    pub fn tree_subset(&self, indices: &[usize]) -> AllreducePlan {
        assert!(!indices.is_empty(), "a tree subset needs at least one tree");
        for pair in indices.windows(2) {
            assert!(pair[0] < pair[1], "tree indices must be strictly increasing");
        }
        assert!(
            *indices.last().unwrap() < self.trees.len(),
            "tree index out of range"
        );
        let trees = indices.iter().map(|&i| self.trees[i].clone()).collect();
        Self::from_parts(self.q, self.solution, self.graph.clone(), trees)
    }

    /// Corollary 7.1 optimum for this radix (unit link bandwidth).
    pub fn optimal_bandwidth(&self) -> Rational {
        perf::optimal_bandwidth(self.q, Rational::ONE)
    }

    /// Aggregate bandwidth normalized against the optimum (Figure 5a's
    /// y-axis).
    pub fn normalized_bandwidth(&self) -> Rational {
        perf::normalized_bandwidth(self.aggregate, self.q, Rational::ONE)
    }

    /// Theorem 5.1 optimal sub-vector split of an `m`-element vector.
    pub fn split(&self, m: u64) -> Vec<u64> {
        perf::optimal_split(m, &self.bandwidths)
    }

    /// Predicted allreduce time for an `m`-element vector with the given
    /// per-hop latency (Theorem 5.1 model; unit link bandwidth).
    pub fn predicted_time(&self, m: u64, hop_latency: Rational) -> Rational {
        let sizes = self.split(m);
        let lats: Vec<Rational> =
            self.trees.iter().map(|t| perf::tree_latency(t.depth(), hop_latency)).collect();
        perf::allreduce_time(&sizes, &lats, &self.bandwidths)
    }

    /// Cycle-level prediction of the simulator's run time for an
    /// `m`-element allreduce at integer hop latency: the slowest tree's
    /// pipeline fill plus steady-state drain
    /// ([`perf::predicted_tree_cycles`]). The observability examples print
    /// this next to the measured cycle count (`docs/OBSERVABILITY.md`
    /// walks through why measured bandwidth lands below the Theorem 5.1
    /// asymptote at finite `m`).
    pub fn predicted_cycles(&self, m: u64, hop_latency: u64) -> u64 {
        self.predicted_phase_cycles(m, hop_latency, 2)
    }

    /// Cycle-level prediction of an `m`-element reduce-scatter: the same
    /// Algorithm 1 split as the allreduce, but each tree runs only the
    /// reduce-up phase ([`perf::predicted_reduce_scatter_tree_cycles`]) —
    /// half the allreduce's traffic volume, half its pipeline fill, and a
    /// drain at the recovered single-direction rate `min(2·b_i, 1)`
    /// (the Theorem 7.6/7.19 share with the down-direction idle).
    pub fn predicted_reduce_scatter_cycles(&self, m: u64, hop_latency: u64) -> u64 {
        self.predicted_phase_cycles(m, hop_latency, 1)
    }

    /// Cycle-level prediction of an `m`-element allgather: the
    /// broadcast-down mirror of
    /// [`AllreducePlan::predicted_reduce_scatter_cycles`], with the
    /// identical formula (each tree moves its slice down once).
    pub fn predicted_allgather_cycles(&self, m: u64, hop_latency: u64) -> u64 {
        self.predicted_phase_cycles(m, hop_latency, 1)
    }

    fn predicted_phase_cycles(&self, m: u64, hop_latency: u64, phases: u64) -> u64 {
        let sizes = self.split(m);
        self.trees
            .iter()
            .zip(&sizes)
            .zip(&self.bandwidths)
            .map(|((t, &mi), &bi)| {
                perf::predicted_tree_phase_cycles(phases, t.depth(), hop_latency, mi, bi)
            })
            .max()
            .unwrap_or(0)
    }

    /// Picks the faster of the paper's two solutions for the given message
    /// size under the Theorem 5.1 model — the §7.3 trade-off, packaged:
    /// small vectors favor the depth-3 trees, large vectors the
    /// optimal-bandwidth Hamiltonian trees. Falls back to the
    /// edge-disjoint plan for even `q` (where the low-depth construction
    /// is unavailable).
    pub fn recommend(q: u64, m: u64, hop_latency: Rational) -> Result<Self, String> {
        let ham = Self::edge_disjoint(q, 30, 0x5EC)?;
        match Self::low_depth(q) {
            Ok(low) => {
                if low.predicted_time(m, hop_latency) <= ham.predicted_time(m, hop_latency) {
                    Ok(low)
                } else {
                    Ok(ham)
                }
            }
            Err(_) => Ok(ham),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_depth_plan_summary() {
        let p = AllreducePlan::low_depth(11).unwrap();
        assert_eq!(p.q, 11);
        assert_eq!(p.num_nodes(), 133);
        assert_eq!(p.trees.len(), 11);
        assert_eq!(p.depth, 3);
        assert_eq!(p.max_congestion, 2);
        // Corollary 7.7: aggregate >= 11/2; Corollary 7.1: <= 6.
        assert!(p.aggregate >= Rational::new(11, 2));
        assert!(p.aggregate <= Rational::from_int(6));
        assert_eq!(p.optimal_bandwidth(), Rational::from_int(6));
    }

    #[test]
    fn edge_disjoint_plan_summary() {
        let p = AllreducePlan::edge_disjoint(11, 30, 3).unwrap();
        assert_eq!(p.trees.len(), 6); // floor((11+1)/2)
        assert_eq!(p.max_congestion, 1);
        assert_eq!(p.aggregate, Rational::from_int(6));
        assert_eq!(p.normalized_bandwidth(), Rational::ONE);
        assert_eq!(p.depth as u64, (p.num_nodes() - 1) / 2);
    }

    #[test]
    fn single_tree_baseline() {
        let p = AllreducePlan::single_tree(7).unwrap();
        assert_eq!(p.trees.len(), 1);
        assert_eq!(p.depth, 2);
        assert_eq!(p.aggregate, Rational::ONE);
        assert_eq!(p.max_congestion, 1);
    }

    #[test]
    fn split_matches_bandwidths() {
        let p = AllreducePlan::edge_disjoint(7, 30, 9).unwrap();
        let sizes = p.split(10_000);
        assert_eq!(sizes.iter().sum::<u64>(), 10_000);
        // Equal bandwidths -> equal split.
        assert!(sizes.iter().all(|&s| s == 2500));
    }

    #[test]
    fn edge_congestion_vector_consistent() {
        let low = AllreducePlan::low_depth(7).unwrap();
        assert_eq!(low.edge_congestion.len(), low.graph.num_edges() as usize);
        assert_eq!(low.edge_congestion.iter().copied().max(), Some(low.max_congestion));
        // Edge-disjoint trees: every used edge has congestion exactly 1.
        let ham = AllreducePlan::edge_disjoint(7, 30, 9).unwrap();
        assert!(ham.edge_congestion.iter().all(|&c| c <= 1));
    }

    #[test]
    fn predicted_cycles_is_fill_plus_drain() {
        // The quickstart case: q = 7 edge-disjoint, m = 10000, L = 4.
        // 4 trees at B = 1, depth 28, slices of 2500:
        // 2·28·4 + 1 + 2500 = 2725 cycles.
        let p = AllreducePlan::edge_disjoint(7, 30, 9).unwrap();
        assert_eq!(p.predicted_cycles(10_000, 4), 2725);
        assert_eq!(p.predicted_cycles(0, 4), 0);
        // The prediction refines the asymptotic Theorem 5.1 time: it can
        // only exceed it (pipeline fill + integer rounding).
        let model = p.predicted_time(10_000, Rational::from_int(4));
        assert!(Rational::from_int(p.predicted_cycles(10_000, 4) as i64) >= model);
    }

    #[test]
    fn predicted_time_decreases_with_more_trees() {
        let single = AllreducePlan::single_tree(7).unwrap();
        let multi = AllreducePlan::edge_disjoint(7, 30, 5).unwrap();
        let m = 1_000_000;
        let lat = Rational::from_int(50);
        assert!(multi.predicted_time(m, lat) < single.predicted_time(m, lat));
    }

    #[test]
    fn small_messages_favor_low_depth() {
        // The latency/bandwidth trade-off of §7.3: for tiny vectors the
        // depth-3 trees beat the depth-(N-1)/2 Hamiltonian trees.
        let low = AllreducePlan::low_depth(11).unwrap();
        let ham = AllreducePlan::edge_disjoint(11, 30, 5).unwrap();
        let lat = Rational::from_int(50);
        assert!(low.predicted_time(1, lat) < ham.predicted_time(1, lat));
        // And for huge vectors the optimal-bandwidth solution wins.
        assert!(ham.predicted_time(100_000_000, lat) < low.predicted_time(100_000_000, lat));
    }

    #[test]
    fn even_q_low_depth_rejected_but_disjoint_works() {
        assert!(AllreducePlan::low_depth(8).is_err());
        let p = AllreducePlan::edge_disjoint(8, 30, 2).unwrap();
        assert_eq!(p.trees.len(), 4);
        assert_eq!(p.max_congestion, 1);
    }

    #[test]
    fn recommendation_follows_the_crossover() {
        let hop = Rational::from_int(4);
        // Tiny vectors: depth-3 trees.
        let small = AllreducePlan::recommend(11, 8, hop).unwrap();
        assert_eq!(small.solution, Solution::LowDepth);
        // Huge vectors: optimal-bandwidth trees.
        let big = AllreducePlan::recommend(11, 100_000_000, hop).unwrap();
        assert_eq!(big.solution, Solution::EdgeDisjoint);
        // Even q: always edge-disjoint.
        let even = AllreducePlan::recommend(8, 8, hop).unwrap();
        assert_eq!(even.solution, Solution::EdgeDisjoint);
    }

    #[test]
    fn tree_subset_recomputes_congestion() {
        let full = AllreducePlan::low_depth(7).unwrap();
        let sub = full.tree_subset(&[0, 2, 4]);
        assert_eq!(sub.trees.len(), 3);
        assert_eq!(sub.q, full.q);
        // A subset can only lower per-edge congestion.
        for (s, f) in sub.edge_congestion.iter().zip(&full.edge_congestion) {
            assert!(s <= f);
        }
        assert!(sub.max_congestion <= full.max_congestion);
        // Its split covers the subset's trees only.
        let sizes = sub.split(999);
        assert_eq!(sizes.len(), 3);
        assert_eq!(sizes.iter().sum::<u64>(), 999);
    }

    #[test]
    fn disjoint_tree_subsets_partition_congestion() {
        // Two disjoint subsets of one plan: their per-edge congestion
        // vectors sum to the full plan's (each tree counted exactly once),
        // so concurrent tenants on disjoint subsets stay under the healthy
        // bound by construction.
        let full = AllreducePlan::low_depth(7).unwrap();
        let a = full.tree_subset(&[0, 1, 2, 3]);
        let b = full.tree_subset(&[4, 5, 6]);
        for e in 0..full.edge_congestion.len() {
            assert_eq!(
                a.edge_congestion[e] + b.edge_congestion[e],
                full.edge_congestion[e],
                "edge {e}"
            );
        }
        // Edge-disjoint plans: tenant subsets share no physical links.
        let ham = AllreducePlan::edge_disjoint(7, 30, 9).unwrap();
        let ha = ham.tree_subset(&[0, 1]);
        let hb = ham.tree_subset(&[2, 3]);
        for e in 0..ham.edge_congestion.len() {
            assert!(ha.edge_congestion[e] == 0 || hb.edge_congestion[e] == 0, "edge {e}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn tree_subset_rejects_duplicates() {
        let full = AllreducePlan::single_tree(3).unwrap();
        let _ = full.tree_subset(&[0, 0]);
    }

    #[test]
    fn labels() {
        assert_eq!(Solution::LowDepth.label(), "low-depth");
        assert_eq!(Solution::EdgeDisjoint.label(), "edge-disjoint");
        assert_eq!(Solution::SingleTree.label(), "single-tree");
        assert_eq!(Solution::Constructed("kary-multitree").label(), "kary-multitree");
    }

    #[test]
    fn constructed_plan_on_a_torus() {
        use crate::construction::{Budget, KaryMultitree};
        let g = pf_topo::torus::Torus::new(&[4, 4]).graph().clone();
        let plan =
            AllreducePlan::construct(&g, &KaryMultitree { k: 2 }, &Budget::unlimited()).unwrap();
        assert_eq!(plan.q, 0);
        assert_eq!(plan.num_nodes(), 16);
        assert_eq!(plan.solution.label(), "kary-multitree");
        assert!(plan.aggregate.is_positive());
        assert!(plan.aggregate <= plan.substrate_bound());
        // The generic plan drives the same downstream machinery.
        let sizes = plan.split(1000);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert!(plan.predicted_cycles(1000, 2) > 0);
    }

    #[test]
    fn constructed_plan_reports_typed_errors() {
        use crate::construction::{BfsSingle, Budget, ConstructError};
        let mut split = Graph::new(4);
        split.add_edge(0, 1);
        split.add_edge(2, 3);
        let err = AllreducePlan::construct(&split, &BfsSingle, &Budget::unlimited()).unwrap_err();
        assert_eq!(err, ConstructError::Disconnected { components: 2 });
    }

    #[test]
    fn polarfly_constructors_survive_num_nodes_from_graph() {
        // num_nodes now reads the graph order; for PolarFly plans that is
        // still q² + q + 1.
        for q in [3u64, 7] {
            let p = AllreducePlan::low_depth(q).unwrap();
            assert_eq!(p.num_nodes(), q * q + q + 1);
        }
    }
}
