//! Naive multi-tree baselines — the ablation behind §1.2's claim that
//! "the trees must be carefully embedded, or else congestion … can create
//! bottleneck edges with high traffic load, nullifying the performance
//! benefits of data-parallelism".
//!
//! Two strawmen to compare against the paper's constructions:
//!
//! * [`k_bfs_trees`] — `k` BFS spanning trees from random roots, the kind
//!   of "logically defined" trees SHARP-style systems produce with no
//!   congestion guarantee (§1.1);
//! * [`greedy_edge_disjoint`] — peel spanning trees off the graph greedily
//!   using only so-far-unused edges, a natural but structure-blind way to
//!   chase edge-disjointness.
//!
//! Run through Algorithm 1, these show the bandwidth gap to the
//! structured solutions (the `ablation-naive` experiment).

use pf_graph::{bfs, Graph, RootedTree, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// `k` BFS spanning trees rooted at distinct random vertices. No
/// congestion control whatsoever: overlapping edges are the norm.
pub fn k_bfs_trees(g: &Graph, k: usize, seed: u64) -> Vec<RootedTree> {
    assert!(k as u32 <= g.num_vertices(), "need k distinct roots");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut roots: Vec<VertexId> = g.vertices().collect();
    roots.shuffle(&mut rng);
    roots.truncate(k);
    roots
        .into_iter()
        .map(|r| {
            let (_, parents) = bfs::tree(g, r);
            RootedTree::from_parents(r, parents).expect("BFS tree of a connected graph")
        })
        .collect()
}

/// Greedily peels edge-disjoint spanning trees: each round runs a
/// randomized Kruskal pass (random edge order + union-find) over the
/// still-unused edges; stops when the residual graph no longer spans.
/// Returns the trees found (each is a spanning tree of `g`, pairwise
/// edge-disjoint).
///
/// Randomized Kruskal spreads tree degree across vertices (unlike a BFS
/// tree, which consumes *every* edge of its root and instantly isolates it
/// in the residual graph), so it peels several trees — but, lacking the
/// Hamiltonian structure, it still stalls before the `⌊(q+1)/2⌋` optimum
/// on most instances. That gap is the point of the ablation.
pub fn greedy_edge_disjoint(g: &Graph, seed: u64) -> Vec<RootedTree> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut used = vec![false; g.num_edges() as usize];
    let mut trees = Vec::new();
    loop {
        match random_kruskal_avoiding(g, &used, &mut rng) {
            Some(t) => {
                for id in t.edge_ids(g) {
                    used[id as usize] = true;
                }
                trees.push(t);
            }
            None => return trees,
        }
    }
}

/// Randomized Kruskal spanning tree over the unused edges, or `None` if
/// the residual graph is disconnected.
fn random_kruskal_avoiding(g: &Graph, used: &[bool], rng: &mut impl Rng) -> Option<RootedTree> {
    let n = g.num_vertices();
    let mut edges: Vec<(u32, VertexId, VertexId)> = g
        .edges()
        .filter(|&(e, _, _)| !used[e as usize])
        .collect();
    edges.shuffle(rng);
    let mut dsu = pf_graph::dsu::Dsu::new(n);
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n as usize];
    for (_, u, v) in edges {
        if dsu.union(u, v) {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            if dsu.components() == 1 {
                break;
            }
        }
    }
    if dsu.components() != 1 {
        return None;
    }
    // Orient the forest into a rooted tree at a random root.
    let root = rng.random_range(0..n);
    let mut parent: Vec<Option<VertexId>> = vec![None; n as usize];
    let mut seen = vec![false; n as usize];
    seen[root as usize] = true;
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        for &v in &adj[u as usize] {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                stack.push(v);
            }
        }
    }
    RootedTree::from_parents(root, parent).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::assign_unit_bandwidth;
    use crate::disjoint::find_edge_disjoint;
    use crate::lowdepth::low_depth_trees;
    use pf_graph::tree::pairwise_edge_disjoint;
    use pf_topo::{PolarFly, Singer};

    #[test]
    fn bfs_trees_span_and_have_diameter_depth() {
        let pf = PolarFly::new(7);
        let trees = k_bfs_trees(pf.graph(), 7, 42);
        assert_eq!(trees.len(), 7);
        let mut roots = std::collections::HashSet::new();
        for t in &trees {
            t.validate_spanning(pf.graph()).unwrap();
            assert!(t.depth() <= 2, "diameter-2 network");
            assert!(roots.insert(t.root()), "roots must be distinct");
        }
    }

    #[test]
    fn bfs_trees_congest_badly() {
        // The §1.2 claim: naive trees overlap heavily, so the aggregate
        // bandwidth collapses well below the structured solutions.
        let pf = PolarFly::new(11);
        let naive = k_bfs_trees(pf.graph(), 11, 7);
        let a_naive = assign_unit_bandwidth(pf.graph(), &naive);
        let structured = low_depth_trees(&pf, None).unwrap();
        let a_struct = assign_unit_bandwidth(pf.graph(), &structured.trees);
        assert!(
            a_naive.max_congestion > 2,
            "naive congestion {} should exceed the structured bound 2",
            a_naive.max_congestion
        );
        assert!(
            a_naive.aggregate() < a_struct.aggregate(),
            "naive {} vs structured {}",
            a_naive.aggregate(),
            a_struct.aggregate()
        );
    }

    #[test]
    fn greedy_trees_are_edge_disjoint_but_fewer_or_deeper() {
        let s = Singer::new(7);
        let greedy = greedy_edge_disjoint(s.graph(), 3);
        assert!(!greedy.is_empty());
        for t in &greedy {
            t.validate_spanning(s.graph()).unwrap();
        }
        assert!(pairwise_edge_disjoint(&greedy, s.graph()));
        let structured = find_edge_disjoint(&s, 30, 3);
        assert!(
            greedy.len() <= structured.trees.len(),
            "greedy {} vs structured {}",
            greedy.len(),
            structured.trees.len()
        );
    }

    #[test]
    fn greedy_respects_upper_bound() {
        for q in [3u64, 5, 7] {
            let s = Singer::new(q);
            let greedy = greedy_edge_disjoint(s.graph(), q);
            assert!(greedy.len() as u64 <= q.div_ceil(2), "q={q}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pf = PolarFly::new(5);
        let a = k_bfs_trees(pf.graph(), 3, 9);
        let b = k_bfs_trees(pf.graph(), 3, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.root(), y.root());
        }
    }

    #[test]
    #[should_panic(expected = "distinct roots")]
    fn too_many_roots_rejected() {
        let pf = PolarFly::new(3);
        k_bfs_trees(pf.graph(), 14, 0);
    }
}
