//! Algorithm 3 — low-latency spanning trees in PolarFly (§7.1).
//!
//! For each of the `q` non-quadric clusters of the layout, build a tree
//! rooted at the cluster center `v_i`:
//!
//! * level 1: all neighbors of `v_i` — the rest of `C_i`, the starter
//!   quadric `w`, and the non-starter quadric `w_i` (Corollary 7.3);
//! * level 2: neighbors of every level-1 vertex except `w` — this reaches
//!   every remaining vertex except the other cluster centers (the proof of
//!   Theorem 7.4);
//! * level 3: each other center `v_j` attached through one edge popped from
//!   the shared available-edge pool `E_a`, which caps congestion at 2
//!   (Theorem 7.6).
//!
//! The trees have depth ≤ 3 (Theorem 7.5), worst-case congestion 2
//! (Theorem 7.6), and aggregate bandwidth ≥ `q·B/2` (Corollary 7.7).

use pf_graph::{RootedTree, VertexId};
use pf_topo::{Layout, PolarFly};

/// Output of Algorithm 3: the trees plus the layout they were built from.
#[derive(Debug, Clone)]
pub struct LowDepthTrees {
    /// One tree per non-quadric cluster, rooted at its center.
    pub trees: Vec<RootedTree>,
    /// The layout used (starter quadric, clusters).
    pub layout: Layout,
}

/// Runs Algorithm 3 on `pf` (odd prime-power `q` only — the layout
/// requirement). The `starter` quadric is optional; trees are deterministic
/// given the starter.
///
/// ```
/// use pf_allreduce::lowdepth::low_depth_trees;
/// use pf_topo::PolarFly;
/// let pf = PolarFly::new(5);
/// let out = low_depth_trees(&pf, None).unwrap();
/// assert_eq!(out.trees.len(), 5);                       // q trees
/// assert!(out.trees.iter().all(|t| t.depth() <= 3));    // Theorem 7.5
/// ```
pub fn low_depth_trees(pf: &PolarFly, starter: Option<VertexId>) -> Result<LowDepthTrees, String> {
    let layout = Layout::new(pf, starter)?;
    let g = pf.graph();
    let n = g.num_vertices() as usize;
    let centers: Vec<VertexId> = layout.clusters().iter().map(|c| c.center).collect();
    let is_center: Vec<bool> = {
        let mut v = vec![false; n];
        for &c in &centers {
            v[c as usize] = true;
        }
        v
    };

    // E_a restricted to center-incident edges: the only edges Algorithm 3
    // ever pops. avail[j] holds the still-available neighbors of center j.
    let mut avail: Vec<Vec<VertexId>> =
        centers.iter().map(|&c| g.neighbors(c).collect()).collect();

    let mut trees = Vec::with_capacity(centers.len());
    for (i, &root) in centers.iter().enumerate() {
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        let mut in_tree = vec![false; n];
        in_tree[root as usize] = true;

        // Level 1: all neighbors of the root.
        let level1: Vec<VertexId> = g.neighbors(root).collect();
        for &u in &level1 {
            parent[u as usize] = Some(root);
            in_tree[u as usize] = true;
        }

        // Level 2: expand every level-1 vertex except the starter quadric
        // (whose neighbors are exactly the other centers).
        for &u in &level1 {
            if u == layout.starter() {
                continue;
            }
            for z in g.neighbors(u) {
                if !in_tree[z as usize] {
                    debug_assert!(
                        !is_center[z as usize],
                        "Algorithm 3 invariant: centers are never reached at level 2"
                    );
                    parent[z as usize] = Some(u);
                    in_tree[z as usize] = true;
                }
            }
        }

        // Level 3: attach each other center via an available edge.
        for (j, &vj) in centers.iter().enumerate() {
            if j == i {
                continue;
            }
            debug_assert!(!in_tree[vj as usize]);
            let pos = avail[j]
                .iter()
                .position(|&u| in_tree[u as usize])
                .ok_or_else(|| format!("E_a exhausted for center {vj} while building T_{i}"))?;
            let u = avail[j].remove(pos);
            parent[vj as usize] = Some(u);
            in_tree[vj as usize] = true;
        }

        let tree = RootedTree::from_parents(root, parent)
            .map_err(|e| format!("T_{i} is not a tree: {e}"))?;
        trees.push(tree);
    }
    Ok(LowDepthTrees { trees, layout })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::assign_unit_bandwidth;
    use crate::rational::Rational;
    use pf_graph::tree::edge_congestion;

    fn build(q: u64) -> (PolarFly, LowDepthTrees) {
        let pf = PolarFly::new(q);
        let out = low_depth_trees(&pf, None).unwrap();
        (pf, out)
    }

    #[test]
    fn produces_q_spanning_trees() {
        for q in [3u64, 5, 7, 9, 11, 13] {
            let (pf, out) = build(q);
            assert_eq!(out.trees.len() as u64, q, "q={q}");
            for (i, t) in out.trees.iter().enumerate() {
                t.validate_spanning(pf.graph())
                    .unwrap_or_else(|e| panic!("q={q} T_{i}: {e}"));
            }
        }
    }

    #[test]
    fn depth_at_most_three() {
        // Theorem 7.5.
        for q in [3u64, 5, 7, 9, 11, 13, 17, 19] {
            let (_, out) = build(q);
            for (i, t) in out.trees.iter().enumerate() {
                assert!(t.depth() <= 3, "q={q} T_{i} depth {}", t.depth());
            }
        }
    }

    #[test]
    fn congestion_at_most_two() {
        // Theorem 7.6.
        for q in [3u64, 5, 7, 9, 11, 13, 17, 19] {
            let (pf, out) = build(q);
            let c = edge_congestion(&out.trees, pf.graph());
            assert!(
                c.iter().all(|&x| x <= 2),
                "q={q}: max congestion {}",
                c.iter().max().unwrap()
            );
        }
    }

    #[test]
    fn roots_are_cluster_centers() {
        let (_, out) = build(7);
        for (t, c) in out.trees.iter().zip(out.layout.clusters()) {
            assert_eq!(t.root(), c.center);
        }
    }

    #[test]
    fn aggregate_bandwidth_at_least_half_q() {
        // Corollary 7.7: aggregate >= q·B/2 with B = 1.
        for q in [3u64, 5, 7, 9, 11, 13] {
            let (pf, out) = build(q);
            let a = assign_unit_bandwidth(pf.graph(), &out.trees);
            let bound = Rational::new(q as i64, 2);
            assert!(
                a.aggregate() >= bound,
                "q={q}: aggregate {} < q/2",
                a.aggregate()
            );
            assert!(a.max_congestion <= 2, "q={q}");
        }
    }

    #[test]
    fn every_tree_has_exactly_n_minus_1_edges() {
        let (pf, out) = build(5);
        let n = pf.graph().num_vertices() as usize;
        for t in &out.trees {
            assert_eq!(t.edges().count(), n - 1);
        }
    }

    #[test]
    fn works_for_all_starters() {
        let pf = PolarFly::new(5);
        for s in pf.quadrics() {
            let out = low_depth_trees(&pf, Some(s)).unwrap();
            for t in &out.trees {
                t.validate_spanning(pf.graph()).unwrap();
                assert!(t.depth() <= 3);
            }
            let c = edge_congestion(&out.trees, pf.graph());
            assert!(c.iter().all(|&x| x <= 2));
        }
    }

    #[test]
    fn rejects_even_q() {
        let pf = PolarFly::new(4);
        assert!(low_depth_trees(&pf, None).is_err());
    }

    #[test]
    fn deterministic() {
        let pf = PolarFly::new(7);
        let a = low_depth_trees(&pf, None).unwrap();
        let b = low_depth_trees(&pf, None).unwrap();
        for (x, y) in a.trees.iter().zip(&b.trees) {
            assert_eq!(x, y);
        }
    }
}
