//! Logically-defined aggregation trees — the SHARP-style baseline of §4.4.
//!
//! Some routers "allow embeddings to be logically defined by configuring
//! the children and parent(s) of each router. The physical routing paths
//! are decided by the routing algorithm at runtime … Such mechanisms can
//! incur path conflicts" (§4.4). Here a logical tree may connect any two
//! routers; each logical edge is routed minimally over the topology, and
//! a physical link's bandwidth is shared by *every logical edge crossing
//! it* — including several edges of the same tree.
//!
//! [`assign_bandwidth_weighted`] generalizes Algorithm 1 to these weighted
//! embeddings (a physical tree is the special case with all weights 1),
//! which makes the paper's physically-embedded solutions directly
//! comparable against logical trees (the `ablation-logical` experiment).

use crate::congestion::BandwidthAssignment;
use crate::rational::Rational;
use pf_graph::{bfs, Graph, VertexId};

/// A rooted aggregation tree whose edges need not be physical links.
#[derive(Debug, Clone)]
pub struct LogicalTree {
    pub root: VertexId,
    /// Parent per vertex (`None` at the root). Must be acyclic and span.
    pub parent: Vec<Option<VertexId>>,
}

impl LogicalTree {
    /// A `k`-ary aggregation tree over node ids in order — the shape a
    /// SHARP-style system builds without regard for physical adjacency:
    /// node `v`'s parent is `(v - 1) / k`.
    pub fn kary(n: u32, k: u32, root: VertexId) -> Self {
        assert!(k >= 1 && n >= 1 && root < n);
        // Build over ranks 0..n then relabel so `root` takes rank 0.
        let relabel = |rank: u32| -> VertexId {
            if rank == 0 {
                root
            } else if rank == root {
                0
            } else {
                rank
            }
        };
        let mut parent = vec![None; n as usize];
        for rank in 1..n {
            let prank = (rank - 1) / k;
            parent[relabel(rank) as usize] = Some(relabel(prank));
        }
        LogicalTree { root, parent }
    }

    /// Logical edges as `(child, parent)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(v, p)| p.map(|p| (v as VertexId, p)))
    }

    /// Depth in *logical* hops.
    pub fn logical_depth(&self) -> u32 {
        let mut best = 0;
        for v in 0..self.parent.len() as u32 {
            let mut d = 0;
            let mut cur = v;
            while let Some(p) = self.parent[cur as usize] {
                d += 1;
                cur = p;
            }
            best = best.max(d);
        }
        best
    }
}

/// Routes every logical edge of `tree` minimally and returns the number of
/// logical edges crossing each physical edge (the tree's weight vector).
pub fn route_usage(g: &Graph, tree: &LogicalTree) -> Vec<u32> {
    let mut usage = vec![0u32; g.num_edges() as usize];
    for (child, parent) in tree.edges() {
        let path = bfs::shortest_path(g, child, parent)
            .expect("logical endpoints must be connected");
        for w in path.windows(2) {
            let e = g.edge_id(w[0], w[1]).unwrap();
            usage[e as usize] += 1;
        }
    }
    usage
}

/// Weighted water-filling: max–min fair per-tree bandwidth where tree `i`
/// consumes `w_i(e) · B_i` on physical edge `e`. With all weights in
/// `{0, 1}` this is exactly Algorithm 1.
pub fn assign_bandwidth_weighted(
    g: &Graph,
    usages: &[Vec<u32>],
    link_bandwidth: Rational,
) -> BandwidthAssignment {
    let ne = g.num_edges() as usize;
    let nt = usages.len();
    for u in usages {
        assert_eq!(u.len(), ne, "one weight per physical edge");
    }
    let mut avail = vec![link_bandwidth; ne];
    let mut weight: Vec<u64> =
        (0..ne).map(|e| usages.iter().map(|u| u[e] as u64).sum()).collect();
    // Weighted C(e), captured before water-filling decrements it.
    let per_edge: Vec<u32> = weight.iter().map(|&w| w as u32).collect();
    let max_congestion = weight.iter().copied().max().unwrap_or(0) as u32;

    let mut bw = vec![Rational::ZERO; nt];
    let mut assigned = vec![false; nt];
    let mut edge_alive: Vec<bool> = weight.iter().map(|&w| w > 0).collect();
    let mut remaining = usages.iter().filter(|u| u.iter().any(|&w| w > 0)).count();
    // Trees that touch no physical edge at all (single-node networks)
    // stream at full link bandwidth by convention.
    for (i, u) in usages.iter().enumerate() {
        if u.iter().all(|&w| w == 0) {
            bw[i] = link_bandwidth;
            assigned[i] = true;
        }
    }

    while remaining > 0 {
        let mut best: Option<(Rational, usize)> = None;
        for e in 0..ne {
            if !edge_alive[e] || weight[e] == 0 {
                continue;
            }
            let ratio = avail[e] / Rational::from_int(weight[e] as i64);
            match best {
                Some((b, _)) if b <= ratio => {}
                _ => best = Some((ratio, e)),
            }
        }
        let (share, emin) = best.expect("live edges must remain while trees are unassigned");
        for i in 0..nt {
            if assigned[i] || usages[i][emin] == 0 {
                continue;
            }
            bw[i] = share;
            assigned[i] = true;
            remaining -= 1;
            for (e, &w) in usages[i].iter().enumerate() {
                if w > 0 {
                    avail[e] -= share * Rational::from_int(w as i64);
                    weight[e] -= w as u64;
                }
            }
        }
        edge_alive[emin] = false;
    }

    BandwidthAssignment { per_tree: bw, per_edge, max_congestion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congestion::assign_unit_bandwidth;
    use crate::lowdepth::low_depth_trees;
    use pf_topo::PolarFly;

    #[test]
    fn kary_tree_shape() {
        let t = LogicalTree::kary(7, 2, 0);
        assert_eq!(t.root, 0);
        assert_eq!(t.parent[1], Some(0));
        assert_eq!(t.parent[2], Some(0));
        assert_eq!(t.parent[3], Some(1));
        assert_eq!(t.parent[6], Some(2));
        assert_eq!(t.logical_depth(), 2);
        assert_eq!(t.edges().count(), 6);
    }

    #[test]
    fn kary_relabels_root() {
        let t = LogicalTree::kary(5, 4, 3);
        assert_eq!(t.root, 3);
        assert_eq!(t.parent[3], None);
        // All other vertices hang off the root (k = 4, n = 5).
        for v in [0u32, 1, 2, 4] {
            assert_eq!(t.parent[v as usize], Some(3), "v={v}");
        }
    }

    #[test]
    fn weighted_model_reduces_to_algorithm1_on_physical_trees() {
        let pf = PolarFly::new(7);
        let out = low_depth_trees(&pf, None).unwrap();
        let g = pf.graph();
        // Physical trees as logical trees: weights are 0/1.
        let usages: Vec<Vec<u32>> = out
            .trees
            .iter()
            .map(|t| {
                let lt = LogicalTree {
                    root: t.root(),
                    parent: (0..g.num_vertices()).map(|v| t.parent(v)).collect(),
                };
                route_usage(g, &lt)
            })
            .collect();
        // Physical adjacency => every logical edge routes in one hop.
        for (t, u) in out.trees.iter().zip(&usages) {
            let total: u32 = u.iter().sum();
            assert_eq!(total as usize, t.edges().count());
        }
        let weighted = assign_bandwidth_weighted(g, &usages, Rational::ONE);
        let classic = assign_unit_bandwidth(g, &out.trees);
        assert_eq!(weighted.per_tree, classic.per_tree);
        assert_eq!(weighted.aggregate(), classic.aggregate());
    }

    #[test]
    fn logical_trees_pay_for_path_conflicts() {
        // SHARP-style k-ary logical trees on PolarFly: 2-hop routed edges
        // conflict on shared links, collapsing the aggregate bandwidth
        // versus the physically-embedded solutions.
        let pf = PolarFly::new(7);
        let g = pf.graph();
        let n = g.num_vertices();
        let radix = 8;
        let logical: Vec<Vec<u32>> = (0..7u32)
            .map(|i| route_usage(g, &LogicalTree::kary(n, radix, i * 8 % n)))
            .collect();
        let a = assign_bandwidth_weighted(g, &logical, Rational::ONE);
        let structured = low_depth_trees(&pf, None).unwrap();
        let b = assign_unit_bandwidth(g, &structured.trees);
        assert!(
            a.aggregate() < b.aggregate(),
            "logical {} vs physical {}",
            a.aggregate(),
            b.aggregate()
        );
        assert!(a.max_congestion > 2, "logical congestion {}", a.max_congestion);
    }

    #[test]
    fn single_logical_tree_below_link_rate_when_conflicted() {
        // Even ONE logical tree can fall below link bandwidth when several
        // of its own routed edges share a physical link — impossible for a
        // physically-embedded tree (§5.1: "no congestion within a tree").
        let pf = PolarFly::new(5);
        let g = pf.graph();
        let t = LogicalTree::kary(g.num_vertices(), 2, 0);
        let u = route_usage(g, &t);
        let a = assign_bandwidth_weighted(g, std::slice::from_ref(&u), Rational::ONE);
        if u.iter().any(|&w| w > 1) {
            assert!(a.per_tree[0] < Rational::ONE);
        }
        assert!(a.per_tree[0].is_positive());
    }

    #[test]
    fn empty_usage_full_bandwidth() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let a = assign_bandwidth_weighted(&g, &[vec![0]], Rational::ONE);
        assert_eq!(a.per_tree, vec![Rational::ONE]);
    }
}
