//! Named, deterministic substrate families for cross-topology work.
//!
//! The tree-construction harness (`tests/tree_harness.rs`), the
//! cross-backend paper-claims invariants (`tests/paper_claims.rs`) and
//! the `experiments topo-compare` table all iterate the same substrate
//! catalog, so a construction that regresses on one of these graphs fails
//! in every layer with the same substrate name attached.
//!
//! Everything here is seed-deterministic: the same call always returns
//! the same graph, byte for byte.

use crate::construction::{
    BfsSingle, GreedyPeel, KaryMultitree, PolarFlyHamiltonian, PolarFlyLowDepth,
    TreeConstruction,
};
use crate::starprod::StarProductDisjoint;
use pf_graph::{builders, cartesian_product, shifted_product, Graph};
use pf_topo::torus::Torus;
use pf_topo::{PolarFly, Singer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named substrate.
pub struct Substrate {
    /// Stable display name (used in harness failure messages and the
    /// topo-compare table).
    pub name: String,
    /// The topology.
    pub graph: Graph,
}

impl Substrate {
    fn new(name: impl Into<String>, graph: Graph) -> Self {
        Substrate { name: name.into(), graph }
    }
}

/// Connected Erdős–Rényi-style random graph: a random spanning skeleton
/// (vertex `v` attaches to a uniform earlier vertex) plus `extra` random
/// non-duplicate edges. Deterministic per seed.
pub fn erdos_renyi_connected(n: u32, extra: u32, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v, rng.random_range(0..v));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 20 * extra {
        attempts += 1;
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b && !g.has_edge(a, b) {
            g.add_edge(a, b);
            added += 1;
        }
    }
    g
}

/// Two cliques joined by a single bridge: only one edge-disjoint spanning
/// tree exists (every spanning tree must use the bridge).
pub fn bridged_cliques(half: u32) -> Graph {
    assert!(half >= 2);
    let n = 2 * half;
    let mut g = Graph::new(n);
    for side in [0, half] {
        for u in side..side + half {
            for v in u + 1..side + half {
                g.add_edge(u, v);
            }
        }
    }
    g.add_edge(half - 1, half);
    g
}

/// The quick-tier catalog: one representative per substrate family, small
/// enough for the push-time harness job.
pub fn quick_catalog() -> Vec<Substrate> {
    vec![
        Substrate::new("er-n20", erdos_renyi_connected(20, 30, 0xE5)),
        Substrate::new("torus-4x4", Torus::new(&[4, 4]).graph().clone()),
        Substrate::new(
            "star-c4xk4",
            shifted_product(&builders::cycle(4), &builders::complete(4)).graph().clone(),
        ),
        Substrate::new("polarfly-q5", PolarFly::new(5).graph().clone()),
        Substrate::new("hypercube-4", builders::hypercube(4)),
        Substrate::new("complete-k8", builders::complete(8)),
    ]
}

/// The full catalog for the nightly sweep: random substrates across
/// several densities and seeds, tori of multiple shapes, Cartesian and
/// twisted star products, and every paper radix `q ∈ {3, 5, 7, 9, 11}`.
pub fn full_catalog() -> Vec<Substrate> {
    let mut cat = Vec::new();
    for (n, extra, seed) in
        [(8u32, 6u32, 1u64), (16, 20, 2), (24, 40, 3), (32, 24, 4), (40, 90, 5)]
    {
        cat.push(Substrate::new(
            format!("er-n{n}-e{extra}-s{seed}"),
            erdos_renyi_connected(n, extra, seed),
        ));
    }
    for dims in [vec![3u32, 3], vec![4, 4], vec![3, 4], vec![3, 3, 3]] {
        let name = dims.iter().map(u32::to_string).collect::<Vec<_>>().join("x");
        cat.push(Substrate::new(format!("torus-{name}"), Torus::new(&dims).graph().clone()));
    }
    cat.push(Substrate::new(
        "cart-c5xk4",
        cartesian_product(&builders::cycle(5), &builders::complete(4)).graph().clone(),
    ));
    cat.push(Substrate::new(
        "star-k5xk4",
        shifted_product(&builders::complete(5), &builders::complete(4)).graph().clone(),
    ));
    cat.push(Substrate::new(
        "star-c6xc4",
        shifted_product(&builders::cycle(6), &builders::cycle(4)).graph().clone(),
    ));
    for q in [3u64, 5, 7, 9, 11] {
        cat.push(Substrate::new(format!("polarfly-q{q}"), PolarFly::new(q).graph().clone()));
        cat.push(Substrate::new(format!("singer-q{q}"), Singer::new(q).graph().clone()));
    }
    cat.push(Substrate::new("hypercube-5", builders::hypercube(5)));
    cat.push(Substrate::new("petersen", builders::petersen()));
    cat.push(Substrate::new("complete-k12", builders::complete(12)));
    cat.push(Substrate::new("bridged-k5", bridged_cliques(5)));
    cat
}

/// The known closed-form rate bound for the catalog substrate with this
/// name, keyed the same way [`backends_for`] is: `polarfly-q*`/`singer-q*`
/// (isomorphic, Theorem 6.6) get the Corollary 7.1 optimum `(q+1)/2`,
/// `torus-AxBx...` gets `k·n/(n−1)`, `hypercube-d` gets `d·2^(d−1)/(2^d−1)`
/// and `complete-kN` gets `n/2`. `None` for families without a published
/// closed form (random, products, bridged cliques) — there the generic
/// [`crate::rate::allreduce_rate_bound`] is the only bound. The harness
/// asserts the generic computation reproduces every `Some` exactly.
pub fn closed_form_rate_bound(name: &str) -> Option<crate::rational::Rational> {
    use crate::rate;
    if let Some(q) = name
        .strip_prefix("polarfly-q")
        .or_else(|| name.strip_prefix("singer-q"))
        .and_then(|s| s.parse::<u64>().ok())
    {
        return Some(rate::polarfly_bound(q));
    }
    if let Some(dims) = name.strip_prefix("torus-").map(|s| {
        s.split('x').map(|d| d.parse::<u32>().ok()).collect::<Option<Vec<_>>>()
    }) {
        return Some(rate::torus_bound(&dims?));
    }
    if let Some(d) = name.strip_prefix("hypercube-").and_then(|s| s.parse::<u32>().ok()) {
        return Some(rate::hypercube_bound(d));
    }
    if let Some(n) = name.strip_prefix("complete-k").and_then(|s| s.parse::<u32>().ok()) {
        return Some(rate::complete_bound(n));
    }
    None
}

/// The backends applicable to the catalog substrate with this name: the
/// three generic backends always, plus the specializations keyed by name —
/// `polarfly-q*` gets the low-depth construction, `singer-q*` the
/// Hamiltonian one, and the product substrates get the star-product
/// edge-disjoint construction rebuilt with its bijections. The tree
/// harness and `experiments topo-compare` iterate this same list, so both
/// layers see the same backend × substrate matrix.
pub fn backends_for(name: &str) -> Vec<Box<dyn TreeConstruction>> {
    let mut backends: Vec<Box<dyn TreeConstruction>> = vec![
        Box::new(BfsSingle),
        Box::new(GreedyPeel { seed: 7 }),
        Box::new(KaryMultitree { k: 3 }),
    ];
    if let Some(q) = name.strip_prefix("polarfly-q").and_then(|s| s.parse::<u64>().ok()) {
        backends.push(Box::new(PolarFlyLowDepth { q }));
    }
    if let Some(q) = name.strip_prefix("singer-q").and_then(|s| s.parse::<u64>().ok()) {
        backends.push(Box::new(PolarFlyHamiltonian { q, attempts: 30, seed: 9 }));
    }
    let sp = match name {
        "star-c4xk4" => Some(shifted_product(&builders::cycle(4), &builders::complete(4))),
        "star-k5xk4" => Some(shifted_product(&builders::complete(5), &builders::complete(4))),
        "star-c6xc4" => Some(shifted_product(&builders::cycle(6), &builders::cycle(4))),
        "cart-c5xk4" => Some(cartesian_product(&builders::cycle(5), &builders::complete(4))),
        _ => None,
    };
    if let Some(sp) = sp {
        backends.push(Box::new(StarProductDisjoint::new(sp, 3)));
    }
    backends
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::bfs;

    #[test]
    fn catalogs_are_connected_and_deterministic() {
        for cat in [quick_catalog(), full_catalog()] {
            for s in &cat {
                assert!(s.graph.num_vertices() >= 2, "{}", s.name);
                assert!(bfs::is_connected(&s.graph), "{}", s.name);
            }
        }
        let a = full_catalog();
        let b = full_catalog();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.graph.num_edges(), y.graph.num_edges());
            assert!(x.graph.edges().eq(y.graph.edges()), "{}", x.name);
        }
    }

    #[test]
    fn bridged_cliques_have_one_bridge() {
        let g = bridged_cliques(4);
        assert_eq!(g.num_vertices(), 8);
        // 2 × C(4,2) + 1 bridge.
        assert_eq!(g.num_edges(), 13);
        assert!(bfs::is_connected(&g));
        // Deleting the bridge disconnects.
        let bridge = g.edge_id(3, 4).unwrap();
        let cut = pf_graph::edge_deleted(&g, &[bridge]);
        assert!(!bfs::is_connected(&cut.graph));
    }

    #[test]
    fn closed_forms_cover_the_expected_families() {
        use crate::rate;
        assert_eq!(closed_form_rate_bound("polarfly-q5"), Some(rate::polarfly_bound(5)));
        assert_eq!(closed_form_rate_bound("singer-q7"), Some(rate::polarfly_bound(7)));
        assert_eq!(closed_form_rate_bound("torus-3x3x3"), Some(rate::torus_bound(&[3, 3, 3])));
        assert_eq!(closed_form_rate_bound("hypercube-4"), Some(rate::hypercube_bound(4)));
        assert_eq!(closed_form_rate_bound("complete-k8"), Some(rate::complete_bound(8)));
        for generic in ["er-n20", "star-c4xk4", "cart-c5xk4", "bridged-k5", "petersen"] {
            assert_eq!(closed_form_rate_bound(generic), None, "{generic}");
        }
    }

    #[test]
    fn erdos_renyi_is_connected_for_many_seeds() {
        for seed in 0..20 {
            let g = erdos_renyi_connected(15, 10, seed);
            assert!(bfs::is_connected(&g));
            assert_eq!(g.num_vertices(), 15);
        }
    }
}
