//! Stable structural fingerprints for topologies, plans and fault sets.
//!
//! The fabric manager caches derived plans keyed by *(topology fingerprint,
//! fault-set fingerprint, tree subset)*; a fingerprint must therefore be
//! cheap, deterministic across runs, and sensitive to anything that changes
//! the derived plan. FNV-1a over the structural fields satisfies all three:
//! it is a pure integer fold (no hasher state, no randomization) and the
//! same bytes always produce the same 64-bit value.
//!
//! These are cache keys, not cryptographic digests: collisions are
//! astronomically unlikely for the handful of distinct topologies and fault
//! epochs a fabric sees, and a collision would only merge two cache slots,
//! never corrupt a plan (the cache stores full values).

use crate::plan::AllreducePlan;
use crate::recovery::FaultSet;
use pf_graph::{Graph, RootedTree};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a state, byte by byte (little-endian).
#[inline]
pub fn fnv1a_u64(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a slice of `u64`s, length-prefixed so `[a] ++ [b]` and `[a, b]`
/// hash differently.
#[inline]
pub fn fnv1a_slice(mut h: u64, words: &[u64]) -> u64 {
    h = fnv1a_u64(h, words.len() as u64);
    for &w in words {
        h = fnv1a_u64(h, w);
    }
    h
}

/// Structural fingerprint of a graph: vertex count plus every edge's
/// endpoint pair in edge-id order. Two graphs fingerprint equal iff they
/// have identical vertex counts and identical edge lists (same ids, same
/// endpoints) — exactly the notion of equality plan construction depends
/// on.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = fnv1a_u64(FNV_OFFSET, g.num_vertices() as u64);
    h = fnv1a_u64(h, g.num_edges() as u64);
    for (_, u, v) in g.edges() {
        h = fnv1a_u64(h, u as u64);
        h = fnv1a_u64(h, v as u64);
    }
    h
}

/// Fingerprint of one rooted tree: root plus the parent of every vertex in
/// vertex order.
fn tree_fold(mut h: u64, t: &RootedTree) -> u64 {
    h = fnv1a_u64(h, t.root() as u64);
    let mut edges: Vec<(u32, u32)> = t.edges().collect();
    edges.sort_unstable();
    h = fnv1a_u64(h, edges.len() as u64);
    for (child, parent) in edges {
        h = fnv1a_u64(h, child as u64);
        h = fnv1a_u64(h, parent as u64);
    }
    h
}

/// Structural fingerprint of a full plan: the graph plus every tree (root
/// and oriented edges) in tree order. Bandwidths and congestion are
/// *derived* from these fields, so they are deliberately excluded — two
/// plans with equal fingerprints price identically.
pub fn plan_fingerprint(plan: &AllreducePlan) -> u64 {
    let mut h = graph_fingerprint(&plan.graph);
    h = fnv1a_u64(h, plan.trees.len() as u64);
    for t in &plan.trees {
        h = tree_fold(h, t);
    }
    h
}

impl FaultSet {
    /// Set-semantics fingerprint: failed links and routers are sorted and
    /// deduplicated before folding, so `{3, 7}` and `{7, 3, 7}` fingerprint
    /// identically (they delete the same elements).
    pub fn fingerprint(&self) -> u64 {
        let mut edges: Vec<u64> = self.edges.iter().map(|&e| e as u64).collect();
        edges.sort_unstable();
        edges.dedup();
        let mut routers: Vec<u64> = self.routers.iter().map(|&r| r as u64).collect();
        routers.sort_unstable();
        routers.dedup();
        let h = fnv1a_slice(FNV_OFFSET, &edges);
        fnv1a_slice(h, &routers)
    }

    /// Set union with `other`, sorted and deduplicated — the canonical form
    /// the fabric manager accumulates fault deltas into.
    pub fn union(&self, other: &FaultSet) -> FaultSet {
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        edges.sort_unstable();
        edges.dedup();
        let mut routers = self.routers.clone();
        routers.extend_from_slice(&other.routers);
        routers.sort_unstable();
        routers.dedup();
        FaultSet { edges, routers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_fingerprint_is_stable_and_discriminating() {
        let a = AllreducePlan::low_depth(5).unwrap();
        let b = AllreducePlan::low_depth(5).unwrap();
        let c = AllreducePlan::low_depth(7).unwrap();
        assert_eq!(graph_fingerprint(&a.graph), graph_fingerprint(&b.graph));
        assert_ne!(graph_fingerprint(&a.graph), graph_fingerprint(&c.graph));
    }

    #[test]
    fn plan_fingerprint_sees_tree_subsets() {
        let plan = AllreducePlan::low_depth(5).unwrap();
        let full = plan_fingerprint(&plan);
        let sub = plan_fingerprint(&plan.tree_subset(&[0, 2]));
        assert_ne!(full, sub);
        // Same subset twice -> same fingerprint.
        assert_eq!(sub, plan_fingerprint(&plan.tree_subset(&[0, 2])));
    }

    #[test]
    fn fault_fingerprint_has_set_semantics() {
        let a = FaultSet::links(vec![3, 7]);
        let b = FaultSet::links(vec![7, 3, 7]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), FaultSet::links(vec![3]).fingerprint());
        assert_ne!(
            a.fingerprint(),
            FaultSet { edges: vec![3], routers: vec![7] }.fingerprint()
        );
        assert_ne!(FaultSet::none().fingerprint(), FaultSet::links(vec![0]).fingerprint());
    }

    #[test]
    fn union_is_sorted_and_deduplicated() {
        let a = FaultSet { edges: vec![9, 2], routers: vec![1] };
        let b = FaultSet { edges: vec![2, 4], routers: vec![] };
        let u = a.union(&b);
        assert_eq!(u.edges, vec![2, 4, 9]);
        assert_eq!(u.routers, vec![1]);
        assert_eq!(u.fingerprint(), b.union(&a).fingerprint());
    }
}
