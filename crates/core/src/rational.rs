//! Exact rational arithmetic for the bandwidth model.
//!
//! Algorithm 1 repeatedly divides link bandwidth by congestion counts and
//! subtracts the result; with floating point, the `argmin L(e)/C(e)` step
//! can mis-tie-break and the paper's exact claims ("aggregate bandwidth is
//! exactly `q·B/2`") become approximate. A small normalized `i128` rational
//! keeps the whole model exact.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A normalized rational number (`den > 0`, `gcd(|num|, den) = 1`).
///
/// Stored as `i128` internally: Algorithm 1 itself produces tame
/// denominators, but summing many heterogeneous bandwidths (e.g. the
/// optimal-split arithmetic over dozens of trees) can push intermediate
/// denominators past `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

impl Rational {
    /// Creates `num / den`, normalizing sign and reducing. Panics on a zero
    /// denominator.
    pub fn new(num: i64, den: i64) -> Self {
        Self::new_i128(num as i128, den as i128)
    }

    /// Creates `num / den` from `i128` parts.
    pub fn new_i128(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rational { num: sign * num / g, den: sign * den / g }
    }

    /// The integer `n`.
    pub const fn from_int(n: i64) -> Self {
        Rational { num: n as i128, den: 1 }
    }

    /// Zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// One.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Numerator (after normalization).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (positive after normalization).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Exact equality with an integer.
    pub fn is_int(&self, n: i64) -> bool {
        self.den == 1 && self.num == n as i128
    }

    /// Conversion to `f64` (for reporting only).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Reciprocal. Panics on zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new_i128(self.den, self.num)
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new_i128(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new_i128(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new_i128(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new_i128(self.num * rhs.den, self.den * rhs.num)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiplication can overflow even i128 once denominators
        // grow (e.g. sums over many heterogeneous bandwidths), so compare
        // by the continued-fraction expansion instead: equal integer
        // parts, then the comparison of the reciprocal remainders flips.
        let (mut a, mut b, mut c, mut d) = (self.num, self.den, other.num, other.den);
        let mut flipped = false;
        loop {
            let (qa, qc) = (a.div_euclid(b), c.div_euclid(d));
            if qa != qc {
                let ord = qa.cmp(&qc);
                return if flipped { ord.reverse() } else { ord };
            }
            let (ra, rc) = (a - qa * b, c - qc * d);
            match (ra == 0, rc == 0) {
                (true, true) => return Ordering::Equal,
                // No remainder on one side: it is the smaller fraction
                // (before flipping).
                (true, false) => {
                    return if flipped { Ordering::Greater } else { Ordering::Less }
                }
                (false, true) => {
                    return if flipped { Ordering::Less } else { Ordering::Greater }
                }
                (false, false) => {
                    // a/b vs c/d with equal floors: compare b/ra vs d/rc,
                    // reversed.
                    (a, b, c, d) = (b, ra, d, rc);
                    flipped = !flipped;
                }
            }
        }
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
        assert_eq!(Rational::new(7, 1).numer(), 7);
        assert_eq!(Rational::new(7, 1).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let half = Rational::new(1, 2);
        let third = Rational::new(1, 3);
        assert_eq!(half + third, Rational::new(5, 6));
        assert_eq!(half - third, Rational::new(1, 6));
        assert_eq!(half * third, Rational::new(1, 6));
        assert_eq!(half / third, Rational::new(3, 2));
        assert_eq!(half.recip(), Rational::from_int(2));
    }

    #[test]
    fn ordering() {
        let mut v = vec![
            Rational::new(3, 4),
            Rational::new(1, 2),
            Rational::new(2, 3),
            Rational::from_int(-1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Rational::from_int(-1),
                Rational::new(1, 2),
                Rational::new(2, 3),
                Rational::new(3, 4)
            ]
        );
    }

    #[test]
    fn many_term_sums_do_not_overflow() {
        // Regression: summing 64 bandwidths i/(i+1) overflowed the old
        // i64 representation (LCM of denominators ~1e27).
        let total = (1..=64)
            .map(|i| Rational::new(i, i + 1))
            .fold(Rational::ZERO, |a, b| a + b);
        assert!(total.is_positive());
        assert!(total > Rational::from_int(59) && total < Rational::from_int(64));
        // And the optimal split over them still partitions exactly.
        let bw: Vec<Rational> = (1..=64).map(|i| Rational::new(i, i + 1)).collect();
        let sizes = crate::perf::optimal_split(1 << 20, &bw);
        assert_eq!(sizes.iter().sum::<u64>(), 1 << 20);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(1, 2).to_string(), "1/2");
        assert_eq!(Rational::from_int(5).to_string(), "5");
        assert_eq!(Rational::new(-3, 6).to_string(), "-1/2");
    }

    #[test]
    fn assign_ops_and_predicates() {
        let mut x = Rational::ONE;
        x += Rational::new(1, 2);
        assert_eq!(x, Rational::new(3, 2));
        x -= Rational::from_int(2);
        assert_eq!(x, Rational::new(-1, 2));
        assert!(!x.is_positive());
        assert!(Rational::new(1, 7).is_positive());
        assert!(Rational::from_int(4).is_int(4));
        assert!(!Rational::new(9, 2).is_int(4));
        assert_eq!(x.to_f64(), -0.5);
    }
}
