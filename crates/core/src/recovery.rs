//! Degraded-plan rebuild after link/router faults.
//!
//! The paper's constructions assume a healthy `ER_q`; this module defines
//! what the allreduce falls back to when the fabric loses links or whole
//! routers mid-collective. Given an [`AllreducePlan`] and a set of failed
//! elements, [`rebuild_degraded`] produces a [`DegradedPlan`] on the
//! surviving subgraph:
//!
//! 1. Trees untouched by the faults survive verbatim (a spanning tree of
//!    the healthy graph whose edges all survive is a spanning tree of the
//!    subgraph).
//! 2. Broken trees are *repaired*: the surviving tree edges form a forest,
//!    which is completed to a spanning tree with the smallest-id surviving
//!    edges (union-find), keeping as much of the paper's structure as
//!    possible.
//! 3. Repairs are accepted greedily, in tree order, only while the
//!    degraded plan's worst-case link congestion stays within the healthy
//!    plan's Theorem 7.6 / 7.19 bound — a repair that would oversubscribe
//!    a link is dropped instead ("falling back to fewer trees").
//! 4. If nothing survives, a single BFS spanning tree of the subgraph is
//!    used (congestion 1 on any connected graph).
//!
//! Bandwidth on the degraded plan is re-derived with Algorithm 1, so the
//! loss relative to the healthy aggregate is quantified exactly (in
//! rational arithmetic). Router faults shrink the vertex set: the
//! collective then runs among the survivors, and the [`DegradedPlan`]
//! carries the id maps between the two labelings.
//!
//! Everything here is deterministic: same plan + same fault set gives the
//! identical degraded plan, which the fault-injection property suites rely
//! on.

use crate::congestion::assign_unit_bandwidth;
use crate::perf;
use crate::plan::AllreducePlan;
use crate::rational::Rational;
use pf_graph::dsu::Dsu;
use pf_graph::{bfs, subgraph, EdgeId, Graph, RootedTree, VertexId};

/// A set of failed network elements, in the healthy graph's labeling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    /// Failed undirected links (original edge ids).
    pub edges: Vec<EdgeId>,
    /// Failed routers (original vertex ids). A failed router also kills
    /// every incident link.
    pub routers: Vec<VertexId>,
}

impl FaultSet {
    /// No faults.
    pub fn none() -> Self {
        FaultSet::default()
    }

    /// Link faults only.
    pub fn links(edges: Vec<EdgeId>) -> Self {
        FaultSet { edges, routers: Vec::new() }
    }

    /// True when nothing failed.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty() && self.routers.is_empty()
    }
}

/// Why a degraded plan could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildError {
    /// The surviving subgraph is disconnected — no spanning tree exists,
    /// so the collective cannot reach every surviving router.
    Partitioned {
        /// Number of connected components after the faults.
        components: u32,
    },
    /// Every router failed (or the plan had none to begin with).
    NoSurvivors,
}

impl std::fmt::Display for RebuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebuildError::Partitioned { components } => {
                write!(f, "faults partition the network into {components} components")
            }
            RebuildError::NoSurvivors => write!(f, "no surviving routers"),
        }
    }
}

impl std::error::Error for RebuildError {}

/// How each degraded-plan tree relates to the healthy plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeOrigin {
    /// The healthy plan's tree at this index survived untouched.
    Intact(usize),
    /// The healthy plan's tree at this index was re-completed from its
    /// surviving edge forest.
    Repaired(usize),
    /// A fresh BFS spanning tree (used only when nothing else survived).
    Fallback,
}

/// A rebuilt allreduce plan on the surviving subgraph.
#[derive(Debug, Clone)]
pub struct DegradedPlan {
    /// The surviving topology (renumbered ids; see the maps below).
    pub graph: Graph,
    /// Spanning trees of [`DegradedPlan::graph`], Algorithm 1-weighted.
    pub trees: Vec<RootedTree>,
    /// Provenance of each tree, parallel to `trees`.
    pub origins: Vec<TreeOrigin>,
    /// Healthy-plan trees dropped because their repair would exceed the
    /// congestion bound.
    pub dropped: usize,
    /// Per-tree bandwidth from Algorithm 1 on the degraded graph.
    pub bandwidths: Vec<Rational>,
    /// Aggregate degraded bandwidth `Σ B_i`.
    pub aggregate: Rational,
    /// The healthy plan's aggregate, for loss accounting.
    pub healthy_aggregate: Rational,
    /// Worst-case link congestion bound inherited from the healthy plan
    /// (Theorem 7.6 / 7.19); the rebuild never exceeds it.
    pub congestion_bound: u32,
    /// Per-edge congestion on the degraded graph (degraded edge ids).
    pub edge_congestion: Vec<u32>,
    /// `max(edge_congestion)` — guaranteed `<= congestion_bound`.
    pub max_congestion: u32,
    /// Maximum tree depth of the degraded plan.
    pub depth: u32,
    /// `orig_vertex[new] = old` for surviving routers.
    pub orig_vertex: Vec<VertexId>,
    /// `new_vertex[old] = Some(new)` for survivors, `None` for dead routers.
    pub new_vertex: Vec<Option<VertexId>>,
    /// `orig_edge[new] = old` for surviving links.
    pub orig_edge: Vec<EdgeId>,
    /// `new_edge[old] = Some(new)` for survivors, `None` for dead links.
    pub new_edge: Vec<Option<EdgeId>>,
}

impl DegradedPlan {
    /// Fraction of the healthy aggregate bandwidth the degraded plan
    /// retains (1 means no loss).
    pub fn bandwidth_retention(&self) -> Rational {
        if self.healthy_aggregate == Rational::ZERO {
            return Rational::ONE;
        }
        self.aggregate / self.healthy_aggregate
    }

    /// Theorem 5.1 optimal sub-vector split of an `m`-element vector over
    /// the degraded trees.
    pub fn split(&self, m: u64) -> Vec<u64> {
        perf::optimal_split(m, &self.bandwidths)
    }

    /// Cycle-level runtime prediction on the degraded plan (the same
    /// fill-plus-drain model as `AllreducePlan::predicted_cycles`).
    pub fn predicted_cycles(&self, m: u64, hop_latency: u64) -> u64 {
        let sizes = self.split(m);
        self.trees
            .iter()
            .zip(&sizes)
            .zip(&self.bandwidths)
            .map(|((t, &mi), &bi)| perf::predicted_tree_cycles(t.depth(), hop_latency, mi, bi))
            .max()
            .unwrap_or(0)
    }

    /// Number of healthy-plan trees that survived untouched.
    pub fn intact(&self) -> usize {
        self.origins.iter().filter(|o| matches!(o, TreeOrigin::Intact(_))).count()
    }

    /// Number of healthy-plan trees that were repaired.
    pub fn repaired(&self) -> usize {
        self.origins.iter().filter(|o| matches!(o, TreeOrigin::Repaired(_))).count()
    }

    /// Re-packages the degraded graph and tree set as a schedulable
    /// [`AllreducePlan`] (Algorithm 1 re-derives the same bandwidths).
    /// `q` is carried over from the healthy plan for labeling only; the
    /// fabric manager uses this to run waves on the surviving subgraph.
    pub fn to_plan(&self, q: u64) -> AllreducePlan {
        AllreducePlan::from_tree_set(
            q,
            crate::plan::Solution::Constructed("degraded"),
            self.graph.clone(),
            self.trees.clone(),
        )
    }
}

/// Rebuilds `plan` on the subgraph surviving `faults`.
///
/// See the module docs for the strategy. Fails only when the faults
/// disconnect the surviving routers ([`RebuildError::Partitioned`]) or
/// kill all of them ([`RebuildError::NoSurvivors`]).
pub fn rebuild_degraded(
    plan: &AllreducePlan,
    faults: &FaultSet,
) -> Result<DegradedPlan, RebuildError> {
    let g = &plan.graph;

    // Surviving subgraph: vertices first, then the explicitly failed links
    // that are still present.
    let vd = subgraph::vertex_deleted(g, &faults.routers);
    if vd.graph.num_vertices() == 0 {
        return Err(RebuildError::NoSurvivors);
    }
    let edges_in_vd: Vec<EdgeId> =
        faults.edges.iter().filter_map(|&e| vd.new_edge[e as usize]).collect();
    let ed = subgraph::edge_deleted(&vd.graph, &edges_in_vd);
    let degraded = ed.graph;

    if !bfs::is_connected(&degraded) {
        let (_, components) = bfs::connected_components(&degraded);
        return Err(RebuildError::Partitioned { components });
    }

    // Compose the id maps (healthy <-> degraded).
    let orig_vertex = vd.orig_vertex.clone();
    let new_vertex = vd.new_vertex.clone();
    let orig_edge: Vec<EdgeId> =
        ed.orig_edge.iter().map(|&mid| vd.orig_edge[mid as usize]).collect();
    let mut new_edge = vec![None; g.num_edges() as usize];
    for (new, &old) in orig_edge.iter().enumerate() {
        new_edge[old as usize] = Some(new as EdgeId);
    }

    let n_new = degraded.num_vertices();
    let identity_vertices = n_new == g.num_vertices();

    // Classify and translate each healthy tree.
    let mut candidates: Vec<(RootedTree, TreeOrigin)> = Vec::new();
    for (ti, tree) in plan.trees.iter().enumerate() {
        // Surviving tree edges, as degraded edge ids.
        let mut forest: Vec<EdgeId> = Vec::new();
        let mut broken = !identity_vertices; // router loss breaks every spanning tree
        for (child, parent) in tree.edges() {
            let old = g.edge_id(child, parent).expect("plan tree edge must be physical");
            match new_edge[old as usize] {
                Some(id) => forest.push(id),
                None => broken = true,
            }
        }
        if !broken {
            candidates.push((tree.clone(), TreeOrigin::Intact(ti)));
            continue;
        }
        // Repair: complete the surviving forest to a spanning tree, rooted
        // at the original root when it survived.
        let root = new_vertex[tree.root() as usize].unwrap_or(0);
        let repaired = complete_forest(&degraded, &forest, root);
        candidates.push((repaired, TreeOrigin::Repaired(ti)));
    }

    // Greedy acceptance under the healthy congestion bound: intact trees
    // first (their combined congestion is a sub-sum of the healthy plan's,
    // hence within the bound), then repairs in tree order.
    let bound = plan.max_congestion.max(1);
    let mut congestion = vec![0u32; degraded.num_edges() as usize];
    let mut trees: Vec<RootedTree> = Vec::new();
    let mut origins: Vec<TreeOrigin> = Vec::new();
    let mut dropped = 0usize;
    for pass in [true, false] {
        for (tree, origin) in &candidates {
            if matches!(origin, TreeOrigin::Intact(_)) != pass {
                continue;
            }
            let ids = tree.edge_ids(&degraded);
            if ids.iter().any(|&e| congestion[e as usize] + 1 > bound) {
                dropped += 1;
                continue;
            }
            for &e in &ids {
                congestion[e as usize] += 1;
            }
            trees.push(tree.clone());
            origins.push(*origin);
        }
    }

    // Last resort: a fresh BFS spanning tree (congestion 1 fits any bound).
    if trees.is_empty() {
        let (_, parents) = bfs::tree(&degraded, 0);
        let t = RootedTree::from_parents(0, parents)
            .expect("BFS of a connected graph yields a spanning tree");
        trees.push(t);
        origins.push(TreeOrigin::Fallback);
    }

    let a = assign_unit_bandwidth(&degraded, &trees);
    let aggregate = a.aggregate();
    let depth = trees.iter().map(|t| t.depth()).max().unwrap_or(0);
    Ok(DegradedPlan {
        graph: degraded,
        trees,
        origins,
        dropped,
        bandwidths: a.per_tree,
        aggregate,
        healthy_aggregate: plan.aggregate,
        congestion_bound: bound,
        edge_congestion: a.per_edge,
        max_congestion: a.max_congestion,
        depth,
        orig_vertex,
        new_vertex,
        orig_edge,
        new_edge,
    })
}

/// Incrementally extends a previous degraded plan with a new batch of
/// link faults, recomputing only the trees `delta` actually touches.
///
/// `prev` must be `rebuild_degraded(plan, prev_faults)` (or a previous
/// `extend_degraded` result, which is the same thing by induction). The
/// result is **structurally identical** to
/// `rebuild_degraded(plan, &prev_faults.union(delta))` — the incremental
/// path is an optimization, never a semantic fork — which the equivalence
/// suite in `tests/incremental_repair.rs` asserts field by field.
///
/// Returns `None` when the patch would be unsound and the caller must fall
/// back to the full rebuild:
///
/// * `delta` kills routers — the vertex labeling changes, so no previous
///   tree can be reused verbatim;
/// * `prev` resorted to the BFS fallback — there is no per-tree candidate
///   structure to patch;
/// * the combined faults disconnect (or would fully rebuild) the subgraph —
///   the full path owns error reporting.
///
/// Why reuse is sound: with an unchanged router set the surviving vertex
/// labeling is unchanged, and a previously repaired tree was built by
/// Kruskal-style completion (forest first, then smallest-id edges). If all
/// of its edges survive `delta`, re-running the completion on the smaller
/// graph walks the same edges in the same relative order and selects the
/// same set — deleting never-selected edges cannot change a greedy
/// smallest-id selection — so cloning the previous tree equals recomputing
/// it. A candidate that lost an edge is recomputed from the healthy tree's
/// surviving forest, exactly as the full rebuild would.
pub fn extend_degraded(
    plan: &AllreducePlan,
    prev_faults: &FaultSet,
    prev: &DegradedPlan,
    delta: &FaultSet,
) -> Option<DegradedPlan> {
    if !delta.routers.is_empty() || !prev_faults.routers.is_empty() {
        return None;
    }
    if prev.origins.iter().any(|o| matches!(o, TreeOrigin::Fallback)) {
        return None;
    }
    let g = &plan.graph;
    let combined = prev_faults.union(delta);

    // Same subgraph chain as the full rebuild. With no router faults the
    // vertex-deleted stage is the identity, so this is one edge filter.
    let vd = subgraph::vertex_deleted(g, &combined.routers);
    if vd.graph.num_vertices() == 0 {
        return None;
    }
    let edges_in_vd: Vec<EdgeId> =
        combined.edges.iter().filter_map(|&e| vd.new_edge[e as usize]).collect();
    let ed = subgraph::edge_deleted(&vd.graph, &edges_in_vd);
    let degraded = ed.graph;
    if !bfs::is_connected(&degraded) {
        return None;
    }

    let orig_vertex = vd.orig_vertex.clone();
    let new_vertex = vd.new_vertex.clone();
    let orig_edge: Vec<EdgeId> =
        ed.orig_edge.iter().map(|&mid| vd.orig_edge[mid as usize]).collect();
    let mut new_edge = vec![None; g.num_edges() as usize];
    for (new, &old) in orig_edge.iter().enumerate() {
        new_edge[old as usize] = Some(new as EdgeId);
    }
    let identity_vertices = degraded.num_vertices() == g.num_vertices();
    debug_assert!(identity_vertices, "link-only faults keep the vertex set");

    // Previous candidate per healthy tree index. Trees the previous round
    // dropped have no candidate and are recomputed from scratch below.
    let mut prev_tree: Vec<Option<&RootedTree>> = vec![None; plan.trees.len()];
    for (t, o) in prev.trees.iter().zip(&prev.origins) {
        match o {
            TreeOrigin::Intact(i) | TreeOrigin::Repaired(i) => prev_tree[*i] = Some(t),
            TreeOrigin::Fallback => unreachable!("fallback plans bail out above"),
        }
    }

    let mut candidates: Vec<(RootedTree, TreeOrigin)> = Vec::new();
    for (ti, tree) in plan.trees.iter().enumerate() {
        let mut forest: Vec<EdgeId> = Vec::new();
        let mut broken = !identity_vertices;
        for (child, parent) in tree.edges() {
            let old = g.edge_id(child, parent).expect("plan tree edge must be physical");
            match new_edge[old as usize] {
                Some(id) => forest.push(id),
                None => broken = true,
            }
        }
        if !broken {
            candidates.push((tree.clone(), TreeOrigin::Intact(ti)));
            continue;
        }
        // A previous candidate whose edges all survive `delta` is reused
        // verbatim (see the soundness argument above). `edge_id` on the
        // degraded graph doubles as the survival check because a candidate
        // tree edge is physical in the previous degraded graph, and the
        // new graph is the previous one minus `delta`.
        if let Some(pt) = prev_tree[ti] {
            if pt.edges().all(|(c, p)| degraded.edge_id(c, p).is_some()) {
                candidates.push(((*pt).clone(), TreeOrigin::Repaired(ti)));
                continue;
            }
        }
        let root = new_vertex[tree.root() as usize].unwrap_or(0);
        let repaired = complete_forest(&degraded, &forest, root);
        candidates.push((repaired, TreeOrigin::Repaired(ti)));
    }

    // Identical greedy acceptance to the full rebuild: intact first, then
    // repairs, in tree order, under the healthy congestion bound.
    let bound = plan.max_congestion.max(1);
    let mut congestion = vec![0u32; degraded.num_edges() as usize];
    let mut trees: Vec<RootedTree> = Vec::new();
    let mut origins: Vec<TreeOrigin> = Vec::new();
    let mut dropped = 0usize;
    for pass in [true, false] {
        for (tree, origin) in &candidates {
            if matches!(origin, TreeOrigin::Intact(_)) != pass {
                continue;
            }
            let ids = tree.edge_ids(&degraded);
            if ids.iter().any(|&e| congestion[e as usize] + 1 > bound) {
                dropped += 1;
                continue;
            }
            for &e in &ids {
                congestion[e as usize] += 1;
            }
            trees.push(tree.clone());
            origins.push(*origin);
        }
    }
    if trees.is_empty() {
        let (_, parents) = bfs::tree(&degraded, 0);
        let t = RootedTree::from_parents(0, parents)
            .expect("BFS of a connected graph yields a spanning tree");
        trees.push(t);
        origins.push(TreeOrigin::Fallback);
    }

    let a = assign_unit_bandwidth(&degraded, &trees);
    let aggregate = a.aggregate();
    let depth = trees.iter().map(|t| t.depth()).max().unwrap_or(0);
    Some(DegradedPlan {
        graph: degraded,
        trees,
        origins,
        dropped,
        bandwidths: a.per_tree,
        aggregate,
        healthy_aggregate: plan.aggregate,
        congestion_bound: bound,
        edge_congestion: a.per_edge,
        max_congestion: a.max_congestion,
        depth,
        orig_vertex,
        new_vertex,
        orig_edge,
        new_edge,
    })
}

/// Completes `forest` (edge ids of `g`, guaranteed acyclic) to a spanning
/// tree of the connected graph `g`, preferring the forest edges and then
/// the smallest-id edges, and returns it rooted at `root`.
fn complete_forest(g: &Graph, forest: &[EdgeId], root: VertexId) -> RootedTree {
    let mut dsu = Dsu::new(g.num_vertices());
    let mut selected = vec![false; g.num_edges() as usize];
    for &e in forest {
        let (u, v) = g.endpoints(e);
        if dsu.union(u, v) {
            selected[e as usize] = true;
        }
    }
    for (e, u, v) in g.edges() {
        if dsu.components() == 1 {
            break;
        }
        if dsu.union(u, v) {
            selected[e as usize] = true;
        }
    }
    debug_assert_eq!(dsu.components(), 1, "caller guarantees g is connected");

    // Orient the selected edges away from the root.
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); g.num_vertices() as usize];
    for (e, u, v) in g.edges() {
        if selected[e as usize] {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
    }
    let mut parent = vec![None; g.num_vertices() as usize];
    let mut seen = vec![false; g.num_vertices() as usize];
    let mut queue = std::collections::VecDeque::from([root]);
    seen[root as usize] = true;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u as usize] {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                queue.push_back(v);
            }
        }
    }
    RootedTree::from_parents(root, parent).expect("selected edges span the graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::AllreducePlan;

    #[test]
    fn no_faults_keeps_every_tree_intact() {
        let plan = AllreducePlan::low_depth(7).unwrap();
        let d = rebuild_degraded(&plan, &FaultSet::none()).unwrap();
        assert_eq!(d.trees.len(), plan.trees.len());
        assert_eq!(d.intact(), plan.trees.len());
        assert_eq!(d.dropped, 0);
        assert_eq!(d.aggregate, plan.aggregate);
        assert_eq!(d.bandwidth_retention(), Rational::ONE);
        assert_eq!(d.max_congestion, plan.max_congestion);
    }

    #[test]
    fn single_link_fault_keeps_congestion_bounded() {
        let plan = AllreducePlan::low_depth(7).unwrap();
        for e in [0u32, 5, 17, 100] {
            let d = rebuild_degraded(&plan, &FaultSet::links(vec![e])).unwrap();
            assert!(d.max_congestion <= plan.max_congestion, "edge {e}");
            assert!(!d.trees.is_empty());
            // Every tree spans the degraded graph.
            for t in &d.trees {
                t.validate_spanning(&d.graph).unwrap();
            }
            // The degraded edge count reflects exactly one loss.
            assert_eq!(d.graph.num_edges() + 1, plan.graph.num_edges());
            assert!(d.aggregate <= plan.aggregate);
            assert!(d.aggregate > Rational::ZERO);
        }
    }

    #[test]
    fn edge_disjoint_plan_survives_or_drops() {
        let plan = AllreducePlan::edge_disjoint(7, 30, 3).unwrap();
        let d = rebuild_degraded(&plan, &FaultSet::links(vec![0])).unwrap();
        // Congestion-1 bound must be preserved even through repairs.
        assert!(d.max_congestion <= 1);
        for t in &d.trees {
            t.validate_spanning(&d.graph).unwrap();
        }
    }

    #[test]
    fn router_fault_rebuilds_on_survivors() {
        let plan = AllreducePlan::low_depth(5).unwrap();
        let dead = 3u32;
        let d =
            rebuild_degraded(&plan, &FaultSet { edges: vec![], routers: vec![dead] }).unwrap();
        assert_eq!(d.graph.num_vertices() + 1, plan.graph.num_vertices());
        assert_eq!(d.new_vertex[dead as usize], None);
        // All healthy trees break on a router loss; everything is repaired
        // or dropped, never intact.
        assert_eq!(d.intact(), 0);
        assert!(!d.trees.is_empty());
        for t in &d.trees {
            t.validate_spanning(&d.graph).unwrap();
        }
        assert!(d.max_congestion <= plan.max_congestion.max(1));
    }

    #[test]
    fn isolating_faults_report_partition() {
        let plan = AllreducePlan::single_tree(3).unwrap();
        // Kill every link of router 0: the survivors stay connected
        // (diameter 2), but router 0 is cut off.
        let incident: Vec<u32> = plan
            .graph
            .neighbors_with_edges(0)
            .iter()
            .map(|&(_, e)| e)
            .collect();
        let err = rebuild_degraded(&plan, &FaultSet::links(incident)).unwrap_err();
        assert!(matches!(err, RebuildError::Partitioned { .. }), "{err}");
    }

    #[test]
    fn rebuild_is_deterministic() {
        let plan = AllreducePlan::low_depth(7).unwrap();
        let f = FaultSet::links(vec![12, 40]);
        let a = rebuild_degraded(&plan, &f).unwrap();
        let b = rebuild_degraded(&plan, &f).unwrap();
        assert_eq!(a.trees, b.trees);
        assert_eq!(a.origins, b.origins);
        assert_eq!(a.bandwidths, b.bandwidths);
    }
}
