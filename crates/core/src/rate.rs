//! Exact allreduce rate upper bounds for arbitrary substrates.
//!
//! *On the Computation Rate of All-Reduce* (PAPERS.md) studies how fast an
//! allreduce can possibly run on a given capacitated network, independent
//! of any particular schedule. Specialized to this repo's model — unit
//! full-duplex links, one spanning-tree set per plan, Algorithm 1
//! water-filling — two information-style cut arguments cap the aggregate
//! rate `Σ B_i` of *any* tree set:
//!
//! * **edge budget** (tree-packing / Nash–Williams shape): every spanning
//!   tree uses at least `n − 1` of the `|E|` unit links and no link can
//!   carry more than unit load in total, so `Σ B_i ≤ |E| / (n − 1)`;
//! * **global min cut** (cut-set shape): every spanning tree crosses every
//!   vertex cut `(S, V∖S)` at least once, and the cut's `|∂S|` links carry
//!   at most `|∂S|` total load, so `Σ B_i ≤ |∂S|` for every cut — i.e.
//!   `Σ B_i ≤ λ(G)`, the edge connectivity. Minimizing over singleton cuts
//!   gives the familiar `δ_min`; the full min cut is never weaker and is
//!   strictly stronger on graphs with a sparse bottleneck that no single
//!   vertex sees (see `lopsided_barbell_cut_beats_the_degree_bound`).
//!
//! [`allreduce_rate_bound`] computes `min` of the two in exact rationals
//! ([`Rational`]) via a deterministic Stoer–Wagner min-cut ([`global_min_cut`]).
//! It refines [`crate::perf::substrate_bandwidth_bound`]
//! (`min(|E|/(n−1), δ_min)`): always at or below it, so every invariant the
//! repo already asserts against the looser bound transfers for free.
//!
//! Known substrate families have closed forms ([`polarfly_bound`],
//! [`torus_bound`], [`hypercube_bound`], [`complete_bound`]); the property
//! harness asserts the generic computation reproduces each of them, and
//! `tests/paper_claims.rs` holds `achieved ≤ bound` as a standing
//! invariant for every construction backend × catalog substrate. On
//! PolarFly the generic bound lands *exactly* on the Corollary 7.1 optimum
//! `(q + 1)/2` — so the paper's edge-disjoint Hamiltonian plans are
//! certified rate-optimal ([`RateBound::gap`] = 1), and the audit prices
//! how close every other construction comes. Degenerate substrates are
//! typed [`RateError`]s, never a bogus bound.

use crate::rational::Rational;
use pf_graph::{bfs, Graph};

/// Why a rate bound could not be computed. Mirrors the degenerate cases of
/// [`crate::construction::ConstructError`]: where no plan can exist, no
/// finite positive bound exists either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RateError {
    /// The graph has no vertices.
    EmptyGraph,
    /// A single vertex: the collective is a no-op — there is no link whose
    /// rate the bound could cap, and reporting `0` (or `∞`) would poison
    /// `achieved ≤ bound` comparisons.
    SingleVertex,
    /// No spanning tree exists, so no allreduce plan and no meaningful
    /// rate: the min cut is 0 and the bound would be vacuous.
    Disconnected {
        /// Number of connected components.
        components: u32,
    },
}

impl std::fmt::Display for RateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RateError::EmptyGraph => write!(f, "rate bound undefined: graph has no vertices"),
            RateError::SingleVertex => {
                write!(f, "rate bound undefined: single vertex, no links to bound")
            }
            RateError::Disconnected { components } => {
                write!(f, "rate bound undefined: graph is disconnected ({components} components)")
            }
        }
    }
}

impl std::error::Error for RateError {}

/// Which of the two arguments binds the final bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateLimiter {
    /// `|E| / (n − 1)` — the network runs out of total link budget before
    /// any single cut saturates.
    EdgeBudget,
    /// `λ(G)` — a sparsest cut saturates first.
    MinCut,
}

/// The exact allreduce rate upper bound for one substrate, with both
/// constituent terms kept for reporting (the `topo-compare` table and
/// `docs/RATES.md` print them side by side).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateBound {
    /// The edge-budget term `|E| / (n − 1)`.
    pub edge_budget: Rational,
    /// The global min cut `λ(G)` (unit capacities).
    pub min_cut: u64,
    /// Minimum degree `δ_min` — the singleton-cut relaxation, kept so
    /// reports can show when the true min cut tightens it.
    pub min_degree: u32,
    /// `min(edge_budget, min_cut)` — the bound every plan must respect.
    pub bound: Rational,
}

impl RateBound {
    /// Which term binds ([`RateLimiter::EdgeBudget`] on ties — the edge
    /// budget is the generic Nash–Williams-shape argument, so ties report
    /// the structure-blind reason).
    #[must_use]
    pub fn limiter(&self) -> RateLimiter {
        if self.edge_budget <= Rational::from_int(self.min_cut as i64) {
            RateLimiter::EdgeBudget
        } else {
            RateLimiter::MinCut
        }
    }

    /// `true` iff `achieved` respects this bound — the standing invariant,
    /// in exact rationals.
    #[must_use]
    pub fn certifies(&self, achieved: Rational) -> bool {
        achieved <= self.bound
    }

    /// The optimality gap `achieved / bound ∈ [0, 1]` as an exact
    /// rational (1 means the plan is certified rate-optimal). Callers
    /// wanting a float rendering use [`Rational::to_f64`] on the result.
    #[must_use]
    pub fn gap(&self, achieved: Rational) -> Rational {
        assert!(self.bound.is_positive(), "a connected substrate has a positive bound");
        achieved / self.bound
    }
}

/// The exact rate upper bound `min(|E|/(n−1), λ(G))` for `g`, or a typed
/// [`RateError`] on degenerate substrates (empty, single-vertex,
/// disconnected).
pub fn allreduce_rate_bound(g: &Graph) -> Result<RateBound, RateError> {
    match g.num_vertices() {
        0 => return Err(RateError::EmptyGraph),
        1 => return Err(RateError::SingleVertex),
        _ => {}
    }
    let (_, components) = bfs::connected_components(g);
    if components != 1 {
        return Err(RateError::Disconnected { components });
    }
    let n = g.num_vertices() as i64;
    let edge_budget = Rational::new(g.num_edges() as i64, n - 1);
    let min_cut = global_min_cut(g);
    let bound = edge_budget.min(Rational::from_int(min_cut as i64));
    Ok(RateBound { edge_budget, min_cut, min_degree: g.min_degree(), bound })
}

/// Global minimum edge cut `λ(G)` of a connected graph with unit
/// capacities, by the Stoer–Wagner algorithm (O(n³), exact integer
/// arithmetic, deterministic tie-breaking — lowest index wins among
/// equally tight vertices, so repeated runs return identical phase
/// orders).
///
/// Callers must hand in a connected graph with at least two vertices
/// (checked by [`allreduce_rate_bound`]); on a disconnected graph the
/// result would be 0, which this module treats as an error upstream.
#[must_use]
pub fn global_min_cut(g: &Graph) -> u64 {
    let n = g.num_vertices() as usize;
    assert!(n >= 2, "min cut needs at least two vertices");
    // Dense weight matrix of merged super-vertices; unit capacity per edge.
    let mut w = vec![vec![0u64; n]; n];
    for (_, u, v) in g.edges() {
        w[u as usize][v as usize] += 1;
        w[v as usize][u as usize] += 1;
    }
    let mut vertices: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while vertices.len() > 1 {
        let m = vertices.len();
        // One minimum-cut phase: grow A from the first active vertex,
        // always adding the most tightly connected remaining vertex.
        let mut added = vec![false; m];
        let mut tightness = vec![0u64; m];
        let mut order = Vec::with_capacity(m);
        for _ in 0..m {
            let mut sel = usize::MAX;
            for i in 0..m {
                if !added[i] && (sel == usize::MAX || tightness[i] > tightness[sel]) {
                    sel = i;
                }
            }
            added[sel] = true;
            order.push(sel);
            for i in 0..m {
                if !added[i] {
                    tightness[i] += w[vertices[sel]][vertices[i]];
                }
            }
        }
        // The cut of the phase separates the last-added vertex `t` from
        // the rest; its tightness froze at selection time, so it equals
        // the full cut weight. Then merge `t` into the second-to-last `s`.
        let (s_i, t_i) = (order[m - 2], order[m - 1]);
        best = best.min(tightness[t_i]);
        let (s, t) = (vertices[s_i], vertices[t_i]);
        for &v in &vertices {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        vertices.remove(t_i);
    }
    best
}

/// Closed form for PolarFly `ER_q`: the Corollary 7.1 optimum
/// `(q + 1)/2`. The edge budget `|E|/(n−1) = q(q+1)²/2 / (q² + q)` reduces
/// to exactly this, and the min cut `λ = q` (the quadric degree) sits
/// above it, so the generic computation reproduces the paper's bound —
/// asserted in the harness. The Singer labeling `S_q` is isomorphic
/// (Theorem 6.6), so the same closed form covers both catalogs.
#[must_use]
pub fn polarfly_bound(q: u64) -> Rational {
    Rational::new(q as i64 + 1, 2)
}

/// Closed form for the `d`-cube (`d ≥ 1`): `d·2^(d−1) / (2^d − 1)` — the
/// edge budget, which sits strictly below the min cut `λ = d`.
#[must_use]
pub fn hypercube_bound(d: u32) -> Rational {
    assert!((1..63).contains(&d), "hypercube dimension out of range");
    Rational::new_i128((d as i128) << (d - 1), (1i128 << d) - 1)
}

/// Closed form for the complete graph `K_n` (`n ≥ 2`): `n/2` — the edge
/// budget `n(n−1)/2 / (n−1)`; the min cut `λ = n − 1` only binds at
/// `n = 2`, where both terms equal 1 (= 2/2, so one formula covers all n).
#[must_use]
pub fn complete_bound(n: u32) -> Rational {
    assert!(n >= 2, "K_n needs n >= 2");
    Rational::new(n as i64, 2)
}

/// Closed form for the torus with the given extents (each `≥ 3`, matching
/// [`pf_topo::torus::Torus`]): `k·n / (n − 1)` for `k` dimensions and
/// `n = ∏ extents` vertices — the edge budget (`|E| = k·n`), strictly
/// below the min cut `λ = 2k` whenever `n > 2`.
#[must_use]
pub fn torus_bound(dims: &[u32]) -> Rational {
    assert!(!dims.is_empty() && dims.iter().all(|&k| k >= 3), "extents must be >= 3");
    let n: i64 = dims.iter().map(|&k| k as i64).product();
    Rational::new(dims.len() as i64 * n, n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::builders;

    #[test]
    fn degenerate_graphs_are_typed_errors() {
        assert_eq!(allreduce_rate_bound(&Graph::new(0)).unwrap_err(), RateError::EmptyGraph);
        assert_eq!(allreduce_rate_bound(&Graph::new(1)).unwrap_err(), RateError::SingleVertex);
        let mut split = Graph::new(4);
        split.add_edge(0, 1);
        split.add_edge(2, 3);
        assert_eq!(
            allreduce_rate_bound(&split).unwrap_err(),
            RateError::Disconnected { components: 2 }
        );
        // Display text is stable (the harness matches on it in failure
        // messages).
        assert!(RateError::SingleVertex.to_string().contains("single vertex"));
    }

    #[test]
    fn min_cut_on_known_graphs() {
        assert_eq!(global_min_cut(&builders::path(5)), 1);
        assert_eq!(global_min_cut(&builders::cycle(6)), 2);
        assert_eq!(global_min_cut(&builders::complete(6)), 5);
        assert_eq!(global_min_cut(&builders::hypercube(4)), 4);
        assert_eq!(global_min_cut(&builders::star(7)), 1);
        // Two K4s joined by one bridge: the bridge is the min cut.
        let g = crate::substrates::bridged_cliques(4);
        assert_eq!(global_min_cut(&g), 1);
    }

    #[test]
    fn min_cut_two_vertices() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        assert_eq!(global_min_cut(&g), 1);
        let b = allreduce_rate_bound(&g).unwrap();
        assert_eq!(b.bound, Rational::ONE);
        assert_eq!(b.limiter(), RateLimiter::EdgeBudget); // tie reports the edge budget
    }

    #[test]
    fn lopsided_barbell_cut_beats_the_degree_bound() {
        // Two K5s joined by TWO bridges: δ_min = 4 (every vertex sits in a
        // K5; the bridge endpoints have degree 5), |E|/(n−1) = 22/9 > 2,
        // but the min cut is the 2-edge waist. The old
        // substrate_bandwidth_bound = min(22/9, 4) = 22/9 misses it; the
        // rate bound finds 2.
        let mut g = Graph::new(10);
        for side in [0u32, 5] {
            for u in side..side + 5 {
                for v in u + 1..side + 5 {
                    g.add_edge(u, v);
                }
            }
        }
        g.add_edge(0, 5);
        g.add_edge(1, 6);
        let b = allreduce_rate_bound(&g).unwrap();
        assert_eq!(b.min_cut, 2);
        assert_eq!(b.min_degree, 4);
        assert_eq!(b.edge_budget, Rational::new(22, 9));
        assert_eq!(b.bound, Rational::from_int(2));
        assert_eq!(b.limiter(), RateLimiter::MinCut);
        assert!(b.bound < crate::perf::substrate_bandwidth_bound(&g));
    }

    #[test]
    fn rate_bound_refines_the_substrate_bound() {
        // λ ≤ δ_min always, so the rate bound never exceeds the
        // substrate-generic bound — on any graph.
        for g in [
            builders::cycle(7),
            builders::complete(9),
            builders::hypercube(3),
            builders::petersen(),
            builders::star(6),
            crate::substrates::erdos_renyi_connected(18, 25, 3),
            crate::substrates::bridged_cliques(5),
        ] {
            let b = allreduce_rate_bound(&g).unwrap();
            assert!(b.bound <= crate::perf::substrate_bandwidth_bound(&g));
            assert!(b.min_cut <= b.min_degree as u64);
            assert!(b.bound.is_positive());
        }
    }

    #[test]
    fn closed_forms_match_the_generic_computation() {
        for q in [3u64, 5, 7, 9] {
            let pf = pf_topo::PolarFly::new(q);
            assert_eq!(allreduce_rate_bound(pf.graph()).unwrap().bound, polarfly_bound(q), "q={q}");
            let s = pf_topo::Singer::new(q);
            assert_eq!(
                allreduce_rate_bound(s.graph()).unwrap().bound,
                polarfly_bound(q),
                "singer q={q}"
            );
        }
        for d in [1u32, 2, 3, 4, 5] {
            assert_eq!(
                allreduce_rate_bound(&builders::hypercube(d)).unwrap().bound,
                hypercube_bound(d),
                "d={d}"
            );
        }
        for n in [2u32, 3, 5, 8, 12] {
            assert_eq!(
                allreduce_rate_bound(&builders::complete(n)).unwrap().bound,
                complete_bound(n),
                "n={n}"
            );
        }
        for dims in [vec![3u32, 3], vec![4, 4], vec![3, 4], vec![3, 3, 3]] {
            let t = pf_topo::torus::Torus::new(&dims);
            assert_eq!(
                allreduce_rate_bound(t.graph()).unwrap().bound,
                torus_bound(&dims),
                "{dims:?}"
            );
        }
    }

    #[test]
    fn polarfly_bound_is_the_corollary_7_1_optimum() {
        for q in [3u64, 5, 7, 9, 11] {
            assert_eq!(polarfly_bound(q), crate::perf::optimal_bandwidth(q, Rational::ONE));
        }
    }

    #[test]
    fn gap_and_certification() {
        let g = builders::complete(8);
        let b = allreduce_rate_bound(&g).unwrap();
        assert_eq!(b.bound, Rational::from_int(4));
        assert!(b.certifies(Rational::from_int(4)));
        assert!(b.certifies(Rational::new(7, 2)));
        assert!(!b.certifies(Rational::new(9, 2)));
        assert_eq!(b.gap(Rational::from_int(3)), Rational::new(3, 4));
        assert_eq!(b.gap(b.bound), Rational::ONE);
        assert_eq!(b.gap(Rational::new(3, 4)).to_f64(), 0.1875);
    }

    #[test]
    fn min_cut_is_deterministic() {
        let g = crate::substrates::erdos_renyi_connected(30, 50, 9);
        let a = allreduce_rate_bound(&g).unwrap();
        let b = allreduce_rate_bound(&g).unwrap();
        assert_eq!(a, b);
    }
}
