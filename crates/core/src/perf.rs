//! The Theorem 5.1 performance model and the paper's bandwidth bounds.
//!
//! With trees running concurrently on sub-vectors, the optimal split gives
//! every tree equal finish time, and the aggregate allreduce bandwidth is
//! the sum of per-tree bandwidths. Corollary 7.1 bounds the aggregate for
//! PolarFly at `(q+1)·B/2`; Corollary 7.7 guarantees at least `q·B/2` for
//! the low-depth trees; Theorem 7.19 gives `t·B` for `t` edge-disjoint
//! Hamiltonian trees.

use crate::rational::Rational;
use pf_graph::Graph;

/// Substrate-generic upper bound on the aggregate Algorithm 1 bandwidth of
/// *any* spanning-tree set over `g` (unit link bandwidth), in exact
/// rationals:
///
/// `Σ B_i ≤ min(|E| / (n − 1), δ_min)`.
///
/// Both terms follow from the per-edge constraint `Σ_{i ∋ e} B_i ≤ 1`:
/// every spanning tree uses at least `n − 1` edges (so the weighted edge
/// budget `|E|` caps the aggregate at `|E|/(n − 1)`), and every spanning
/// tree touches each vertex with at least one edge (so the capacity of a
/// minimum-degree vertex caps it at `δ_min`). This generalizes the shape
/// of Corollary 7.1 to arbitrary substrates — on PolarFly it is slightly
/// looser than the paper's `(q + 1)/2`, so it is safe as a standing
/// "achieved ≤ bound" invariant for every construction
/// (`tests/paper_claims.rs`). Returns zero for graphs with fewer than two
/// vertices (no plan exists there; see
/// [`crate::construction::ConstructError::TooSmall`]).
///
/// [`crate::rate::allreduce_rate_bound`] tightens this bound by replacing
/// the singleton-cut term `δ_min` with the true global min cut `λ(G)`
/// (and reports typed errors instead of zero on degenerate graphs); the
/// rate bound is never above this one, so invariants asserted here
/// transfer.
pub fn substrate_bandwidth_bound(g: &Graph) -> Rational {
    let n = g.num_vertices() as i64;
    if n < 2 {
        return Rational::ZERO;
    }
    let edge_bound = Rational::new(g.num_edges() as i64, n - 1);
    let degree_bound = Rational::from_int(g.min_degree() as i64);
    edge_bound.min(degree_bound)
}

/// Corollary 7.1: optimal bidirectional in-network allreduce bandwidth of
/// `ER_q` with link bandwidth `b`: `(q + 1)·b / 2`.
pub fn optimal_bandwidth(q: u64, b: Rational) -> Rational {
    Rational::new(q as i64 + 1, 2) * b
}

/// Corollary 7.7: the low-depth solution's guaranteed aggregate bandwidth,
/// `q·b/2` for odd `q` (the paper states `(q+1)·b/2` for its even-`q`
/// variant, which it does not construct; we report the odd-`q` bound).
pub fn low_depth_bound(q: u64, b: Rational) -> Rational {
    Rational::new(q as i64, 2) * b
}

/// Theorem 7.19: aggregate bandwidth of `t` edge-disjoint spanning trees.
pub fn edge_disjoint_bandwidth(t: usize, b: Rational) -> Rational {
    Rational::from_int(t as i64) * b
}

/// Lemma 7.18 upper bound on edge-disjoint Hamiltonian paths: `⌊(q+1)/2⌋`.
pub fn hamiltonian_upper_bound(q: u64) -> usize {
    q.div_ceil(2) as usize
}

/// Theorem 5.1's optimal sub-vector split: `m_i = m·B_i / Σ B_j`, rounded
/// to integers by largest remainder so the sizes sum exactly to `m`.
/// Returns an empty vector when there are no trees.
pub fn optimal_split(m: u64, bandwidths: &[Rational]) -> Vec<u64> {
    if bandwidths.is_empty() {
        return Vec::new();
    }
    let total: Rational = bandwidths.iter().copied().fold(Rational::ZERO, |a, b| a + b);
    assert!(total.is_positive(), "total bandwidth must be positive");
    // Exact shares and floor them.
    let shares: Vec<Rational> = bandwidths
        .iter()
        .map(|&b| Rational::from_int(m as i64) * b / total)
        .collect();
    let mut sizes: Vec<u64> = shares
        .iter()
        .map(|s| (s.numer() / s.denom()) as u64) // floor for non-negative
        .collect();
    let assigned: u64 = sizes.iter().sum();
    // Distribute the remainder to the largest fractional parts.
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - Rational::from_int(sizes[a] as i64);
        let fb = shares[b] - Rational::from_int(sizes[b] as i64);
        fb.cmp(&fa).then(a.cmp(&b))
    });
    let mut left = m - assigned;
    for &i in &order {
        if left == 0 {
            break;
        }
        sizes[i] += 1;
        left -= 1;
    }
    sizes
}

/// Execution-time model of Theorem 5.1: `t_i = L_i + m_i / B_i`, overall
/// time `max_i t_i`. Latencies and bandwidths are per-tree; returns the
/// overall time.
pub fn allreduce_time(sizes: &[u64], latencies: &[Rational], bandwidths: &[Rational]) -> Rational {
    assert_eq!(sizes.len(), bandwidths.len());
    assert_eq!(sizes.len(), latencies.len());
    sizes
        .iter()
        .zip(latencies)
        .zip(bandwidths)
        .map(|((&m, &l), &b)| l + Rational::from_int(m as i64) / b)
        .max()
        .unwrap_or(Rational::ZERO)
}

/// In-network allreduce latency of a tree of the given depth: reduction
/// climbs `depth` hops and the broadcast descends `depth` hops, each hop
/// costing `hop_latency`.
pub fn tree_latency(depth: u32, hop_latency: Rational) -> Rational {
    Rational::from_int(2 * depth as i64) * hop_latency
}

/// Cycle-accurate pipeline model of one tree's allreduce, matching the
/// `pf-simnet` engine to within a cycle: a fill of `2·depth·L + 1` cycles
/// (reduce up, broadcast down, plus the leaf's inject cycle), then a
/// steady-state drain of `m_i` elements at the Algorithm 1 rate `b_i`.
/// This is the per-tree prediction the observability layer compares
/// against measured `tree_completion` cycles.
pub fn predicted_tree_cycles(depth: u32, hop_latency: u64, m_i: u64, b_i: Rational) -> u64 {
    predicted_tree_phase_cycles(2, depth, hop_latency, m_i, b_i)
}

/// The phase-parameterized pipeline model behind [`predicted_tree_cycles`]:
/// a fill of `phases·depth·L + 1` cycles, then a steady-state drain of
/// `m_i` elements. An allreduce traverses the tree twice (`phases = 2`:
/// reduce up, broadcast down) and drains at the Algorithm 1 rate `b_i` —
/// the Theorem 7.6 / 7.19 congestion-bounded share with both phases
/// counter-flowing on every link. The single-phase collectives — reduce,
/// broadcast, and the sharded-training reduce-scatter / allgather pair —
/// traverse it once (`phases = 1`): they move half an allreduce's volume,
/// and with the opposite direction idle each link's counter-flow share
/// comes back, so the drain rate doubles to `min(2·b_i, 1)` (capped at
/// link capacity; exact for the paper's congestion ≤ 2 plans).
pub fn predicted_tree_phase_cycles(
    phases: u64,
    depth: u32,
    hop_latency: u64,
    m_i: u64,
    b_i: Rational,
) -> u64 {
    if m_i == 0 {
        return 0;
    }
    assert!(b_i.is_positive(), "tree bandwidth must be positive");
    let fill = phases * depth as u64 * hop_latency + 1;
    let rate = if phases == 1 { (b_i + b_i).min(Rational::ONE) } else { b_i };
    let drain = Rational::from_int(m_i as i64) / rate;
    // Ceiling of a non-negative rational (numer >= 0, denom > 0).
    fill + ((drain.numer() + drain.denom() - 1) / drain.denom()) as u64
}

/// Cycle prediction for one tree's reduce-scatter slice: the reduce-up
/// phase alone (`depth·L + 1` fill, then the drain at the recovered
/// single-direction rate `min(2·b_i, 1)`).
pub fn predicted_reduce_scatter_tree_cycles(
    depth: u32,
    hop_latency: u64,
    m_i: u64,
    b_i: Rational,
) -> u64 {
    predicted_tree_phase_cycles(1, depth, hop_latency, m_i, b_i)
}

/// Cycle prediction for one tree's allgather slice: the broadcast-down
/// phase alone — the mirror of
/// [`predicted_reduce_scatter_tree_cycles`], with the identical formula.
pub fn predicted_allgather_tree_cycles(
    depth: u32,
    hop_latency: u64,
    m_i: u64,
    b_i: Rational,
) -> u64 {
    predicted_tree_phase_cycles(1, depth, hop_latency, m_i, b_i)
}

/// Normalizes an aggregate bandwidth against the Corollary 7.1 optimum.
pub fn normalized_bandwidth(aggregate: Rational, q: u64, b: Rational) -> Rational {
    aggregate / optimal_bandwidth(q, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_bandwidth_values() {
        assert_eq!(optimal_bandwidth(7, Rational::ONE), Rational::from_int(4));
        assert_eq!(optimal_bandwidth(11, Rational::ONE), Rational::from_int(6));
        assert_eq!(optimal_bandwidth(4, Rational::ONE), Rational::new(5, 2));
        assert_eq!(
            optimal_bandwidth(3, Rational::from_int(100)),
            Rational::from_int(200)
        );
    }

    #[test]
    fn low_depth_bound_values() {
        assert_eq!(low_depth_bound(7, Rational::ONE), Rational::new(7, 2));
        assert_eq!(low_depth_bound(11, Rational::ONE), Rational::new(11, 2));
    }

    #[test]
    fn hamiltonian_bounds() {
        assert_eq!(hamiltonian_upper_bound(3), 2);
        assert_eq!(hamiltonian_upper_bound(4), 2);
        assert_eq!(hamiltonian_upper_bound(7), 4);
        assert_eq!(hamiltonian_upper_bound(8), 4);
        assert_eq!(edge_disjoint_bandwidth(4, Rational::ONE), Rational::from_int(4));
    }

    #[test]
    fn split_sums_to_m_and_is_proportional() {
        let bw = vec![Rational::ONE, Rational::ONE, Rational::new(1, 2)];
        let sizes = optimal_split(1000, &bw);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert_eq!(sizes, vec![400, 400, 200]);
    }

    #[test]
    fn split_handles_rounding() {
        let bw = vec![Rational::ONE; 3];
        let sizes = optimal_split(10, &bw);
        assert_eq!(sizes.iter().sum::<u64>(), 10);
        for &s in &sizes {
            assert!(s == 3 || s == 4);
        }
        // Deterministic: remainder goes to the smallest indexes on ties.
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn split_edge_cases() {
        assert!(optimal_split(100, &[]).is_empty());
        assert_eq!(optimal_split(0, &[Rational::ONE; 2]), vec![0, 0]);
        assert_eq!(optimal_split(7, &[Rational::ONE]), vec![7]);
    }

    #[test]
    fn equal_finish_times_under_optimal_split() {
        // With the exact (unrounded) split, all finish times are equal; with
        // integer rounding they differ by at most one element's transfer.
        let bw = vec![Rational::new(3, 2), Rational::ONE, Rational::new(1, 2)];
        let m = 3000;
        let sizes = optimal_split(m, &bw);
        let lat = vec![Rational::ZERO; 3];
        let t = allreduce_time(&sizes, &lat, &bw);
        assert_eq!(t, Rational::from_int(1000));
    }

    #[test]
    fn time_model_maximum() {
        let sizes = [100, 100];
        let lat = [Rational::ZERO, Rational::from_int(1000)];
        let bw = [Rational::ONE, Rational::ONE];
        assert_eq!(allreduce_time(&sizes, &lat, &bw), Rational::from_int(1100));
    }

    #[test]
    fn latency_model() {
        assert_eq!(tree_latency(3, Rational::from_int(10)), Rational::from_int(60));
        assert_eq!(tree_latency(0, Rational::from_int(10)), Rational::ZERO);
    }

    #[test]
    fn predicted_cycles_fill_plus_drain() {
        // depth 28, L = 4, 2500 elements at full rate: 2·28·4 + 1 + 2500.
        assert_eq!(predicted_tree_cycles(28, 4, 2500, Rational::ONE), 2725);
        // Half rate doubles the drain.
        assert_eq!(predicted_tree_cycles(2, 4, 100, Rational::new(1, 2)), 17 + 200);
        // Fractional drains round up.
        assert_eq!(predicted_tree_cycles(0, 4, 10, Rational::new(3, 2)), 1 + 7);
        assert_eq!(predicted_tree_cycles(5, 4, 0, Rational::ONE), 0);
    }

    #[test]
    fn single_phase_collectives_halve_the_fill_and_recover_the_rate() {
        // depth 28, L = 4, 2500 elements at full rate: 28·4 + 1 + 2500 —
        // same drain as the allreduce, half the pipeline fill.
        assert_eq!(predicted_reduce_scatter_tree_cycles(28, 4, 2500, Rational::ONE), 2613);
        assert_eq!(predicted_allgather_tree_cycles(28, 4, 2500, Rational::ONE), 2613);
        // The two halves always agree: the allgather mirrors the
        // reduce-scatter hop for hop.
        for (depth, m, b) in [(2u32, 100u64, Rational::new(1, 2)), (7, 999, Rational::new(3, 2))] {
            assert_eq!(
                predicted_reduce_scatter_tree_cycles(depth, 4, m, b),
                predicted_allgather_tree_cycles(depth, 4, m, b),
            );
        }
        // A congestion-2 share (b = 1/2) drains at the recovered full
        // rate: fill 2·4 + 1 = 9, drain 100/1 — half the allreduce's
        // 17 + 200 on the same tree.
        assert_eq!(predicted_reduce_scatter_tree_cycles(2, 4, 100, Rational::new(1, 2)), 109);
        // The recovered rate caps at link capacity: b = 3/2 stays at 1.
        assert_eq!(predicted_allgather_tree_cycles(0, 4, 10, Rational::new(3, 2)), 1 + 10);
        // And the phase-parameterized form reproduces the allreduce model.
        assert_eq!(
            predicted_tree_phase_cycles(2, 28, 4, 2500, Rational::ONE),
            predicted_tree_cycles(28, 4, 2500, Rational::ONE),
        );
        assert_eq!(predicted_reduce_scatter_tree_cycles(5, 4, 0, Rational::ONE), 0);
    }

    #[test]
    fn substrate_bound_values() {
        use pf_graph::builders;
        // Cycle: n edges over n−1 per tree, but min degree 2 is larger.
        assert_eq!(substrate_bandwidth_bound(&builders::cycle(5)), Rational::new(5, 4));
        // Path: the single bridge-limited tree.
        assert_eq!(substrate_bandwidth_bound(&builders::path(4)), Rational::ONE);
        // K4: 6 edges / 3 = 2 < min degree 3.
        assert_eq!(substrate_bandwidth_bound(&builders::complete(4)), Rational::from_int(2));
        // Star: the leaves cap it at their degree.
        assert_eq!(substrate_bandwidth_bound(&builders::star(6)), Rational::ONE);
        // Degenerate graphs price to zero.
        assert_eq!(substrate_bandwidth_bound(&Graph::new(1)), Rational::ZERO);
        assert_eq!(substrate_bandwidth_bound(&Graph::new(0)), Rational::ZERO);
    }

    #[test]
    fn substrate_bound_dominates_the_paper_bounds_on_polarfly() {
        // On ER_q the generic bound sits at or above Corollary 7.1, so
        // "achieved ≤ generic bound" is implied by the paper's own claims
        // and safe to assert for every construction.
        for q in [3u64, 5, 7, 9, 11] {
            let pf = pf_topo::PolarFly::new(q);
            let generic = substrate_bandwidth_bound(pf.graph());
            assert!(generic >= optimal_bandwidth(q, Rational::ONE), "q={q}");
        }
    }

    #[test]
    fn normalization() {
        // Low-depth vs optimal: (q/2) / ((q+1)/2) = q / (q+1).
        let norm = normalized_bandwidth(low_depth_bound(7, Rational::ONE), 7, Rational::ONE);
        assert_eq!(norm, Rational::new(7, 8));
    }
}
