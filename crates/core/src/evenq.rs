//! Exploration of the even-`q` low-depth solution the paper mentions but
//! does not construct (§6.1.1: "we have a conceptually similar layout and
//! an Allreduce solution for even q"; Corollary 7.7 states its bandwidth
//! as `(q+1)B/2`).
//!
//! A counting argument pins down how rigid that solution must be: reaching
//! aggregate `(q+1)B/2` with congestion-2 trees takes `q + 1` trees of
//! `B/2` each, consuming `(q+1)(q^2+q)` tree-edge slots — exactly
//! `2·|E|`. So **every physical link must lie in exactly two trees**: the
//! tree set is a perfect double cover of `ER_q` by `q + 1` spanning trees
//! of depth ≤ 3. (For odd `q`, Algorithm 3 leaves the `E_a`-popped center
//! edges singly covered and gives up the `B/2` of bandwidth between
//! `q·B/2` and optimal.)
//!
//! [`search_low_depth_even`] is a randomized greedy attempt at such a
//! double cover (quadric-rooted capacity-constrained BFS). It does *not*
//! succeed on the instances we tried (see the `evenq-search` experiment) —
//! evidence that the even-`q` construction genuinely needs the algebraic
//! structure the paper alludes to, not just search. The function returns
//! verified trees when it does succeed, so a future construction can be
//! dropped in and validated by the same machinery.

use pf_graph::{Graph, RootedTree, VertexId};
use pf_topo::PolarFly;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The counting identity behind the rigidity: `(q+1)` spanning trees use
/// `(q+1)(q^2+q)` edge slots and `2|E| = q(q+1)^2` — always equal.
/// Returns `(slots_needed, slots_available)`.
pub fn double_cover_budget(q: u64) -> (u64, u64) {
    let slots = (q + 1) * (q * q + q);
    let capacity = 2 * (q * (q + 1) * (q + 1) / 2);
    (slots, capacity)
}

/// One randomized greedy attempt: for each root (the `q + 1` quadrics),
/// grow a depth-≤ 3 BFS tree over edges with remaining capacity 2→1→0,
/// preferring fresher edges. Returns `None` if any tree fails to span.
fn greedy_attempt(g: &Graph, roots: &[VertexId], rng: &mut StdRng) -> Option<Vec<RootedTree>> {
    let n = g.num_vertices() as usize;
    let mut cap = vec![2u8; g.num_edges() as usize];
    let mut trees = Vec::with_capacity(roots.len());
    for &root in roots {
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        let mut depth = vec![u32::MAX; n];
        depth[root as usize] = 0;
        let mut frontier = vec![root];
        for d in 1..=3u32 {
            let mut next = Vec::new();
            frontier.shuffle(rng);
            for &u in &frontier {
                let mut nbrs = g.neighbors_with_edges(u).to_vec();
                nbrs.shuffle(rng);
                nbrs.sort_by_key(|&(_, e)| std::cmp::Reverse(cap[e as usize]));
                for (v, e) in nbrs {
                    if depth[v as usize] != u32::MAX || cap[e as usize] == 0 {
                        continue;
                    }
                    depth[v as usize] = d;
                    parent[v as usize] = Some(u);
                    cap[e as usize] -= 1;
                    next.push(v);
                }
            }
            frontier = next;
        }
        if depth.contains(&u32::MAX) {
            return None;
        }
        trees.push(RootedTree::from_parents(root, parent).ok()?);
    }
    Some(trees)
}

/// Searches for a `q+1`-tree, congestion-2, depth-≤3 solution on an
/// even-`q` PolarFly with up to `attempts` randomized greedy passes.
/// Returns validated trees on success (`None` expected on the instances
/// tried so far — see module docs).
pub fn search_low_depth_even(
    pf: &PolarFly,
    attempts: usize,
    seed: u64,
) -> Option<Vec<RootedTree>> {
    let g = pf.graph();
    let roots = pf.quadrics();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..attempts {
        if let Some(trees) = greedy_attempt(g, &roots, &mut rng) {
            // Validate before returning: spanning, depth, congestion.
            if trees.iter().all(|t| t.validate_spanning(g).is_ok() && t.depth() <= 3)
                && pf_graph::tree::edge_congestion(&trees, g).iter().all(|&c| c <= 2)
            {
                return Some(trees);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_cover_budget_is_always_tight() {
        for q in [4u64, 8, 16, 32, 64, 128, 3, 5, 7] {
            let (need, have) = double_cover_budget(q);
            assert_eq!(need, have, "q={q}: (q+1) trees exactly exhaust 2|E|");
        }
    }

    #[test]
    fn search_result_if_any_is_valid() {
        // The greedy is not expected to succeed; this test pins down the
        // contract either way.
        let pf = PolarFly::new(4);
        match search_low_depth_even(&pf, 50, 1234) {
            Some(trees) => {
                assert_eq!(trees.len(), 5);
                for t in &trees {
                    t.validate_spanning(pf.graph()).unwrap();
                    assert!(t.depth() <= 3);
                }
                let c = pf_graph::tree::edge_congestion(&trees, pf.graph());
                assert!(c.iter().all(|&x| x <= 2));
            }
            None => {
                // Expected: documents that the paper's even-q variant is
                // not reachable by naive search.
            }
        }
    }

    #[test]
    fn greedy_partial_attempts_respect_capacity() {
        // Even failing attempts never overcommit an edge.
        let pf = PolarFly::new(4);
        let g = pf.graph();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            if let Some(trees) = greedy_attempt(g, &pf.quadrics(), &mut rng) {
                let c = pf_graph::tree::edge_congestion(&trees, g);
                assert!(c.iter().all(|&x| x <= 2));
            }
        }
    }
}
