//! Multi-spanning-tree in-network allreduce on PolarFly.
//!
//! This crate implements the primary contribution of *"In-network Allreduce
//! with Multiple Spanning Trees on PolarFly"* (SPAA '23):
//!
//! * [`lowdepth`] — Algorithm 3: `q` spanning trees of depth ≤ 3 with
//!   worst-case link congestion 2 (Theorems 7.4–7.6), built on the PolarFly
//!   layout;
//! * [`hamiltonian`] — alternating-sum paths in the Singer graph
//!   (Theorem 7.13, Corollaries 7.15/7.16) and their midpoint-rooted
//!   spanning trees (Lemma 7.17);
//! * [`disjoint`] — maximal sets of edge-disjoint Hamiltonian paths via
//!   independent sets in the color-pair conflict graph (§7.3);
//! * [`congestion`] — Algorithm 1: the water-filling bandwidth model for a
//!   set of embedded trees, in exact rational arithmetic;
//! * [`perf`] — the Theorem 5.1 performance model: optimal sub-vector
//!   split, aggregate bandwidth, optimal bounds (Corollary 7.1);
//! * [`verify`] — executable statements of the paper's theorems, used by
//!   tests, benches and the simulator;
//! * [`fingerprint`] — deterministic FNV-1a structural fingerprints for
//!   graphs, plans and fault sets (the fabric manager's cache keys);
//! * [`recovery`] — degraded-plan rebuild after link/router faults:
//!   surviving trees are kept, broken trees repaired or dropped under the
//!   healthy congestion bound, and the bandwidth loss quantified;
//! * [`construction`] — the pluggable [`construction::TreeConstruction`]
//!   trait: the paper's builders as PolarFly specializations next to
//!   generic backends (kary multitrees, greedy peeling, BFS) over any
//!   `pf_graph::Graph` substrate;
//! * [`starprod`] — edge-disjoint spanning trees on star products lifted
//!   from factor-tree sets (PolarStar/Slim Fly-class substrates);
//! * [`substrates`] — the named substrate catalog the construction
//!   harness, paper-claims invariants and `experiments topo-compare`
//!   share;
//! * [`rate`] — exact-rational allreduce rate upper bounds
//!   (edge budget ∧ global min cut) for any substrate, with closed forms
//!   for the known families; every plan's `aggregate ≤ rate_bound()` is a
//!   standing paper-claims invariant (see `docs/RATES.md`);
//! * [`plan`] — the high-level [`plan::AllreducePlan`] facade tying it all
//!   together (see [`plan::AllreducePlan::construct`] for the
//!   backend-driven path).
//!
//! # Quick example
//!
//! ```
//! use pf_allreduce::plan::AllreducePlan;
//!
//! // q = 7: PolarFly with 57 routers of radix 8.
//! let low = AllreducePlan::low_depth(7).unwrap();
//! assert_eq!(low.trees.len(), 7);
//! assert_eq!(low.depth, 3);
//! assert_eq!(low.max_congestion, 2);
//!
//! let ham = AllreducePlan::edge_disjoint(7, 30, 0xC0FFEE).unwrap();
//! assert_eq!(ham.trees.len(), 4); // floor((q+1)/2) — the optimum
//! assert_eq!(ham.max_congestion, 1);
//! ```

pub mod baselines;
pub mod congestion;
pub mod construction;
pub mod disjoint;
pub mod evenq;
pub mod fingerprint;
pub mod hamiltonian;
pub mod logical;
pub mod lowdepth;
pub mod perf;
pub mod plan;
pub mod rate;
pub mod rational;
pub mod recovery;
pub mod starprod;
pub mod substrates;
pub mod verify;

pub use construction::{
    Budget, BfsSingle, ConstructError, GreedyPeel, KaryMultitree, PolarFlyHamiltonian,
    PolarFlyLowDepth, TreeConstruction,
};
pub use plan::{AllreducePlan, Solution};
pub use rate::{allreduce_rate_bound, global_min_cut, RateBound, RateError, RateLimiter};
pub use rational::Rational;
pub use fingerprint::{graph_fingerprint, plan_fingerprint};
pub use recovery::{extend_degraded, rebuild_degraded, DegradedPlan, FaultSet, RebuildError};
pub use starprod::StarProductDisjoint;
