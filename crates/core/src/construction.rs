//! Pluggable spanning-tree constructions over arbitrary substrates.
//!
//! The paper's planner is PolarFly-specific, but everything downstream of
//! tree construction — Algorithm 1 water-filling, the simulator embedding,
//! fault recovery, the scheduler — operates on generic
//! [`RootedTree`] sets over any [`Graph`]. [`TreeConstruction`] is the
//! seam: a backend takes any substrate plus a [`Budget`] (tree-count cap,
//! preferred root) and returns a spanning-tree set, which
//! [`crate::AllreducePlan::construct`] prices with Algorithm 1.
//!
//! Backends in this module:
//!
//! * [`PolarFlyLowDepth`] / [`PolarFlyHamiltonian`] — the paper's two
//!   constructions, ported to the trait as PolarFly specializations (they
//!   reject substrates that are not the expected `ER_q` / Singer graph);
//! * [`KaryMultitree`] — the iterative multitree builder of the
//!   `farabimahmud/accelerator` lineage (SNIPPETS.md 1–3): trees grow
//!   round-robin, preferring globally least-used links, with a per-vertex
//!   children cap of `k − 1` — works on arbitrary connected substrates;
//! * [`BfsSingle`] — one BFS spanning tree, the "current practice"
//!   baseline on any substrate;
//! * [`GreedyPeel`] — randomized-Kruskal edge-disjoint peeling
//!   ([`crate::baselines::greedy_edge_disjoint`]) behind the trait.
//!
//! The star-product edge-disjoint construction lives in
//! [`crate::starprod`]; the property harness that keeps every backend
//! honest is `crates/core/tests/tree_harness.rs` (see
//! `docs/CONSTRUCTIONS.md`).

use pf_graph::{bfs, EdgeId, Graph, RootedTree, VertexId};
use pf_topo::{PolarFly, Singer};

/// Resource budget handed to a construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Upper bound on the number of trees to return (`None` = backend's
    /// natural count).
    pub max_trees: Option<usize>,
    /// Preferred root / starter vertex, for backends that take one.
    pub root: Option<VertexId>,
}

impl Budget {
    /// No caps, no root preference.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// At most `n` trees.
    pub fn trees(n: usize) -> Self {
        Budget { max_trees: Some(n), root: None }
    }
}

/// Why a construction could not produce a plan. Degenerate substrates are
/// typed errors, never panics — the harness' degenerate-substrate suite
/// pins this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstructError {
    /// The substrate has no vertices.
    EmptySubstrate,
    /// A single-vertex substrate: the collective is a no-op and there is
    /// no link to price a plan on.
    TooSmall,
    /// No spanning tree exists: the substrate is disconnected.
    Disconnected {
        /// Number of connected components.
        components: u32,
    },
    /// The backend is specialized to a substrate family this graph does
    /// not belong to (e.g. the paper's constructions off PolarFly).
    UnsupportedSubstrate(String),
    /// The backend ran but produced no valid spanning tree.
    NoTrees(String),
}

impl std::fmt::Display for ConstructError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConstructError::EmptySubstrate => write!(f, "substrate has no vertices"),
            ConstructError::TooSmall => {
                write!(f, "substrate has a single vertex; no links to plan over")
            }
            ConstructError::Disconnected { components } => {
                write!(f, "substrate is disconnected ({components} components)")
            }
            ConstructError::UnsupportedSubstrate(why) => {
                write!(f, "unsupported substrate: {why}")
            }
            ConstructError::NoTrees(why) => write!(f, "no spanning trees found: {why}"),
        }
    }
}

impl std::error::Error for ConstructError {}

/// A spanning-tree construction backend.
///
/// Contract (property-checked by `tests/tree_harness.rs` for every
/// backend × substrate):
///
/// * every returned tree is a spanning tree of the substrate (covers all
///   vertices with exactly `n − 1` graph edges, acyclic, connected, with
///   consistent rooted orientation);
/// * if [`TreeConstruction::claims_edge_disjoint`] is true, the trees are
///   pairwise edge-disjoint;
/// * if [`TreeConstruction::congestion_bound`] returns `Some(c)`, no edge
///   appears in more than `c` trees;
/// * at most `budget.max_trees` trees are returned;
/// * degenerate substrates produce a typed [`ConstructError`], not a
///   panic;
/// * the output is deterministic for a given substrate and budget.
pub trait TreeConstruction {
    /// Short stable name, used as the plan label and in tables.
    fn name(&self) -> &'static str;

    /// Whether the returned trees are guaranteed pairwise edge-disjoint.
    fn claims_edge_disjoint(&self) -> bool {
        false
    }

    /// Guaranteed worst-case link congestion, when the backend has one
    /// (Theorem 7.6 gives 2 for the low-depth trees, Theorem 7.19 gives 1
    /// for edge-disjoint sets).
    fn congestion_bound(&self) -> Option<u32> {
        None
    }

    /// Builds the spanning-tree set for `g` under `budget`.
    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError>;
}

/// Rejects empty, single-vertex and disconnected substrates — the shared
/// prologue every backend runs.
pub fn check_substrate(g: &Graph) -> Result<(), ConstructError> {
    match g.num_vertices() {
        0 => return Err(ConstructError::EmptySubstrate),
        1 => return Err(ConstructError::TooSmall),
        _ => {}
    }
    let (_, components) = bfs::connected_components(g);
    if components != 1 {
        return Err(ConstructError::Disconnected { components });
    }
    Ok(())
}

/// Truncates `trees` to the budget's cap (a prefix of an edge-disjoint set
/// stays edge-disjoint; a prefix under a congestion bound stays under it).
fn apply_budget(mut trees: Vec<RootedTree>, budget: &Budget) -> Vec<RootedTree> {
    if let Some(cap) = budget.max_trees {
        trees.truncate(cap);
    }
    trees
}

/// Same edge set (as vertex pairs) — the substrate check the PolarFly
/// specializations use: their trees are expressed in a fixed labeling, so
/// the substrate must match that labeling edge for edge.
fn same_edges(a: &Graph, b: &Graph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    a.edges().all(|(_, u, v)| b.has_edge(u, v))
}

/// §7.1 low-depth trees (Algorithm 3) as a [`TreeConstruction`]: `q`
/// depth-≤3 trees with congestion ≤ 2 on the `ER_q` labeling.
#[derive(Debug, Clone, Copy)]
pub struct PolarFlyLowDepth {
    /// Field order (odd prime power).
    pub q: u64,
}

impl TreeConstruction for PolarFlyLowDepth {
    fn name(&self) -> &'static str {
        "low-depth"
    }

    fn congestion_bound(&self) -> Option<u32> {
        Some(2)
    }

    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError> {
        check_substrate(g)?;
        let pf = PolarFly::new(self.q);
        if !same_edges(g, pf.graph()) {
            return Err(ConstructError::UnsupportedSubstrate(format!(
                "low-depth trees need the ER_{} labeling ({} vertices), got {} vertices / {} edges",
                self.q,
                pf.graph().num_vertices(),
                g.num_vertices(),
                g.num_edges()
            )));
        }
        let out = crate::lowdepth::low_depth_trees(&pf, budget.root)
            .map_err(ConstructError::NoTrees)?;
        Ok(apply_budget(out.trees, budget))
    }
}

/// §7.2 edge-disjoint Hamiltonian-path trees as a [`TreeConstruction`]:
/// `⌊(q+1)/2⌋` depth-`(N−1)/2` trees with congestion 1 on the Singer
/// labeling.
#[derive(Debug, Clone, Copy)]
pub struct PolarFlyHamiltonian {
    /// Field order (prime power).
    pub q: u64,
    /// Random-search attempts for the independent-set protocol.
    pub attempts: usize,
    /// Search seed.
    pub seed: u64,
}

impl TreeConstruction for PolarFlyHamiltonian {
    fn name(&self) -> &'static str {
        "hamiltonian"
    }

    fn claims_edge_disjoint(&self) -> bool {
        true
    }

    fn congestion_bound(&self) -> Option<u32> {
        Some(1)
    }

    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError> {
        check_substrate(g)?;
        let s = Singer::new(self.q);
        if !same_edges(g, s.graph()) {
            return Err(ConstructError::UnsupportedSubstrate(format!(
                "Hamiltonian trees need the Singer S_{} labeling, got {} vertices / {} edges",
                self.q,
                g.num_vertices(),
                g.num_edges()
            )));
        }
        let sol = crate::disjoint::find_edge_disjoint(&s, self.attempts, self.seed);
        if sol.trees.is_empty() {
            return Err(ConstructError::NoTrees(format!(
                "no edge-disjoint Hamiltonian paths found for q = {}",
                self.q
            )));
        }
        Ok(apply_budget(sol.trees, budget))
    }
}

/// One BFS spanning tree — the single-tree baseline on any substrate.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsSingle;

impl TreeConstruction for BfsSingle {
    fn name(&self) -> &'static str {
        "bfs-single"
    }

    fn claims_edge_disjoint(&self) -> bool {
        true
    }

    fn congestion_bound(&self) -> Option<u32> {
        Some(1)
    }

    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError> {
        check_substrate(g)?;
        let root = budget.root.unwrap_or(0).min(g.num_vertices() - 1);
        let (_, parents) = bfs::tree(g, root);
        let t = RootedTree::from_parents(root, parents)
            .map_err(|e| ConstructError::NoTrees(e.to_string()))?;
        Ok(apply_budget(vec![t], budget))
    }
}

/// Greedy randomized-Kruskal edge-disjoint peeling behind the trait —
/// the structure-blind way to chase disjointness on any substrate.
#[derive(Debug, Clone, Copy)]
pub struct GreedyPeel {
    /// Shuffle seed (the output is deterministic given the seed).
    pub seed: u64,
}

impl TreeConstruction for GreedyPeel {
    fn name(&self) -> &'static str {
        "greedy-peel"
    }

    fn claims_edge_disjoint(&self) -> bool {
        true
    }

    fn congestion_bound(&self) -> Option<u32> {
        Some(1)
    }

    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError> {
        check_substrate(g)?;
        let trees = crate::baselines::greedy_edge_disjoint(g, self.seed);
        if trees.is_empty() {
            return Err(ConstructError::NoTrees(
                "greedy peeling found no spanning tree".to_string(),
            ));
        }
        Ok(apply_budget(trees, budget))
    }
}

/// Iterative kary multitree construction for arbitrary substrates.
///
/// Grows several trees simultaneously, round-robin: each step, the active
/// tree attaches the not-yet-covered neighbor reachable over the globally
/// least-used link (ties to the lowest edge id), and any vertex may adopt
/// at most `k − 1` children (`k` at the root — one port feeds the
/// parent). Interleaving the trees and preferring cold links spreads
/// congestion the way the accelerator exemplar's alternating link
/// allocation does; the cap keeps fan-out bounded like its kary trees.
/// If the cap wedges an unfinished tree, it is lifted for that tree so
/// construction always completes on connected substrates.
///
/// No disjointness or congestion guarantee is claimed — that is what the
/// cross-backend comparison (and Algorithm 1) measures.
#[derive(Debug, Clone, Copy)]
pub struct KaryMultitree {
    /// Arity: maximum children per non-root vertex is `k − 1` (min 2).
    pub k: u32,
}

impl KaryMultitree {
    /// Natural tree count for `g`: its minimum degree (the vertex-capacity
    /// bound on how many trees can help — see
    /// [`crate::perf::substrate_bandwidth_bound`]).
    fn natural_count(g: &Graph) -> usize {
        g.min_degree().max(1) as usize
    }
}

impl TreeConstruction for KaryMultitree {
    fn name(&self) -> &'static str {
        "kary-multitree"
    }

    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError> {
        check_substrate(g)?;
        let n = g.num_vertices();
        let k = self.k.max(2);
        let count = budget
            .max_trees
            .unwrap_or_else(|| Self::natural_count(g))
            .clamp(1, n as usize);

        // Spread roots across the vertex range; honor an explicit root for
        // the first tree.
        let stride = (n as usize / count).max(1) as u32;
        let roots: Vec<VertexId> = (0..count as u32)
            .map(|i| match (i, budget.root) {
                (0, Some(r)) => r.min(n - 1),
                _ => (i * stride) % n,
            })
            .collect();

        let mut link_use = vec![0u32; g.num_edges() as usize];
        let mut parents: Vec<Vec<Option<VertexId>>> = vec![vec![None; n as usize]; count];
        let mut in_tree: Vec<Vec<bool>> = vec![vec![false; n as usize]; count];
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); count];
        let mut child_cnt: Vec<Vec<u32>> = vec![vec![0; n as usize]; count];
        let mut covered: Vec<u32> = vec![1; count];
        let mut capped: Vec<bool> = vec![true; count];
        for (ti, &r) in roots.iter().enumerate() {
            in_tree[ti][r as usize] = true;
            members[ti].push(r);
        }

        let mut remaining = count;
        while remaining > 0 {
            let mut progress = false;
            for ti in 0..count {
                if covered[ti] == n {
                    continue;
                }
                // Best attachment: lowest (link use, edge id) over tree
                // vertices with spare child capacity.
                let mut best: Option<(u32, EdgeId, VertexId, VertexId)> = None;
                for &u in &members[ti] {
                    let cap = if u == roots[ti] { k } else { k - 1 };
                    if capped[ti] && child_cnt[ti][u as usize] >= cap {
                        continue;
                    }
                    for &(v, e) in g.neighbors_with_edges(u) {
                        if in_tree[ti][v as usize] {
                            continue;
                        }
                        let key = (link_use[e as usize], e, u, v);
                        if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                            best = Some(key);
                        }
                    }
                }
                match best {
                    Some((_, e, u, v)) => {
                        parents[ti][v as usize] = Some(u);
                        in_tree[ti][v as usize] = true;
                        members[ti].push(v);
                        child_cnt[ti][u as usize] += 1;
                        link_use[e as usize] += 1;
                        covered[ti] += 1;
                        if covered[ti] == n {
                            remaining -= 1;
                        }
                        progress = true;
                    }
                    None if capped[ti] => {
                        // The children cap wedged this tree: lift it and
                        // let the next round finish the job.
                        capped[ti] = false;
                        progress = true;
                    }
                    None => unreachable!("connected substrate: some frontier edge must exist"),
                }
            }
            debug_assert!(progress, "round-robin growth must advance");
        }

        let trees = roots
            .into_iter()
            .zip(parents)
            .map(|(r, p)| {
                RootedTree::from_parents(r, p)
                    .map_err(|e| ConstructError::NoTrees(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(trees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::builders;
    use pf_graph::tree::{edge_congestion, pairwise_edge_disjoint};

    fn spans(trees: &[RootedTree], g: &Graph) {
        assert!(!trees.is_empty());
        for t in trees {
            t.validate_spanning(g).unwrap();
        }
    }

    #[test]
    fn polarfly_backends_match_their_direct_constructors() {
        let pf = PolarFly::new(7);
        let low = PolarFlyLowDepth { q: 7 }.build(pf.graph(), &Budget::unlimited()).unwrap();
        assert_eq!(low.len(), 7);
        spans(&low, pf.graph());
        assert!(edge_congestion(&low, pf.graph()).iter().all(|&c| c <= 2));

        let s = Singer::new(7);
        let ham = PolarFlyHamiltonian { q: 7, attempts: 30, seed: 9 }
            .build(s.graph(), &Budget::unlimited())
            .unwrap();
        assert_eq!(ham.len(), 4);
        spans(&ham, s.graph());
        assert!(pairwise_edge_disjoint(&ham, s.graph()));
    }

    #[test]
    fn polarfly_backends_reject_foreign_substrates() {
        let torus = builders::torus2d(4, 4);
        let err = PolarFlyLowDepth { q: 3 }.build(&torus, &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, ConstructError::UnsupportedSubstrate(_)));
        let err = PolarFlyHamiltonian { q: 3, attempts: 5, seed: 0 }
            .build(&torus, &Budget::unlimited())
            .unwrap_err();
        assert!(matches!(err, ConstructError::UnsupportedSubstrate(_)));
        // The ER and Singer labelings differ, so each specialization
        // rejects the other's graph.
        let err = PolarFlyHamiltonian { q: 7, attempts: 5, seed: 0 }
            .build(PolarFly::new(7).graph(), &Budget::unlimited())
            .unwrap_err();
        assert!(matches!(err, ConstructError::UnsupportedSubstrate(_)));
    }

    #[test]
    fn degenerate_substrates_are_typed_errors() {
        let empty = Graph::new(0);
        let lone = Graph::new(1);
        let mut split = Graph::new(4);
        split.add_edge(0, 1);
        split.add_edge(2, 3);
        let backends: Vec<Box<dyn TreeConstruction>> = vec![
            Box::new(BfsSingle),
            Box::new(GreedyPeel { seed: 0 }),
            Box::new(KaryMultitree { k: 4 }),
            Box::new(PolarFlyLowDepth { q: 3 }),
        ];
        for b in &backends {
            assert_eq!(
                b.build(&empty, &Budget::unlimited()).unwrap_err(),
                ConstructError::EmptySubstrate,
                "{}",
                b.name()
            );
            assert_eq!(
                b.build(&lone, &Budget::unlimited()).unwrap_err(),
                ConstructError::TooSmall,
                "{}",
                b.name()
            );
            assert_eq!(
                b.build(&split, &Budget::unlimited()).unwrap_err(),
                ConstructError::Disconnected { components: 2 },
                "{}",
                b.name()
            );
        }
    }

    #[test]
    fn kary_covers_torus_and_respects_budget() {
        let g = builders::torus2d(4, 4);
        let trees = KaryMultitree { k: 2 }.build(&g, &Budget::unlimited()).unwrap();
        assert_eq!(trees.len(), 4); // min degree of the 2-D torus
        spans(&trees, &g);
        let two = KaryMultitree { k: 2 }.build(&g, &Budget::trees(2)).unwrap();
        assert_eq!(two.len(), 2);
        spans(&two, &g);
    }

    #[test]
    fn kary_cap_lifts_on_wedging_substrates() {
        // A star forces the hub to adopt n-2 children, far above k-1.
        let g = builders::star(8);
        let trees = KaryMultitree { k: 2 }.build(&g, &Budget::trees(1)).unwrap();
        spans(&trees, &g);
    }

    #[test]
    fn kary_is_deterministic() {
        let g = builders::hypercube(4);
        let a = KaryMultitree { k: 3 }.build(&g, &Budget::unlimited()).unwrap();
        let b = KaryMultitree { k: 3 }.build(&g, &Budget::unlimited()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_peel_is_disjoint_on_generic_substrates() {
        let g = builders::complete(8);
        let trees = GreedyPeel { seed: 5 }.build(&g, &Budget::unlimited()).unwrap();
        spans(&trees, &g);
        assert!(pairwise_edge_disjoint(&trees, &g));
    }

    #[test]
    fn bfs_single_honors_the_root_budget() {
        let g = builders::torus2d(3, 5);
        let budget = Budget { max_trees: None, root: Some(7) };
        let trees = BfsSingle.build(&g, &budget).unwrap();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].root(), 7);
        spans(&trees, &g);
    }
}
