//! Edge-disjoint spanning trees on star products from factor-tree sets —
//! the construction of *Edge-Disjoint Spanning Trees on Star-Product
//! Networks* (PAPERS.md), adapted to this repo's substrate types.
//!
//! Given `s` pairwise edge-disjoint spanning trees of `G` and `t` of `H`,
//! the product `G ∗ H` yields edge-disjoint spanning trees built from two
//! ingredients:
//!
//! * the *lift* of a G-tree: each tree edge `(u, v)` expands to the full
//!   inter-supernode matching it carries. The lift is a forest with
//!   exactly `|V(H)|` components, each containing exactly one vertex per
//!   supernode (compose the per-edge bijections along tree paths);
//! * a *copy* of an H-tree inside one supernode.
//!
//! Two families result:
//!
//! * **A-trees** (one per G-tree `j < s`): the whole lift of `T_G^j`,
//!   stitched together by a copy of `T_H^t` placed at a distinct supernode
//!   `b_j` — the copy's `|V(H)| − 1` edges connect the lift's `|V(H)|`
//!   components;
//! * **B-trees** (one per H-tree `i < t`): a copy of `T_H^i` in *every*
//!   supernode, stitched by one distinct component of the lift of
//!   `T_G^s` — the component touches every supernode exactly once.
//!
//! All of them are pairwise edge-disjoint by construction: distinct lifts
//! come from edge-disjoint G-trees, distinct components of one lift are
//! vertex-disjoint, and H-copies use edge-disjoint H-trees (the A-trees'
//! copies of `T_H^t` sit at distinct supernodes). That guarantees
//! `s + t − 2` trees; when either factor contributes only one tree the
//! leftover lift/copies combine into one more (`s + t − 1`, the Ku-style
//! bound). On edge-rich products a final deterministic Kruskal pass peels
//! additional disjoint trees from the unused edges.

use crate::construction::{check_substrate, Budget, ConstructError, TreeConstruction};
use pf_graph::dsu::Dsu;
use pf_graph::{Graph, RootedTree, StarProduct, VertexId};

/// The star-product edge-disjoint construction as a
/// [`TreeConstruction`]. Carries the product structure (factor graphs +
/// bijections); `build` rejects any substrate that is not this product's
/// graph.
#[derive(Debug, Clone)]
pub struct StarProductDisjoint {
    sp: StarProduct,
    /// Seed for the factor-tree peeling.
    pub seed: u64,
}

impl StarProductDisjoint {
    /// Wraps a product. Factor trees are peeled with
    /// [`crate::baselines::greedy_edge_disjoint`] on each factor.
    pub fn new(sp: StarProduct, seed: u64) -> Self {
        StarProductDisjoint { sp, seed }
    }

    /// The wrapped product.
    pub fn product(&self) -> &StarProduct {
        &self.sp
    }
}

impl TreeConstruction for StarProductDisjoint {
    fn name(&self) -> &'static str {
        "star-disjoint"
    }

    fn claims_edge_disjoint(&self) -> bool {
        true
    }

    fn congestion_bound(&self) -> Option<u32> {
        Some(1)
    }

    fn build(&self, g: &Graph, budget: &Budget) -> Result<Vec<RootedTree>, ConstructError> {
        check_substrate(g)?;
        let p = self.sp.graph();
        if g.num_vertices() != p.num_vertices()
            || g.num_edges() != p.num_edges()
            || !p.edges().all(|(_, u, v)| g.has_edge(u, v))
        {
            return Err(ConstructError::UnsupportedSubstrate(format!(
                "substrate ({} vertices / {} edges) is not this star product ({} / {})",
                g.num_vertices(),
                g.num_edges(),
                p.num_vertices(),
                p.num_edges()
            )));
        }
        let (fg, fh) = self.sp.factors();
        let g_trees = crate::baselines::greedy_edge_disjoint(fg, self.seed);
        let h_trees = crate::baselines::greedy_edge_disjoint(fh, self.seed.wrapping_add(1));
        let mut trees = star_product_disjoint_trees(&self.sp, &g_trees, &h_trees)?;
        if let Some(cap) = budget.max_trees {
            trees.truncate(cap);
        }
        if trees.is_empty() {
            return Err(ConstructError::NoTrees(
                "no factor spanning trees to lift".to_string(),
            ));
        }
        Ok(trees)
    }
}

/// Re-roots `tree` (a tree over some graph's vertices) at `new_root` by
/// reorienting its edges.
fn reroot(tree: &RootedTree, new_root: VertexId) -> RootedTree {
    let n = tree.num_vertices();
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for (c, p) in tree.edges() {
        adj[c as usize].push(p);
        adj[p as usize].push(c);
    }
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    seen[new_root as usize] = true;
    let mut stack = vec![new_root];
    while let Some(u) = stack.pop() {
        for &v in &adj[u as usize] {
            if !seen[v as usize] {
                seen[v as usize] = true;
                parent[v as usize] = Some(u);
                stack.push(v);
            }
        }
    }
    RootedTree::from_parents(new_root, parent).expect("re-rooting preserves tree structure")
}

/// For a G-tree re-rooted at supernode `b`, the H-coordinate each
/// supernode reaches when the lift component starts from local vertex `x`
/// at `b`: follow tree edges away from `b`, applying the per-edge
/// bijections.
fn lift_coords(sp: &StarProduct, g_tree: &RootedTree, b: VertexId, x: VertexId) -> Vec<VertexId> {
    let (fg, _) = sp.factors();
    let n = fg.num_vertices() as usize;
    let mut coord = vec![0; n];
    coord[b as usize] = x;
    // Children in BFS order from b: parents are resolved before children.
    let mut order: Vec<VertexId> = vec![b];
    let children = g_tree.children();
    let mut i = 0;
    while i < order.len() {
        let u = order[i];
        i += 1;
        for &v in &children[u as usize] {
            let e = fg.edge_id(u, v).expect("G-tree edge exists in G");
            coord[v as usize] = sp.across(e, u, coord[u as usize]);
            order.push(v);
        }
    }
    coord
}

/// Builds the edge-disjoint spanning-tree set of `sp` from edge-disjoint
/// factor-tree sets (`g_trees` over factor `G`, `h_trees` over factor
/// `H`). Returns `s + t − 2` guaranteed trees for `s, t ≥ 2` (plus any
/// extra trees a final residual Kruskal pass can peel), and `s + t − 1`
/// when either factor contributes a single tree.
///
/// Errors if either factor set is empty, or if a factor set is too large
/// to place (`s − 1` A-copies need distinct supernodes, `t − 1` B-trees
/// need distinct lift components).
pub fn star_product_disjoint_trees(
    sp: &StarProduct,
    g_trees: &[RootedTree],
    h_trees: &[RootedTree],
) -> Result<Vec<RootedTree>, ConstructError> {
    let (fg, fh) = sp.factors();
    let (ng, nh) = (fg.num_vertices(), fh.num_vertices());
    let n = (ng * nh) as usize;
    let (s, t) = (g_trees.len(), h_trees.len());
    if s == 0 || t == 0 {
        return Err(ConstructError::NoTrees(
            "each factor needs at least one spanning tree".to_string(),
        ));
    }
    // Degenerate factors: the product *is* the other factor.
    if ng == 1 {
        return Ok(h_trees.to_vec());
    }
    if nh == 1 {
        return Ok(g_trees.to_vec());
    }

    let mut trees: Vec<RootedTree> = Vec::new();

    // When a factor contributes a single tree, the leftover lift/copies
    // make one extra tree: fold it in by treating the *last* index as a
    // full member of the other family. (With s = t = 1 only the A-tree
    // exists — its lift and H-copy would collide with a B-tree's.)
    let (a_count, b_count) = match (s, t) {
        (_, 1) => (s, 0), // A-trees consume T_H^1 copies at distinct supernodes
        (1, _) => (0, t), // B-trees consume distinct lift(T_G^1) components
        _ => (s - 1, t - 1),
    };
    if a_count as u32 > ng {
        return Err(ConstructError::NoTrees(format!(
            "{a_count} A-trees need distinct supernodes, factor G has {ng}"
        )));
    }
    if b_count as u32 > nh {
        return Err(ConstructError::NoTrees(format!(
            "{b_count} B-trees need distinct lift components, factor H has {nh}"
        )));
    }

    let h_last = &h_trees[t - 1];

    // A-trees: full lift of T_G^j + copy of T_H^t at supernode b_j = j.
    for (j, g_tree) in g_trees.iter().take(a_count).enumerate() {
        let b = j as VertexId;
        let gt = reroot(g_tree, b);
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        // The H-copy at supernode b, rooted at T_H^t's own root.
        for (c, p) in h_last.edges() {
            parent[sp.vertex(b, c) as usize] = Some(sp.vertex(b, p));
        }
        // Each lift component, oriented away from its vertex at b.
        for x in 0..nh {
            let coord = lift_coords(sp, &gt, b, x);
            for (v, p) in gt.edges() {
                parent[sp.vertex(v, coord[v as usize]) as usize] =
                    Some(sp.vertex(p, coord[p as usize]));
            }
        }
        let root = sp.vertex(b, h_last.root());
        trees.push(
            RootedTree::from_parents(root, parent)
                .map_err(|e| ConstructError::NoTrees(format!("A-tree {j}: {e}")))?,
        );
    }

    // B-trees: copy of T_H^i everywhere + component i of lift(T_G^s).
    let g_last = &g_trees[s - 1];
    let g_root = g_last.root();
    for (i, h_tree) in h_trees.iter().take(b_count).enumerate() {
        let x = i as VertexId; // component index = coordinate at g_root
        let coord = lift_coords(sp, g_last, g_root, x);
        let mut parent: Vec<Option<VertexId>> = vec![None; n];
        // One lift component, oriented away from (g_root, x).
        for (v, p) in g_last.edges() {
            parent[sp.vertex(v, coord[v as usize]) as usize] =
                Some(sp.vertex(p, coord[p as usize]));
        }
        // T_H^i at every supernode, re-rooted at the component's vertex.
        for gv in 0..ng {
            let local_root = coord[gv as usize];
            let ht = reroot(h_tree, local_root);
            for (c, p) in ht.edges() {
                parent[sp.vertex(gv, c) as usize] = Some(sp.vertex(gv, p));
            }
        }
        let root = sp.vertex(g_root, x);
        trees.push(
            RootedTree::from_parents(root, parent)
                .map_err(|e| ConstructError::NoTrees(format!("B-tree {i}: {e}")))?,
        );
    }

    // Residual pass: deterministically peel any further spanning trees
    // from the so-far-unused product edges (ascending edge id).
    let g = sp.graph();
    let mut used = vec![false; g.num_edges() as usize];
    for tr in &trees {
        for e in tr.edge_ids(g) {
            used[e as usize] = true;
        }
    }
    loop {
        let mut dsu = Dsu::new(g.num_vertices());
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); g.num_vertices() as usize];
        let mut picked = Vec::new();
        for (e, u, v) in g.edges() {
            if !used[e as usize] && dsu.union(u, v) {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
                picked.push(e);
                if dsu.components() == 1 {
                    break;
                }
            }
        }
        if dsu.components() != 1 {
            break;
        }
        let mut parent = vec![None; g.num_vertices() as usize];
        let mut seen = vec![false; g.num_vertices() as usize];
        seen[0] = true;
        let mut stack = vec![0u32];
        while let Some(u) = stack.pop() {
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    parent[v as usize] = Some(u);
                    stack.push(v);
                }
            }
        }
        let tr = RootedTree::from_parents(0, parent).expect("Kruskal forest spans");
        for e in &picked {
            used[*e as usize] = true;
        }
        trees.push(tr);
    }

    Ok(trees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::tree::pairwise_edge_disjoint;
    use pf_graph::{builders, cartesian_product, shifted_product};

    fn check_disjoint_spanning(sp: &StarProduct, trees: &[RootedTree]) {
        assert!(!trees.is_empty());
        for t in trees {
            t.validate_spanning(sp.graph()).unwrap();
        }
        assert!(pairwise_edge_disjoint(trees, sp.graph()));
    }

    #[test]
    fn lift_plus_copies_span_a_twisted_product() {
        // K5 ∗ K4 with shifts, with explicit edge-disjoint Hamiltonian
        // paths as factor trees (s = t = 2).
        let sp = shifted_product(&builders::complete(5), &builders::complete(4));
        let g_trees = vec![
            RootedTree::from_path(&[0, 1, 2, 3, 4], 2).unwrap(), // 01 12 23 34
            RootedTree::from_path(&[1, 3, 0, 2, 4], 2).unwrap(), // 13 03 02 24
        ];
        let h_trees = vec![
            RootedTree::from_path(&[0, 1, 2, 3], 1).unwrap(), // 01 12 23
            RootedTree::from_path(&[1, 3, 0, 2], 1).unwrap(), // 13 03 02
        ];
        let (fg, fh) = sp.factors();
        assert!(pairwise_edge_disjoint(&g_trees, fg));
        assert!(pairwise_edge_disjoint(&h_trees, fh));
        let trees = star_product_disjoint_trees(&sp, &g_trees, &h_trees).unwrap();
        assert!(trees.len() >= g_trees.len() + h_trees.len() - 2);
        check_disjoint_spanning(&sp, &trees);
    }

    #[test]
    fn single_factor_tree_gets_the_ku_bound() {
        // Cycles have exactly one disjoint spanning tree each: s = t = 1,
        // so the construction must still produce s + t − 1 = 1 tree.
        let sp = cartesian_product(&builders::cycle(5), &builders::cycle(4));
        let g_trees = crate::baselines::greedy_edge_disjoint(&builders::cycle(5), 1);
        let h_trees = crate::baselines::greedy_edge_disjoint(&builders::cycle(4), 2);
        assert_eq!((g_trees.len(), h_trees.len()), (1, 1));
        let trees = star_product_disjoint_trees(&sp, &g_trees, &h_trees).unwrap();
        // s + t − 1 = 1 guaranteed; the residual pass may peel more
        // (C5 □ C4 carries two disjoint spanning trees) but that depends
        // on which factor edges the peeled trees left behind.
        assert!(!trees.is_empty());
        check_disjoint_spanning(&sp, &trees);
    }

    #[test]
    fn mixed_factor_counts() {
        // K4 (2 trees) ∗ C4 (1 tree) and the transpose.
        let k4 = builders::complete(4);
        let c4 = builders::cycle(4);
        for (g, h) in [(&k4, &c4), (&c4, &k4)] {
            let sp = shifted_product(g, h);
            let gt = crate::baselines::greedy_edge_disjoint(g, 3);
            let ht = crate::baselines::greedy_edge_disjoint(h, 4);
            let trees = star_product_disjoint_trees(&sp, &gt, &ht).unwrap();
            assert!(trees.len() >= gt.len() + ht.len() - 1);
            check_disjoint_spanning(&sp, &trees);
        }
    }

    #[test]
    fn backend_builds_and_rejects_foreign_substrates() {
        let sp = shifted_product(&builders::complete(4), &builders::complete(4));
        let backend = StarProductDisjoint::new(sp.clone(), 7);
        let trees = backend.build(sp.graph(), &Budget::unlimited()).unwrap();
        check_disjoint_spanning(&sp, &trees);

        let err = backend.build(&builders::torus2d(4, 4), &Budget::unlimited()).unwrap_err();
        assert!(matches!(err, ConstructError::UnsupportedSubstrate(_)));
    }

    #[test]
    fn backend_honors_tree_budget() {
        let sp = shifted_product(&builders::complete(5), &builders::complete(5));
        let backend = StarProductDisjoint::new(sp.clone(), 0);
        let trees = backend.build(sp.graph(), &Budget::trees(2)).unwrap();
        assert_eq!(trees.len(), 2);
        check_disjoint_spanning(&sp, &trees);
    }

    #[test]
    fn degenerate_single_vertex_factor_collapses_to_the_other() {
        let sp = cartesian_product(&builders::path(1), &builders::complete(4));
        let h_trees = crate::baselines::greedy_edge_disjoint(&builders::complete(4), 1);
        // A 1-vertex factor has one (empty) spanning tree.
        let g_trees = vec![RootedTree::from_parents(0, vec![None]).unwrap()];
        let trees = star_product_disjoint_trees(&sp, &g_trees, &h_trees).unwrap();
        check_disjoint_spanning(&sp, &trees);
        assert_eq!(trees.len(), h_trees.len());
    }
}
