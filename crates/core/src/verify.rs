//! Executable statements of the paper's theorems.
//!
//! Each checker returns `Ok(())` or a message naming the first violation.
//! They are used by unit/integration tests, by the experiment harness
//! (which re-verifies every claim it prints), and by the simulator's
//! embedding validation.

use crate::congestion::assign_unit_bandwidth;
use crate::rational::Rational;
use pf_graph::tree::edge_congestion;
use pf_graph::{Graph, RootedTree};

/// Every tree is a spanning tree of `g`.
pub fn verify_spanning_set(g: &Graph, trees: &[RootedTree]) -> Result<(), String> {
    for (i, t) in trees.iter().enumerate() {
        t.validate_spanning(g).map_err(|e| format!("tree {i}: {e}"))?;
    }
    Ok(())
}

/// Theorem 7.5-style depth bound: every tree has depth ≤ `limit`.
pub fn verify_max_depth(trees: &[RootedTree], limit: u32) -> Result<(), String> {
    for (i, t) in trees.iter().enumerate() {
        if t.depth() > limit {
            return Err(format!("tree {i} has depth {} > {limit}", t.depth()));
        }
    }
    Ok(())
}

/// Theorem 7.6-style congestion bound: every physical link appears in at
/// most `limit` trees.
pub fn verify_max_congestion(g: &Graph, trees: &[RootedTree], limit: u32) -> Result<(), String> {
    let c = edge_congestion(trees, g);
    for (e, &x) in c.iter().enumerate() {
        if x > limit {
            let (u, v) = g.endpoints(e as u32);
            return Err(format!("edge ({u},{v}) lies in {x} trees > {limit}"));
        }
    }
    Ok(())
}

/// Edge-disjointness (congestion ≤ 1).
pub fn verify_edge_disjoint(g: &Graph, trees: &[RootedTree]) -> Result<(), String> {
    verify_max_congestion(g, trees, 1)
}

/// Lemma 7.8: on every link shared by two trees, the reduction traffic of
/// the two trees flows in *opposite* directions (so each router input port
/// feeds at most one reduction). Reduction flows child → parent, i.e. from
/// the deeper endpoint to the shallower one.
pub fn verify_lemma_7_8(g: &Graph, trees: &[RootedTree]) -> Result<(), String> {
    verify_spanning_set(g, trees)?;
    // For each physical edge, record (tree, child-endpoint) uses.
    let mut uses: Vec<Vec<(usize, u32)>> = vec![Vec::new(); g.num_edges() as usize];
    for (ti, t) in trees.iter().enumerate() {
        for (child, parent) in t.edges() {
            let e = g.edge_id(child, parent).expect("validated above");
            uses[e as usize].push((ti, child));
        }
    }
    for (e, us) in uses.iter().enumerate() {
        if us.len() < 2 {
            continue;
        }
        if us.len() > 2 {
            let (u, v) = g.endpoints(e as u32);
            return Err(format!("edge ({u},{v}) used by {} trees", us.len()));
        }
        let ((ta, ca), (tb, cb)) = (us[0], us[1]);
        if ca == cb {
            let (u, v) = g.endpoints(e as u32);
            return Err(format!(
                "edge ({u},{v}): trees {ta} and {tb} both send reduction traffic from {ca}"
            ));
        }
    }
    Ok(())
}

/// Corollary 7.7: the aggregate bandwidth computed by Algorithm 1 on the
/// low-depth trees is at least `q·B/2` (unit `B`).
pub fn verify_low_depth_bandwidth(g: &Graph, trees: &[RootedTree], q: u64) -> Result<(), String> {
    let a = assign_unit_bandwidth(g, trees);
    let bound = Rational::new(q as i64, 2);
    if a.aggregate() < bound {
        return Err(format!("aggregate bandwidth {} below q/2 = {bound}", a.aggregate()));
    }
    Ok(())
}

/// Theorem 7.19: edge-disjoint trees each get the full link bandwidth.
pub fn verify_full_bandwidth_per_tree(g: &Graph, trees: &[RootedTree]) -> Result<(), String> {
    let a = assign_unit_bandwidth(g, trees);
    for (i, b) in a.per_tree.iter().enumerate() {
        if *b != Rational::ONE {
            return Err(format!("tree {i} gets bandwidth {b}, expected 1"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disjoint::find_edge_disjoint;
    use crate::lowdepth::low_depth_trees;
    use pf_topo::{PolarFly, Singer};

    #[test]
    fn low_depth_passes_all_checks() {
        for q in [3u64, 5, 7, 9, 11] {
            let pf = PolarFly::new(q);
            let out = low_depth_trees(&pf, None).unwrap();
            let g = pf.graph();
            verify_spanning_set(g, &out.trees).unwrap();
            verify_max_depth(&out.trees, 3).unwrap();
            verify_max_congestion(g, &out.trees, 2).unwrap();
            verify_lemma_7_8(g, &out.trees).unwrap_or_else(|e| panic!("q={q}: {e}"));
            verify_low_depth_bandwidth(g, &out.trees, q).unwrap();
        }
    }

    #[test]
    fn hamiltonian_passes_all_checks() {
        for q in [3u64, 4, 5, 7, 9] {
            let s = Singer::new(q);
            let sol = find_edge_disjoint(&s, 30, 11);
            let g = s.graph();
            verify_spanning_set(g, &sol.trees).unwrap();
            verify_edge_disjoint(g, &sol.trees).unwrap();
            verify_full_bandwidth_per_tree(g, &sol.trees).unwrap();
            verify_max_depth(&sol.trees, ((s.n() - 1) / 2) as u32).unwrap();
        }
    }

    #[test]
    fn checkers_reject_violations() {
        // Two identical path trees on C4: congestion 2, same reduction
        // direction on every shared edge -> Lemma 7.8 violated.
        let mut g = Graph::new(4);
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4);
        }
        let t = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let trees = vec![t.clone(), t];
        assert!(verify_edge_disjoint(&g, &trees).is_err());
        assert!(verify_max_congestion(&g, &trees, 2).is_ok());
        assert!(verify_max_congestion(&g, &trees, 1).is_err());
        assert!(verify_lemma_7_8(&g, &trees).is_err());
        assert!(verify_max_depth(&trees, 2).is_err());
        assert!(verify_max_depth(&trees, 3).is_ok());
    }

    #[test]
    fn opposite_direction_overlap_passes_lemma_7_8() {
        // Same path, opposite roots: shared edges carry opposite flows.
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(i, i + 1);
        }
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[0, 1, 2, 3], 3).unwrap();
        verify_lemma_7_8(&g, &[t1, t2]).unwrap();
    }

    #[test]
    fn spanning_check_catches_foreign_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let bad = RootedTree::from_parents(0, vec![None, Some(0), Some(0)]).unwrap();
        assert!(verify_spanning_set(&g, &[bad]).is_err());
    }
}
