//! Algorithm 1 — performance under congestion.
//!
//! Given a network and a set of embedded allreduce trees, repeatedly find
//! the bottleneck link (minimum remaining-bandwidth / congestion ratio),
//! assign that ratio as the bandwidth of every still-unassigned tree using
//! the link, and subtract the consumed bandwidth from all links those trees
//! touch. The paper notes the result is independent of tie-breaking among
//! bottleneck candidates; we break ties deterministically by edge id.

use crate::rational::Rational;
use pf_graph::{Graph, RootedTree};

/// Per-tree bandwidth assignment computed by Algorithm 1.
#[derive(Debug, Clone)]
pub struct BandwidthAssignment {
    /// Bandwidth `B_i` per tree, in the same order as the input set.
    pub per_tree: Vec<Rational>,
    /// Congestion `C(e)` per undirected edge (graph edge-id order): how
    /// many trees embed each link. This is the theoretical vector the
    /// simulator's measured per-link congestion is checked against
    /// (`tests/paper_claims.rs`).
    pub per_edge: Vec<u32>,
    /// Worst-case link congestion over the whole embedding
    /// (`max(per_edge)`).
    pub max_congestion: u32,
}

impl BandwidthAssignment {
    /// Aggregate allreduce bandwidth `Σ B_i` (Theorem 5.1).
    pub fn aggregate(&self) -> Rational {
        self.per_tree.iter().copied().fold(Rational::ZERO, |a, b| a + b)
    }

    /// Minimum per-tree bandwidth.
    pub fn min_tree(&self) -> Rational {
        self.per_tree.iter().copied().min().unwrap_or(Rational::ZERO)
    }
}

/// Runs Algorithm 1: computes the bandwidth of each tree in `trees` when
/// embedded concurrently in `g` with uniform link bandwidth
/// `link_bandwidth`.
///
/// Every tree must be a validated spanning tree of `g` (panics otherwise —
/// validate with [`RootedTree::validate_spanning`] first).
///
/// ```
/// use pf_allreduce::congestion::assign_unit_bandwidth;
/// use pf_graph::{Graph, RootedTree};
/// let mut g = Graph::new(3);
/// g.add_edge(0, 1); g.add_edge(1, 2); g.add_edge(0, 2);
/// let t = RootedTree::from_path(&[0, 1, 2], 0).unwrap();
/// // Two copies of the same tree share every link: 1/2 each.
/// let a = assign_unit_bandwidth(&g, &[t.clone(), t]);
/// assert_eq!(a.aggregate().to_string(), "1");
/// assert_eq!(a.max_congestion, 2);
/// ```
pub fn assign_bandwidth(
    g: &Graph,
    trees: &[RootedTree],
    link_bandwidth: Rational,
) -> BandwidthAssignment {
    let ne = g.num_edges() as usize;
    let nt = trees.len();
    // Tree -> edge-id list; edge -> trees containing it.
    let tree_edges: Vec<Vec<u32>> = trees.iter().map(|t| t.edge_ids(g)).collect();
    let mut edge_trees: Vec<Vec<usize>> = vec![Vec::new(); ne];
    for (ti, ids) in tree_edges.iter().enumerate() {
        for &e in ids {
            edge_trees[e as usize].push(ti);
        }
    }

    let mut avail = vec![link_bandwidth; ne]; // L(e)
    // C(e), captured before the water-filling loop decrements it.
    let per_edge: Vec<u32> = edge_trees.iter().map(|ts| ts.len() as u32).collect();
    let mut congestion = per_edge.clone();
    let max_congestion = per_edge.iter().copied().max().unwrap_or(0);

    let mut bw = vec![Rational::ZERO; nt];
    let mut assigned = vec![false; nt];
    let mut edge_alive: Vec<bool> = congestion.iter().map(|&c| c > 0).collect();
    let mut remaining = nt;

    while remaining > 0 {
        // e_min = argmin L(e) / C(e) over live edges.
        let mut best: Option<(Rational, usize)> = None;
        for e in 0..ne {
            if !edge_alive[e] || congestion[e] == 0 {
                continue;
            }
            let ratio = avail[e] / Rational::from_int(congestion[e] as i64);
            match best {
                Some((b, _)) if b <= ratio => {}
                _ => best = Some((ratio, e)),
            }
        }
        let (share, emin) = best.expect("unassigned trees must still cover live edges");

        // Assign `share` to every unassigned tree through emin, then
        // release that bandwidth on all their links.
        let through: Vec<usize> = edge_trees[emin]
            .iter()
            .copied()
            .filter(|&ti| !assigned[ti])
            .collect();
        debug_assert!(!through.is_empty());
        for ti in through {
            bw[ti] = share;
            assigned[ti] = true;
            remaining -= 1;
            for &e in &tree_edges[ti] {
                avail[e as usize] -= share;
                congestion[e as usize] -= 1;
            }
        }
        edge_alive[emin] = false;
    }

    BandwidthAssignment { per_tree: bw, per_edge, max_congestion }
}

/// Convenience wrapper with unit link bandwidth.
pub fn assign_unit_bandwidth(g: &Graph, trees: &[RootedTree]) -> BandwidthAssignment {
    assign_bandwidth(g, trees, Rational::ONE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_graph::Graph;

    fn cycle(n: u32) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn single_tree_gets_full_link_bandwidth() {
        let g = cycle(4);
        let t = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let a = assign_unit_bandwidth(&g, &[t]);
        assert_eq!(a.per_tree, vec![Rational::ONE]);
        assert_eq!(a.aggregate(), Rational::ONE);
        assert_eq!(a.max_congestion, 1);
    }

    #[test]
    fn two_disjoint_trees_get_full_bandwidth_each() {
        // C4 splits into two edge-disjoint spanning trees (paths).
        let g = cycle(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap(); // edges 01,12,23
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap(); // edges 01?? no: 10,03,32
        // t2 uses edge (0,1) as well — so craft disjoint: star-ish unavailable on C4.
        // Instead check overlap behavior below; here use two copies of the
        // SAME path edges reversed, which fully overlap:
        let a = assign_unit_bandwidth(&g, &[t1.clone(), t1.clone()]);
        assert_eq!(a.per_tree, vec![Rational::new(1, 2), Rational::new(1, 2)]);
        assert_eq!(a.aggregate(), Rational::ONE);
        assert_eq!(a.max_congestion, 2);
        let _ = t2;
    }

    #[test]
    fn partial_overlap_water_filling() {
        // C4: t1 = path 0-1-2-3 (edges 01,12,23), t2 = path 1-0-3-2 (edges 01,03,23).
        // Overlap on edges 01 and 23 (congestion 2); each tree gets 1/2,
        // leaving 1/2 unused on its private edge.
        let g = cycle(4);
        let t1 = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let t2 = RootedTree::from_path(&[1, 0, 3, 2], 0).unwrap();
        let a = assign_unit_bandwidth(&g, &[t1, t2]);
        assert_eq!(a.per_tree, vec![Rational::new(1, 2), Rational::new(1, 2)]);
        assert_eq!(a.aggregate(), Rational::ONE);
        assert_eq!(a.max_congestion, 2);
        // Per-edge congestion: 01 and 23 shared (2), 12 and 03 private (1).
        assert_eq!(a.per_edge.iter().filter(|&&c| c == 2).count(), 2);
        assert_eq!(a.per_edge.iter().filter(|&&c| c == 1).count(), 2);
        assert_eq!(a.per_edge.iter().copied().max(), Some(a.max_congestion));
    }

    #[test]
    fn asymmetric_overlap() {
        // Path graph 0-1-2 plus chord? Use K3: trees t1 = 0-1-2 path
        // (edges 01,12), t2 = 1-0, 0-2 star at 0 (edges 01,02).
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let t1 = RootedTree::from_path(&[0, 1, 2], 0).unwrap();
        let t2 = RootedTree::from_parents(0, vec![None, Some(0), Some(0)]).unwrap();
        let t3 = RootedTree::from_parents(2, vec![Some(2), Some(0), None]).unwrap(); // edges 02,01
        // t1: {01,12}, t2: {01,02}, t3: {01,02}: edge 01 congestion 3.
        let a = assign_unit_bandwidth(&g, &[t1, t2, t3]);
        assert_eq!(a.per_tree, vec![Rational::new(1, 3); 3]);
        assert_eq!(a.max_congestion, 3);
        assert_eq!(a.aggregate(), Rational::ONE);
    }

    #[test]
    fn waterfill_gives_leftover_to_uncongested_tree() {
        // K4. t1 and t2 share one edge; t3 edge-disjoint from both.
        let mut g = Graph::new(4);
        for u in 0..4 {
            for v in u + 1..4 {
                g.add_edge(u, v);
            }
        }
        // t1: star at 0 (01, 02, 03); t2: path 1-0, 0-2, 2-3 -> (01, 02, 23);
        // t3: path 2-1, 1-3, 3-0 -> (12, 13, 03)? 03 overlaps t1. Choose
        // t3: 1-2, 1-3 star at 1 plus 3-0? parent: 0<-3, 2<-1, 3<-1, root 1:
        // edges (12, 13, 03).
        let t1 = RootedTree::from_parents(0, vec![None, Some(0), Some(0), Some(0)]).unwrap();
        let t2 =
            RootedTree::from_parents(0, vec![None, Some(0), Some(0), Some(2)]).unwrap();
        let t3 =
            RootedTree::from_parents(1, vec![Some(3), None, Some(1), Some(1)]).unwrap();
        let a = assign_unit_bandwidth(&g, &[t1, t2, t3]);
        // t1,t2 congestion-2 on (0,1) and (0,2): each gets 1/2.
        // t3 overlaps t1 on (0,3): after t1 takes 1/2 there, t3 gets 1/2.
        assert_eq!(
            a.per_tree,
            vec![Rational::new(1, 2), Rational::new(1, 2), Rational::new(1, 2)]
        );
        assert_eq!(a.aggregate(), Rational::new(3, 2));
    }

    #[test]
    fn scales_with_link_bandwidth() {
        let g = cycle(4);
        let t = RootedTree::from_path(&[0, 1, 2, 3], 0).unwrap();
        let a = assign_bandwidth(&g, &[t.clone(), t], Rational::from_int(10));
        assert_eq!(a.per_tree, vec![Rational::from_int(5); 2]);
    }

    #[test]
    fn empty_tree_set() {
        let g = cycle(3);
        let a = assign_unit_bandwidth(&g, &[]);
        assert!(a.per_tree.is_empty());
        assert_eq!(a.aggregate(), Rational::ZERO);
        assert_eq!(a.max_congestion, 0);
    }
}
