//! Golden fixture for the `experiments topo-compare` table.
//!
//! The quick-tier table — substrate × construction rows with the exact
//! rate bound and optimality-gap columns (`docs/RATES.md`) — is committed
//! at `tests/golden/topo_compare_quick.txt` and must reproduce byte for
//! byte. Any change to the catalog, a backend's tie-breaking, Algorithm 1
//! pricing, the min-cut computation, or the rendering shows up as a byte
//! diff; if the change is intentional, regenerate (and review the diff)
//! with
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p pf-bench --test golden_topo_compare
//! ```

use pf_bench::topo_compare::render_topo_compare;
use std::path::{Path, PathBuf};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/topo_compare_quick.txt")
}

#[test]
fn quick_table_matches_the_golden_fixture() {
    let produced = render_topo_compare(false);
    let path = golden_path();

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, &produced).expect("write golden fixture");
        return;
    }

    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {} ({e}); regenerate with GOLDEN_REGEN=1", path.display())
    });
    assert_eq!(
        produced.into_bytes(),
        committed.into_bytes(),
        "topo-compare table diverged from {}; if intentional, regenerate with GOLDEN_REGEN=1 \
         and review the diff",
        path.display()
    );
}

#[test]
fn fixture_carries_the_gap_columns() {
    // Guard the fixture's shape, not just its bytes: the header names the
    // rate-bound and gap columns, and the certified-optimal rows (the
    // edge-disjoint star-product construction, gap 1) are present.
    let table = render_topo_compare(false);
    let header = table.lines().next().expect("non-empty table");
    for col in ["rate bd", "gap", "gap~"] {
        assert!(header.contains(col), "missing column {col}");
    }
    assert!(table.contains("star-disjoint"), "star-product rows missing");
    assert!(table.lines().count() > 20, "suspiciously small table");
}
