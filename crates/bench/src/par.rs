//! Small fork-join helper for embarrassingly parallel radix sweeps.
//!
//! The Figure 5 / §7.3 sweeps evaluate 43 independent prime powers; each
//! point builds its own topology and trees, so they parallelize trivially.
//! Workers steal indices from a shared atomic cursor (`std::thread::scope`
//! scoped threads), and results land in order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every item on a scoped worker pool, preserving input
/// order in the output. `f` must be `Sync` (it runs concurrently).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let out: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                out.lock().unwrap()[i] = Some(r);
            });
        }
    });
    out.into_inner().unwrap().into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavier_work_matches_serial() {
        let qs = pf_galois::prime_powers_in(3, 16);
        let par = parallel_map(&qs, |&q| {
            pf_topo::PolarFly::new(q).graph().num_edges()
        });
        let ser: Vec<u32> =
            qs.iter().map(|&q| pf_topo::PolarFly::new(q).graph().num_edges()).collect();
        assert_eq!(par, ser);
    }
}
