//! Small fork-join helper for embarrassingly parallel radix sweeps.
//!
//! The Figure 5 / §7.3 sweeps evaluate 43 independent prime powers; each
//! point builds its own topology and trees, so they parallelize trivially.
//! Workers steal indices from a shared atomic cursor (`std::thread::scope`
//! scoped threads) into per-worker buffers, merged in order at join — no
//! shared lock on the hot path, and the output is identical to the serial
//! map regardless of scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Applies `f` to every item on a scoped worker pool, preserving input
/// order in the output. `f` must be `Sync` (it runs concurrently).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(n);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Each worker accumulates (index, result) locally; taking the output
    // mutex once per item would serialize cheap maps on lock traffic.
    let buffers: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in buffers.into_iter().flatten() {
        debug_assert!(out[i].is_none(), "index {i} produced twice");
        out[i] = Some(r);
    }
    out.into_iter().map(|r| r.expect("all slots filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn heavier_work_matches_serial() {
        let qs = pf_galois::prime_powers_in(3, 16);
        let par = parallel_map(&qs, |&q| {
            pf_topo::PolarFly::new(q).graph().num_edges()
        });
        let ser: Vec<u32> =
            qs.iter().map(|&q| pf_topo::PolarFly::new(q).graph().num_edges()).collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Wildly uneven per-item cost shuffles completion order across
        // workers; the merged output must still be the serial one.
        let items: Vec<u64> = (0..64).rev().collect();
        let out = parallel_map(&items, |&x| {
            let mut acc = 0u64;
            for i in 0..(x * 2_000) {
                acc = acc.wrapping_add(i ^ x);
            }
            (x, acc).1 ^ x
        });
        let ser: Vec<u64> = items
            .iter()
            .map(|&x| {
                let mut acc = 0u64;
                for i in 0..(x * 2_000) {
                    acc = acc.wrapping_add(i ^ x);
                }
                acc ^ x
            })
            .collect();
        assert_eq!(out, ser);
    }
}
