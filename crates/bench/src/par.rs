//! Re-export of the fork-join helper, which moved into `pf-simnet` so the
//! engine's deterministic sharded mode ([`pf_simnet::SimConfig::threads`])
//! can use the same scheduler as the bench sweeps. Bench callers keep
//! their `crate::par::parallel_map` spelling.

pub use pf_simnet::par::{parallel_map, parallel_map_workers};
