//! `experiments topo-compare` — the cross-topology construction table.
//!
//! For every substrate in the shared quick catalog
//! ([`pf_allreduce::substrates::quick_catalog`]) and every applicable
//! [`pf_allreduce::TreeConstruction`] backend
//! ([`pf_allreduce::substrates::backends_for`]), the table reports what
//! the construction found and what Algorithm 1 makes of it:
//!
//! * trees found and maximum tree depth;
//! * the Algorithm 1 aggregate bandwidth `Σ B_i`, in exact rationals;
//! * the substrate-generic bound `min(|E|/(n−1), δ_min)`
//!   ([`pf_allreduce::perf::substrate_bandwidth_bound`]) it must respect;
//! * the exact rate bound `min(|E|/(n−1), λ(G))`
//!   ([`pf_allreduce::rate::allreduce_rate_bound`], see `docs/RATES.md`)
//!   and the optimality gap `Σ B_i / rate bound` — as an exact rational
//!   and a float rendering (`1` = the construction is certified
//!   rate-optimal on that substrate);
//! * measured worst-case link congestion next to the backend's claimed
//!   bound (Theorem 7.6 gives 2 for low-depth, Theorem 7.19 gives 1 for
//!   edge-disjoint sets; `-` when the backend claims nothing).
//!
//! Everything is deterministic — same catalog, same seeds, same
//! tie-breaking — so two runs print byte-identical tables (pinned by
//! `rows_are_deterministic` and the golden fixture in
//! `tests/golden_topo_compare.rs`). Pass `--full` to sweep the nightly
//! catalog instead (all paper radices q ∈ {3, 5, 7, 9, 11} and both
//! labelings).

use pf_allreduce::plan::AllreducePlan;
use pf_allreduce::rate::allreduce_rate_bound;
use pf_allreduce::rational::Rational;
use pf_allreduce::substrates::{backends_for, closed_form_rate_bound, full_catalog, quick_catalog};
use pf_allreduce::{Budget, ConstructError};
use std::fmt::Write as _;

/// One backend × substrate line of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoCompareRow {
    /// Catalog substrate name.
    pub substrate: String,
    /// Substrate order / size.
    pub vertices: u32,
    /// Substrate edge count.
    pub edges: u32,
    /// Backend name (the plan label).
    pub backend: &'static str,
    /// Trees the construction produced.
    pub trees: usize,
    /// Maximum tree depth.
    pub depth: u32,
    /// Algorithm 1 aggregate bandwidth `Σ B_i`.
    pub aggregate: Rational,
    /// The substrate-generic aggregate bound `min(|E|/(n−1), δ_min)`.
    pub bound: Rational,
    /// The exact rate bound `min(|E|/(n−1), λ(G))` — never above `bound`.
    pub rate_bound: Rational,
    /// Optimality gap `aggregate / rate_bound ∈ (0, 1]`, exact.
    pub gap: Rational,
    /// Measured worst-case link congestion.
    pub max_congestion: u32,
    /// The backend's claimed congestion bound, when it has one.
    pub congestion_bound: Option<u32>,
}

/// Builds the table rows over the given catalog tier. Backends that
/// (correctly) reject a substrate as unsupported contribute no row;
/// any other construction error is a bug and panics.
pub fn topo_compare_rows(full: bool) -> Vec<TopoCompareRow> {
    let catalog = if full { full_catalog() } else { quick_catalog() };
    let mut rows = Vec::new();
    for sub in &catalog {
        // One min-cut run per substrate; every backend row reuses it.
        let rate = allreduce_rate_bound(&sub.graph)
            .unwrap_or_else(|e| panic!("{}: {e}", sub.name));
        if let Some(closed) = closed_form_rate_bound(&sub.name) {
            assert_eq!(
                rate.bound, closed,
                "{}: generic rate bound disagrees with the closed form",
                sub.name
            );
        }
        for backend in backends_for(&sub.name) {
            let plan =
                match AllreducePlan::construct(&sub.graph, backend.as_ref(), &Budget::unlimited())
                {
                    Ok(plan) => plan,
                    Err(ConstructError::UnsupportedSubstrate(_)) => continue,
                    Err(e) => panic!("{} on {}: {e}", backend.name(), sub.name),
                };
            assert!(
                rate.certifies(plan.aggregate),
                "{} on {}: aggregate beats the rate bound",
                backend.name(),
                sub.name
            );
            assert!(
                rate.bound <= plan.substrate_bound(),
                "{}: rate bound must refine the substrate bound",
                sub.name
            );
            if let Some(bound) = backend.congestion_bound() {
                assert!(
                    plan.max_congestion <= bound,
                    "{} on {}: congestion bound broken",
                    backend.name(),
                    sub.name
                );
            }
            rows.push(TopoCompareRow {
                substrate: sub.name.clone(),
                vertices: sub.graph.num_vertices(),
                edges: sub.graph.num_edges(),
                backend: backend.name(),
                trees: plan.trees.len(),
                depth: plan.depth,
                aggregate: plan.aggregate,
                bound: plan.substrate_bound(),
                rate_bound: rate.bound,
                gap: rate.gap(plan.aggregate),
                max_congestion: plan.max_congestion,
                congestion_bound: backend.congestion_bound(),
            });
        }
    }
    rows
}

/// Renders the full table (header, rows, legend) as one string — the
/// golden fixture in `tests/golden_topo_compare.rs` pins this byte for
/// byte, and [`print_topo_compare`] prints it.
pub fn render_topo_compare(full: bool) -> String {
    let rows = topo_compare_rows(full);
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>5} {:>5}  {:<14} {:>5} {:>5} {:>10} {:>10} {:>8} {:>9} {:>7} {:>5} {:>6}",
        "substrate", "n", "|E|", "construction", "trees", "depth", "agg bw", "bound", "rate bd",
        "gap", "gap~", "cong", "claim"
    )
    .unwrap();
    for r in &rows {
        writeln!(
            out,
            "{:<16} {:>5} {:>5}  {:<14} {:>5} {:>5} {:>10} {:>10} {:>8} {:>9} {:>7.4} {:>5} {:>6}",
            r.substrate,
            r.vertices,
            r.edges,
            r.backend,
            r.trees,
            r.depth,
            r.aggregate.to_string(),
            r.bound.to_string(),
            r.rate_bound.to_string(),
            r.gap.to_string(),
            r.gap.to_f64(),
            r.max_congestion,
            r.congestion_bound.map_or_else(|| "-".to_string(), |c| c.to_string()),
        )
        .unwrap();
    }
    out.push_str(
        "\n(agg bw = Algorithm 1 aggregate Σ B_i in exact rationals; \
         bound = min(|E|/(n−1), δ_min);\n",
    );
    out.push_str(
        " rate bd = min(|E|/(n−1), λ(G)) — the exact rate upper bound, docs/RATES.md; \
         gap = agg bw / rate bd\n",
    );
    out.push_str(
        " as an exact rational, gap~ its float rendering, 1 = certified rate-optimal;\n",
    );
    out.push_str(
        " cong = measured worst-case link congestion; claim = the backend's guaranteed bound —\n",
    );
    out.push_str(" Theorem 7.6 gives 2 for low-depth trees, Theorem 7.19 gives 1 for disjoint sets)\n");
    out
}

/// Prints the table.
pub fn print_topo_compare(full: bool) {
    crate::print_header("topology-agnostic construction comparison");
    print!("{}", render_topo_compare(full));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic() {
        let a = topo_compare_rows(false);
        let b = topo_compare_rows(false);
        assert_eq!(a, b);
    }

    #[test]
    fn quick_tier_covers_three_by_three() {
        // The acceptance floor: at least 3 constructions × 3 substrates,
        // with every row honest about its bounds (asserted during
        // construction).
        let rows = topo_compare_rows(false);
        let substrates: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.substrate.as_str()).collect();
        let backends: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.backend).collect();
        assert!(substrates.len() >= 3, "substrates: {substrates:?}");
        assert!(backends.len() >= 3, "backends: {backends:?}");
        // The specializations appear on their home substrates.
        assert!(rows.iter().any(|r| r.backend == "low-depth"));
        assert!(rows.iter().any(|r| r.backend == "star-disjoint"));
        assert!(rows.iter().any(|r| r.backend == "kary-multitree"));
    }

    #[test]
    fn gap_columns_are_well_formed() {
        for r in topo_compare_rows(false) {
            assert!(r.rate_bound <= r.bound, "{}: rate bound must refine", r.substrate);
            assert!(r.gap.is_positive(), "{}/{}", r.substrate, r.backend);
            assert!(r.gap <= Rational::ONE, "{}/{}", r.substrate, r.backend);
            assert_eq!(r.gap * r.rate_bound, r.aggregate, "{}/{}", r.substrate, r.backend);
        }
    }
}
