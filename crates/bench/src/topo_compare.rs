//! `experiments topo-compare` — the cross-topology construction table.
//!
//! For every substrate in the shared quick catalog
//! ([`pf_allreduce::substrates::quick_catalog`]) and every applicable
//! [`pf_allreduce::TreeConstruction`] backend
//! ([`pf_allreduce::substrates::backends_for`]), the table reports what
//! the construction found and what Algorithm 1 makes of it:
//!
//! * trees found and maximum tree depth;
//! * the Algorithm 1 aggregate bandwidth `Σ B_i`, in exact rationals;
//! * the substrate-generic bound `min(|E|/(n−1), δ_min)`
//!   ([`pf_allreduce::perf::substrate_bandwidth_bound`]) it must respect;
//! * measured worst-case link congestion next to the backend's claimed
//!   bound (Theorem 7.6 gives 2 for low-depth, Theorem 7.19 gives 1 for
//!   edge-disjoint sets; `-` when the backend claims nothing).
//!
//! Everything is deterministic — same catalog, same seeds, same
//! tie-breaking — so two runs print byte-identical tables (pinned by
//! `rows_are_deterministic`). Pass `--full` to sweep the nightly catalog
//! instead (all paper radices q ∈ {3, 5, 7, 9, 11} and both labelings).

use pf_allreduce::plan::AllreducePlan;
use pf_allreduce::rational::Rational;
use pf_allreduce::substrates::{backends_for, full_catalog, quick_catalog};
use pf_allreduce::{Budget, ConstructError};

/// One backend × substrate line of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoCompareRow {
    /// Catalog substrate name.
    pub substrate: String,
    /// Substrate order / size.
    pub vertices: u32,
    /// Substrate edge count.
    pub edges: u32,
    /// Backend name (the plan label).
    pub backend: &'static str,
    /// Trees the construction produced.
    pub trees: usize,
    /// Maximum tree depth.
    pub depth: u32,
    /// Algorithm 1 aggregate bandwidth `Σ B_i`.
    pub aggregate: Rational,
    /// The substrate-generic aggregate bound.
    pub bound: Rational,
    /// Measured worst-case link congestion.
    pub max_congestion: u32,
    /// The backend's claimed congestion bound, when it has one.
    pub congestion_bound: Option<u32>,
}

/// Builds the table rows over the given catalog tier. Backends that
/// (correctly) reject a substrate as unsupported contribute no row;
/// any other construction error is a bug and panics.
pub fn topo_compare_rows(full: bool) -> Vec<TopoCompareRow> {
    let catalog = if full { full_catalog() } else { quick_catalog() };
    let mut rows = Vec::new();
    for sub in &catalog {
        for backend in backends_for(&sub.name) {
            let plan =
                match AllreducePlan::construct(&sub.graph, backend.as_ref(), &Budget::unlimited())
                {
                    Ok(plan) => plan,
                    Err(ConstructError::UnsupportedSubstrate(_)) => continue,
                    Err(e) => panic!("{} on {}: {e}", backend.name(), sub.name),
                };
            assert!(
                plan.aggregate <= plan.substrate_bound(),
                "{} on {}: aggregate beats the substrate bound",
                backend.name(),
                sub.name
            );
            if let Some(bound) = backend.congestion_bound() {
                assert!(
                    plan.max_congestion <= bound,
                    "{} on {}: congestion bound broken",
                    backend.name(),
                    sub.name
                );
            }
            rows.push(TopoCompareRow {
                substrate: sub.name.clone(),
                vertices: sub.graph.num_vertices(),
                edges: sub.graph.num_edges(),
                backend: backend.name(),
                trees: plan.trees.len(),
                depth: plan.depth,
                aggregate: plan.aggregate,
                bound: plan.substrate_bound(),
                max_congestion: plan.max_congestion,
                congestion_bound: backend.congestion_bound(),
            });
        }
    }
    rows
}

/// Prints the table.
pub fn print_topo_compare(full: bool) {
    crate::print_header("topology-agnostic construction comparison");
    let rows = topo_compare_rows(full);
    println!(
        "{:<16} {:>5} {:>5}  {:<14} {:>5} {:>5} {:>10} {:>10} {:>5} {:>6}",
        "substrate", "n", "|E|", "construction", "trees", "depth", "agg bw", "bound", "cong",
        "claim"
    );
    for r in &rows {
        println!(
            "{:<16} {:>5} {:>5}  {:<14} {:>5} {:>5} {:>10} {:>10} {:>5} {:>6}",
            r.substrate,
            r.vertices,
            r.edges,
            r.backend,
            r.trees,
            r.depth,
            r.aggregate.to_string(),
            r.bound.to_string(),
            r.max_congestion,
            r.congestion_bound.map_or_else(|| "-".to_string(), |c| c.to_string()),
        );
    }
    println!(
        "\n(agg bw = Algorithm 1 aggregate Σ B_i in exact rationals; bound = min(|E|/(n−1), δ_min);"
    );
    println!(
        " cong = measured worst-case link congestion; claim = the backend's guaranteed bound —"
    );
    println!(" Theorem 7.6 gives 2 for low-depth trees, Theorem 7.19 gives 1 for disjoint sets)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic() {
        let a = topo_compare_rows(false);
        let b = topo_compare_rows(false);
        assert_eq!(a, b);
    }

    #[test]
    fn quick_tier_covers_three_by_three() {
        // The acceptance floor: at least 3 constructions × 3 substrates,
        // with every row honest about its bounds (asserted during
        // construction).
        let rows = topo_compare_rows(false);
        let substrates: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.substrate.as_str()).collect();
        let backends: std::collections::BTreeSet<_> =
            rows.iter().map(|r| r.backend).collect();
        assert!(substrates.len() >= 3, "substrates: {substrates:?}");
        assert!(backends.len() >= 3, "backends: {backends:?}");
        // The specializations appear on their home substrates.
        assert!(rows.iter().any(|r| r.backend == "low-depth"));
        assert!(rows.iter().any(|r| r.backend == "star-disjoint"));
        assert!(rows.iter().any(|r| r.backend == "kary-multitree"));
    }
}
