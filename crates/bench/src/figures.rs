//! Graphviz (DOT) renderings of the paper's graph figures.
//!
//! `experiments -- dot [--out DIR]` writes:
//!
//! * `singer_q3.dot`, `singer_q4.dot` — Figure 2's Singer graphs with
//!   edges colored by edge sum and reflection points filled,
//! * `hamiltonian_q3.dot`, `hamiltonian_q4.dot` — Figure 4's edge-disjoint
//!   Hamiltonian path sets (one color pair per path, unused edges gray),
//! * `layout_q5.dot` — Figure 1-style cluster layout of `ER_5`.
//!
//! Render with e.g. `circo -Tsvg singer_q3.dot -o singer_q3.svg`.

use pf_allreduce::disjoint::find_edge_disjoint;
use pf_topo::{Layout, PolarFly, Singer};
use std::fmt::Write as _;
use std::path::Path;

/// A small palette matching the figures' feel; cycled when more colors
/// than entries are needed.
const PALETTE: [&str; 8] =
    ["red", "green3", "blue", "cyan3", "orange", "purple", "brown", "gray40"];

fn color_of(idx: usize) -> &'static str {
    PALETTE[idx % PALETTE.len()]
}

/// DOT for the Singer graph `S_q`, edges colored by difference-set edge
/// sum, reflection points (quadrics) filled with their self-loop color.
pub fn singer_dot(q: u64) -> String {
    let s = Singer::new(q);
    let mut out = String::new();
    writeln!(out, "// Singer graph S_{q}: N = {}, D = {:?}", s.n(), s.difference_set()).unwrap();
    writeln!(out, "graph singer_q{q} {{").unwrap();
    writeln!(out, "  layout=circo; node [shape=circle, fontsize=10];").unwrap();
    let color_index =
        |d: u64| s.difference_set().iter().position(|&x| x == d).unwrap();
    for v in s.graph().vertices() {
        if s.is_reflection(v) {
            let d = (2 * v as u64) % s.n();
            writeln!(
                out,
                "  {v} [style=filled, fillcolor={}, fontcolor=white];",
                color_of(color_index(d))
            )
            .unwrap();
        } else {
            writeln!(out, "  {v};").unwrap();
        }
    }
    for (e, u, v) in s.graph().edges() {
        let d = s.edge_sum(e);
        writeln!(out, "  {u} -- {v} [color={}];", color_of(color_index(d))).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// DOT for a maximal set of edge-disjoint Hamiltonian paths on `S_q`:
/// each path drawn in its two alternating colors, unused edges in gray.
pub fn hamiltonian_dot(q: u64, seed: u64) -> String {
    let s = Singer::new(q);
    let sol = find_edge_disjoint(&s, 30, seed);
    let mut edge_owner: Vec<Option<usize>> = vec![None; s.graph().num_edges() as usize];
    for (pi, t) in sol.trees.iter().enumerate() {
        for id in t.edge_ids(s.graph()) {
            edge_owner[id as usize] = Some(pi);
        }
    }
    let mut out = String::new();
    writeln!(out, "// {} edge-disjoint Hamiltonian paths on S_{q}: pairs {:?}", sol.pairs.len(), sol.pairs).unwrap();
    writeln!(out, "graph hamiltonian_q{q} {{").unwrap();
    writeln!(out, "  layout=circo; node [shape=circle, fontsize=10];").unwrap();
    for v in s.graph().vertices() {
        writeln!(out, "  {v};").unwrap();
    }
    for (e, u, v) in s.graph().edges() {
        match edge_owner[e as usize] {
            Some(pi) => {
                // Distinguish the path's two alternating sums.
                let (d0, d1) = sol.pairs[pi];
                let d = s.edge_sum(e);
                let shade = if d == d0 { color_of(2 * pi) } else { color_of(2 * pi + 1) };
                debug_assert!(d == d0 || d == d1);
                writeln!(out, "  {u} -- {v} [color={shade}, penwidth=2];").unwrap();
            }
            None => writeln!(out, "  {u} -- {v} [color=gray80, style=dashed];").unwrap(),
        }
    }
    writeln!(out, "}}").unwrap();
    out
}

/// DOT for the PolarFly layout: clusters boxed, quadrics marked.
pub fn layout_dot(q: u64) -> String {
    let pf = PolarFly::new(q);
    let layout = Layout::new(&pf, None).expect("odd q");
    let mut out = String::new();
    writeln!(out, "// PolarFly ER_{q} layout: starter quadric {}", layout.starter()).unwrap();
    writeln!(out, "graph layout_q{q} {{").unwrap();
    writeln!(out, "  node [shape=circle, fontsize=9];").unwrap();
    writeln!(out, "  subgraph cluster_W {{ label=\"W\"; style=filled; color=mistyrose;").unwrap();
    for &w in layout.quadrics() {
        let style = if w == layout.starter() { ", fillcolor=red, style=filled" } else { "" };
        writeln!(out, "    {w} [color=red{style}];").unwrap();
    }
    writeln!(out, "  }}").unwrap();
    for (i, c) in layout.clusters().iter().enumerate() {
        writeln!(out, "  subgraph cluster_C{i} {{ label=\"C_{i}\"; color=gray;").unwrap();
        for &m in &c.members {
            let style = if m == c.center { " [color=green3, style=filled, fillcolor=palegreen]" } else { "" };
            writeln!(out, "    {m}{style};").unwrap();
        }
        writeln!(out, "  }}").unwrap();
    }
    for (_, u, v) in pf.graph().edges() {
        writeln!(out, "  {u} -- {v} [color=gray70];").unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Writes all figure DOT files into `dir`.
pub fn write_figures(dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for (name, content) in [
        ("singer_q3.dot", singer_dot(3)),
        ("singer_q4.dot", singer_dot(4)),
        ("hamiltonian_q3.dot", hamiltonian_dot(3, 0xF16)),
        ("hamiltonian_q4.dot", hamiltonian_dot(4, 0xF16)),
        ("layout_q5.dot", layout_dot(5)),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, content)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singer_dot_mentions_every_edge() {
        let dot = singer_dot(3);
        let s = Singer::new(3);
        assert_eq!(dot.matches(" -- ").count() as u32, s.graph().num_edges());
        assert!(dot.contains("graph singer_q3"));
        // 4 reflection points are filled.
        assert_eq!(dot.matches("style=filled").count(), 4);
    }

    #[test]
    fn hamiltonian_dot_uses_all_edges_q3() {
        // q = 3: both paths together cover every edge -> no gray edges.
        let dot = hamiltonian_dot(3, 1);
        assert!(!dot.contains("gray80"));
    }

    #[test]
    fn hamiltonian_dot_leaves_unused_color_q4() {
        // q = 4: one color class unused -> exactly (N-1)/2 = 10 gray edges.
        let dot = hamiltonian_dot(4, 1);
        assert_eq!(dot.matches("gray80").count(), 10);
    }

    #[test]
    fn layout_dot_has_all_clusters() {
        let dot = layout_dot(5);
        for i in 0..5 {
            assert!(dot.contains(&format!("cluster_C{i}")));
        }
        assert!(dot.contains("cluster_W"));
    }

    #[test]
    fn write_figures_to_tempdir() {
        let dir = std::env::temp_dir().join("pf_figures_test");
        let written = write_figures(&dir).unwrap();
        assert_eq!(written.len(), 5);
        for p in written {
            assert!(p.exists());
            std::fs::remove_file(p).ok();
        }
    }
}
