//! Experiment driver: one subcommand per paper table/figure.
//!
//! ```text
//! cargo run --release -p pf-bench --bin experiments -- <command> [--max-q Q]
//!
//! commands:
//!   table1          Table 1 census (vertex classes)
//!   fig1            Figure 1 layout statistics (q = 11)
//!   fig2            Figure 2 Singer difference sets (q = 3, 4)
//!   table2          Table 2 non-Hamiltonian paths on S_4
//!   fig4            Figure 4 edge-disjoint Hamiltonian sets (q = 3, 4)
//!   fig5a           Figure 5a normalized bandwidth sweep
//!   fig5b           Figure 5b tree depth sweep
//!   disjoint-sweep  §7.3 random-search sweep (--exact for branch & bound)
//!   totient         Corollary 7.20 path-count check
//!   sim-bandwidth   SIM1 simulated vs analytic bandwidth
//!   sim-crossover   SIM2 latency/bandwidth crossover vs baselines
//!   sim-trace       traced runs: measured link congestion vs theory
//!   sim-split       ablation: optimal vs equal sub-vector split
//!   sim-buffers     ablation: VC buffer depth vs throughput
//!   sim-faults      fault injection: bandwidth vs failed links (recovery)
//!   topo-compare    constructions × substrates: trees, depth, bandwidth
//!                   vs bound, congestion vs claim (--full for the
//!                   nightly catalog)
//!   perf-snapshot   engine throughput vs the reference stepper -> JSON
//!   sched-sweep     multi-tenant offered-load sweep -> BENCH_sched.json
//!   fabric-sweep    fabric-manager throughput sweep + soak -> BENCH_fabric.json
//!   capacity        fleet x construction x policy planner -> BENCH_capacity.json
//!   collectives     sharded-training collectives vs host rings -> JSON
//!   all             everything above
//! ```

use pf_bench::{faults, sims, sweeps, tables};

// Count heap allocations so perf-snapshot can report the optimized
// engine's allocation-free hot loop next to the reference stepper's
// per-fire churn.
#[global_allocator]
static ALLOC: pf_bench::perf_snapshot::CountingAllocator =
    pf_bench::perf_snapshot::CountingAllocator;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt_u64 = |name: &str, default: u64| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    // Sweep ceiling: the paper uses q in [3, 128]; trim with --max-q for a
    // quick run.
    let max_q = opt_u64("--max-q", 128);
    let sim_qs: Vec<u64> = [5u64, 7, 9, 11, 13].into_iter().filter(|&q| q <= max_q).collect();

    let run = |c: &str| match c {
        "table1" => tables::print_table1(
            &pf_galois::prime_powers_in(3, max_q.min(31))
                .into_iter()
                .filter(|q| q % 2 == 1)
                .collect::<Vec<_>>(),
        ),
        "fig1" => tables::print_fig1(11.min(max_q).max(3) | 1),
        "fig2" => tables::print_fig2(),
        "table2" => tables::print_table2(),
        "fig4" => tables::print_fig4(),
        "fig5a" => sweeps::print_fig5a(3, max_q),
        "fig5b" => sweeps::print_fig5b(3, max_q),
        "disjoint-sweep" => sweeps::print_disjoint_sweep(3, max_q, flag("--exact")),
        "totient" => sweeps::print_totient(3, max_q),
        "sim-bandwidth" => sims::print_sim_bandwidth(&sim_qs, opt_u64("--m", 40_000)),
        "sim-crossover" => sims::print_sim_crossover(
            11.min(max_q).max(3) | 1,
            &[1, 16, 256, 1024, 4096, 16_384, 65_536, 262_144],
        ),
        "sim-trace" => sims::print_sim_trace(&sim_qs, opt_u64("--m", 20_000)),
        "sim-split" => sims::print_sim_split(7, opt_u64("--m", 20_000)),
        "sim-buffers" => sims::print_sim_buffers(7, opt_u64("--m", 20_000)),
        "sim-latency" => sims::print_sim_latency(&sim_qs),
        "sim-hostbased" => sims::print_sim_hostbased(7, &[64, 1024, 16_384, 131_072]),
        "sim-collectives" => sims::print_sim_collectives(7, opt_u64("--m", 20_000)),
        "ablation-naive" => sims::print_ablation_naive(&sim_qs),
        "ablation-logical" => sims::print_ablation_logical(&sim_qs),
        "vc-report" => sims::print_vc_report(&sim_qs),
        "sim-injection" => sims::print_sim_injection(7, opt_u64("--m", 20_000)),
        "sim-faults" => faults::print_sim_faults(
            &[3u64, 7, 11].into_iter().filter(|&q| q <= max_q).collect::<Vec<_>>(),
            opt_u64("--m", 4_000),
        ),
        "perf-snapshot" => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_simnet.json");
            let opts = pf_bench::perf_snapshot::SnapshotOptions {
                scaling: flag("--scaling"),
                gate: flag("--gate"),
                max_threads: opt_u64("--threads", 8) as usize,
                max_q,
            };
            if let Err(e) = pf_bench::perf_snapshot::print_perf_snapshot(
                &sim_qs,
                opt_u64("--m", 4_000),
                std::path::Path::new(out),
                &opts,
            ) {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        "collectives" => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_collectives.json");
            pf_bench::collectives::print_collectives(
                &sim_qs,
                opt_u64("--m", 4_000),
                std::path::Path::new(out),
            );
        }
        "sched-sweep" => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_sched.json");
            pf_bench::sched_sweep::print_sched_sweep(
                opt_u64("--q", 11.min(max_q).max(3) | 1),
                opt_u64("--jobs", 60) as u32,
                opt_u64("--seed", 2026),
                std::path::Path::new(out),
            );
        }
        "fabric-sweep" => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_fabric.json");
            pf_bench::fabric_sweep::print_fabric_sweep(
                opt_u64("--q", 7.min(max_q).max(3) | 1),
                opt_u64("--jobs", 400) as usize,
                opt_u64("--soak", 1_000_000) as usize,
                opt_u64("--seed", 2026),
                std::path::Path::new(out),
            );
        }
        "capacity" => {
            let out = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("BENCH_capacity.json");
            let defaults = pf_bench::capacity::CapacityParams::default();
            let p = pf_bench::capacity::CapacityParams {
                fleet_min: opt_u64("--fleet-min", defaults.fleet_min as u64) as u32,
                fleet_max: opt_u64("--fleet-max", defaults.fleet_max as u64) as u32,
                fault_budget: opt_u64("--faults", defaults.fault_budget as u64) as u32,
                jobs: opt_u64("--jobs", defaults.jobs as u64) as u32,
                seed: opt_u64("--seed", defaults.seed),
            };
            pf_bench::capacity::print_capacity(&p, std::path::Path::new(out));
        }
        "evenq-search" => sims::print_evenq_search(opt_u64("--attempts", 500) as usize),
        "topo-compare" => pf_bench::topo_compare::print_topo_compare(flag("--full")),
        "torus-compare" => sims::print_torus_compare(opt_u64("--m", 200_000)),
        "starters" => sims::print_starters(opt_u64("--q", 11)),
        "metrics" => sweeps::print_metrics(&pf_galois::prime_powers_in(3, max_q.min(32))),
        "csv" => {
            let dir = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("results");
            let written = pf_bench::csv::write_all(std::path::Path::new(dir), max_q.min(32))
                .expect("write csv");
            println!("wrote {} CSV series to {dir}/:", written.len());
            for p in written {
                println!("  {}", p.display());
            }
        }
        "dot" => {
            let dir = args
                .iter()
                .position(|a| a == "--out")
                .and_then(|i| args.get(i + 1))
                .map(String::as_str)
                .unwrap_or("figures");
            let written = pf_bench::figures::write_figures(std::path::Path::new(dir))
                .expect("write figures");
            println!("wrote {} DOT figures to {dir}/:", written.len());
            for p in written {
                println!("  {}", p.display());
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!("known: table1 fig1 fig2 table2 fig4 fig5a fig5b disjoint-sweep totient");
            eprintln!(
                "       sim-bandwidth sim-crossover sim-split sim-buffers perf-snapshot \
                 sched-sweep fabric-sweep capacity collectives all"
            );
            std::process::exit(2);
        }
    };

    if cmd == "all" {
        for c in [
            "table1",
            "fig1",
            "fig2",
            "table2",
            "fig4",
            "fig5a",
            "fig5b",
            "disjoint-sweep",
            "totient",
            "sim-bandwidth",
            "sim-crossover",
            "sim-trace",
            "sim-split",
            "sim-buffers",
            "sim-latency",
            "sim-hostbased",
            "sim-collectives",
            "ablation-naive",
            "ablation-logical",
            "vc-report",
            "sim-injection",
            "sim-faults",
            "sched-sweep",
            "fabric-sweep",
            "capacity",
            "collectives",
            "evenq-search",
            "topo-compare",
            "torus-compare",
            "starters",
            "metrics",
            "dot",
            "csv",
        ] {
            run(c);
        }
    } else {
        run(cmd);
    }
}
