//! `planner` — a user-facing CLI for sizing in-network allreduce on
//! PolarFly.
//!
//! ```text
//! cargo run --release -p pf-bench --bin planner -- \
//!     --q 11 --solution edge-disjoint --m 1000000 [--simulate] [--hop-latency 4]
//! ```
//!
//! Prints the tree set's guarantees, the Theorem 5.1 sub-vector split and
//! predicted time; `--simulate` additionally executes the plan on the
//! cycle-level simulator and reports measured numbers.

use pf_allreduce::{AllreducePlan, Rational};
use pf_simnet::{MultiTreeEmbedding, SimConfig, Simulator, Workload};

fn usage() -> ! {
    eprintln!(
        "usage: planner --q <prime power> [--solution low-depth|edge-disjoint|single-tree]\n\
         \x20              [--m <elements>] [--hop-latency <cycles>] [--simulate]\n\
         \x20              [--attempts <n>] [--seed <n>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |name: &str| {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
    };
    let get_u64 = |name: &str, default: u64| {
        get(name).map(|v| v.parse().unwrap_or_else(|_| usage())).unwrap_or(default)
    };
    let q = match get("--q") {
        Some(v) => v.parse::<u64>().unwrap_or_else(|_| usage()),
        None => usage(),
    };
    if pf_galois::prime_power(q).is_none() {
        eprintln!("error: q = {q} is not a prime power.");
        eprintln!("feasible radixes up to 128: {:?}", pf_galois::prime_powers_in(3, 128));
        std::process::exit(2);
    }
    let solution = get("--solution").unwrap_or_else(|| "edge-disjoint".into());
    let m = get_u64("--m", 1_000_000);
    let hop = get_u64("--hop-latency", 4);
    let attempts = get_u64("--attempts", 30) as usize;
    let seed = get_u64("--seed", 42);
    let simulate = args.iter().any(|a| a == "--simulate");

    let plan = match solution.as_str() {
        "low-depth" => AllreducePlan::low_depth(q),
        "edge-disjoint" => AllreducePlan::edge_disjoint(q, attempts, seed),
        "single-tree" => AllreducePlan::single_tree(q),
        _ => usage(),
    }
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    println!("PolarFly ER_{q}: {} routers, radix {}", plan.num_nodes(), q + 1);
    println!("solution: {}", plan.solution.label());
    println!("  trees:           {}", plan.trees.len());
    println!("  max depth:       {}", plan.depth);
    println!("  max congestion:  {}", plan.max_congestion);
    println!(
        "  aggregate bandwidth: {} x link ({} of the (q+1)/2 optimum)",
        plan.aggregate,
        plan.normalized_bandwidth()
    );

    let sizes = plan.split(m);
    println!("\nvector: {m} elements, optimal split across trees: {sizes:?}");
    let t = plan.predicted_time(m, Rational::from_int(hop as i64));
    println!(
        "predicted allreduce time (Theorem 5.1, hop latency {hop}): {} cycles ({:.3} el/cy)",
        t,
        m as f64 / t.to_f64()
    );

    if simulate {
        let cfg = SimConfig { link_latency: hop as u32, ..SimConfig::default() };
        let emb = MultiTreeEmbedding::new(&plan.graph, &plan.trees, &sizes);
        let w = Workload::new(plan.graph.num_vertices(), m);
        println!("\nsimulating ({} streams, VC buffer {} flits)...", emb.streams.len(), cfg.vc_buffer);
        let r = Simulator::new(&plan.graph, &emb, cfg).run(&w);
        println!("  completed:          {}", r.completed);
        println!("  wrong elements:     {}", r.mismatches);
        println!("  cycles:             {}", r.cycles);
        println!("  measured bandwidth: {:.3} elements/cycle", r.measured_bandwidth);
        println!("  first-element latency: {} cycles", r.first_element_latency);
        let per_tree = pf_simnet::stats::per_tree_bandwidth(&r, &sizes);
        println!(
            "  per-tree bandwidth: {:?}",
            per_tree.iter().map(|b| (b * 1000.0).round() / 1000.0).collect::<Vec<_>>()
        );
        let util = pf_simnet::stats::utilization_summary(&r);
        println!(
            "  link utilization: {}/{} channels active, mean {:.1}%, peak {:.1}%",
            util.active_channels,
            util.total_channels,
            100.0 * util.mean_active,
            100.0 * util.max
        );
        let vc = emb.vc_requirements();
        println!(
            "  router resources: {} VC(s)/channel, {} reduction engine(s)/port",
            vc.total_vcs_per_channel, vc.reduce_vcs_per_channel
        );
        if !r.completed || r.mismatches > 0 {
            std::process::exit(1);
        }
    }
}
